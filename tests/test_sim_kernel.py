"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import Component, DeadlockError, SimulationError, Simulator, Trace


class Counter(Component):
    def __init__(self, name="counter"):
        super().__init__(name)
        self.value = 0

    def tick(self):
        self.value += 1

    def reset(self):
        self.value = 0


class TwoPhase(Component):
    """Captures another component's value during tick, publishes on commit."""

    def __init__(self, other):
        super().__init__("twophase")
        self.other = other
        self.seen = None
        self._staged = None

    def tick(self):
        self._staged = self.other.value

    def commit(self):
        self.seen = self._staged


def test_step_advances_cycle_and_ticks_components():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.step(5)
    assert sim.cycle == 5
    assert counter.value == 5


def test_components_tick_in_registration_order():
    sim = Simulator()
    order = []

    class Probe(Component):
        def tick(self):
            order.append(self.name)

    sim.add(Probe("a"))
    sim.add(Probe("b"))
    sim.step()
    assert order == ["a", "b"]


def test_commit_runs_after_all_ticks():
    sim = Simulator()
    counter = sim.add(Counter())
    observer = sim.add(TwoPhase(counter))
    sim.step()
    # observer saw the value *after* counter ticked (same cycle)
    assert observer.seen == 1


def test_duplicate_names_rejected():
    sim = Simulator()
    sim.add(Counter("x"))
    with pytest.raises(SimulationError):
        sim.add(Counter("x"))


def test_remove_component():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.remove(counter)
    sim.step(3)
    assert counter.value == 0
    # name freed for reuse
    sim.add(Counter())


def test_component_lookup():
    sim = Simulator()
    counter = sim.add(Counter("abc"))
    assert sim.component("abc") is counter
    with pytest.raises(KeyError):
        sim.component("missing")


def test_run_until_returns_elapsed_cycles():
    sim = Simulator()
    counter = sim.add(Counter())
    elapsed = sim.run_until(lambda: counter.value >= 10)
    assert elapsed == 10
    assert sim.cycle == 10


def test_run_until_deadlock_raises():
    sim = Simulator()
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: False, max_cycles=50, what="never")


def test_deadlock_message_names_cycle_condition_and_component():
    """The diagnostic carries everything needed to start debugging."""
    sim = Simulator(trace=Trace())

    class Chatty(Component):
        def tick(self):
            self.trace_event("busy")

    sim.add(Chatty("dma_engine"))
    with pytest.raises(DeadlockError) as excinfo:
        sim.run_until(lambda: False, max_cycles=50, what="OCP interrupt")
    message = str(excinfo.value)
    assert "OCP interrupt" in message               # what was awaited
    assert "not reached within 50 cycles" in message  # the bound
    assert "stuck at cycle 50" in message           # where it gave up
    assert "last active component: dma_engine" in message


def test_deadlock_message_without_activity():
    sim = Simulator()
    with pytest.raises(DeadlockError, match="last active component: <none>"):
        sim.run_until(lambda: False, max_cycles=10)


def test_reset_restores_components_and_clock():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.step(4)
    sim.reset()
    assert sim.cycle == 0
    assert counter.value == 0


def test_trace_events_recorded():
    trace = Trace()
    sim = Simulator(trace=trace)

    class Emitter(Component):
        def tick(self):
            self.trace_event("ping", value=self.now)

    sim.add(Emitter("emitter"))
    sim.step(3)
    events = trace.events(component="emitter", event="ping")
    assert [e.cycle for e in events] == [0, 1, 2]
    assert events[1].data["value"] == 1


def test_component_now_without_sim_is_zero():
    lone = Counter()
    assert lone.now == 0


def test_remove_unregistered_component_raises_simulation_error():
    sim = Simulator()
    stranger = Counter("stranger")
    with pytest.raises(SimulationError, match="not registered"):
        sim.remove(stranger)
    # a never-attached component keeps the benign sentinel clock
    assert stranger.now == 0


def test_remove_twice_raises():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.remove(counter)
    with pytest.raises(SimulationError, match="not registered"):
        sim.remove(counter)


def test_now_after_detach_raises():
    """Use-after-remove must fail loudly, not timestamp at cycle 0."""
    sim = Simulator()
    counter = sim.add(Counter())
    sim.step(3)
    sim.remove(counter)
    with pytest.raises(SimulationError, match="removed from its simulator"):
        counter.now


def test_reattach_after_remove_restores_clock():
    sim = Simulator()
    counter = sim.add(Counter())
    sim.step(2)
    sim.remove(counter)
    sim.add(counter)
    assert counter.now == 2


def test_remove_clears_stale_last_active():
    """Deadlock diagnostics must never name a removed component."""
    sim = Simulator(trace=Trace())

    class Chatty(Component):
        def tick(self):
            self.trace_event("busy")

    chatty = sim.add(Chatty("chatty"))
    sim.step(2)
    assert sim.last_active == "chatty"
    sim.remove(chatty)
    assert sim.last_active is None
    with pytest.raises(DeadlockError, match="last active component: <none>"):
        sim.run_until(lambda: False, max_cycles=5)


def test_partial_reconfiguration_swap_rac_detaches_cleanly():
    """The DPR path removes a whole fabric; the swap must leave no
    stale clock references and the new fabric must still run."""
    from repro.rac.scale import PassthroughRac, ScaleRac
    from repro.system import SoC

    soc = SoC(racs=[PassthroughRac(block_size=4)])
    old = soc.ocp.rac
    old_fifos = list(soc.ocp.fifos_in) + list(soc.ocp.fifos_out)
    soc.sim.step(3)
    soc.ocp.swap_rac(ScaleRac(block_size=4, factor=2))
    for stale in [old] + old_fifos:
        with pytest.raises(SimulationError):
            stale.now
    # the reconfigured system still advances
    soc.sim.step(5)
    assert soc.ocp.rac.now == 8
