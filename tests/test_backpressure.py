"""Backpressure and composition: slow consumers, chained OCPs."""

import pytest

from repro.core.program import OuProgram
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.base import RAC, RACPortSpec
from repro.rac.idct import IDCTRac
from repro.rac.scale import ScaleRac
from repro.sw.driver import OuessantDriver
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp


class ThrottledLoopback(RAC):
    """Loopback that consumes/produces one word every ``period`` cycles.

    Stress case for the transfer engine: the input FIFO fills (mvtc
    must pace itself), the output FIFO drains slowly (mvfc must wait).
    """

    kind = "throttled"

    def __init__(self, name="throttled", block=32, period=7, fifo_depth=8):
        super().__init__(name, RACPortSpec([32], [32], fifo_depth))
        self.block = block
        self.period = period
        self._phase = 0
        self._taken = 0
        self._given = 0

    def tick(self):
        self._phase = (self._phase + 1) % self.period
        if self._phase:
            return
        fifo_in, fifo_out = self.inputs[0], self.outputs[0]
        if (self._taken < self.block and fifo_in.can_pop()
                and fifo_out.can_push()):
            fifo_out.push(fifo_in.pop())
            self._taken += 1
            self._given += 1
        if self._given == self.block and not self.end_op:
            self._finish_op()

    def reset(self):
        super().reset()
        self._phase = self._taken = self._given = 0


def boot(soc, program, banks):
    ocp = soc.ocp
    prog = RAM_BASE + 0x1000
    soc.write_ram(prog, program.words())
    for bank, base in {**{0: prog}, **banks}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return ocp


def test_figure4_order_deadlocks_past_fifo_capacity():
    """A forward-streaming RAC drains only through mvfc, so the
    all-in-then-all-out program order deadlocks once the block exceeds
    in-depth + out-depth -- a real microcode/FIFO sizing hazard."""
    from repro.sim.errors import DeadlockError

    soc = SoC(racs=[ThrottledLoopback()])  # 8 + 8 words of buffer
    inp, out = RAM_BASE + 0x2000, RAM_BASE + 0x3000
    soc.write_ram(inp, list(range(900, 932)))
    program = (OuProgram().stream_to(1, 32, chunk=16).execs()
               .stream_from(2, 32, chunk=16).eop())
    boot(soc, program, {1: inp, 2: out})
    with pytest.raises(DeadlockError):
        soc.run_until(lambda: soc.ocp.done, max_cycles=20_000)


def test_interleaved_microcode_streams_through_tiny_fifos():
    """The fix for the hazard above: interleave mvtc/mvfc chunks.  The
    engine paces each chunk to the 8-deep FIFOs and the 7x-slower RAC
    without ever overflowing."""
    soc = SoC(racs=[ThrottledLoopback()])
    inp, out = RAM_BASE + 0x2000, RAM_BASE + 0x3000
    soc.write_ram(inp, list(range(900, 932)))
    program = OuProgram()
    program.execs()
    for chunk_no in range(4):
        program.mvtc(1, 8 * chunk_no, 8)
        program.mvfc(2, 8 * chunk_no, 8)
    program.eop()
    boot(soc, program, {1: inp, 2: out})
    cycles = soc.run_until(lambda: soc.ocp.done, max_cycles=50_000)
    assert soc.read_ram(out, 32) == list(range(900, 932))
    # throughput limited by the RAC (1 word / 7 cycles), not by the bus
    assert cycles > 32 * 7
    # the engine stalled (politely) instead of overflowing
    assert soc.ocp.controller.stats["cycles.fifo_stall"] > 0
    max_atoms = soc.ocp.fifos_in[0].stats["max_occupancy_atoms"]
    assert max_atoms <= 8  # never beyond the FIFO's depth


def test_two_ocps_chained_through_memory():
    """OCP0's output region is OCP1's input region: a software-managed
    accelerator pipeline (scale, then IDCT) on one bus."""
    scale = ScaleRac(block_size=64, factor=2, shift=0, fifo_depth=128)
    idct = IDCTRac(fifo_depth=128)
    soc = SoC(racs=[scale, idct])
    stage0_in = RAM_BASE + 0x2000
    handoff = RAM_BASE + 0x3000
    final = RAM_BASE + 0x4000

    block = [[(r * 8 + c) % 32 - 16 for c in range(8)] for r in range(8)]
    halved = [[v for v in row] for row in block]
    soc.write_ram(stage0_in, fp.block_to_words(halved))

    program = (OuProgram().stream_to(1, 64).execs()
               .stream_from(2, 64).eop())

    d0 = OuessantDriver(soc, ocp_index=0)
    d1 = OuessantDriver(soc, ocp_index=1)
    d0.run(program.words(),
           {0: RAM_BASE + 0x1000, 1: stage0_in, 2: handoff})
    d1.run(program.words(),
           {0: RAM_BASE + 0x5000, 1: handoff, 2: final})

    doubled = [[2 * v for v in row] for row in block]
    assert fp.words_to_block(soc.read_ram(final, 64)) == fp.idct2_q15(doubled)


def test_chained_ocps_overlap_when_started_together():
    """Both OCPs started back-to-back on independent data: concurrent
    operation is cheaper than the sum of solo runs."""
    soc = SoC(racs=[ScaleRac("s0", block_size=256, factor=1, shift=0,
                             fifo_depth=128),
                    ScaleRac("s1", block_size=256, factor=1, shift=0,
                             fifo_depth=128)])
    program = (OuProgram().stream_to(1, 256, chunk=64).execs()
               .stream_from(2, 256, chunk=64).eop())
    words = program.words()
    for index in range(2):
        base = RAM_BASE + 0x10_0000 * (index + 1)
        soc.write_ram(base, words)
        soc.write_ram(base + 0x4000, list(range(256)))
        ocp = soc.ocps[index]
        for bank, addr in {0: base, 1: base + 0x4000,
                           2: base + 0x8000}.items():
            ocp.interface.write_word(REG_BANK_BASE + 4 * bank, addr)
        ocp.interface.write_word(REG_PROG_SIZE, len(words))
    for ocp in soc.ocps:
        ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    both = soc.run_until(lambda: all(o.done for o in soc.ocps),
                         max_cycles=100_000)

    solo_soc = SoC(racs=[ScaleRac("s0", block_size=256, factor=1, shift=0,
                                  fifo_depth=128)])
    solo_soc.write_ram(RAM_BASE + 0x10_0000, words)
    solo_soc.write_ram(RAM_BASE + 0x10_4000, list(range(256)))
    ocp = solo_soc.ocp
    for bank, addr in {0: RAM_BASE + 0x10_0000,
                       1: RAM_BASE + 0x10_4000,
                       2: RAM_BASE + 0x10_8000}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, addr)
    ocp.interface.write_word(REG_PROG_SIZE, len(words))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    solo = solo_soc.run_until(lambda: ocp.done, max_cycles=100_000)

    assert both < 2 * solo
