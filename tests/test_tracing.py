"""Unit tests for tracing, stats and the VCD writer."""

from repro.sim.tracing import Stats, Trace, VCDWriter


def test_trace_capacity_limits_recording():
    trace = Trace(capacity=2)
    for i in range(5):
        trace.record(i, "c", "e", {})
    assert len(trace) == 2


def test_trace_counts_dropped_events_and_reports_truncation():
    trace = Trace(capacity=2)
    assert not trace.truncated and trace.dropped == 0
    for i in range(5):
        trace.record(i, "c", "e", {})
    assert trace.dropped == 3
    assert trace.truncated
    assert trace.capacity == 2


def test_unbounded_trace_never_truncates():
    trace = Trace()
    for i in range(100):
        trace.record(i, "c", "e", {})
    assert trace.dropped == 0
    assert not trace.truncated
    assert trace.capacity is None


def test_fault_history_refuses_truncated_trace():
    import pytest

    from repro.faults.harness import fault_history, fault_signature
    from repro.sim.errors import SimulationError

    trace = Trace(capacity=1)
    trace.record(0, "faults.ram", "fault.stall", {})
    trace.record(1, "faults.ram", "fault.stall", {})  # dropped
    with pytest.raises(SimulationError, match="truncated"):
        fault_history(trace)
    with pytest.raises(SimulationError, match="truncated"):
        fault_signature(trace)


def test_fault_history_accepts_complete_trace():
    from repro.faults.harness import fault_signature

    trace = Trace(capacity=10)
    trace.record(0, "faults.ram", "fault.stall", {"extra": 3})
    trace.record(1, "bus", "grant", {})
    assert len(fault_signature(trace)) == 1


def test_trace_filters_and_first():
    trace = Trace()
    trace.record(0, "a", "x", {"v": 1})
    trace.record(1, "b", "x", {})
    trace.record(2, "a", "y", {})
    assert len(trace.events(component="a")) == 2
    assert len(trace.events(event="x")) == 2
    assert trace.first("a", "y").cycle == 2
    assert trace.first("a", "zzz") is None


def test_trace_dump_is_readable():
    trace = Trace()
    trace.record(7, "bus", "grant", {"master": "cpu"})
    assert "bus: grant master=cpu" in trace.dump()


def test_stats_incr_get_and_merge():
    a = Stats()
    a.incr("x")
    a.incr("x", 2)
    b = Stats()
    b.incr("x")
    b.incr("y", 5)
    merged = a + b
    assert merged["x"] == 4
    assert merged["y"] == 5
    assert merged["missing"] == 0


def test_stats_maximize_keeps_running_max():
    stats = Stats()
    stats.maximize("depth", 3)
    stats.maximize("depth", 1)
    stats.maximize("depth", 9)
    assert stats["depth"] == 9


def test_stats_merge_takes_max_of_gauges_not_sum():
    # regression: merging used plain Counter addition, so gauges like
    # max_occupancy_atoms came out as the *sum* of the two maxima
    a = Stats()
    a.maximize("max_occupancy_atoms", 7)
    a.incr("pushes", 10)
    b = Stats()
    b.maximize("max_occupancy_atoms", 5)
    b.incr("pushes", 3)
    merged = a + b
    assert merged["max_occupancy_atoms"] == 7
    assert merged["pushes"] == 13
    assert merged.is_gauge("max_occupancy_atoms")
    assert not merged.is_gauge("pushes")


def test_stats_merge_gauge_present_on_one_side_only():
    a = Stats()
    a.maximize("depth", 4)
    b = Stats()
    assert (a + b)["depth"] == 4
    assert (b + a)["depth"] == 4


def test_stats_report_contains_all_counters():
    stats = Stats()
    stats.incr("alpha", 3)
    stats.incr("beta")
    report = stats.report("title")
    assert report.startswith("title")
    assert "alpha" in report and "beta" in report


def test_vcd_writer_renders_header_and_changes():
    vcd = VCDWriter(timescale="20ns")
    vcd.register("clk", width=1)
    vcd.register("data", width=8)
    vcd.change(0, "clk", 1)
    vcd.change(0, "data", 0xAB)
    vcd.change(3, "clk", 0)
    text = vcd.render()
    assert "$timescale 20ns $end" in text
    assert "$var wire 1" in text
    assert "$var wire 8" in text
    assert "#0" in text and "#3" in text
    assert "b10101011" in text


def test_vcd_deduplicates_unchanged_values():
    vcd = VCDWriter()
    vcd.register("s", width=1)
    vcd.change(0, "s", 1)
    vcd.change(1, "s", 1)  # no change
    vcd.change(2, "s", 0)
    text = vcd.render()
    assert text.count("#1") == 0


def test_vcd_autoregisters_unknown_signal():
    vcd = VCDWriter()
    vcd.change(0, "auto", 5)
    assert "auto" in vcd.render()


def test_vcd_autoregistered_signal_widens_for_later_values():
    # regression: auto-registration pinned the width to the *first*
    # value's bit length, so a later wider value overflowed its lane
    vcd = VCDWriter()
    vcd.change(0, "auto", 1)     # would pin width=1
    vcd.change(5, "auto", 0xAB)  # needs 8 bits
    text = vcd.render()
    assert "$var wire 8" in text
    assert "b10101011" in text


def test_vcd_explicit_width_also_widens_on_overflow():
    vcd = VCDWriter()
    vcd.register("s", width=2)
    vcd.change(0, "s", 3)
    vcd.change(1, "s", 12)
    assert "$var wire 4" in vcd.render()


def test_vcd_write_to_file(tmp_path):
    vcd = VCDWriter()
    vcd.change(0, "x", 1)
    path = tmp_path / "out.vcd"
    vcd.write(str(path))
    assert path.read_text().startswith("$timescale")
