"""Differential soundness gate for the microcode verifier.

Three properties, enforced over seeded random programs:

1. **Soundness** — any program the verifier passes as *clean* runs to
   completion on the functional reference model without trapping,
   hanging, or exceeding the verifier's own worst-case step bound.
2. **Strength** — the verifier flags at least 90% of a corpus of
   seeded known-bad mutants, spanning every failure category.
3. **Progress** — at least three mutant categories that the old
   linear-scan linter (frozen below, verbatim from the pre-rewrite
   ``core/lint.py``) passed silently are now caught.

The generators are deterministic (``random.Random(seed)``) so CI
failures reproduce locally without any environment coupling.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import pytest

from repro.core.firmware import plan_streaming_run
from repro.core.isa import (
    FIFODirection,
    FROM_COPROCESSOR_OPS,
    INDEXED_OPS,
    MAX_OFFSET,
    OuInstruction,
    OuOp,
    TO_COPROCESSOR_OPS,
)
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
    idct_program,
)
from repro.core.refmodel import (
    ReferenceMemory,
    ReferenceRAC,
    execute_reference,
)
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.rac.matmul import MatMulRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.verify import verify_program

BANKS = {bank: 0x100000 * (bank + 1) for bank in range(8)}
ALL_BANKS = set(BANKS)


# ---------------------------------------------------------------------------
# the old linter, frozen
#
# Verbatim copy of the linear-scan `lint_program` this verifier
# replaced (commit 9c29263), reduced to (index, severity, message)
# tuples.  It is the differential baseline proving the new analysis
# catches classes of bugs the scan could not see.
# ---------------------------------------------------------------------------

def legacy_linear_scan(
    program: Sequence[OuInstruction],
    rac=None,
    configured_banks: Optional[Set[int]] = None,
) -> List[Tuple[int, str, str]]:
    from repro.rac.base import StreamingRAC

    diags: List[Tuple[int, str, str]] = []
    n_in = len(rac.ports.input_widths) if rac is not None else None
    n_out = len(rac.ports.output_widths) if rac is not None else None
    if not program:
        return [(0, "error", "empty program")]
    if not any(i.op in (OuOp.EOP, OuOp.HALT) for i in program):
        diags.append((len(program) - 1, "error", "no eop/halt"))
    loop_depth = 0
    words_in: Dict[int, int] = {}
    words_out: Dict[int, int] = {}
    exec_seen = False
    in_loop_multiplier = 1
    for index, instr in enumerate(program):
        op = instr.op
        if op is OuOp.JMP and instr.imm >= len(program):
            diags.append((index, "error", "jmp target outside program"))
        if op is OuOp.LOOP:
            loop_depth += 1
            in_loop_multiplier = instr.imm
            if loop_depth > 1:
                diags.append((index, "error", "nested loop"))
        if op is OuOp.ENDL:
            if loop_depth == 0:
                diags.append((index, "error", "endl without a loop"))
            else:
                loop_depth -= 1
                in_loop_multiplier = 1
        if op in (OuOp.EXEC, OuOp.EXECS):
            exec_seen = True
        if instr.is_transfer() and configured_banks is not None:
            if instr.bank not in set(configured_banks) | {0}:
                diags.append((index, "error",
                              f"bank {instr.bank} is never configured"))
        multiplier = in_loop_multiplier if loop_depth else 1
        if op in TO_COPROCESSOR_OPS:
            if n_in is not None and instr.fifo >= n_in:
                diags.append((index, "error",
                              f"mvtc addresses input FIFO{instr.fifo}"))
            words_in[instr.fifo] = words_in.get(instr.fifo, 0) + (
                instr.count * multiplier)
        if op in FROM_COPROCESSOR_OPS:
            if n_out is not None and instr.fifo >= n_out:
                diags.append((index, "error",
                              f"mvfc addresses output FIFO{instr.fifo}"))
            words_out[instr.fifo] = words_out.get(instr.fifo, 0) + (
                instr.count * multiplier)
        if op is OuOp.WAITF and rac is not None:
            limit = (n_in if instr.direction is FIFODirection.INPUT
                     else n_out)
            if limit is not None and instr.fifo >= limit:
                diags.append((index, "error", "waitf beyond ports"))
        if op in INDEXED_OPS and not any(
            p.op in (OuOp.ADDOFR, OuOp.CLROFR) for p in program[:index]
        ):
            diags.append((index, "warning", "indexed transfer, OFR unset"))
    if loop_depth != 0:
        diags.append((len(program) - 1, "error", "loop never closed"))
    if isinstance(rac, StreamingRAC):
        for port, need in enumerate(rac.items_in):
            moved = words_in.get(port, 0)
            if moved and moved % need:
                diags.append((len(program) - 1, "error",
                              f"input FIFO{port} will starve"))
        ops = (words_in.get(0, 0) // rac.items_in[0]
               if rac.items_in[0] else 0)
        for port, produce in enumerate(rac.items_out):
            drained = words_out.get(port, 0)
            expected = ops * produce
            if drained > expected:
                diags.append((len(program) - 1, "error",
                              f"output FIFO{port}: mvfc will hang"))
            elif drained < expected:
                diags.append((len(program) - 1, "warning",
                              f"output FIFO{port}: residue"))
        if words_in and not exec_seen and not rac.autostart:
            diags.append((len(program) - 1, "error", "never started"))
        if not rac.autostart:
            for port, moved in words_in.items():
                if moved > rac.ports.fifo_depth:
                    diags.append((len(program) - 1, "error",
                                  f"FIFO{port} will deadlock"))
    return diags


def legacy_has_errors(program, rac=None, configured_banks=None) -> bool:
    return any(
        severity == "error"
        for _i, severity, _m in legacy_linear_scan(
            program, rac=rac, configured_banks=configured_banks)
    )


# ---------------------------------------------------------------------------
# seeded program generators
# ---------------------------------------------------------------------------

def _well_formed(rng: random.Random):
    """A program that should verify clean, by construction."""
    block = rng.choice([4, 8, 16])
    rac = ScaleRac(block_size=block)
    n_ops = rng.randint(1, 6)
    total = n_ops * block
    shape = rng.randrange(4)
    program = OuProgram()
    if shape == 0:        # Figure 4: unrolled burst in / exec / burst out
        if rng.random() < 0.5:
            program.wait(rng.randint(1, 100))
        program.stream_to(1, total, chunk=rng.choice([block, 64]))
        program.execs()
        program.stream_from(2, total, chunk=rng.choice([block, 64]))
    elif shape == 1:      # hardware loop with OFR walking
        program.clrofr().loop(n_ops)
        program.mvtcx(1, 0, block).addofr(block).endl()
        program.execs().clrofr().loop(n_ops)
        program.mvfcx(2, 0, block).addofr(block).endl()
    elif shape == 2:      # pipelined: push and drain inside one body
        program.loop(n_ops).mvtc(1, 0, block)
        if rng.random() < 0.5:
            program.waitf("out", 0, min(block, 64))
        program.mvfc(2, 0, block).endl()
    else:                 # control-flow noise around a balanced transfer
        program.jmp(2).nop()        # skips the nop: dead-code warning only
        program.mvtc(1, 0, block).execs()
        if rng.random() < 0.5:
            program.sync()
        program.mvfc(2, rng.randint(0, 64), block)
    program.eop()
    return program.instructions, rac


def _hostile(rng: random.Random):
    """Arbitrary decodable instructions: most are broken programs."""
    rac = ScaleRac(block_size=rng.choice([4, 8, 16]))
    length = rng.randint(1, 24)
    instrs = []
    for _ in range(length):
        roll = rng.randrange(10)
        if roll < 3:
            instrs.append(OuInstruction(
                rng.choice([OuOp.MVTC, OuOp.MVTCX]),
                bank=rng.randrange(8), offset=rng.randrange(MAX_OFFSET + 1),
                count=rng.randint(1, 128), fifo=rng.randrange(8)))
        elif roll < 6:
            instrs.append(OuInstruction(
                rng.choice([OuOp.MVFC, OuOp.MVFCX]),
                bank=rng.randrange(8), offset=rng.randrange(MAX_OFFSET + 1),
                count=rng.randint(1, 128), fifo=rng.randrange(8)))
        elif roll == 6:
            instrs.append(OuInstruction(OuOp.JMP,
                                        imm=rng.randrange(length + 2)))
        elif roll == 7:
            instrs.append(OuInstruction(
                rng.choice([OuOp.LOOP, OuOp.ENDL]),
                imm=rng.randint(1, 64)))
        else:
            instrs.append(OuInstruction(rng.choice([
                OuOp.NOP, OuOp.EXEC, OuOp.EXECS, OuOp.SYNC, OuOp.IRQ,
                OuOp.ADDOFR, OuOp.CLROFR, OuOp.EOP, OuOp.HALT])))
    return instrs, rac


def _run_reference(instrs, rac, max_steps):
    memory = ReferenceMemory(
        {BANKS[b] + 4 * i: (b * 1000 + i) & 0xFFFFFFFF
         for b in range(1, 4) for i in range(256)}
    )
    return execute_reference(
        instrs, BANKS, memory, ReferenceRAC.of(rac), max_steps=max_steps)


# ---------------------------------------------------------------------------
# property 1: clean => the reference model completes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("family,n_seeds", [
    (_well_formed, 120), (_hostile, 120),
])
def test_clean_programs_complete_on_the_reference_model(family, n_seeds):
    clean = 0
    for seed in range(n_seeds):
        instrs, rac = family(random.Random(seed))
        report = verify_program(instrs, rac=rac, configured_banks=ALL_BANKS)
        if not report.clean:
            continue
        clean += 1
        # no trap, no hang, and the step bound really bounds execution
        executed = _run_reference(instrs, rac, max_steps=report.max_steps)
        assert executed <= report.max_steps, (
            f"seed {seed}: ran {executed} steps, verifier promised "
            f"{report.max_steps}")
    if family is _well_formed:
        # the gate must not be vacuous
        assert clean >= n_seeds * 3 // 4, (
            f"only {clean}/{n_seeds} well-formed programs verified clean")


# ---------------------------------------------------------------------------
# property 2 & 3: mutants are flagged; several categories are new
# ---------------------------------------------------------------------------

def _base_clean(rng: random.Random):
    """Unrolled clean program the mutation operators act on."""
    block = rng.choice([8, 16])
    rac = ScaleRac(block_size=block)
    n_ops = rng.randint(1, 4)
    total = n_ops * block
    program = (OuProgram()
               .stream_to(1, total, chunk=block).execs()
               .stream_from(2, total, chunk=block).eop())
    return program.instructions, rac


def _first_index(instrs, ops):
    return next(i for i, ins in enumerate(instrs) if ins.op in ops)


def _mut_unterminated(instrs, rac, rng):
    return [i for i in instrs if i.op is not OuOp.EOP], rac


def _mut_unconfigured_bank(instrs, rac, rng):
    at = _first_index(instrs, TO_COPROCESSOR_OPS)
    out = list(instrs)
    out[at] = dataclasses.replace(out[at], bank=rng.choice([5, 6, 7]))
    return out, rac


def _mut_bad_fifo(instrs, rac, rng):
    at = _first_index(instrs, TO_COPROCESSOR_OPS)
    out = list(instrs)
    out[at] = dataclasses.replace(out[at], fifo=rng.randint(1, 7))
    return out, rac


def _mut_starve(instrs, rac, rng):
    at = _first_index(instrs, TO_COPROCESSOR_OPS)
    out = list(instrs)
    out[at] = dataclasses.replace(out[at], count=out[at].count - 1)
    return out, rac


def _mut_overdrain_total(instrs, rac, rng):
    at = _first_index(instrs, FROM_COPROCESSOR_OPS)
    out = list(instrs)
    out[at] = dataclasses.replace(
        out[at], count=min(128, out[at].count + rac.items_out[0]))
    return out, rac


def _mut_deadlock_volume(instrs, rac, rng):
    quiet = PassthroughRac(block_size=128, fifo_depth=32, autostart=False)
    program = (OuProgram()
               .stream_to(1, 128, chunk=64).execs()
               .stream_from(2, 128, chunk=64).eop())
    return program.instructions, quiet


def _mut_window_overflow(instrs, rac, rng):
    at = _first_index(instrs, TO_COPROCESSOR_OPS)
    out = list(instrs)
    out[at] = dataclasses.replace(
        out[at], offset=MAX_OFFSET - out[at].count + 2)
    return out, rac


def _mut_jmp_infinite(instrs, rac, rng):
    at = rng.randrange(len(instrs))
    return (list(instrs[:at])
            + [OuInstruction(OuOp.JMP, imm=at)]
            + list(instrs[at:])), rac


def _mut_jmp_past_terminator(instrs, rac, rng):
    # jump over eop onto a trailing nop: runs off the end of the store
    out = list(instrs) + [OuInstruction(OuOp.NOP)]
    return [OuInstruction(OuOp.JMP, imm=len(out))] + out, rac


def _mut_early_drain(instrs, rac, rng):
    # move the first mvfc before the first mvtc: totals still balance
    drain = _first_index(instrs, FROM_COPROCESSOR_OPS)
    out = list(instrs)
    moved = out.pop(drain)
    return [moved] + out, rac


def _mut_ofr_overflow(instrs, rac, rng):
    trips = rng.randint(260, 400)   # 64-word stride walks past 16384
    program = (OuProgram()
               .clrofr().loop(trips).mvtcx(1, 0, 64).addofr(64).endl()
               .execs().eop())
    return program.instructions, ScaleRac(block_size=64)


MUTATIONS = {
    "unterminated": _mut_unterminated,
    "unconfigured-bank": _mut_unconfigured_bank,
    "bad-fifo": _mut_bad_fifo,
    "starve": _mut_starve,
    "overdrain-total": _mut_overdrain_total,
    "deadlock-volume": _mut_deadlock_volume,
    "window-overflow": _mut_window_overflow,
    "jmp-infinite": _mut_jmp_infinite,
    "jmp-past-terminator": _mut_jmp_past_terminator,
    "early-drain": _mut_early_drain,
    "ofr-overflow": _mut_ofr_overflow,
}

SEEDS_PER_CATEGORY = 5


def _mutant_corpus():
    for cat_index, (category, mutate) in enumerate(MUTATIONS.items()):
        for seed in range(SEEDS_PER_CATEGORY):
            rng = random.Random(1000 * cat_index + seed)
            base, rac = _base_clean(rng)
            assert verify_program(
                base, rac=rac, configured_banks={1, 2}).clean
            yield category, mutate(base, rac, rng)


def test_mutants_are_flagged_and_strictly_more_than_legacy():
    total = flagged = 0
    new_catches: Dict[str, int] = {}
    legacy_catches: Dict[str, int] = {}
    for category, (instrs, rac) in _mutant_corpus():
        total += 1
        report = verify_program(instrs, rac=rac, configured_banks={1, 2})
        if not report.clean:
            flagged += 1
            new_catches[category] = new_catches.get(category, 0) + 1
        if legacy_has_errors(instrs, rac=rac, configured_banks={1, 2}):
            legacy_catches[category] = legacy_catches.get(category, 0) + 1
    assert flagged >= total * 0.9, (
        f"verifier flagged only {flagged}/{total} known-bad mutants")
    # every category the old scan caught must still be caught
    for category, count in legacy_catches.items():
        assert new_catches.get(category, 0) >= count, (
            f"regression: legacy caught more '{category}' mutants")
    newly_caught = [
        category for category in MUTATIONS
        if new_catches.get(category, 0) == SEEDS_PER_CATEGORY
        and legacy_catches.get(category, 0) == 0
    ]
    assert len(newly_caught) >= 3, (
        f"expected >=3 categories the linear scan misses, got "
        f"{newly_caught}")


def test_legacy_blind_spots_are_the_documented_ones():
    """Pin the exact categories: the scan's linearity is the blind spot."""
    blind = set()
    for category, (instrs, rac) in _mutant_corpus():
        if category in blind:
            continue
        if (not legacy_has_errors(instrs, rac=rac, configured_banks={1, 2})
                and not verify_program(
                    instrs, rac=rac, configured_banks={1, 2}).clean):
            blind.add(category)
    assert {"window-overflow", "jmp-infinite", "jmp-past-terminator",
            "early-drain", "ofr-overflow"} <= blind


# ---------------------------------------------------------------------------
# every in-tree firmware generator produces clean microcode
# ---------------------------------------------------------------------------

CANONICAL = [
    ("figure4/dft", figure4_program(256), DFTRac(n_points=256)),
    ("figure4-looped/dft", figure4_looped_program(256), DFTRac(n_points=256)),
    ("idct-blocks", idct_program(n_blocks=3), IDCTRac()),
]


@pytest.mark.parametrize(
    "name,program,rac", CANONICAL, ids=[c[0] for c in CANONICAL])
def test_canonical_programs_are_clean(name, program, rac):
    report = program.verify(rac=rac, configured_banks={1, 2})
    assert report.clean, f"{name}:\n{report.render()}"


PLANNED_RACS = [
    DFTRac(n_points=256),
    IDCTRac(),
    FIRRac(block_size=128, n_taps=8),
    MatMulRac(n=8),
    ScaleRac(block_size=16),
    PassthroughRac(block_size=16),
]


@pytest.mark.parametrize(
    "rac", PLANNED_RACS, ids=[type(r).__name__ for r in PLANNED_RACS])
def test_planned_firmware_is_clean_and_reference_safe(rac):
    plan = plan_streaming_run(rac, operations=2)
    report = plan.program.verify(
        rac=rac, configured_banks=set(plan.banks_used))
    assert report.clean
    executed = _run_reference(
        plan.program.instructions, rac, max_steps=report.max_steps)
    assert executed <= report.max_steps
