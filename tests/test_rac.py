"""Tests for the RAC framework and the concrete accelerators."""

import pytest

from repro.rac.base import RACPortSpec, StreamingRAC
from repro.rac.dft import DFTRac, dft_latency
from repro.rac.fifo import FIFO
from repro.rac.fir import FIRRac, fir_q15
from repro.rac.hls import HLSInterfaceSpec, wrap_function
from repro.rac.idct import IDCT_PIPELINE_LATENCY, IDCTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ConfigurationError, RACError
from repro.sim.kernel import Simulator
from repro.utils import fixedpoint as fp


def harness(rac):
    """Wire a RAC to fresh FIFOs under a simulator."""
    sim = Simulator()
    fifos_in = [
        FIFO(f"in{i}", 32, w, depth=rac.ports.fifo_depth)
        for i, w in enumerate(rac.ports.input_widths)
    ]
    fifos_out = [
        FIFO(f"out{i}", w, 32, depth=rac.ports.fifo_depth)
        for i, w in enumerate(rac.ports.output_widths)
    ]
    rac.bind(fifos_in, fifos_out)
    for fifo in fifos_in + fifos_out:
        sim.add(fifo)
    sim.add(rac)
    return sim, fifos_in, fifos_out


def run_operation(rac, inputs_per_port, start=True, max_cycles=100_000):
    sim, fifos_in, fifos_out = harness(rac)
    for fifo, words in zip(fifos_in, inputs_per_port):
        for word in words:
            sim.run_until(lambda: fifo.can_push(), max_cycles=1000)
            fifo.push(word)
            sim.step()
    if start:
        rac.start_op()
    sim.run_until(lambda: rac.end_op, max_cycles=max_cycles)
    outputs = []
    for fifo in fifos_out:
        sim.step(2)  # let staged words commit
        outputs.append(fifo.drain())
    return sim, outputs


def test_passthrough_round_trip():
    rac = PassthroughRac(block_size=8)
    _, outputs = run_operation(rac, [[10, 20, 30, 40, 50, 60, 70, 80]])
    assert outputs[0] == [10, 20, 30, 40, 50, 60, 70, 80]
    assert rac.ops_completed == 1


def test_scale_rac_signed_math():
    rac = ScaleRac(block_size=4, factor=3, shift=1)
    negative_two = (-2) & 0xFFFFFFFF
    _, outputs = run_operation(rac, [[2, negative_two, 0, 10]])
    assert outputs[0] == [3, (-3) & 0xFFFFFFFF, 0, 15]


def test_autostart_consumes_before_start_op():
    rac = PassthroughRac(block_size=4)
    sim, fifos_in, fifos_out = harness(rac)
    fifos_in[0].push_many([1, 2, 3, 4])
    # never call start_op: autostart should still process the block
    sim.run_until(lambda: rac.end_op, max_cycles=1000)
    sim.step(2)
    assert fifos_out[0].drain() == [1, 2, 3, 4]


def test_non_autostart_waits_for_start():
    rac = PassthroughRac(block_size=4, autostart=False)
    sim, fifos_in, fifos_out = harness(rac)
    fifos_in[0].push_many([1, 2, 3, 4])
    sim.step(50)
    assert not rac.end_op
    assert fifos_in[0].occupancy == 4  # untouched
    rac.start_op()
    sim.run_until(lambda: rac.end_op, max_cycles=1000)


def test_compute_latency_delays_output():
    fast = PassthroughRac("fast", block_size=4, compute_latency=1)
    slow = PassthroughRac("slow", block_size=4, compute_latency=100)
    sim_f, _ = run_operation(fast, [[1, 2, 3, 4]])
    sim_s, _ = run_operation(slow, [[1, 2, 3, 4]])
    assert sim_s.cycle - sim_f.cycle == pytest.approx(99, abs=2)


def test_multiple_operations_sequentially():
    rac = PassthroughRac(block_size=2)
    sim, fifos_in, fifos_out = harness(rac)
    for round_no in range(3):
        fifos_in[0].push_many([round_no, round_no + 10])
        rac.start_op()
        sim.run_until(lambda: rac.end_op, max_cycles=1000)
        sim.step(2)
        assert fifos_out[0].drain() == [round_no, round_no + 10]
    assert rac.ops_completed == 3


def test_emit_respects_fifo_backpressure():
    rac = PassthroughRac(block_size=32, fifo_depth=8)
    sim, fifos_in, fifos_out = harness(rac)
    # feed 32 words through an 8-deep fabric; drain output slowly
    fed = 0
    drained = []
    for _ in range(3000):
        if fed < 32 and fifos_in[0].can_push():
            fifos_in[0].push(fed)
            fed += 1
        if fifos_out[0].can_pop():
            drained.append(fifos_out[0].pop())
        sim.step()
        if len(drained) == 32:
            break
    assert drained == list(range(32))


def test_bind_validates_port_counts():
    rac = PassthroughRac(block_size=4)
    with pytest.raises(ConfigurationError):
        rac.bind([], [FIFO("o", 32, 32)])
    with pytest.raises(ConfigurationError):
        rac.bind([FIFO("a", 32, 32), FIFO("b", 32, 32)], [FIFO("o", 32, 32)])


def test_streaming_rac_validates_compute_fn():
    bad = StreamingRAC(
        "bad", [2], [2], compute_fn=lambda c: [[1, 2, 3]],
    )
    sim, fifos_in, _ = harness(bad)
    fifos_in[0].push_many([1, 2])
    with pytest.raises(RACError):
        sim.step(20)


def test_streaming_rac_parameter_validation():
    with pytest.raises(ConfigurationError):
        StreamingRAC("x", [1], [1], lambda c: c, compute_latency=-1)
    with pytest.raises(ConfigurationError):
        StreamingRAC("x", [1], [1], lambda c: c, input_rate=0)
    with pytest.raises(ConfigurationError):
        StreamingRAC("x", [1], [1], lambda c: c,
                     ports=RACPortSpec([32, 32], [32]))


# ---------------------------------------------------------------------------
# IDCT RAC
# ---------------------------------------------------------------------------

def test_idct_rac_matches_golden(coef_block):
    rac = IDCTRac(fifo_depth=128)
    words = fp.block_to_words(coef_block)
    _, outputs = run_operation(rac, [words])
    assert fp.words_to_block(outputs[0]) == fp.idct2_q15(coef_block)


def test_idct_latency_is_table_one_value():
    assert IDCT_PIPELINE_LATENCY == 18
    assert IDCTRac().compute_latency == 18


# ---------------------------------------------------------------------------
# DFT RAC
# ---------------------------------------------------------------------------

def test_dft_latency_calibration():
    # the paper's measured 2485 cycles at N=256
    assert dft_latency(256) == 2485
    assert dft_latency(8) == 3 * (8 + 54) + 5


def test_dft_rac_matches_golden(q15_signal):
    n = 16
    re, im = q15_signal(n)
    rac = DFTRac(n_points=n, fifo_depth=64)
    _, outputs = run_operation(rac, [fp.interleave_complex(re, im)])
    out_re, out_im = fp.deinterleave_complex(outputs[0])
    assert (out_re, out_im) == fp.fft_q15(re, im)


def test_dft_rac_word_volume_matches_paper():
    rac = DFTRac(n_points=256)
    # 2 words per complex point, in and out: 1024 total (in-text claim)
    assert rac.items_in[0] + rac.items_out[0] == 1024


def test_dft_rac_rejects_bad_sizes():
    with pytest.raises(ConfigurationError):
        DFTRac(n_points=100)
    with pytest.raises(ConfigurationError):
        DFTRac(n_points=4)


# ---------------------------------------------------------------------------
# FIR RAC
# ---------------------------------------------------------------------------

def test_fir_q15_golden_impulse():
    taps = [fp.float_to_q15(0.5), fp.float_to_q15(0.25)]
    samples = [fp.Q15_MAX, 0, 0, 0]
    out = fir_q15(samples, taps)
    assert abs(out[0] - fp.Q15_MAX // 2) <= 1
    assert abs(out[1] - fp.Q15_MAX // 4) <= 1
    assert out[2] == 0 and out[3] == 0


def test_fir_rac_uses_config_fifo(q15_signal):
    rac = FIRRac(block_size=16, n_taps=4, fifo_depth=64)
    re, _ = q15_signal(16)
    taps = [8192, 4096, 2048, 1024]
    data_words = [v & 0xFFFFFFFF for v in re]
    tap_words = [v & 0xFFFFFFFF for v in taps]
    _, outputs = run_operation(rac, [data_words, tap_words])
    got = [w - (1 << 32) if w & (1 << 31) else w for w in outputs[0]]
    assert got == fir_q15(re, taps)


def test_fir_rac_parameter_validation():
    with pytest.raises(ConfigurationError):
        FIRRac(block_size=0)
    with pytest.raises(ConfigurationError):
        FIRRac(n_taps=0)


# ---------------------------------------------------------------------------
# HLS wrapper
# ---------------------------------------------------------------------------

def test_hls_wrapper_generates_working_rac():
    spec = HLSInterfaceSpec(items_in=[4], items_out=[4], pipeline_depth=7)
    rac = wrap_function(
        "double", lambda c: [[(2 * w) & 0xFFFFFFFF for w in c[0]]], spec
    )
    _, outputs = run_operation(rac, [[1, 2, 3, 4]])
    assert outputs[0] == [2, 4, 6, 8]
    assert rac.kind == "hls:double"


def test_hls_initiation_interval_slows_compute():
    fn = lambda c: [list(c[0])]
    fast = wrap_function("f", fn, HLSInterfaceSpec([8], [8], initiation_interval=1))
    slow = wrap_function("s", fn, HLSInterfaceSpec([8], [8], initiation_interval=4))
    assert slow.compute_latency - fast.compute_latency == 3 * 8


def test_hls_spec_validation():
    with pytest.raises(ConfigurationError):
        wrap_function("x", lambda c: c, HLSInterfaceSpec([], [1]))
    with pytest.raises(ConfigurationError):
        wrap_function("x", lambda c: c,
                      HLSInterfaceSpec([1], [1], initiation_interval=0))
    with pytest.raises(ConfigurationError):
        wrap_function("x", lambda c: c,
                      HLSInterfaceSpec([1], [0]))
