"""Tests for the static microcode checker (legacy compat shim).

The shim is deprecated (see test_lint_program_is_deprecated); every
other test here exercises it on purpose, so the warning is silenced
file-wide.
"""

import pytest

from repro.core.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    has_errors,
    lint_program,
    render_diagnostics,
)
from repro.core.program import OuProgram, figure4_looped_program, figure4_program
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.scale import PassthroughRac

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_lint_program_is_deprecated():
    program = OuProgram().eop()
    with pytest.warns(DeprecationWarning, match="repro.verify"):
        lint_program(program.instructions)


def errors(diags):
    return [d for d in diags if d.severity == SEVERITY_ERROR]


def warnings(diags):
    return [d for d in diags if d.severity == SEVERITY_WARNING]


def test_figure4_is_clean_against_its_rac():
    program = figure4_program(256)
    diags = lint_program(program.instructions, rac=DFTRac(256),
                         configured_banks={1, 2})
    assert not diags, render_diagnostics(diags)


def test_looped_figure4_is_clean():
    program = figure4_looped_program(256)
    diags = lint_program(program.instructions, rac=DFTRac(256),
                         configured_banks={1, 2})
    assert not errors(diags), render_diagnostics(diags)


def test_empty_program_is_an_error():
    diags = lint_program([])
    assert has_errors(diags)


def test_missing_terminator_detected():
    program = OuProgram().stream_to(1, 16).execs().stream_from(2, 16)
    diags = lint_program(program.instructions)
    assert any("eop" in d.message for d in errors(diags))


def test_bad_fifo_index_detected():
    program = (OuProgram().mvtc(1, 0, 16, fifo=2).execs()
               .mvfc(2, 0, 16).eop())
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16))
    assert any("FIFO2" in d.message for d in errors(diags))


def test_unconfigured_bank_detected():
    program = (OuProgram().stream_to(5, 16).execs()
               .stream_from(2, 16).eop())
    diags = lint_program(program.instructions, configured_banks={1, 2})
    assert any("bank 5" in d.message for d in errors(diags))


def test_bank_zero_implicitly_allowed():
    program = OuProgram().stream_to(0, 16).eop()
    diags = lint_program(program.instructions, configured_banks={1})
    assert not errors(diags)


def test_partial_last_operation_detected():
    # the RAC eats 16-word blocks; 24 words starve the second op
    program = (OuProgram().stream_to(1, 24).execs()
               .stream_from(2, 16).eop())
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16),
                         configured_banks={1, 2})
    assert any("starve" in d.message for d in errors(diags))


def test_overdrain_detected():
    program = (OuProgram().stream_to(1, 16).execs()
               .stream_from(2, 32).eop())
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16))
    assert any("hang" in d.message for d in errors(diags))


def test_residue_is_a_warning():
    program = (OuProgram().stream_to(1, 16).execs()
               .stream_from(2, 8).eop())
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16))
    assert not errors(diags)
    assert any("residue" in d.message for d in warnings(diags))


def test_loop_balance_checked():
    unbalanced = OuProgram().loop(4).mvtc(1, 0, 4).eop()
    diags = lint_program(unbalanced.instructions)
    assert any("never closed" in d.message for d in errors(diags))
    orphan = OuProgram().endl().eop()
    diags = lint_program(orphan.instructions)
    assert any("endl" in d.message for d in errors(diags))
    nested = (OuProgram().loop(2).loop(2).nop().endl().endl().eop())
    diags = lint_program(nested.instructions)
    assert any("nested" in d.message for d in errors(diags))


def test_loop_multiplies_transfer_volume():
    # loop 4 x mvtc 8 words = 32 words = 2 blocks of 16: clean
    program = (OuProgram()
               .clrofr().loop(4).mvtcx(1, 0, 8).addofr(8).endl()
               .execs()
               .clrofr().loop(2).mvfcx(2, 0, 16).addofr(16).endl()
               .eop())
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16, fifo_depth=64))
    assert not errors(diags), render_diagnostics(diags)


def test_jmp_target_out_of_range():
    program = OuProgram().jmp(9).eop()
    diags = lint_program(program.instructions)
    assert any("jmp target" in d.message for d in errors(diags))


def test_deadlock_prediction_without_autostart():
    rac = PassthroughRac(block_size=128, fifo_depth=64, autostart=False)
    program = (OuProgram().stream_to(1, 128).exec_()
               .stream_from(2, 128).eop())
    diags = lint_program(program.instructions, rac=rac)
    assert any("deadlock" in d.message for d in errors(diags))


def test_indexed_transfer_without_ofr_setup_warns():
    program = OuProgram().mvtcx(1, 0, 16).execs().mvfc(2, 0, 16).eop()
    diags = lint_program(program.instructions,
                         rac=PassthroughRac(block_size=16))
    assert any("OFR" in d.message for d in warnings(diags))


def test_multi_port_rac_volumes():
    rac = FIRRac(block_size=32, n_taps=4)
    clean = (OuProgram()
             .stream_to(3, 4, fifo=1)
             .stream_to(1, 32, fifo=0)
             .execs()
             .stream_from(2, 32)
             .eop())
    diags = lint_program(clean.instructions, rac=rac,
                         configured_banks={1, 2, 3})
    assert not errors(diags), render_diagnostics(diags)


def test_render_clean():
    assert "clean" in render_diagnostics([])


def test_transfer_past_bank_window_detected():
    """Regression: offset+count beyond the 14-bit bank window.

    The old linear scan never checked transfer bounds, so a burst
    wrapping past the 16384-word window sailed through lint and
    faulted on hardware.  The check must surface through the legacy
    API, anchored to the offending instruction.
    """
    from repro.core.isa import MAX_OFFSET

    program = (OuProgram().mvtc(1, MAX_OFFSET - 3, 16).execs()
               .mvfc(2, 0, 16).eop())
    diags = lint_program(program.instructions)
    offending = [d for d in errors(diags) if "window" in d.message]
    assert offending, render_diagnostics(diags)
    assert offending[0].index == 0
    # boundary: a burst ending exactly at the window's last word is legal
    ok = (OuProgram().mvtc(1, MAX_OFFSET - 15, 16).execs()
          .mvfc(2, 0, 16).eop())
    assert not errors(lint_program(ok.instructions))


def test_indexed_transfer_past_window_through_loop_detected():
    """The OFR walk inside a hardware loop is bounded, too."""
    program = (OuProgram()
               .clrofr().loop(300).mvtcx(1, 0, 64).addofr(64).endl()
               .execs().eop())
    diags = lint_program(program.instructions)
    assert any("window" in d.message for d in errors(diags))
