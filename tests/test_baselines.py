"""Tests for the Section II baseline integration styles."""

import pytest

from repro.baselines.dma_slave import (
    BurstSlaveAccelerator,
    DMAHarness,
    IN_WINDOW,
    OUT_WINDOW,
    SLAVE_WINDOW_BYTES,
)
from repro.baselines.molen import molen_run_estimate
from repro.baselines.pio_slave import (
    CTRL_DONE,
    CTRL_START,
    PIOHarness,
    REG_CTRL,
    REG_DATA_IN,
    REG_DATA_OUT,
    SlaveAccelerator,
)
from repro.bus.bus import SystemBus
from repro.core.program import OuProgram
from repro.mem.dma import DMAEngine
from repro.mem.memory import Memory
from repro.sim.errors import DriverError
from repro.sim.kernel import Simulator
from repro.sw.baremetal import BaremetalRuntime
from repro.rac.scale import PassthroughRac
from repro.system import RAM_BASE, SoC

ACCEL_BASE = 0x9000_0000
DMA_BASE = 0x9100_0000


def make_pio_system(items=16, latency=10):
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    accel = SlaveAccelerator(
        "accel", compute_fn=lambda ws: [w ^ 0xFF for w in ws],
        items_in=items, items_out=items, compute_latency=latency,
    )
    bus.attach_slave("accel", ACCEL_BASE, 64, accel)
    sim.add(accel)
    return sim, bus, accel


def test_pio_slave_roundtrip():
    sim, bus, accel = make_pio_system()
    harness = PIOHarness(sim, bus, ACCEL_BASE)
    inputs = list(range(16))
    outputs, cycles = harness.run(inputs, 16)
    assert outputs == [v ^ 0xFF for v in inputs]
    assert cycles > 0


def test_pio_start_without_data_faults():
    sim, bus, accel = make_pio_system(items=4)
    accel.write_word(REG_DATA_IN, 1)
    with pytest.raises(DriverError):
        accel.write_word(REG_CTRL, CTRL_START)


def test_pio_cost_scales_per_word():
    sim, bus, accel = make_pio_system(items=8)
    harness = PIOHarness(sim, bus, ACCEL_BASE)
    _, small = harness.run(list(range(8)), 8)
    sim2, bus2, accel2 = make_pio_system(items=32)
    harness2 = PIOHarness(sim2, bus2, ACCEL_BASE)
    _, big = harness2.run(list(range(32)), 32)
    # 4x the words => roughly 4x the transfer cost
    assert big > 2.5 * small


def test_pio_much_slower_than_ouessant_per_word():
    # Ouessant moves data at ~1.5 cycles/word; PIO pays a full bus
    # transaction (and CPU attention) per word.
    sim, bus, accel = make_pio_system(items=64, latency=1)
    harness = PIOHarness(sim, bus, ACCEL_BASE)
    _, cycles = harness.run(list(range(64)), 64)
    cycles_per_word = cycles / 128
    assert cycles_per_word > 3.0


def test_slave_accelerator_register_semantics():
    sim, bus, accel = make_pio_system(items=2, latency=3)
    accel.write_word(REG_DATA_IN, 5)
    accel.write_word(REG_DATA_IN, 6)
    accel.write_word(REG_CTRL, CTRL_START)
    sim.step(10)
    assert accel.read_word(REG_CTRL) & CTRL_DONE
    assert accel.read_word(REG_DATA_OUT) == 5 ^ 0xFF
    assert accel.read_word(REG_DATA_OUT) == 6 ^ 0xFF
    assert accel.read_word(REG_DATA_OUT) == 0  # drained
    accel.write_word(REG_CTRL, 0)
    assert accel.read_word(REG_CTRL) == 0


def test_dma_slave_roundtrip():
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    accel = BurstSlaveAccelerator(
        "accel", compute_fn=lambda ws: [(w + 1) & 0xFFFFFFFF for w in ws],
        items_in=32, items_out=32, compute_latency=20,
    )
    bus.attach_slave("accel", ACCEL_BASE, SLAVE_WINDOW_BYTES, accel)
    sim.add(accel)
    dma = DMAEngine("dma", bus=bus, buffer_words=16)
    bus.attach_slave("dma", DMA_BASE, 64, dma)
    sim.add(dma)

    mem.load_words(0x100, list(range(32)))
    harness = DMAHarness(sim, bus, dma, DMA_BASE, ACCEL_BASE)
    cycles = harness.run(0x100, 0x800, 32, 32)
    assert mem.dump_words(0x800, 32) == [v + 1 for v in range(32)]
    assert cycles > 0


def test_integration_style_ordering():
    """PIO > DMA-peripheral > Ouessant in per-operation cycles."""
    words = 64

    # PIO
    sim, bus, accel = make_pio_system(items=words, latency=30)
    _, pio_cycles = PIOHarness(sim, bus, ACCEL_BASE).run(
        list(range(words)), words)

    # DMA peripheral
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    accel = BurstSlaveAccelerator(
        "accel", compute_fn=lambda ws: list(ws),
        items_in=words, items_out=words, compute_latency=30,
    )
    bus.attach_slave("accel", ACCEL_BASE, SLAVE_WINDOW_BYTES, accel)
    sim.add(accel)
    dma = DMAEngine("dma", bus=bus, buffer_words=16)
    bus.attach_slave("dma", DMA_BASE, 64, dma)
    sim.add(dma)
    mem.load_words(0x100, list(range(words)))
    dma_cycles = DMAHarness(sim, bus, dma, DMA_BASE, ACCEL_BASE).run(
        0x100, 0x800, words, words)

    # Ouessant
    soc = SoC(racs=[PassthroughRac(block_size=words, compute_latency=30)])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(RAM_BASE + 0x2000, list(range(words)))
    program = (OuProgram().stream_to(1, words).execs()
               .stream_from(2, words).eop())
    result = runtime.run(program.words(), {
        0: RAM_BASE + 0x1000, 1: RAM_BASE + 0x2000, 2: RAM_BASE + 0x3000,
    })
    ouessant_cycles = result.total_cycles

    assert pio_cycles > dma_cycles > ouessant_cycles


def test_molen_estimate_structure():
    estimate = molen_run_estimate(512, 512, 2485)
    assert estimate.transfer_cycles == 1024
    assert estimate.total_cycles == 1024 + 2485 + estimate.start_overhead
    assert estimate.cpu_blocked_cycles == estimate.total_cycles
    assert estimate.one_accelerator_per_core
    assert not estimate.hardcore_compatible
    assert "Zynq" in estimate.constraints


def test_molen_fast_but_blocking_tradeoff():
    # Molen has lower latency than Ouessant but blocks the CPU.
    molen = molen_run_estimate(1024, 1024, 2485)
    soc = SoC(racs=[PassthroughRac(block_size=1024, fifo_depth=128,
                                   compute_latency=2485)])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(RAM_BASE + 0x2000, list(range(1024)))
    program = (OuProgram().stream_to(1, 1024, chunk=64).execs()
               .stream_from(2, 1024, chunk=64).eop())
    result = runtime.run(program.words(), {
        0: RAM_BASE + 0x1000, 1: RAM_BASE + 0x2000, 2: RAM_BASE + 0x8000,
    })
    assert molen.total_cycles < result.total_cycles      # Molen is faster...
    assert molen.cpu_blocked_cycles > result.config_cycles  # ...but blocks CPU


def test_molen_estimate_validation():
    with pytest.raises(ValueError):
        molen_run_estimate(-1, 0, 0)
