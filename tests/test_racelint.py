"""racelint: cross-OCP concurrency-hazard analysis (OU2xx).

Covers the whole diagnostic surface (OU200-OU205), the
may-happen-in-parallel relation (chains, singleton slots, capability
routing), the scheduler's validate-on-submit modes, the JobClient
precheck, capability-table edge cases and the ``repro racecheck`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.core.isa import OuInstruction, OuOp
from repro.core.program import OuProgram
from repro.racelint import RaceChecker, StreamModel, check_stream
from repro.rac import PassthroughRac, ScaleRac
from repro.sched import (
    CapabilityTable,
    Job,
    RaceHazardError,
    ThroughputScheduler,
)
from repro.sim.errors import ConfigurationError
from repro.sw.jobs import JobClient
from repro.system import RAM_BASE, RAM_SIZE, build_mpsoc


def _jobs(n, kind="passthrough", size=8, chain=None):
    return [Job(f"j{i}", kind, list(range(size)), chain=chain)
            for i in range(n)]


def _two_passthrough():
    return [PassthroughRac(block_size=8), PassthroughRac(block_size=8)]


# -- MHP footprint overlaps (OU200 / OU201) -------------------------------

def test_shared_arenas_flag_write_write_and_read_write():
    report = check_stream(_jobs(2), racs=_two_passthrough(),
                          arena_stride=0)
    codes = {f.code for f in report.findings}
    assert "OU200" in codes
    assert "OU201" in codes
    assert not report.clean
    # findings name both jobs
    assert any(f.where == "jobs j0/j1" for f in report.findings)


def test_default_disjoint_arenas_are_clean():
    report = check_stream(_jobs(4), racs=_two_passthrough())
    assert report.clean, report.render()


def test_single_ocp_serializes_everything():
    # both jobs can only ever sit on OCP 0: the queue orders them,
    # identical footprints notwithstanding
    report = check_stream(_jobs(2), racs=[PassthroughRac(block_size=8)],
                          arena_stride=0)
    assert report.clean, report.render()


def test_same_chain_is_ordered_even_on_shared_arenas():
    jobs = _jobs(2, chain="pipe")
    report = check_stream(jobs, racs=_two_passthrough(),
                          arena_stride=0)
    assert report.clean, report.render()


def test_different_chains_still_race():
    jobs = [Job("a", "passthrough", list(range(8)), chain="left"),
            Job("b", "passthrough", list(range(8)), chain="right")]
    report = check_stream(jobs, racs=_two_passthrough(),
                          arena_stride=0)
    assert not report.clean


def test_cross_kind_overlap_detected():
    # different kinds always land on different OCPs; overlapping
    # arenas make that a hazard
    racs = [PassthroughRac(block_size=8), ScaleRac(block_size=8)]
    jobs = [Job("p", "passthrough", list(range(8))),
            Job("s", "scale", list(range(8)))]
    report = check_stream(jobs, racs=racs, arena_stride=0)
    assert any(f.code == "OU200" for f in report.findings)


def test_capability_subset_routing_narrows_the_relation():
    # three OCPs but both kinds pinned to OCP 0 only: serialized
    racs = [PassthroughRac(block_size=8), PassthroughRac(block_size=8),
            PassthroughRac(block_size=8)]
    capability = CapabilityTable({"passthrough": [0]})
    report = check_stream(_jobs(3), racs=racs, capability=capability,
                          arena_stride=0)
    assert report.clean, report.render()


# -- DMA aliasing (OU202) -------------------------------------------------

def test_armed_dma_window_aliasing_arena_is_flagged():
    from repro.mem.dma import REG_COUNT, REG_DST, REG_SRC

    soc = build_mpsoc(_two_passthrough(), with_dma=True)
    sched = ThroughputScheduler(soc)
    # arm a DMA copy whose destination lands inside slot 0's arenas
    soc.dma.write_word(REG_SRC, RAM_BASE)
    soc.dma.write_word(REG_DST, sched.slots[0].in_base)
    soc.dma.write_word(REG_COUNT, 64)
    report = check_stream(_jobs(1), scheduler=sched)
    assert any(f.code == "OU202" for f in report.findings)


def test_idle_dma_is_not_flagged():
    soc = build_mpsoc(_two_passthrough(), with_dma=True)
    sched = ThroughputScheduler(soc)
    report = check_stream(_jobs(2), scheduler=sched)
    assert report.clean, report.render()


# -- unbounded footprints (OU203) -----------------------------------------

def test_unbounded_program_footprint_is_refused():
    def runaway(job, chunk):
        return OuProgram.from_instructions([
            OuInstruction(OuOp.MVTC, bank=1, offset=0, count=job.size),
            OuInstruction(OuOp.JMP, imm=0),
        ])

    report = check_stream(_jobs(1), racs=_two_passthrough(),
                          program_factory=runaway)
    assert [f.code for f in report.findings] == ["OU203"]
    assert report.findings[0].where == "job j0"


def test_unconfigured_bank_is_refused():
    def bank5(job, chunk):
        return OuProgram.from_instructions([
            OuInstruction(OuOp.MVTC, bank=5, offset=0, count=job.size),
            OuInstruction(OuOp.EOP),
        ])

    report = check_stream(_jobs(1), racs=_two_passthrough(),
                          program_factory=bank5)
    assert [f.code for f in report.findings] == ["OU203"]
    assert "bank 5" in report.findings[0].message


# -- arenas outside RAM (OU204) -------------------------------------------

def test_arena_outside_ram_is_flagged():
    report = check_stream(
        _jobs(1), racs=_two_passthrough(),
        arena_base=RAM_BASE + RAM_SIZE,
    )
    assert any(f.code == "OU204" for f in report.findings)


# -- batch widening (OU205) -----------------------------------------------

def test_batch_concatenation_widening_warns():
    racs = _two_passthrough()
    solo = check_stream(_jobs(2), racs=racs, arena_stride=0x40,
                        batch_jobs=1)
    assert solo.clean, solo.render()
    widened = check_stream(_jobs(2), racs=racs, arena_stride=0x40,
                           batch_jobs=2)
    codes = {f.code for f in widened.findings}
    assert "OU205" in codes
    assert "OU200" in codes or "OU201" in codes


def test_already_racy_streams_do_not_get_the_widening_warning():
    report = check_stream(_jobs(2), racs=_two_passthrough(),
                          arena_stride=0, batch_jobs=2)
    assert not any(f.code == "OU205" for f in report.findings)


# -- report plumbing -------------------------------------------------------

def test_suppression_and_json_match_soclint_conventions():
    report = check_stream(_jobs(2), racs=_two_passthrough(),
                          arena_stride=0,
                          suppress=("OU200", "OU201"))
    assert report.clean
    assert {f.code for f in report.suppressed} == {"OU200", "OU201"}
    doc = json.loads(report.render_json())
    assert doc["clean"] is True
    assert doc["errors"] == 0
    assert {f["code"] for f in doc["suppressed"]} == {"OU200", "OU201"}


def test_check_stream_needs_a_system():
    with pytest.raises(ValueError):
        check_stream(_jobs(1))


def test_unknown_kind_raises_configuration_error():
    with pytest.raises(ConfigurationError):
        check_stream([Job("x", "dft", list(range(8)))],
                     racs=_two_passthrough())


def test_model_from_scheduler_matches_from_plan():
    racs = _two_passthrough()
    soc = build_mpsoc(racs)
    sched = ThroughputScheduler(soc, batch_jobs=2)
    live = StreamModel.from_scheduler(sched)
    planned = StreamModel.from_plan(racs, batch_jobs=2)
    assert sorted(live.slots) == sorted(planned.slots)
    for index in live.slots:
        assert live.slots[index] == planned.slots[index]


# -- scheduler validate-on-submit -----------------------------------------

def test_racecheck_submit_mode_rejects_racy_submission():
    soc = build_mpsoc(_two_passthrough())
    sched = ThroughputScheduler(soc, arena_stride=0, racecheck="submit")
    assert sched.submit(Job("a", "passthrough", list(range(8))))
    with pytest.raises(RaceHazardError) as excinfo:
        sched.submit(Job("b", "passthrough", list(range(8))))
    assert "OU200" in str(excinfo.value)
    assert not sched.racecheck_report.clean


def test_racecheck_true_is_submit_mode():
    soc = build_mpsoc(_two_passthrough())
    sched = ThroughputScheduler(soc, arena_stride=0, racecheck=True)
    assert sched.racecheck == "submit"


def test_racecheck_warn_mode_records_but_accepts():
    soc = build_mpsoc(_two_passthrough())
    sched = ThroughputScheduler(soc, arena_stride=0, racecheck="warn")
    assert sched.submit(Job("a", "passthrough", list(range(8))))
    assert sched.submit(Job("b", "passthrough", list(range(8))))
    assert not sched.racecheck_report.clean


def test_racecheck_off_runs_clean_stream_bit_exact():
    soc = build_mpsoc(_two_passthrough())
    sched = ThroughputScheduler(soc, racecheck="submit")
    client = JobClient(sched)
    for _ in range(4):
        client.submit("passthrough", list(range(8)))
    results = client.drain()
    assert all(r.outputs == r.job.words for r in results)
    assert sched.racecheck_report.clean


def test_racecheck_bad_mode_rejected():
    soc = build_mpsoc(_two_passthrough())
    with pytest.raises(ConfigurationError):
        ThroughputScheduler(soc, racecheck="audit")


def test_jobclient_precheck_dry_runs_without_submitting():
    soc = build_mpsoc(_two_passthrough())
    sched = ThroughputScheduler(soc, arena_stride=0)
    client = JobClient(sched)
    findings = client.precheck("passthrough", list(range(8)))
    assert findings == []  # nothing pending yet
    client.submit("passthrough", list(range(8)))
    findings = client.precheck("passthrough", list(range(8)))
    assert any(f.code in ("OU200", "OU201") for f in findings)
    assert not client.racecheck_report.clean
    # the precheck did not consume the id or enqueue anything
    assert sched.submitted == 1


# -- capability-table edge cases ------------------------------------------

def test_empty_capability_table_rejected():
    with pytest.raises(ConfigurationError):
        CapabilityTable({})


def test_kind_with_no_ocps_rejected():
    with pytest.raises(ConfigurationError):
        CapabilityTable({"dft": []})


def test_duplicate_ocp_indices_deduplicate():
    table = CapabilityTable({"dft": [1, 1, 0, 1]})
    assert table.serving("dft") == (1, 0)
    assert table.indices() == (1, 0)


def test_validate_plan_clean_lineup():
    table = CapabilityTable({"passthrough": [0, 1], "scale": [2]})
    report = table.validate_plan(["passthrough", "passthrough", "scale"])
    assert report.clean, report.render()


def test_validate_plan_flags_wrong_kind_and_range():
    table = CapabilityTable({"passthrough": [0, 5], "dft": [1]})
    report = table.validate_plan(["passthrough", "scale"])
    codes = [f.code for f in report.findings]
    assert "OU171" in codes  # index 5 out of range; OCP 1 serves scale
    assert "OU170" in codes  # no valid target for 'dft'


def test_from_plan_rejects_out_of_range_routing():
    with pytest.raises(ConfigurationError):
        StreamModel.from_plan(
            [PassthroughRac(block_size=8)],
            capability=CapabilityTable({"passthrough": [0, 3]}),
        )


# -- CLI -------------------------------------------------------------------

def test_cli_racecheck_clean_stream(capsys):
    code = main(["racecheck", "examples/streams/clean_mixed.json"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_racecheck_racy_stream(capsys):
    code = main(["racecheck", "examples/streams/racy_shared_arena.json",
                 "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["clean"] is False
    assert {f["code"] for f in doc["findings"]} >= {"OU200", "OU201"}


def test_cli_racecheck_suppress_to_clean(capsys):
    code = main(["racecheck", "examples/streams/racy_shared_arena.json",
                 "--suppress", "OU200", "OU201"])
    assert code == 0


def test_cli_racecheck_batch_override_finds_widening(tmp_path, capsys):
    stream = {
        "ocps": ["passthrough:8", "passthrough:8"],
        "arena_stride": "0x40",
        "jobs": [
            {"id": "a", "kind": "passthrough", "size": 8},
            {"id": "b", "kind": "passthrough", "size": 8},
        ],
    }
    path = tmp_path / "stream.json"
    path.write_text(json.dumps(stream))
    assert main(["racecheck", str(path)]) == 0
    capsys.readouterr()
    assert main(["racecheck", str(path), "--batch-jobs", "2",
                 "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert "OU205" in {f["code"] for f in doc["findings"]}


def test_cli_racecheck_usage_errors(tmp_path, capsys):
    assert main(["racecheck", "no_such_stream.json"]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text('{"jobs": []}')
    assert main(["racecheck", str(bad)]) == 2
    unfit = tmp_path / "unfit.json"
    unfit.write_text(json.dumps({
        "ocps": ["passthrough:8"],
        "jobs": [{"id": "x", "kind": "passthrough", "size": 7}],
    }))
    assert main(["racecheck", str(unfit)]) == 2
