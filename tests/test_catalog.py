"""The diagnostics catalog is internally consistent and in sync.

Three invariants the issue tracker made a release gate:

* no duplicate codes in the catalog;
* every catalog entry is documented in docs/ANALYSIS.md;
* every system-level (OU1xx) and concurrency (OU2xx) code is
  reachable: at least one test in the tree asserts on it.
"""

import pathlib
import re

from repro.verify.diagnostics import (
    CATALOG,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    _ENTRIES,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
ANALYSIS_MD = REPO / "docs" / "ANALYSIS.md"
TESTS_DIR = REPO / "tests"


def test_no_duplicate_codes():
    codes = [entry.code for entry in _ENTRIES]
    assert len(codes) == len(set(codes)), sorted(
        c for c in set(codes) if codes.count(c) > 1
    )
    assert len(CATALOG) == len(_ENTRIES)


def test_codes_are_well_formed():
    for entry in _ENTRIES:
        assert re.fullmatch(r"OU\d{3}", entry.code), entry.code
        assert entry.severity in (SEVERITY_ERROR, SEVERITY_WARNING)
        assert entry.title and " " not in entry.title, entry.code
        assert entry.description, entry.code


def test_every_code_documented_in_analysis_md():
    text = ANALYSIS_MD.read_text()
    missing = [e.code for e in _ENTRIES if f"`{e.code}`" not in text]
    assert not missing, f"undocumented in docs/ANALYSIS.md: {missing}"


def test_documented_titles_match_catalog():
    # every catalog row in the doc ("| `OUnnn` | title ...") must
    # carry the exact catalog title
    text = ANALYSIS_MD.read_text()
    rows = re.findall(r"\| `(OU\d{3})` \| ([a-z0-9-]+)", text)
    assert rows, "no catalog tables found in docs/ANALYSIS.md"
    for code, title in rows:
        assert code in CATALOG, f"doc row for unknown code {code}"
        assert CATALOG[code].title == title, (
            f"{code}: doc says {title!r}, catalog says "
            f"{CATALOG[code].title!r}"
        )


def test_documented_severities_match_catalog():
    text = ANALYSIS_MD.read_text()
    for code, title_cell in re.findall(
        r"\| `(OU\d{3})` \| ([^|]+)\|", text
    ):
        is_warning = "[W]" in title_cell
        expected = SEVERITY_WARNING if is_warning else SEVERITY_ERROR
        assert CATALOG[code].severity == expected, (
            f"{code}: doc severity marker disagrees with catalog"
        )


def test_every_system_level_code_reachable_by_a_test():
    corpus = "\n".join(
        path.read_text()
        for path in TESTS_DIR.glob("test_*.py")
        if path.name != pathlib.Path(__file__).name
    )
    unreachable = [
        entry.code
        for entry in _ENTRIES
        if entry.code.startswith(("OU1", "OU2"))
        and entry.code not in corpus
    ]
    assert not unreachable, (
        f"OU1xx/OU2xx codes no test asserts on: {unreachable}"
    )
