"""Controller + coprocessor integration tests (microcode end-to-end)."""

import pytest

from repro.core.program import OuProgram, figure4_looped_program, figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_CTRL, REG_PROG_SIZE, REG_BANK_BASE
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ControllerError, DeadlockError
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000
TAPS = RAM_BASE + 0x4000


def boot(soc, program, banks):
    """Configure registers directly (zero-cycle) and set S."""
    ocp = soc.ocp
    soc.write_ram(PROG, program.words())
    all_banks = {0: PROG}
    all_banks.update(banks)
    for bank, base in all_banks.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return ocp


def run_to_done(soc, max_cycles=200_000):
    return soc.run_until(lambda: soc.ocp.done, max_cycles=max_cycles,
                         what="OCP done")


def simple_program(n=16):
    return (OuProgram().stream_to(1, n).execs()
            .stream_from(2, n).eop())


def test_basic_loopback_program(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(100, 116)))
    boot(soc, simple_program(), {1: IN, 2: OUT})
    run_to_done(soc)
    assert soc.read_ram(OUT, 16) == list(range(100, 116))
    assert soc.ocp.irq.pending  # IE was set


def test_eop_without_ie_does_not_interrupt(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    ocp = soc.ocp
    soc.write_ram(PROG, simple_program().words())
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(simple_program()))
    ocp.interface.write_word(REG_CTRL, CTRL_S)  # no IE
    run_to_done(soc)
    assert not ocp.irq.pending


def test_figure4_dft_end_to_end(q15_signal):
    n = 256
    soc = SoC(racs=[DFTRac(n_points=n)])
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    boot(soc, figure4_program(n), {1: IN, 2: OUT})
    cycles = run_to_done(soc)
    out_re, out_im = fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
    assert (out_re, out_im) == fp.fft_q15(re, im)
    # the paper's baremetal in-text measurement: ~4000 cycles
    assert 3000 <= cycles <= 5000


def test_looped_program_equivalent_to_unrolled(q15_signal):
    n = 64
    re, im = q15_signal(n)
    results = []
    for program in (figure4_program(n), figure4_looped_program(n)):
        soc = SoC(racs=[DFTRac(n_points=n)])
        soc.write_ram(IN, fp.interleave_complex(re, im))
        boot(soc, program, {1: IN, 2: OUT})
        run_to_done(soc)
        results.append(soc.read_ram(OUT, 2 * n))
    assert results[0] == results[1]


def test_exec_blocking_waits_for_end_op():
    # exec (blocking) then mvfc: works even without autostart overlap
    soc = SoC(racs=[PassthroughRac(block_size=8, compute_latency=50)])
    soc.write_ram(IN, list(range(8)))
    program = (OuProgram().stream_to(1, 8).exec_()
               .stream_from(2, 8).eop())
    boot(soc, program, {1: IN, 2: OUT})
    run_to_done(soc)
    assert soc.read_ram(OUT, 8) == list(range(8))


def test_wait_instruction_adds_cycles(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    base_prog = simple_program()
    boot(soc, base_prog, {1: IN, 2: OUT})
    base_cycles = run_to_done(soc)

    soc2 = SoC(racs=[PassthroughRac(block_size=16)])
    soc2.write_ram(IN, list(range(16)))
    slow_prog = (OuProgram().wait(500).stream_to(1, 16).execs()
                 .stream_from(2, 16).eop())
    boot(soc2, slow_prog, {1: IN, 2: OUT})
    slow_cycles = soc2.run_until(lambda: soc2.ocp.done, max_cycles=100_000)
    assert slow_cycles - base_cycles == pytest.approx(500, abs=20)


def test_waitf_output_level(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    program = (OuProgram().stream_to(1, 16).execs()
               .waitf("out", 0, 16)        # wait until all 16 emitted
               .stream_from(2, 16).eop())
    boot(soc, program, {1: IN, 2: OUT})
    run_to_done(soc)
    assert soc.read_ram(OUT, 16) == list(range(16))


def test_irq_instruction_interrupts_without_ending():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    soc.write_ram(IN, list(range(16)))
    program = (OuProgram().irq().wait(50).stream_to(1, 16).execs()
               .stream_from(2, 16).eop())
    ocp = boot(soc, program, {1: IN, 2: OUT})
    soc.run_until(lambda: ocp.irq.pending, max_cycles=1000)
    assert not ocp.done  # interrupted but still running
    ocp.irq.clear()
    run_to_done(soc)


def test_halt_stops_without_done(soc_passthrough):
    soc = soc_passthrough
    program = OuProgram().nop().halt()
    ocp = boot(soc, program, {})
    soc.sim.step(200)
    assert ocp.controller.halted
    assert not ocp.done
    assert not ocp.irq.pending


def test_sync_and_nop_are_neutral(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    program = (OuProgram().nop().sync().stream_to(1, 16).execs()
               .stream_from(2, 16).sync().eop())
    boot(soc, program, {1: IN, 2: OUT})
    run_to_done(soc)
    assert soc.read_ram(OUT, 16) == list(range(16))


def test_offset_register_indexed_transfers():
    soc = SoC(racs=[PassthroughRac(block_size=8)])
    soc.write_ram(IN, list(range(8)))
    # use mvtcx with OFR = 4 to read the upper half first
    program = (
        OuProgram()
        .addofr(4)
        .mvtcx(1, 0, 4)       # words 4..7
        .clrofr()
        .mvtcx(1, 0, 4)       # words 0..3
        .execs()
        .stream_from(2, 8)
        .eop()
    )
    boot(soc, program, {1: IN, 2: OUT})
    run_to_done(soc)
    assert soc.read_ram(OUT, 8) == [4, 5, 6, 7, 0, 1, 2, 3]


def test_jmp_skips_instructions(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    program = (
        OuProgram()
        .jmp(2)                      # skip the wait
        .wait(10_000)
        .stream_to(1, 16).execs().stream_from(2, 16).eop()
    )
    boot(soc, program, {1: IN, 2: OUT})
    cycles = run_to_done(soc, max_cycles=5_000)
    assert cycles < 2_000


def test_nested_loop_rejected(soc_passthrough):
    soc = soc_passthrough
    program = (OuProgram().loop(2).loop(2).nop().endl().endl().eop())
    boot(soc, program, {})
    with pytest.raises(ControllerError):
        soc.sim.step(100)


def test_endl_without_loop_rejected(soc_passthrough):
    soc = soc_passthrough
    program = OuProgram().endl().eop()
    boot(soc, program, {})
    with pytest.raises(ControllerError):
        soc.sim.step(100)


def test_jmp_out_of_program_rejected(soc_passthrough):
    soc = soc_passthrough
    program = OuProgram().jmp(100).eop()
    boot(soc, program, {})
    with pytest.raises(ControllerError):
        soc.sim.step(100)


def test_missing_eop_runs_off_the_end(soc_passthrough):
    soc = soc_passthrough
    program = OuProgram().nop().nop()
    boot(soc, program, {})
    with pytest.raises(ControllerError):
        soc.sim.step(200)


def test_unconfigured_bank_faults(soc_passthrough):
    soc = soc_passthrough
    program = OuProgram().stream_to(5, 4).eop()  # bank 5 never set
    boot(soc, program, {})
    with pytest.raises(ControllerError):
        soc.sim.step(200)


def test_invalid_fifo_index_faults(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, [0] * 4)
    program = OuProgram().mvtc(1, 0, 4, fifo=3).eop()
    boot(soc, program, {1: IN})
    with pytest.raises(ControllerError):
        soc.sim.step(200)


def test_start_with_zero_prog_size_faults(soc_passthrough):
    ocp = soc_passthrough.ocp
    with pytest.raises(ControllerError):
        ocp.interface.write_word(REG_CTRL, CTRL_S)


def test_fifo_overfill_deadlocks_without_autostart():
    # Figure 4 pattern needs the RAC to drain while mvtc streams; with
    # a non-autostart RAC and more data than FIFO depth, the transfer
    # engine stalls forever -- a real hardware property.
    rac = PassthroughRac(block_size=128, fifo_depth=64, autostart=False)
    soc = SoC(racs=[rac])
    soc.write_ram(IN, list(range(128)))
    program = (OuProgram().stream_to(1, 128).exec_()
               .stream_from(2, 128).eop())
    boot(soc, program, {1: IN, 2: OUT})
    with pytest.raises(DeadlockError):
        run_to_done(soc, max_cycles=20_000)


def test_prefetch_faster_than_percycle_fetch(q15_signal):
    n = 64
    re, im = q15_signal(n)
    cycles = {}
    for prefetch in (True, False):
        soc = SoC(racs=[DFTRac(n_points=n)], prefetch=prefetch)
        soc.write_ram(IN, fp.interleave_complex(re, im))
        boot(soc, figure4_program(n), {1: IN, 2: OUT})
        cycles[prefetch] = run_to_done(soc)
    assert cycles[True] < cycles[False]


def test_controller_stats_collected(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    boot(soc, simple_program(), {1: IN, 2: OUT})
    run_to_done(soc)
    stats = soc.ocp.controller.stats
    assert stats["instructions"] == len(simple_program())
    assert stats["instr.mvtc"] == 1
    assert stats["words_to_rac"] == 16
    assert stats["words_from_rac"] == 16


def test_restart_after_completion(soc_passthrough):
    soc = soc_passthrough
    soc.write_ram(IN, list(range(16)))
    ocp = boot(soc, simple_program(), {1: IN, 2: OUT})
    run_to_done(soc)
    ocp.irq.clear()
    # release and re-arm with new input
    ocp.interface.write_word(REG_CTRL, 0)
    soc.write_ram(IN, list(range(50, 66)))
    ocp.interface.write_word(REG_CTRL, CTRL_S)
    soc.run_until(lambda: ocp.done, max_cycles=100_000)
    assert soc.read_ram(OUT, 16) == list(range(50, 66))
