"""Full-system integration: the ISS programs the OCP over the bus.

This is the closest analogue of the paper's board bring-up: real
(simulated) CPU instructions configure the Ouessant registers through
MMIO, the microcode runs, the completion interrupt wakes the CPU, and
the CPU inspects the results -- all inside one clocked simulation.
"""

import pytest

from repro.core.program import OuProgram
from repro.core.registers import CTRL_D, CTRL_IE, CTRL_S
from repro.cpu.assembler import assemble
from repro.rac.scale import ScaleRac
from repro.system import OCP_BASE, RAM_BASE, SoC, TIMER_BASE
from repro.sw.driver import OuessantDriver

PROG = RAM_BASE + 0x1_0000
IN = RAM_BASE + 0x2_0000
OUT = RAM_BASE + 0x3_0000
RESULT_FLAG = RAM_BASE + 0x4_0000

DRIVER_ASM = f"""
# baremetal Ouessant driver, hand-written for the integration test
    li   r1, {OCP_BASE}          # OCP register window
    li   r2, {PROG}              # bank 0: microcode
    sw   r2, 8(r1)
    li   r2, {IN}                # bank 1: input
    sw   r2, 12(r1)
    li   r2, {OUT}               # bank 2: output
    sw   r2, 16(r1)
    addi r3, r0, 4               # PROG_SIZE = 4 instructions
    sw   r3, 4(r1)
    addi r3, r0, {CTRL_S | CTRL_IE}
    sw   r3, 0(r1)               # S | IE: go
wait_irq:
    wfi
    lw   r4, 0(r1)               # read CTRL
    andi r5, r4, {CTRL_D}
    beq  r5, r0, wait_irq        # spurious wakeup: sleep again
    sw   r0, 0(r1)               # acknowledge: clear S
    # check the first output word doubled correctly: out[0] == 2*in[0]
    li   r6, {IN}
    lw   r7, 0(r6)
    add  r7, r7, r7
    li   r6, {OUT}
    lw   r8, 0(r6)
    li   r9, {RESULT_FLAG}
    bne  r7, r8, fail
    addi r10, r0, 1
    sw   r10, 0(r9)
    halt
fail:
    addi r10, r0, 2
    sw   r10, 0(r9)
    halt
"""


def build_soc():
    soc = SoC(racs=[ScaleRac(block_size=16, factor=2, shift=0)])
    soc.irqc  # CPU already wired to the IRQ controller
    microcode = (OuProgram().stream_to(1, 16).execs()
                 .stream_from(2, 16).eop())
    assert len(microcode) == 4
    soc.write_ram(PROG, microcode.words())
    soc.write_ram(IN, list(range(1, 17)))
    return soc


def test_cpu_programs_ocp_via_mmio_and_takes_interrupt():
    soc = build_soc()
    program = assemble(DRIVER_ASM, text_base=RAM_BASE,
                       data_base=RAM_BASE + 0x8000)
    soc.cpu.load(program)
    soc.run_until(lambda: soc.cpu.halted, max_cycles=100_000,
                  what="CPU halt")
    assert soc.read_ram(RESULT_FLAG, 1) == [1]  # CPU verified the result
    assert soc.read_ram(OUT, 16) == [2 * v for v in range(1, 17)]
    assert soc.cpu.stats["mmio"] >= 7  # register writes went over the bus


def test_cpu_wfi_actually_sleeps_until_irq():
    soc = build_soc()
    program = assemble(DRIVER_ASM, text_base=RAM_BASE,
                       data_base=RAM_BASE + 0x8000)
    soc.cpu.load(program)
    soc.run_until(lambda: soc.cpu.halted, max_cycles=100_000)
    assert soc.cpu.stats["wfi_cycles"] > 10  # slept during the microcode run


def test_cycle_timer_readable_over_bus():
    soc = build_soc()
    source = f"""
        li  r1, {TIMER_BASE}
        lw  r2, 0(r1)
        lw  r3, 0(r1)
        li  r4, {RESULT_FLAG}
        sub r5, r3, r2
        sw  r5, 0(r4)
        halt
    """
    soc.cpu.load(assemble(source, text_base=RAM_BASE,
                          data_base=RAM_BASE + 0x8000))
    soc.run_until(lambda: soc.cpu.halted, max_cycles=10_000)
    delta = soc.read_ram(RESULT_FLAG, 1)[0]
    assert delta > 0  # time passed between the two reads


def test_cpu_and_ocp_share_bus_fairly():
    """CPU keeps computing (and touching the bus) while the OCP works."""
    soc = build_soc()
    source = f"""
        li   r1, {OCP_BASE}
        li   r2, {PROG}
        sw   r2, 8(r1)
        li   r2, {IN}
        sw   r2, 12(r1)
        li   r2, {OUT}
        sw   r2, 16(r1)
        addi r3, r0, 4
        sw   r3, 4(r1)
        addi r3, r0, {CTRL_S}
        sw   r3, 0(r1)
    spin:
        lw   r4, 0(r1)            # poll over the bus: contends with OCP
        andi r5, r4, {CTRL_D}
        beq  r5, r0, spin
        sw   r0, 0(r1)
        halt
    """
    soc.cpu.load(assemble(source, text_base=RAM_BASE,
                          data_base=RAM_BASE + 0x8000))
    soc.run_until(lambda: soc.cpu.halted, max_cycles=200_000)
    assert soc.read_ram(OUT, 16) == [2 * v for v in range(1, 17)]
    # both masters used the bus
    assert soc.bus.stats["requests.cpu"] > 0
    assert soc.bus.stats["requests.ocp.if"] > 0


def test_two_ocps_operate_concurrently():
    from repro.rac.scale import PassthroughRac
    soc = SoC(racs=[ScaleRac(block_size=8, factor=3, shift=0),
                    PassthroughRac(block_size=8)])
    d0 = OuessantDriver(soc, ocp_index=0)
    d1 = OuessantDriver(soc, ocp_index=1)
    in0, out0 = RAM_BASE + 0x2000, RAM_BASE + 0x3000
    in1, out1 = RAM_BASE + 0x4000, RAM_BASE + 0x5000
    soc.write_ram(in0, list(range(8)))
    soc.write_ram(in1, list(range(50, 58)))
    microcode = (OuProgram().stream_to(1, 8).execs()
                 .stream_from(2, 8).eop()).words()
    # start both, then wait for both (interleaved operation)
    d0.place_program(microcode, RAM_BASE + 0x1000)
    d1.place_program(microcode, RAM_BASE + 0x6000)
    d0.configure({0: RAM_BASE + 0x1000, 1: in0, 2: out0}, len(microcode))
    d1.configure({0: RAM_BASE + 0x6000, 1: in1, 2: out1}, len(microcode))
    d0.start()
    d1.start()
    soc.run_until(lambda: soc.ocps[0].done and soc.ocps[1].done,
                  max_cycles=100_000)
    assert soc.read_ram(out0, 8) == [3 * v for v in range(8)]
    assert soc.read_ram(out1, 8) == list(range(50, 58))


def test_ocp_slave_window_reachable_via_bus():
    soc = build_soc()
    assert soc.bus.read_now(OCP_BASE + 4, 1) == [0]  # PROG_SIZE reset
    soc.bus.write_now(OCP_BASE + 4, [7])
    assert soc.ocp.registers.prog_size == 7
