"""Tests for the OFDM receiver application."""

import random

import pytest

from repro.apps.ofdm import (
    OFDMParams,
    OFDMReceiver,
    awgn,
    bit_error_rate,
    modulate,
    qpsk_demap,
    qpsk_map,
)
from repro.rac.dft import DFTRac
from repro.sim.errors import ConfigurationError
from repro.sw.library import OuessantLibrary
from repro.system import SoC

PARAMS = OFDMParams(n_fft=64, cp_len=16, used=48)


def random_bits(count, seed=5):
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


def test_qpsk_map_demap_roundtrip():
    bits = random_bits(64)
    assert qpsk_demap(qpsk_map(bits)) == bits


def test_qpsk_map_validates():
    with pytest.raises(ConfigurationError):
        qpsk_map([0, 1, 0])


def test_params_validation():
    with pytest.raises(ConfigurationError):
        OFDMParams(n_fft=64, used=64)
    with pytest.raises(ConfigurationError):
        OFDMParams(n_fft=64, used=47)
    with pytest.raises(ConfigurationError):
        OFDMParams(n_fft=64, cp_len=64)


def test_carrier_indices_avoid_dc():
    indices = PARAMS.carrier_indices
    assert 0 not in indices
    assert len(indices) == PARAMS.used
    assert len(set(indices)) == PARAMS.used


def test_clean_channel_zero_ber_golden():
    bits = random_bits(3 * PARAMS.bits_per_symbol)
    re, im = modulate(bits, PARAMS)
    receiver = OFDMReceiver(PARAMS, backend="golden")
    received = receiver.demodulate(re, im)
    assert bit_error_rate(bits, received) == 0.0
    assert receiver.symbols_processed == 3


def test_moderate_noise_still_decodes():
    bits = random_bits(2 * PARAMS.bits_per_symbol)
    re, im = modulate(bits, PARAMS)
    re, im = awgn(re, im, noise_rms=0.01, seed=1)
    receiver = OFDMReceiver(PARAMS, backend="golden")
    assert bit_error_rate(bits, receiver.demodulate(re, im)) == 0.0


def test_heavy_noise_causes_errors():
    bits = random_bits(4 * PARAMS.bits_per_symbol)
    re, im = modulate(bits, PARAMS)
    re, im = awgn(re, im, noise_rms=0.4, seed=2)
    receiver = OFDMReceiver(PARAMS, backend="golden")
    assert bit_error_rate(bits, receiver.demodulate(re, im)) > 0.005


def test_ocp_backend_matches_golden():
    bits = random_bits(2 * PARAMS.bits_per_symbol)
    re, im = modulate(bits, PARAMS)
    soc = SoC(racs=[DFTRac(n_points=PARAMS.n_fft)])
    library = OuessantLibrary(soc, environment="baremetal")
    hw = OFDMReceiver(PARAMS, backend="ocp", library=library)
    golden = OFDMReceiver(PARAMS, backend="golden")
    assert hw.demodulate(re, im) == golden.demodulate(re, im)
    assert hw.cycles > 0


def test_sw_backend_matches_golden():
    bits = random_bits(PARAMS.bits_per_symbol)
    re, im = modulate(bits, PARAMS)
    sw = OFDMReceiver(PARAMS, backend="sw")
    golden = OFDMReceiver(PARAMS, backend="golden")
    assert sw.demodulate(re, im) == golden.demodulate(re, im)
    assert sw.cycles > 0


def test_receiver_validation():
    with pytest.raises(ConfigurationError):
        OFDMReceiver(PARAMS, backend="analog")
    with pytest.raises(ConfigurationError):
        OFDMReceiver(PARAMS, backend="ocp")
    receiver = OFDMReceiver(PARAMS)
    with pytest.raises(ConfigurationError):
        receiver.demodulate([0] * 79, [0] * 79)
    with pytest.raises(ConfigurationError):
        bit_error_rate([0], [0, 1])


def test_modulate_validates_bit_count():
    with pytest.raises(ConfigurationError):
        modulate([0] * 7, PARAMS)
