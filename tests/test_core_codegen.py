"""Tests for microcode compression, expansion and static estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import (
    as_program,
    compress_program,
    estimate_program_cycles,
    expand_program,
)
from repro.core.isa import OuInstruction, OuOp
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
)
from repro.core.refmodel import ReferenceMemory, ReferenceRAC, execute_reference
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.sim.errors import ControllerError
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def run_reference(instructions, input_words, out_count, block=16):
    memory = ReferenceMemory()
    memory.write(IN, input_words)
    rac = ReferenceRAC([block], [block], lambda c: [list(c[0])])
    execute_reference(instructions, {0: PROG, 1: IN, 2: OUT}, memory, rac)
    return memory.read(OUT, out_count)


# ---------------------------------------------------------------------------
# compression
# ---------------------------------------------------------------------------

def test_compress_figure4_matches_hand_written_loop():
    compressed = compress_program(figure4_program(256).instructions)
    assert compressed == figure4_looped_program(256).instructions


def test_compress_preserves_semantics():
    program = figure4_program(64)
    compressed = compress_program(program.instructions)
    data = list(range(128))
    assert run_reference(program.instructions, data, 128, block=128) == \
        run_reference(compressed, data, 128, block=128)


def test_compress_leaves_short_runs_alone():
    program = (OuProgram().mvtc(1, 0, 16).mvtc(1, 16, 16).execs()
               .mvfc(2, 0, 32).eop())
    assert compress_program(program.instructions) == program.instructions


def test_compress_skips_extension_programs():
    program = figure4_looped_program(256)
    assert compress_program(program.instructions) == program.instructions


def test_compress_requires_uniform_stride():
    # second transfer jumps: not an arithmetic progression
    program = (OuProgram().mvtc(1, 0, 16).mvtc(1, 64, 16)
               .mvtc(1, 128, 16).execs().mvfc(2, 0, 48).eop())
    compressed = compress_program(program.instructions)
    assert compressed == program.instructions


@settings(max_examples=20, deadline=None)
@given(n_chunks=st.integers(6, 14), chunk=st.sampled_from([4, 8, 16]))
def test_compress_differential_random(n_chunks, chunk):
    total = n_chunks * chunk
    program = (OuProgram().stream_to(1, total, chunk=chunk).execs()
               .stream_from(2, total, chunk=chunk).eop())
    compressed = compress_program(program.instructions)
    assert len(compressed) < len(program.instructions)
    data = list(range(total))
    assert run_reference(program.instructions, data, total, block=total) == \
        run_reference(compressed, data, total, block=total)


# ---------------------------------------------------------------------------
# expansion
# ---------------------------------------------------------------------------

def test_expand_looped_figure4_to_base_set():
    looped = figure4_looped_program(256)
    expanded = expand_program(looped.instructions)
    assert expanded == figure4_program(256).instructions
    assert all(instr.op in (OuOp.MVTC, OuOp.MVFC, OuOp.EXEC, OuOp.EXECS,
                            OuOp.EOP) for instr in expanded)


def test_expand_resolves_jumps():
    program = (OuProgram().jmp(2).wait(100).mvtc(1, 0, 4).execs()
               .mvfc(2, 0, 4).eop())
    expanded = expand_program(program.instructions)
    assert expanded[0].op is OuOp.MVTC


def test_expand_detects_missing_eop():
    program = OuProgram().nop()
    with pytest.raises(ControllerError):
        expand_program(program.instructions)


def test_expand_detects_runaway():
    program = OuProgram().jmp(0)
    with pytest.raises(ControllerError):
        expand_program(program.instructions, max_instructions=64)


def test_expanded_program_runs_on_base_controller():
    """Extension firmware lowered to base set still computes correctly."""
    looped = figure4_looped_program(64)
    base_words = as_program(expand_program(looped.instructions)).words()
    from repro.utils import fixedpoint as fp
    soc = SoC(racs=[DFTRac(n_points=64)])
    re = [fp.float_to_q15(0.2)] * 64
    im = [0] * 64
    soc.write_ram(IN, fp.interleave_complex(re, im))
    soc.write_ram(PROG, base_words)
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(base_words))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=100_000)
    assert fp.deinterleave_complex(soc.read_ram(OUT, 128)) == \
        fp.fft_q15(re, im)


# ---------------------------------------------------------------------------
# static cycle estimation
# ---------------------------------------------------------------------------

def _simulated_cycles(program, rac):
    soc = SoC(racs=[rac])
    soc.write_ram(IN, list(range(4096)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return soc.run_until(lambda: ocp.done, max_cycles=500_000)


def test_estimate_within_tolerance_of_simulation():
    for total, latency in ((64, 10), (256, 500), (512, 2485)):
        rac = PassthroughRac(block_size=total, fifo_depth=128,
                             compute_latency=latency)
        program = (OuProgram().stream_to(1, total, chunk=64).execs()
                   .stream_from(2, total, chunk=64).eop())
        simulated = _simulated_cycles(program, rac)
        estimate = estimate_program_cycles(
            program.instructions, rac=rac)
        error = abs(estimate.total - simulated) / simulated
        assert error < 0.30, (
            f"total={total} latency={latency}: estimate {estimate.total} "
            f"vs simulated {simulated} ({100 * error:.0f}%)"
        )


def test_estimate_handles_extension_programs():
    looped = figure4_looped_program(256)
    unrolled = figure4_program(256)
    rac = DFTRac(n_points=256)
    e_loop = estimate_program_cycles(looped.instructions, rac=rac)
    e_flat = estimate_program_cycles(unrolled.instructions, rac=rac)
    # same data plan: estimates agree closely (prefetch size differs)
    assert abs(e_loop.total - e_flat.total) < 0.1 * e_flat.total


def test_estimate_reports_breakdown():
    program = figure4_program(256)
    estimate = estimate_program_cycles(
        program.instructions, rac=DFTRac(n_points=256))
    assert estimate.total == (estimate.fetch_decode + estimate.transfer
                              + estimate.compute_exposed)
    # collection (512 words at 1/cycle) + the 2485-cycle core latency
    assert estimate.compute_exposed == 512 + 2485
    assert "cycles" in str(estimate)


# ---------------------------------------------------------------------------
# batch concatenation: verifier bounds gate
# ---------------------------------------------------------------------------

def _terminated(instructions):
    return OuProgram.from_instructions(
        list(instructions) + [OuInstruction(OuOp.EOP)]
    )


def test_concat_accepts_bounded_looped_constituents():
    from repro.core.codegen import concat_programs

    batched = concat_programs(
        [figure4_looped_program(64), figure4_looped_program(64)]
    )
    # both constituents' loop nests survive (an in/out loop each),
    # one terminator for the whole batch
    assert batched.instructions[-1].op is OuOp.EOP
    assert sum(
        1 for i in batched.instructions if i.op is OuOp.LOOP
    ) == 4


def test_concat_rejects_unboundable_constituent_loudly():
    from repro.core.codegen import concat_programs

    runaway = _terminated([
        OuInstruction(OuOp.MVTC, bank=1, offset=0, count=4),
        OuInstruction(OuOp.JMP, imm=0),
    ])
    with pytest.raises(ValueError, match="program 1"):
        concat_programs([figure4_looped_program(64), runaway])


def test_concat_bounds_gate_names_the_job():
    from repro.core.codegen import concat_programs

    runaway = _terminated([OuInstruction(OuOp.JMP, imm=0)])
    with pytest.raises(ValueError, match="job alpha"):
        concat_programs(
            [runaway], names=["job alpha"]
        )
