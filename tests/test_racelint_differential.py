"""Soundness gate for the racelint concurrency analyzer.

Three directions, mirroring the verifier's differential gates:

* **racy**: 42 seeded streams on hazardous arena geometries must be
  flagged by racelint (error-severity OU2xx), AND must *actually*
  diverge from the sequential reference under at least one
  interleaving -- permuted queue policies and OCP counts; a scheduled
  run that traps unrecoverably also counts as divergence (the race is
  real either way);
* **clean**: ~100 seeded streams on the default disjoint geometry must
  be reported clean AND run bit-exact against the reference;
* **no false positives**: every stream of the existing scheduler
  differential suite (`tests/test_sched_differential.py`) must come
  back finding-free.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.racelint import check_stream
from repro.rac.scale import PassthroughRac
from repro.sched import Job, ThroughputScheduler, run_sequential_reference
from repro.sim.errors import ReproError
from repro.system import build_mpsoc
from repro.verify.diagnostics import has_error_findings

from tests.test_sched_differential import (
    CASES as SCHED_CASES,
    _build_soc,
    _factories,
    _stream,
)

PT_BLOCK = 8
RACY_SEED_BASE = 50240
CLEAN_SEED_BASE = 60240

#: hazardous arena geometries: (mode, arena_stride, batch_jobs)
#: - "shared":      every slot uses the same arenas
#: - "prog-in":     slot N+1's program region is slot N's input region
#: - "tight-batch": solo footprints disjoint, batching overlaps them
RACY_MODES = (
    ("shared", 0x0, 1),
    ("prog-in", 0x1_0000, 1),
    ("tight-batch", 0x40, 2),
)

RACY_CASES = [
    (RACY_SEED_BASE + offset, mode)
    for offset in range(14)
    for mode in RACY_MODES
]
assert len(RACY_CASES) >= 40


def _pt_racs(n: int) -> List[PassthroughRac]:
    return [PassthroughRac(name=f"pt{i}", block_size=PT_BLOCK)
            for i in range(n)]


def _racy_stream(seed: int, mode: str, n_jobs: int = 6) -> List[Job]:
    rng = random.Random(seed)
    if mode == "tight-batch":
        # alternate sizes so a two-job batch outgrows the tight stride
        sizes = [16 if i % 2 == 0 else 8 for i in range(n_jobs)]
    else:
        sizes = [PT_BLOCK * rng.randrange(1, 5) for _ in range(n_jobs)]
    return [
        Job(f"r{seed}-{i}", "passthrough",
            [rng.getrandbits(32) for _ in range(size)])
        for i, size in enumerate(sizes)
    ]


def _run_hazardous(
    jobs: List[Job], n_ocps: int, policy: str, stride: int,
    batch_jobs: int,
) -> Tuple[bool, str]:
    """Run a stream on a hazardous geometry; (diverged, how)."""
    soc = build_mpsoc(_pt_racs(n_ocps))
    sched = ThroughputScheduler(
        soc, policy=policy, batch_jobs=batch_jobs, arena_stride=stride,
    )
    try:
        results = sched.run_stream(jobs, max_cycles=300_000)
    except ReproError as exc:
        return True, f"scheduled run failed: {type(exc).__name__}"
    scheduled = {r.job.job_id: r.outputs for r in results}
    reference = run_sequential_reference(
        jobs, {"passthrough": lambda: PassthroughRac(block_size=PT_BLOCK)},
    )
    if scheduled != reference:
        return True, "output mismatch"
    return False, "bit-exact"


@pytest.mark.parametrize("seed,mode_spec", RACY_CASES)
def test_racy_stream_is_flagged_and_actually_diverges(seed, mode_spec):
    mode, stride, batch_jobs = mode_spec
    jobs = _racy_stream(seed, mode)

    # direction 1: racelint must flag the stream
    report = check_stream(
        jobs, racs=_pt_racs(2), arena_stride=stride,
        batch_jobs=batch_jobs,
    )
    assert has_error_findings(report.findings), (
        f"racelint missed the {mode} hazard: {report.render()}"
    )
    if mode == "tight-batch":
        # ... and must attribute it to batch concatenation
        assert any(f.code == "OU205" for f in report.findings)

    # direction 2: the hazard is real -- some interleaving diverges
    attempts = []
    for policy, n_ocps in (
        ("round-robin", 2), ("shortest-queue", 2), ("round-robin", 4),
    ):
        diverged, how = _run_hazardous(
            jobs, n_ocps, policy, stride, batch_jobs
        )
        attempts.append(f"{policy}/{n_ocps} ocps: {how}")
        if diverged:
            return
    pytest.fail(
        f"seed {seed} mode {mode}: flagged racy but every interleaving "
        f"stayed bit-exact ({'; '.join(attempts)})"
    )


CLEAN_CONFIGS = (
    (2, "round-robin", 1),
    (2, "shortest-queue", 3),
    (4, "round-robin", 3),
    (4, "shortest-queue", 1),
    (8, "round-robin", 2),
    (2, "shortest-queue", 2),
)

CLEAN_CASES = [
    (CLEAN_SEED_BASE + offset, config)
    for offset in range(16)
    for config in CLEAN_CONFIGS
]
assert len(CLEAN_CASES) >= 96


@pytest.mark.parametrize("seed,config", CLEAN_CASES)
def test_clean_stream_is_reported_clean_and_runs_bit_exact(seed, config):
    n_ocps, policy, batch_jobs = config
    jobs = _stream(seed, n_ocps, n_jobs=6)

    soc = _build_soc(n_ocps, seed)
    sched = ThroughputScheduler(
        soc, policy=policy, batch_jobs=batch_jobs, racecheck="submit",
    )
    # racecheck="submit" doubles as the static gate: any finding on
    # this default geometry would abort the submission loop
    results = sched.run_stream(jobs)
    assert sched.racecheck_report.clean, sched.racecheck_report.render()

    scheduled = {r.job.job_id: r.outputs for r in results}
    reference = run_sequential_reference(jobs, _factories(n_ocps, seed))
    assert scheduled == reference


@pytest.mark.parametrize("seed,n_ocps", SCHED_CASES)
def test_no_false_positives_on_existing_differential_streams(seed, n_ocps):
    """The whole scheduled differential corpus must stay finding-free."""
    jobs = _stream(seed, n_ocps)
    batch_jobs = 4 if seed % 2 else 1  # same derivation as the suite
    racs = [ocp.rac for ocp in _build_soc(n_ocps, seed).ocps]
    report = check_stream(jobs, racs=racs, batch_jobs=batch_jobs)
    assert report.clean, (
        f"false positive on seed {seed}/{n_ocps} ocps: {report.render()}"
    )
