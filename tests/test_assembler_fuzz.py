"""Round-trip and robustness fuzzing for both assemblers.

Two toolchains ship with the reproduction: the Ouessant microcode
assembler (:mod:`repro.core.assembler`) and the GPP assembler
(:mod:`repro.cpu.assembler`).  Both pairs must satisfy:

* **round trip** -- encode -> disassemble -> re-assemble is
  byte-identical for every encodable instruction sequence;
* **error discipline** -- malformed text raises
  :class:`~repro.sim.errors.AssemblerError`, never a bare
  ``ValueError``/``IndexError``/``KeyError`` leaking from the parser
  internals (callers, including the CLI, catch ``ReproError`` only).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembler import assemble_microcode, disassemble
from repro.core.encoding import encode as ou_encode
from repro.core.isa import (
    FIFODirection,
    MAX_JUMP,
    MAX_LOOP,
    MAX_OFFSET,
    MAX_TRANSFER_WORDS,
    MAX_WAIT,
    OuInstruction,
    OuOp,
    TRANSFER_OPS,
)
from repro.cpu.assembler import assemble
from repro.cpu.disassembler import disassemble_program
from repro.cpu.isa import (
    ALU_I_OPS,
    ALU_R_OPS,
    Instruction,
    Op,
    encode as cpu_encode,
)
from repro.sim.errors import AssemblerError

# ---------------------------------------------------------------------------
# Ouessant microcode: encode -> disassemble -> assemble
# ---------------------------------------------------------------------------

_banks = st.integers(0, 7)
_fifos = st.integers(0, 7)

ou_instructions = st.one_of(
    st.builds(
        OuInstruction,
        op=st.sampled_from(sorted(TRANSFER_OPS, key=int)),
        bank=_banks,
        offset=st.integers(0, MAX_OFFSET),
        count=st.integers(1, MAX_TRANSFER_WORDS),
        fifo=_fifos,
    ),
    st.builds(OuInstruction, op=st.just(OuOp.WAIT),
              imm=st.integers(0, MAX_WAIT)),
    st.builds(
        OuInstruction, op=st.just(OuOp.WAITF),
        direction=st.sampled_from(list(FIFODirection)),
        fifo=_fifos, count=st.integers(0, 127),
    ),
    st.builds(OuInstruction, op=st.just(OuOp.JMP),
              imm=st.integers(0, MAX_JUMP)),
    st.builds(OuInstruction, op=st.just(OuOp.LOOP),
              imm=st.integers(1, MAX_LOOP)),
    st.builds(OuInstruction, op=st.just(OuOp.ADDOFR),
              imm=st.integers(0, MAX_OFFSET)),
    st.builds(
        OuInstruction,
        op=st.sampled_from([
            OuOp.EOP, OuOp.EXEC, OuOp.EXECS, OuOp.NOP, OuOp.ENDL,
            OuOp.CLROFR, OuOp.IRQ, OuOp.SYNC, OuOp.HALT,
        ]),
    ),
)


@given(st.lists(ou_instructions, min_size=1, max_size=32))
def test_ou_roundtrip_is_byte_identical(instrs):
    words = [ou_encode(i) for i in instrs]
    assert assemble_microcode(disassemble(words)) == words


# ---------------------------------------------------------------------------
# GPP assembler: encode -> disassemble_program -> assemble
# ---------------------------------------------------------------------------

_regs = st.integers(0, 31)
_imm16 = st.integers(-(1 << 15), (1 << 15) - 1)
_uimm16 = st.integers(0, (1 << 16) - 1)

cpu_straightline = st.one_of(
    st.builds(Instruction, op=st.sampled_from(sorted(ALU_R_OPS, key=int)),
              rd=_regs, rs1=_regs, rs2=_regs),
    st.builds(
        Instruction,
        op=st.sampled_from(sorted(ALU_I_OPS - {Op.SLLI, Op.SRLI, Op.SRAI},
                                  key=int)),
        rd=_regs, rs1=_regs, imm=_imm16,
    ),
    # shifts: keep the amount in machine range so the text form is valid
    st.builds(Instruction,
              op=st.sampled_from([Op.SLLI, Op.SRLI, Op.SRAI]),
              rd=_regs, rs1=_regs, imm=st.integers(0, 31)),
    st.builds(Instruction, op=st.just(Op.LUI), rd=_regs, imm=_uimm16),
    st.builds(Instruction, op=st.sampled_from([Op.LW, Op.SW]),
              rd=_regs, rs1=_regs,
              imm=st.integers(-2048, 2047).map(lambda v: v * 4)),
    st.builds(Instruction, op=st.just(Op.JALR),
              rd=_regs, rs1=_regs, imm=_imm16),
    st.builds(Instruction, op=st.sampled_from([Op.HALT, Op.WFI])),
)


def _strip_comments(listing):
    return "\n".join(
        line.split("#")[0].rstrip() for line in listing.splitlines()
    )


def _assert_cpu_roundtrip(words):
    listing = disassemble_program(words, base=0)
    again = assemble(_strip_comments(listing), text_base=0)
    assert again.text == words


@given(st.lists(cpu_straightline, min_size=1, max_size=24))
def test_cpu_straightline_roundtrip(instrs):
    _assert_cpu_roundtrip([cpu_encode(i) for i in instrs])


@given(st.data())
def test_cpu_control_flow_roundtrip(data):
    """Branches/JALs with in-range targets survive the round trip."""
    body = data.draw(st.lists(cpu_straightline, min_size=2, max_size=12))
    words = [cpu_encode(i) for i in body]
    n = len(words)
    for _ in range(data.draw(st.integers(1, 4))):
        index = data.draw(st.integers(0, n - 1))
        target = data.draw(st.integers(0, n - 1))
        offset = target - index - 1
        if data.draw(st.booleans()):
            op = data.draw(st.sampled_from(
                [Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU]
            ))
            instr = Instruction(op, rs1=data.draw(_regs),
                                rs2=data.draw(_regs), imm=offset)
        else:
            instr = Instruction(Op.JAL, rd=data.draw(_regs), imm=offset)
        words[index] = cpu_encode(instr)
    _assert_cpu_roundtrip(words)


# ---------------------------------------------------------------------------
# error discipline: malformed text never leaks internal exceptions
# ---------------------------------------------------------------------------

_garbage_line = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Po", "Sm", "Zs"),
        whitelist_characters=",()-#:.%",
    ),
    max_size=40,
)

_mutated_line = st.one_of(
    _garbage_line,
    # plausible-but-wrong: known mnemonics with corrupted operands
    st.sampled_from([
        "mvtc BANK9,0,DMA4,FIFO0",
        "mvtc BANK1,zz,DMA4,FIFO0",
        "mvtc BANK1,0",
        "wait",
        "wait -1",
        "wait 99999999999",
        "waitf sideways,FIFO0,4",
        "jmp nowhere",
        "loop 0",
        "loop",
        "addofr x",
        "eop extra",
        "dup: dup: nop",
        "addi r1, r2",
        "addi r99, r0, 1",
        "addi r1, r0, 123456789",
        "lw r1, 4(r2",
        "lw r1, (r2)",
        "sw r1, oops(r2)",
        "beq r1, r2, missing_label",
        "jal r1",
        ".word",
        ".space -4",
        ".bogus 1",
        "li r1",
        "push",
        "slli r1, r2, r3, r4",
    ]),
)


def _assert_only_assembler_errors(fn, source):
    try:
        fn(source)
    except AssemblerError:
        pass  # the documented failure mode
    except (ValueError, IndexError, KeyError, TypeError) as exc:
        pytest.fail(
            f"{type(exc).__name__} leaked for source {source!r}: {exc}"
        )


@settings(max_examples=200)
@given(st.lists(_mutated_line, min_size=1, max_size=6).map("\n".join))
def test_ou_assembler_error_discipline(source):
    _assert_only_assembler_errors(assemble_microcode, source)


@settings(max_examples=200)
@given(st.lists(_mutated_line, min_size=1, max_size=6).map("\n".join))
def test_cpu_assembler_error_discipline(source):
    _assert_only_assembler_errors(assemble, source)


# ---------------------------------------------------------------------------
# verifier totality: never crashes, always terminates, on any program
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.lists(ou_instructions, min_size=0, max_size=32))
def test_verifier_is_total_on_arbitrary_programs(instrs):
    """The static verifier must analyze *any* decodable sequence.

    No exception may escape (the CFG builder and abstract interpreter
    see unterminated programs, unbalanced loops, jumps into loop
    bodies, ...), every finding must carry a cataloged code, and both
    renderers must work on the result.
    """
    from repro.rac.scale import ScaleRac
    from repro.verify import CATALOG, verify_program

    for rac in (None, ScaleRac(block_size=8)):
        report = verify_program(
            instrs, rac=rac, configured_banks={1, 2},
            bank_windows={1: 64, 2: 4096},
        )
        assert all(f.code in CATALOG for f in report.findings)
        assert isinstance(report.render(), str)
        assert isinstance(report.render_json(), str)
        # max_steps is None exactly when the interpreter could not run
        # (empty or structurally broken program)
        assert report.max_steps is None or report.max_steps >= 0


def test_known_bad_sources_raise_assembler_error():
    """Deterministic pins for the classic parser leak spots."""
    for source in (
        "wait one",            # non-numeric operand
        "mvtc BANK1",          # truncated operand list
        "jmp missing",         # undefined label
        "loop 999999",         # out-of-range immediate
        "bogus r1, r2",        # unknown mnemonic
    ):
        with pytest.raises(AssemblerError):
            assemble_microcode(source)
    for source in (
        "addi r1",             # missing operands
        "lw r1, 4(",           # unbalanced address syntax
        "beq r1, r2, nowhere", # undefined label
        "addi r1, r0, 1 << 20",
        ".word ten",
    ):
        with pytest.raises(AssemblerError):
            assemble(source)
