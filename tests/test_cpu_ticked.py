"""Ticked-mode ISS tests: equivalence with fast mode, MMIO, IRQs."""

import pytest

from repro.bus.bus import SystemBus
from repro.bus.irq import IRQController, IRQLine
from repro.cpu.assembler import assemble
from repro.cpu.cpu import CPU
from repro.cpu import kernels
from repro.mem.memory import Memory
from repro.sim.kernel import Simulator


def ticked_cpu(source, mem_bytes=1 << 20):
    sim = Simulator()
    memory = Memory("ram", mem_bytes)
    irqc = IRQController()
    cpu = CPU(memory=memory, memory_base=0, irq=irqc)
    sim.add(cpu)
    cpu.load(assemble(source, text_base=0, data_base=0x10000))
    return sim, cpu, irqc


FIB = """
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 20
loop:
    add  r4, r1, r2
    mv   r1, r2
    mv   r2, r4
    addi r3, r3, -1
    bne  r3, r0, loop
    halt
"""


def test_ticked_equals_fast_results_and_cycles():
    # fast mode
    memory = Memory("ram", 1 << 20)
    fast = CPU(memory=memory)
    fast.load(assemble(FIB, text_base=0, data_base=0x10000))
    fast_cycles = fast.run()

    # ticked mode
    sim, ticked, _ = ticked_cpu(FIB)
    sim.run_until(lambda: ticked.halted, max_cycles=10_000)
    assert ticked.reg(2) == fast.reg(2)
    assert ticked.cycles == fast_cycles


def test_ticked_equals_fast_on_real_kernel():
    """The whole IDCT kernel, both modes: same memory, same cycles."""
    source = kernels.idct_sw_source()
    block = [v & 0xFFFFFFFF for v in range(-32, 32)]

    memory = Memory("ram", 1 << 20)
    fast = CPU(memory=memory)
    program = assemble(source, text_base=0, data_base=0x10000)
    fast.load(program)
    memory.load_words(program.address_of("idct_in"), block)
    fast_cycles = fast.run()
    fast_out = memory.dump_words(program.address_of("idct_out"), 64)

    sim, ticked, _ = ticked_cpu(source)
    ticked.memory.load_words(program.address_of("idct_in"), block)
    sim.run_until(lambda: ticked.halted, max_cycles=50_000)
    ticked_out = ticked.memory.dump_words(program.address_of("idct_out"), 64)

    assert ticked_out == fast_out
    assert ticked.cycles == fast_cycles


def test_ticked_multicycle_ops_stall():
    source = "div r1, r0, r0\nhalt"
    sim, cpu, _ = ticked_cpu(source)
    sim.run_until(lambda: cpu.halted, max_cycles=100)
    assert cpu.cycles == 35 + 1  # div=35, halt=1


def test_mmio_load_waits_for_bus():
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    memory = Memory("ram", 1 << 16)
    bus.attach_slave("ram", 0x0, 1 << 16, memory)
    mmio = Memory("mmio", 64, access_latency=3)
    mmio.load_words(0, [0xFEED])
    bus.attach_slave("mmio", 0x8000_0000, 64, mmio)
    cpu = CPU(memory=memory, memory_base=0, bus=bus)
    sim.add(cpu)
    cpu.load(assemble("""
        li r1, 0x80000000
        lw r2, 0(r1)
        halt
    """, text_base=0, data_base=0x8000))
    sim.run_until(lambda: cpu.halted, max_cycles=100)
    assert cpu.reg(2) == 0xFEED
    # the MMIO load took multiple cycles (bus + wait states)
    assert cpu.cycles > 4


def test_wfi_wakes_only_on_irq():
    sim, cpu, irqc = ticked_cpu("wfi\naddi r1, r0, 7\nhalt")
    line = IRQLine("ext")
    irqc.register(line)
    sim.step(50)
    assert not cpu.halted
    assert cpu.reg(1) == 0
    line.assert_()
    sim.run_until(lambda: cpu.halted, max_cycles=50)
    assert cpu.reg(1) == 7
    assert cpu.stats["wfi_cycles"] >= 49
