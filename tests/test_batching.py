"""Tests for batched operation (one program, many blocks)."""

import pytest

from repro.rac.idct import IDCTRac
from repro.sim.errors import DriverError
from repro.sw.library import OuessantLibrary
from repro.system import SoC
from repro.utils import fixedpoint as fp


def make_blocks(rng, count):
    return [
        [[rng.randint(-300, 300) for _ in range(8)] for _ in range(8)]
        for _ in range(count)
    ]


def test_batch_results_match_per_block(rng):
    blocks = make_blocks(rng, 6)
    soc = SoC(racs=[IDCTRac(fifo_depth=128)])
    library = OuessantLibrary(soc, environment="baremetal")
    batched = library.idct_batch(blocks)
    assert batched == [fp.idct2_q15(b) for b in blocks]


def test_batch_amortizes_overhead(rng):
    blocks = make_blocks(rng, 8)

    # per-block calls
    soc_a = SoC(racs=[IDCTRac(fifo_depth=128)])
    lib_a = OuessantLibrary(soc_a, environment="linux")
    per_block_total = 0
    for block in blocks:
        lib_a.idct(block)
        per_block_total += lib_a.last_result.total_cycles

    # one batched call
    soc_b = SoC(racs=[IDCTRac(fifo_depth=128)])
    lib_b = OuessantLibrary(soc_b, environment="linux")
    lib_b.idct_batch(blocks)
    batched_total = lib_b.last_result.total_cycles

    # 8 blocks pay the Linux tax once instead of 8 times
    assert batched_total < per_block_total / 3


def test_batch_pipelines_on_the_coprocessor(rng):
    """Block k+1 streams in while block k computes (autostart)."""
    blocks = make_blocks(rng, 4)
    soc = SoC(racs=[IDCTRac(fifo_depth=128)])
    library = OuessantLibrary(soc, environment="baremetal")
    library.idct_batch(blocks)
    batched = library.last_result.total_cycles
    # a serial lower bound would be 4x the single-block baremetal time;
    # pipelining should beat 4x the per-block cost noticeably
    soc2 = SoC(racs=[IDCTRac(fifo_depth=128)])
    lib2 = OuessantLibrary(soc2, environment="baremetal")
    lib2.idct(blocks[0])
    single = lib2.last_result.total_cycles
    assert batched < 4 * single


def test_empty_batch_rejected():
    soc = SoC(racs=[IDCTRac()])
    library = OuessantLibrary(soc, environment="baremetal")
    with pytest.raises(DriverError):
        library.idct_batch([])


def test_large_batch_beyond_instruction_buffer(rng):
    """> 128/3 blocks exceed the prefetch buffer: slow fetch still works."""
    blocks = make_blocks(rng, 48)  # 145-instruction program
    soc = SoC(racs=[IDCTRac(fifo_depth=128)])
    library = OuessantLibrary(soc, environment="baremetal")
    batched = library.idct_batch(blocks)
    assert batched == [fp.idct2_q15(b) for b in blocks]
