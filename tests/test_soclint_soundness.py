"""Differential soundness suite for the system analyzer.

Two directions, per the verifier's soundness discipline:

* **Clean means working** -- 150 seeded SoC configurations that the
  analyzer passes as OU1xx-clean must each run a reference workload on
  the simulator and produce bit-exact results.
* **Broken means caught** -- a corpus of deliberately defective
  configurations (one per defect category) where the analyzer must
  emit the expected code *and*, for error-severity codes, the defect
  must be demonstrated to actually fail: raise at elaboration, trap on
  the bus, deadlock, or miscompute when simulated.
"""

import random

import pytest

from repro.bus.memmap import MemoryMap
from repro.core.coprocessor import OuessantCoprocessor
from repro.core.program import OuProgram
from repro.mem.memory import Memory
from repro.rac.fifo import FIFO
from repro.rac.scale import PassthroughRac, ScaleRac, _resign
from repro.sim.errors import ConfigurationError, ReproError
from repro.soclint import lint_map_plan, lint_soc
from repro.sw.driver import OuessantDriver
from repro.system import OCP_BASE, RAM_BASE, RAM_SIZE, SoC

N_CLEAN_CONFIGS = 150

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def canonical_program(block):
    """Figure 4 shape: fill bank1 -> start -> drain to bank2."""
    return (OuProgram()
            .mvtc(1, 0, block)
            .execs()
            .mvfc(2, 0, block)
            .eop())


def run_workload(soc, block, banks=None, max_wait=200_000):
    """Drive the canonical workload; returns (inputs, outputs)."""
    banks = banks or {0: PROG, 1: IN, 2: OUT}
    rng = random.Random(0xC0FFEE ^ block)
    words = [rng.randrange(1, 1 << 32) for _ in range(block)]
    soc.write_ram(banks[1], words)
    driver = OuessantDriver(soc)
    driver.run(
        canonical_program(block).words(),
        banks,
        check_status=True,
        max_wait_cycles=max_wait,
    )
    return words, soc.read_ram(banks[2], block)


def codes(report):
    return {finding.code for finding in report.findings}


# ---------------------------------------------------------------------------
# direction 1: OU1xx-clean configurations simulate correctly
# ---------------------------------------------------------------------------

def _seeded_config(seed):
    """One randomized-but-legal SoC configuration."""
    rng = random.Random(seed)
    block = rng.choice([4, 8, 16, 32])
    depth = rng.choice([d for d in (32, 64, 128) if d >= block])
    kind = rng.choice(["passthrough", "scale", "manual-start"])
    if kind == "passthrough":
        rac = PassthroughRac(
            block_size=block,
            compute_latency=rng.randint(0, 3),
            fifo_depth=depth,
        )
        expected = lambda ws: list(ws)
    elif kind == "manual-start":
        # fill-then-start is only legal when the block fits the FIFO
        rac = PassthroughRac(
            block_size=block, fifo_depth=depth, autostart=False
        )
        expected = lambda ws: list(ws)
    else:
        factor = rng.randint(1, 7)
        shift = rng.randint(0, 3)
        rac = ScaleRac(
            block_size=block, factor=factor, shift=shift,
            fifo_depth=depth,
        )
        expected = lambda ws: [
            ((_resign(w) * factor) >> shift) & 0xFFFFFFFF for w in ws
        ]
    soc = SoC(
        racs=[rac],
        with_dma=rng.random() < 0.3,
        clock_mhz=rng.choice([25.0, 40.0, 50.0, 66.0, 100.0]),
    )
    return soc, block, expected


@pytest.mark.parametrize("seed", range(N_CLEAN_CONFIGS))
def test_clean_config_simulates_correctly(seed):
    soc, block, expected = _seeded_config(seed)
    banks = {0: PROG, 1: IN, 2: OUT}
    report = lint_soc(
        soc, banks=banks, firmware=canonical_program(block)
    )
    assert report.clean, report.render()
    words, out = run_workload(soc, block, banks)
    assert out == expected(words)


# ---------------------------------------------------------------------------
# direction 2: broken configurations are caught, and really are broken
# ---------------------------------------------------------------------------

def test_defect_region_overlap_ou100():
    plan = [("ram", RAM_BASE, 0x1000), ("rom", RAM_BASE + 0x800, 0x1000)]
    assert "OU100" in codes(lint_map_plan(plan))
    # ground truth: elaborating that plan fails
    memmap = MemoryMap()
    memmap.add("ram", RAM_BASE, 0x1000, Memory("ram", 0x1000))
    with pytest.raises(ReproError):
        memmap.add("rom", RAM_BASE + 0x800, 0x1000,
                   Memory("rom", 0x1000))


def test_defect_region_misaligned_ou101():
    assert "OU101" in codes(lint_map_plan([("odd", 0x8000_0002, 64)]))
    memmap = MemoryMap()
    with pytest.raises(ReproError):
        memmap.add("odd", 0x8000_0002, 64, Memory("odd", 64))


def test_defect_truncated_window_ou110():
    soc = SoC(racs=[])
    ocp = OuessantCoprocessor(PassthroughRac(block_size=8), name="ocp",
                              bus=soc.bus)
    soc.sim.add_all(ocp.components())
    soc.bus.attach_slave("ocp", OCP_BASE, 16, ocp.interface)
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU110" in codes(lint_soc(soc))
    # demonstrably broken: configuring bank 2 writes register offset
    # 0x10, beyond the 16-byte window -- the bus access traps
    with pytest.raises(ReproError):
        run_workload(soc, 8)


def test_defect_unreachable_ocp_ou111():
    soc = SoC(racs=[])
    ocp = OuessantCoprocessor(PassthroughRac(block_size=8), name="ocp",
                              bus=soc.bus)
    soc.sim.add_all(ocp.components())  # never mapped on the bus
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU111" in codes(lint_soc(soc))
    with pytest.raises(ReproError):
        run_workload(soc, 8)


def test_defect_misaligned_window_ou112():
    soc = SoC(racs=[])
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    soc.sim.add_all(ocp.components())
    soc.bus.attach_slave(
        "ocp", OCP_BASE + 4, OuessantCoprocessor.WINDOW_BYTES,
        ocp.interface,
    )
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU112" in codes(lint_soc(soc))
    # the proper elaboration path rejects the same base outright
    other = SoC(racs=[])
    bad = OuessantCoprocessor(PassthroughRac(), name="ocp2",
                              bus=other.bus)
    with pytest.raises(ConfigurationError):
        bad.attach(other.sim, other.bus, OCP_BASE + 4)


def test_defect_unmapped_bank_ou120():
    soc = SoC(racs=[PassthroughRac(block_size=8)])
    banks = {0: PROG, 1: 0x9000_0000, 2: OUT}
    assert "OU120" in codes(lint_soc(soc, banks=banks))
    with pytest.raises(ReproError):
        # the mvtc master burst decodes to nothing
        soc.write_ram(IN, list(range(1, 9)))
        driver = OuessantDriver(soc)
        driver.run(canonical_program(8).words(), banks,
                   check_status=True, max_wait_cycles=50_000)


def test_defect_misaligned_bank_ou121():
    soc = SoC(racs=[PassthroughRac(block_size=8)])
    banks = {0: PROG, 1: IN + 2, 2: OUT}
    assert "OU121" in codes(lint_soc(soc, banks=banks))
    with pytest.raises(ReproError):
        # the bank register write itself traps in the controller
        OuessantDriver(soc).configure(banks, prog_size=4)


def test_defect_bank_targets_registers_ou122():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    banks = {0: PROG, 1: IN, 2: OCP_BASE}
    assert "OU122" in codes(lint_soc(soc, banks=banks))
    # demonstrably broken: the mvfc burst lands in the register
    # window; the first word (all zero here) clears CTRL.S mid-run,
    # so eop never executes and the run hangs or traps
    soc.write_ram(IN, [0] * 16)
    driver = OuessantDriver(soc)
    with pytest.raises(ReproError):
        driver.run(canonical_program(16).words(), banks,
                   check_status=True, max_wait_cycles=50_000)


def test_defect_fifo_underdepth_ou130():
    soc = SoC(racs=[PassthroughRac(block_size=32, fifo_depth=8,
                                   autostart=False)])
    assert "OU130" in codes(lint_soc(soc))
    # fill-then-start with 32 words into an 8-deep FIFO and a RAC that
    # only drains after start: classic structural deadlock
    with pytest.raises(ReproError):
        run_workload(soc, 32, max_wait=20_000)


def test_defect_fabric_width_mismatch_ou131():
    def bad_factory(name, width_push=32, width_pop=32, depth=64):
        return FIFO(name, width_push=width_push, width_pop=64,
                    depth=depth)

    soc = SoC(racs=[])
    soc.add_ocp(PassthroughRac(block_size=16),
                fifo_factory=bad_factory)
    assert "OU131" in codes(lint_soc(soc))
    # the 64-bit pop side re-chunks pairs of words: the RAC starves
    # waiting for 16 items that can never arrive, or emits mangled
    # data -- either way the workload does not complete correctly
    try:
        words, out = run_workload(soc, 16, max_wait=20_000)
    except ReproError:
        pass  # deadlock / trap: demonstrably broken
    else:
        assert out != words  # miscompute: demonstrably broken


def test_defect_timing_violation_ou140():
    from repro.synth.timing import timing_report

    soc = SoC(racs=[ScaleRac()], clock_mhz=200.0)
    assert "OU140" in codes(lint_soc(soc))
    # ground truth is the synthesis model itself: the requested clock
    # exceeds the critical path's fmax
    assert not timing_report(soc.ocp, clock_mhz=200.0).closes
    assert timing_report(soc.ocp, clock_mhz=50.0).closes


def test_defect_irq_double_registration_ou161():
    soc = SoC(racs=[ScaleRac()])
    soc.irqc.register(soc.ocp.irq)  # duplicate vector
    report = lint_soc(soc)
    assert "OU161" in codes(report)
    # hazard, not a proven failure: the duplicate aliases one line
    assert soc.irqc.lines.count(soc.ocp.irq) == 2


def test_defect_firmware_window_overflow_ou022_composed():
    # the system itself is fine; the *combination* of this bank table
    # and this firmware bursts past the end of RAM.  Only the composed
    # pass (microcode vs the actual map) can see it.
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    end_of_ram = RAM_BASE + RAM_SIZE - 8
    banks = {0: PROG, 1: end_of_ram, 2: OUT}
    report = lint_soc(soc, banks=banks,
                      firmware=canonical_program(16))
    assert "OU022" in codes(report)
    # without the firmware the same system and table are clean
    assert lint_soc(soc, banks=banks).clean
    with pytest.raises(ReproError):
        driver = OuessantDriver(soc)
        driver.run(canonical_program(16).words(), banks,
                   check_status=True, max_wait_cycles=50_000)


# ---------------------------------------------------------------------------
# corpus meta-check: the issue demands >= 10 distinct defect categories
# ---------------------------------------------------------------------------

def test_corpus_covers_ten_categories():
    import sys

    module = sys.modules[__name__]
    categories = [name for name in dir(module)
                  if name.startswith("test_defect_")]
    assert len(categories) >= 10, categories
