"""Tests for the Figure 3 register file and the interface."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus.bus import SystemBus
from repro.core.interface import OuessantInterface
from repro.core.registers import (
    CTRL_D,
    CTRL_IE,
    CTRL_S,
    N_REGISTERS,
    OuessantRegisters,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from repro.mem.cache import Cache
from repro.mem.memory import Memory
from repro.sim.errors import ControllerError
from repro.sim.kernel import Simulator


def test_ten_registers_as_in_figure3():
    assert N_REGISTERS == 10
    assert REG_BANK_BASE + 4 * 7 == 0x24  # bank 7 at 0x24, as drawn


def test_ctrl_bits():
    regs = OuessantRegisters()
    regs.write(REG_CTRL, CTRL_S | CTRL_IE)
    assert regs.started
    assert regs.interrupt_enabled
    assert not regs.done


def test_writing_s_clears_done():
    regs = OuessantRegisters()
    regs.set_done()
    assert regs.done
    regs.write(REG_CTRL, CTRL_S)
    assert not regs.done
    assert regs.started


def test_d_is_read_only_from_bus():
    regs = OuessantRegisters()
    regs.write(REG_CTRL, CTRL_D)
    assert not regs.done


def test_start_stop_callbacks():
    regs = OuessantRegisters()
    events = []
    regs.on_start = lambda: events.append("start")
    regs.on_stop = lambda: events.append("stop")
    regs.write(REG_CTRL, CTRL_S)
    regs.write(REG_CTRL, CTRL_S)  # already started: no second callback
    regs.write(REG_CTRL, 0)
    assert events == ["start", "stop"]


def test_prog_size_register():
    regs = OuessantRegisters()
    regs.write(REG_PROG_SIZE, 18)
    assert regs.read(REG_PROG_SIZE) == 18
    assert regs.prog_size == 18


@given(st.integers(0, 7), st.integers(0, 2**30 - 1).map(lambda v: v * 4))
def test_bank_registers_roundtrip(bank, base):
    regs = OuessantRegisters()
    regs.write(REG_BANK_BASE + 4 * bank, base)
    assert regs.read(REG_BANK_BASE + 4 * bank) == base
    assert regs.bank_base(bank) == base


def test_unconfigured_bank_raises():
    regs = OuessantRegisters()
    with pytest.raises(ControllerError):
        regs.bank_base(3)
    with pytest.raises(ControllerError):
        regs.bank_base(9)


def test_unaligned_bank_base_rejected():
    regs = OuessantRegisters()
    with pytest.raises(ControllerError):
        regs.set_bank(0, 0x1002)


def test_unknown_offsets_read_zero_and_ignore_writes():
    regs = OuessantRegisters()
    assert regs.read(0x30) == 0
    regs.write(0x30, 0xFFFF)
    assert regs.read(0x30) == 0


def test_reset():
    regs = OuessantRegisters()
    regs.write(REG_CTRL, CTRL_S)
    regs.write(REG_PROG_SIZE, 5)
    regs.set_bank(2, 0x100)
    regs.reset()
    assert not regs.started
    assert regs.prog_size == 0
    assert not regs.is_configured(2)


# ---------------------------------------------------------------------------
# interface
# ---------------------------------------------------------------------------

def make_interface():
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x4000_0000, 1 << 16, mem)
    interface = OuessantInterface(bus=bus)
    bus.attach_slave("ocp", 0x8000_0000, 64, interface)
    sim.add(interface)
    return sim, bus, mem, interface


def test_interface_translation():
    _, _, _, interface = make_interface()
    interface.registers.set_bank(1, 0x4000_1000)
    assert interface.translate(1, 0, 1) == 0x4000_1000
    assert interface.translate(1, 16, 4) == 0x4000_1040


def test_interface_translation_window_bound():
    _, _, _, interface = make_interface()
    interface.registers.set_bank(1, 0x4000_0000)
    with pytest.raises(ControllerError):
        interface.translate(1, 16380, 8)  # crosses the 14-bit window
    interface.translate(1, 16380, 4)  # exactly to the edge is fine


def test_interface_master_read_write():
    sim, _, mem, interface = make_interface()
    interface.registers.set_bank(2, 0x4000_0100)
    mem.load_words(0x100, [11, 22, 33])
    transfer = interface.submit_read(2, 0, 3)
    sim.run_until(lambda: transfer.done, max_cycles=100)
    assert transfer.data == [11, 22, 33]
    wr = interface.submit_write(2, 8, [77])
    sim.run_until(lambda: wr.done, max_cycles=100)
    assert mem.read_word(0x120) == 77


def test_interface_slave_register_window():
    _, _, _, interface = make_interface()
    interface.write_word(REG_PROG_SIZE, 9)
    assert interface.read_word(REG_PROG_SIZE) == 9
    assert interface.read_word(0x100) == 0  # out of window reads 0
    interface.write_word(0x100, 5)  # ignored


def test_interface_done_and_interrupt():
    _, _, _, interface = make_interface()
    interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    interface.signal_done()
    assert interface.registers.done
    assert interface.irq.pending


def test_interface_no_interrupt_without_ie():
    _, _, _, interface = make_interface()
    interface.write_word(REG_CTRL, CTRL_S)
    interface.signal_done()
    assert interface.registers.done
    assert not interface.irq.pending


def test_interface_snoops_caches_on_master_writes():
    sim, _, mem, interface = make_interface()
    cache = Cache(size_bytes=1024, line_bytes=32)
    interface.attach_snooped_cache(cache)
    interface.registers.set_bank(2, 0x4000_0200)
    cache.access_read(0x4000_0200)
    assert cache.holds(0x4000_0200)
    transfer = interface.submit_write(2, 0, [1])
    sim.run_until(lambda: transfer.done, max_cycles=100)
    assert not cache.holds(0x4000_0200)


def test_interface_requires_bus_for_master_ops():
    interface = OuessantInterface(bus=None)
    interface.registers.set_bank(0, 0)
    with pytest.raises(ControllerError):
        interface.submit_read(0, 0, 1)
    with pytest.raises(ControllerError):
        interface.submit_write(0, 0, [1])
