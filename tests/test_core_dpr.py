"""Tests for dynamic partial reconfiguration and standalone operation."""

import pytest

from repro.core.dpr import DPRManager, ICAP_WORDS_PER_CYCLE, PartialBitstream
from repro.core.program import OuProgram
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.core.standalone import StandaloneSequencer
from repro.rac.idct import IDCTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ConfigurationError, ReconfigurationError
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def boot(soc, program, banks):
    ocp = soc.ocp
    soc.write_ram(PROG, program.words())
    all_banks = {0: PROG}
    all_banks.update(banks)
    for bank, base in all_banks.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return ocp


def simple_program(n=16):
    return OuProgram().stream_to(1, n).execs().stream_from(2, n).eop()


def test_dpr_swaps_accelerator_and_preserves_ocp():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    manager = DPRManager(soc.sim, soc.ocp)

    # run once with the loopback
    soc.write_ram(IN, list(range(16)))
    boot(soc, simple_program(), {1: IN, 2: OUT})
    soc.run_until(lambda: soc.ocp.done, max_cycles=50_000)
    soc.ocp.interface.write_word(REG_CTRL, 0)  # release

    # swap in a scaler
    cycles = manager.reconfigure(
        PartialBitstream(ScaleRac(block_size=16, factor=2, shift=0),
                         size_words=1000)
    )
    assert cycles == 1000 // ICAP_WORDS_PER_CYCLE
    assert manager.stats["reconfigurations"] == 1

    # run again through the SAME interface/controller
    soc.write_ram(IN, list(range(16)))
    boot(soc, simple_program(), {1: IN, 2: OUT})
    soc.run_until(lambda: soc.ocp.done, max_cycles=50_000)
    assert soc.read_ram(OUT, 16) == [2 * v for v in range(16)]


def test_dpr_swap_to_different_port_count():
    soc = SoC(racs=[PassthroughRac(block_size=4)])
    manager = DPRManager(soc.sim, soc.ocp)
    from repro.rac.fir import FIRRac
    manager.reconfigure(PartialBitstream(FIRRac(block_size=8, n_taps=2),
                                         size_words=10))
    assert len(soc.ocp.fifos_in) == 2
    assert len(soc.ocp.fifos_out) == 1


def test_dpr_refuses_while_running():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    manager = DPRManager(soc.sim, soc.ocp)
    soc.write_ram(IN, list(range(16)))
    boot(soc, simple_program(), {1: IN, 2: OUT})
    # controller is running now
    with pytest.raises(ReconfigurationError):
        manager.reconfigure(PartialBitstream(ScaleRac(), size_words=10))


def test_dpr_refuses_with_s_set():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    manager = DPRManager(soc.sim, soc.ocp)
    soc.write_ram(IN, list(range(16)))
    ocp = boot(soc, simple_program(), {1: IN, 2: OUT})
    soc.run_until(lambda: ocp.done, max_cycles=50_000)
    # done, but software has not released S yet
    with pytest.raises(ReconfigurationError):
        manager.reconfigure(PartialBitstream(ScaleRac(), size_words=10))


def test_dpr_shelves_old_rac():
    soc = SoC(racs=[PassthroughRac("loop0", block_size=4)])
    manager = DPRManager(soc.sim, soc.ocp)
    manager.reconfigure(PartialBitstream(ScaleRac(), size_words=10))
    assert manager.shelved("loop0") is not None
    assert manager.shelved("nope") is None


def test_empty_bitstream_rejected():
    with pytest.raises(ReconfigurationError):
        PartialBitstream(ScaleRac(), size_words=0)


# ---------------------------------------------------------------------------
# standalone (processor-free) operation
# ---------------------------------------------------------------------------

def test_standalone_boots_and_runs_without_any_bus_master():
    soc = SoC(racs=[PassthroughRac(block_size=16)], with_cpu=False)
    program = simple_program()
    soc.write_ram(PROG, program.words())
    soc.write_ram(IN, list(range(16)))
    sequencer = StandaloneSequencer(
        "straps", soc.ocp,
        bank_bases={0: PROG, 1: IN, 2: OUT},
        prog_size=len(program),
    )
    soc.sim.add(sequencer)
    soc.run_until(lambda: sequencer.runs_completed >= 1, max_cycles=50_000)
    assert soc.read_ram(OUT, 16) == list(range(16))


def test_standalone_free_running_restarts():
    soc = SoC(racs=[PassthroughRac(block_size=4)], with_cpu=False)
    program = simple_program(4)
    soc.write_ram(PROG, program.words())
    soc.write_ram(IN, [9, 8, 7, 6])
    sequencer = StandaloneSequencer(
        "straps", soc.ocp,
        bank_bases={0: PROG, 1: IN, 2: OUT},
        prog_size=len(program),
        restart=True,
        max_runs=3,
    )
    soc.sim.add(sequencer)
    soc.run_until(lambda: sequencer.runs_completed >= 3, max_cycles=200_000)
    assert sequencer.stats["restarts"] >= 2
    assert soc.read_ram(OUT, 4) == [9, 8, 7, 6]


def test_standalone_requires_microcode_bank():
    soc = SoC(racs=[PassthroughRac(block_size=4)], with_cpu=False)
    with pytest.raises(ConfigurationError):
        StandaloneSequencer("s", soc.ocp, bank_bases={1: IN}, prog_size=4)
    with pytest.raises(ConfigurationError):
        StandaloneSequencer("s", soc.ocp, bank_bases={0: PROG}, prog_size=0)
