"""The microcode verifier: diagnostics, domains, cross-layer contracts."""

import json

import pytest

from repro.core.isa import MAX_OFFSET, OuInstruction, OuOp
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
)
from repro.rac.base import RAC, RACPortSpec
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ConfigurationError, DriverError
from repro.sw.driver import OuessantDriver
from repro.system import RAM_BASE, SoC
from repro.verify import CATALOG, verify_program
from repro.verify.contracts import bank_windows_from_map, verify_on_soc


def codes(report):
    return [f.code for f in report.findings]


def error_codes(report):
    return [f.code for f in report.errors]


# ---------------------------------------------------------------------------
# diagnostics catalog
# ---------------------------------------------------------------------------

def test_catalog_codes_are_stable_and_unique():
    assert all(code == entry.code for code, entry in CATALOG.items())
    assert all(code.startswith("OU") and len(code) == 5 for code in CATALOG)
    severities = {entry.severity for entry in CATALOG.values()}
    assert severities == {"error", "warning"}


def test_every_reported_code_is_in_the_catalog():
    # a sampler across all phases
    programs = [
        [],
        OuProgram().nop().instructions,
        OuProgram().jmp(0).eop().instructions,
        OuProgram().endl().loop(2).eop().instructions,
        OuProgram().mvtc(5, 16380, 16, fifo=7).eop().nop().instructions,
    ]
    for program in programs:
        report = verify_program(program, rac=ScaleRac(block_size=16),
                                configured_banks={1})
        assert set(codes(report)) <= set(CATALOG)


# ---------------------------------------------------------------------------
# structure & control flow findings
# ---------------------------------------------------------------------------

def test_empty_program_is_ou001():
    assert error_codes(verify_program([])) == ["OU001"]


def test_missing_terminator_is_ou002():
    report = verify_program(OuProgram().nop().instructions)
    assert "OU002" in error_codes(report)


def test_jmp_over_eop_is_run_past_end():
    report = verify_program(OuProgram().jmp(2).eop().nop().instructions)
    assert "OU008" in error_codes(report)


def test_infinite_jmp_cycle_is_ou009():
    report = verify_program(OuProgram().nop().jmp(0).eop().instructions)
    assert "OU009" in error_codes(report)


def test_dead_code_is_a_warning_not_an_error():
    report = verify_program(OuProgram().eop().nop().instructions)
    assert report.clean
    assert "OU010" in codes(report)


def test_step_budget_and_exact_step_bound():
    report = verify_program(figure4_program(256).instructions)
    assert report.max_steps == 18
    report = verify_program(figure4_looped_program(256).instructions)
    assert report.max_steps == 54  # 2 x (2 + 8*3) + execs + eop
    over = OuProgram().loop(4000).nop().endl().eop().instructions
    report = verify_program(over, step_budget=1000)
    assert "OU011" in error_codes(report)
    assert report.max_steps == 8002


# ---------------------------------------------------------------------------
# banks, offsets, windows
# ---------------------------------------------------------------------------

def test_static_bank_window_overflow_is_ou021():
    program = (OuProgram()
               .mvtc(1, MAX_OFFSET - 3, 16).execs()
               .mvfc(2, 0, 16).eop().instructions)
    report = verify_program(program)
    assert "OU021" in error_codes(report)


def test_ofr_accumulation_overflows_window_through_loop():
    # 300 iterations x 64 words walks OFR far past the 14-bit window
    program = (OuProgram()
               .clrofr().loop(300).mvtcx(1, 0, 64).addofr(64).endl()
               .execs().stream_from(2, 64).eop().instructions)
    report = verify_program(program)
    assert "OU021" in error_codes(report)
    # the same loop with 8 iterations stays comfortably inside
    ok = (OuProgram()
          .clrofr().loop(8).mvtcx(1, 0, 64).addofr(64).endl()
          .execs().stream_from(2, 512).eop().instructions)
    assert "OU021" not in codes(verify_program(ok))


def test_mapped_size_overflow_is_ou022():
    program = (OuProgram()
               .mvtc(1, 0, 64).execs().mvfc(2, 0, 64).eop().instructions)
    report = verify_program(program, bank_windows={1: 32})
    assert "OU022" in error_codes(report)
    assert "OU022" not in codes(
        verify_program(program, bank_windows={1: 64})
    )


def test_indexed_transfer_respects_mapped_window():
    program = (OuProgram()
               .clrofr().loop(4).mvtcx(1, 0, 16).addofr(16).endl()
               .execs().stream_from(2, 64).eop().instructions)
    # 4 x 16 = 64 words needed; a 32-word window overflows on later trips
    assert "OU022" in error_codes(
        verify_program(program, bank_windows={1: 32})
    )
    assert "OU022" not in codes(
        verify_program(program, bank_windows={1: 64})
    )


def test_unconfigured_bank_is_ou020():
    program = OuProgram().mvtc(5, 0, 4).eop().instructions
    report = verify_program(program, configured_banks={1, 2})
    assert "OU020" in error_codes(report)


# ---------------------------------------------------------------------------
# RAC contracts: ranges, volumes, ordering
# ---------------------------------------------------------------------------

def test_non_streaming_rac_checks_operands_not_volumes():
    """A plain RAC has ports but no appetite: only ranges are checked."""
    rac = RAC("custom", ports=RACPortSpec([32, 32], [32], fifo_depth=8))
    bad = (OuProgram()
           .mvtc(1, 0, 5, fifo=2)   # only input FIFO0/1 exist
           .mvfc(2, 0, 3, fifo=1)   # only output FIFO0 exists
           .eop().instructions)
    report = verify_program(bad, rac=rac)
    assert "OU030" in error_codes(report)
    assert "OU031" in error_codes(report)
    # in-range odd volumes are fine: no appetite contract to violate
    ok = (OuProgram()
          .mvtc(1, 0, 5, fifo=1).exec_().mvfc(2, 0, 3).eop().instructions)
    assert verify_program(ok, rac=rac).clean


def test_waitf_direction_selects_the_port_space():
    rac = RAC("custom", ports=RACPortSpec([32, 32], [32], fifo_depth=64))
    program = (OuProgram()
               .waitf("in", 1, 4)    # input FIFO1 exists
               .waitf("out", 0, 4)   # output FIFO0 exists
               .eop().instructions)
    assert verify_program(program, rac=rac).clean
    bad_out = OuProgram().waitf("out", 1, 4).eop().instructions
    report = verify_program(bad_out, rac=rac)
    assert "OU032" in error_codes(report)
    # the same FIFO index is legal on the *input* side
    ok_in = OuProgram().waitf("in", 1, 4).eop().instructions
    assert verify_program(ok_in, rac=rac).clean


def test_waitf_level_beyond_depth_is_unsatisfiable():
    rac = RAC("custom", ports=RACPortSpec([32], [32], fifo_depth=16))
    for direction in ("in", "out"):
        program = OuProgram().waitf(direction, 0, 17).eop().instructions
        assert "OU038" in error_codes(verify_program(program, rac=rac))
        program = OuProgram().waitf(direction, 0, 16).eop().instructions
        assert verify_program(program, rac=rac).clean


def test_drain_before_push_is_flagged():
    """Ordering matters: totals match but the pop happens too early."""
    program = (OuProgram()
               .mvfc(2, 0, 16).mvtc(1, 0, 16).execs().eop().instructions)
    report = verify_program(program, rac=ScaleRac(block_size=16))
    assert "OU034" in error_codes(report)
    # the reverse order is the canonical clean shape
    ok = (OuProgram()
          .mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop().instructions)
    assert verify_program(ok, rac=ScaleRac(block_size=16)).clean


def test_pipelined_loop_is_exact_not_overapproximated():
    """Push and drain inside one loop body must not false-positive."""
    program = (OuProgram()
               .loop(8).mvtc(1, 0, 16).mvfc(2, 0, 16).endl()
               .eop().instructions)
    report = verify_program(program, rac=ScaleRac(block_size=16))
    assert report.clean


def test_streaming_volume_findings_survive_the_rewrite():
    rac = PassthroughRac(block_size=128, fifo_depth=64, autostart=False)
    program = (OuProgram()
               .stream_to(1, 128).execs().stream_from(2, 128)
               .eop().instructions)
    report = verify_program(program, rac=rac, configured_banks={1, 2})
    assert "OU037" in error_codes(report)
    starve = (OuProgram()
              .mvtc(1, 0, 24).execs().mvfc(2, 0, 16).eop().instructions)
    report = verify_program(starve, rac=ScaleRac(block_size=16))
    assert "OU033" in error_codes(report)
    residue = (OuProgram()
               .mvtc(1, 0, 16).execs().mvfc(2, 0, 8).eop().instructions)
    report = verify_program(residue, rac=ScaleRac(block_size=16))
    assert report.clean
    assert "OU035" in codes(report)
    never = (OuProgram().mvtc(1, 0, 16).eop().instructions)
    report = verify_program(
        never, rac=PassthroughRac(block_size=16, autostart=False))
    assert "OU036" in error_codes(report)


# ---------------------------------------------------------------------------
# report surface: suppression, JSON, rendering
# ---------------------------------------------------------------------------

def test_suppression_moves_findings_aside_but_keeps_them():
    program = OuProgram().eop().nop().instructions
    report = verify_program(program, suppress=["OU010"])
    assert report.clean
    assert codes(report) == []
    assert [f.code for f in report.suppressed] == ["OU010"]
    assert "suppressed" in report.render()


def test_suppressing_an_error_code_makes_the_report_clean():
    program = OuProgram().mvtc(5, 0, 4).eop().instructions
    report = verify_program(program, configured_banks={1})
    assert not report.clean
    report = verify_program(program, configured_banks={1},
                            suppress=["OU020"])
    assert report.clean


def test_json_report_is_machine_readable():
    program = OuProgram().mvtc(5, 0, 4).eop().nop().instructions
    report = verify_program(program, configured_banks={1})
    payload = json.loads(report.render_json())
    assert payload["clean"] is False
    assert payload["errors"] >= 1
    assert isinstance(payload["max_steps"], int)
    finding = payload["findings"][0]
    assert set(finding) == {"code", "severity", "index", "where",
                            "message", "title"}
    assert finding["title"] == CATALOG[finding["code"]].title


def test_clean_render_message():
    report = verify_program(figure4_program(256).instructions)
    assert report.render() == "clean: no findings"


# ---------------------------------------------------------------------------
# cross-layer contracts: memory map, driver, codegen, OuProgram
# ---------------------------------------------------------------------------

def test_bank_windows_from_map_resolves_spans_and_unmapped():
    soc = SoC(racs=[ScaleRac(block_size=16)])
    unmapped = max(r.end for r in soc.bus.memmap.regions) + 0x1000
    windows, findings = bank_windows_from_map(
        {0: RAM_BASE, 1: RAM_BASE + 64, 7: unmapped}, soc.bus.memmap
    )
    ram = soc.memory.size_bytes
    assert windows[0] == ram // 4
    assert windows[1] == (ram - 64) // 4
    assert 7 not in windows
    assert [f.code for f in findings] == ["OU025"]


def test_verify_on_soc_enforces_mapped_region_size():
    soc = SoC(racs=[ScaleRac(block_size=16)])
    ram_end = RAM_BASE + soc.memory.size_bytes
    banks = {0: RAM_BASE, 1: ram_end - 64, 2: RAM_BASE + 0x1000}
    program = (OuProgram()
               .mvtc(1, 0, 64).execs().mvfc(2, 0, 64).eop())
    report = verify_on_soc(program, soc, banks)
    # bank 1 has only 16 words of RAM left: the 64-word burst overflows
    assert "OU022" in [f.code for f in report.errors]
    banks[1] = RAM_BASE + 0x2000
    assert verify_on_soc(program, soc, banks).clean


def test_driver_run_verify_rejects_bad_microcode_before_starting():
    soc = SoC(racs=[ScaleRac(block_size=16)])
    driver = OuessantDriver(soc)
    bad = (OuProgram()
           .mvtc(5, 0, 16).execs().mvfc(2, 0, 16).eop())
    banks = {0: RAM_BASE, 1: RAM_BASE + 0x1000, 2: RAM_BASE + 0x2000}
    start_cycle = soc.sim.cycle
    with pytest.raises(DriverError):
        driver.run(bad.words(), banks, verify=True)
    assert soc.sim.cycle == start_cycle  # rejected before any bus traffic


def test_driver_verify_microcode_reports_clean_for_good_program():
    soc = SoC(racs=[ScaleRac(block_size=16)])
    driver = OuessantDriver(soc)
    good = (OuProgram()
            .mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop())
    banks = {0: RAM_BASE, 1: RAM_BASE + 0x1000, 2: RAM_BASE + 0x2000}
    report = driver.verify_microcode(good.words(), banks)
    assert report.clean


def test_codegen_check_gates_rewrites():
    from repro.core.codegen import compress_program, expand_program

    good = figure4_program(256).instructions
    compressed = compress_program(good, check=True)
    assert expand_program(compressed, check=True)
    unterminated = OuProgram().mvtc(1, 0, 4).instructions
    with pytest.raises(ConfigurationError):
        compress_program(unterminated, check=True)


def test_ouprogram_verify_convenience():
    report = figure4_program(256).verify(rac=DFTRac(n_points=256),
                                         configured_banks={1, 2})
    assert report.clean
    assert report.max_steps == 18
