"""Tests for the spectral-analysis application layer."""

import pytest

from repro.apps.spectrum import (
    Peak,
    SpectrumAnalyzer,
    Tone,
    apply_window,
    find_peaks,
    hann_window,
    magnitude,
    synthesize,
)
from repro.rac.dft import DFTRac
from repro.sim.errors import ConfigurationError
from repro.sw.library import OuessantLibrary
from repro.system import SoC
from repro.utils import fixedpoint as fp

FS = 8000.0


def test_synthesize_amplitude_and_length():
    re, im = synthesize([Tone(1000.0, 0.5)], 64, FS)
    assert len(re) == len(im) == 64
    peak = max(abs(v) for v in re)
    assert abs(peak - fp.float_to_q15(0.5)) < 2000
    assert all(v == 0 for v in im)


def test_hann_window_shape():
    window = hann_window(64)
    assert window[0] == 0
    assert window[-1] == 0
    assert abs(window[32] - fp.Q15_MAX) < 700  # ~1.0 at the centre


def test_apply_window_validates_lengths():
    with pytest.raises(ConfigurationError):
        apply_window([0] * 8, [0] * 8, [0] * 4)


def test_find_peaks_detects_tones():
    # bin-aligned tone: 1000 Hz at N=64, fs=8000 -> bin 8
    re, im = synthesize([Tone(1000.0, 0.4)], 64, FS)
    mags = magnitude(*fp.fft_q15(re, im))
    peaks = find_peaks(mags, FS)
    assert any(p.bin == 8 for p in peaks)


def test_analyzer_golden_backend_two_tones():
    analyzer = SpectrumAnalyzer(256, FS, backend="golden")
    re, im = synthesize(
        [Tone(1000.0, 0.3), Tone(2500.0, 0.2)], 256, FS, noise_rms=0.01
    )
    peaks = analyzer.analyze(re, im)
    freqs = [p.frequency for p in peaks if p.magnitude > 0.02]
    assert any(abs(f - 1000.0) < FS / 256 for f in freqs)
    assert any(abs(f - 2500.0) < FS / 256 for f in freqs)


def test_analyzer_ocp_backend_matches_golden():
    n = 64
    soc = SoC(racs=[DFTRac(n_points=n)])
    library = OuessantLibrary(soc, environment="baremetal")
    ocp = SpectrumAnalyzer(n, FS, backend="ocp", library=library)
    golden = SpectrumAnalyzer(n, FS, backend="golden")
    re, im = synthesize([Tone(1000.0, 0.4)], n, FS)
    assert ocp.analyze(re, im) == golden.analyze(re, im)
    assert ocp.cycles > 0


def test_analyzer_sw_backends_agree_on_peaks():
    n = 32
    re, im = synthesize([Tone(1000.0, 0.4)], n, FS)
    fft = SpectrumAnalyzer(n, FS, backend="sw-fft")
    dft = SpectrumAnalyzer(n, FS, backend="sw-dft")
    peaks_fft = fft.analyze(re, im)
    peaks_dft = dft.analyze(re, im)
    assert [p.bin for p in peaks_fft] == [p.bin for p in peaks_dft]
    assert dft.cycles > fft.cycles  # O(N^2) vs O(N log N)


def test_windowing_reduces_leakage():
    n = 128
    # deliberately off-bin tone -> spectral leakage
    tone = Tone(1000.0 + FS / n / 2, 0.4)
    re, im = synthesize([tone], n, FS)
    plain = SpectrumAnalyzer(n, FS, backend="golden", window=False)
    windowed = SpectrumAnalyzer(n, FS, backend="golden", window=True)
    mags_plain = magnitude(*fp.fft_q15(re, im))
    wre, wim = apply_window(re, im, hann_window(n))
    mags_win = magnitude(*fp.fft_q15(wre, wim))
    # energy far from the tone (leakage floor) is lower with the window
    far_bins = range(40, 60)
    assert sum(mags_win[k] for k in far_bins) < sum(
        mags_plain[k] for k in far_bins
    )
    # and the analyzers still find the tone either way
    assert plain.analyze(re, im)
    assert windowed.analyze(re, im)


def test_analyzer_validation():
    with pytest.raises(ConfigurationError):
        SpectrumAnalyzer(64, FS, backend="quantum")
    with pytest.raises(ConfigurationError):
        SpectrumAnalyzer(64, FS, backend="ocp")  # no library
    analyzer = SpectrumAnalyzer(64, FS)
    with pytest.raises(ConfigurationError):
        analyzer.analyze([0] * 32, [0] * 32)
