"""Tests for the matrix-multiply RAC and waveform probing."""

import numpy as np
import pytest

from repro.rac.matmul import MatMulRac, matmul_q15
from repro.sim.errors import ConfigurationError
from repro.sim.tracing import VCDWriter
from repro.sim.waveform import WaveformProbe, ocp_probe
from repro.sw.library import OuessantLibrary
from repro.system import SoC
from repro.utils import fixedpoint as fp


def random_matrix(rng, n, scale=8000):
    return [[rng.randint(-scale, scale) for _ in range(n)] for _ in range(n)]


def test_matmul_golden_vs_numpy(rng):
    n = 4
    a = random_matrix(rng, n)
    b = random_matrix(rng, n)
    got = np.array(matmul_q15(a, b), dtype=float)
    expected = (np.array(a) @ np.array(b)) / (1 << 15)
    assert np.max(np.abs(got - expected)) <= 1.0


def test_matmul_golden_identity(rng):
    n = 4
    identity = [[(1 << 15) - 1 if i == j else 0 for j in range(n)]
                for i in range(n)]
    a = random_matrix(rng, n, scale=4000)
    got = matmul_q15(a, identity)
    # (Q15_MAX/Q15) ~ 1: off by at most 1 LSB per element
    for i in range(n):
        for j in range(n):
            assert abs(got[i][j] - a[i][j]) <= 1


def test_matmul_golden_validation():
    with pytest.raises(ValueError):
        matmul_q15([[1, 2]], [[1], [2]])


def test_matmul_rac_through_library(rng):
    n = 4
    soc = SoC(racs=[MatMulRac(n=n)])
    library = OuessantLibrary(soc, environment="baremetal")
    a = random_matrix(rng, n)
    b = random_matrix(rng, n)
    assert library.matmul(a, b) == matmul_q15(a, b)


def test_matmul_rac_latency_model():
    rac = MatMulRac(n=8)
    assert rac.compute_latency == 8 * 8 + 16
    assert rac.items_in == [64, 64]
    assert rac.items_out == [64]


def test_matmul_size_validation():
    with pytest.raises(ConfigurationError):
        MatMulRac(n=1)
    with pytest.raises(ConfigurationError):
        MatMulRac(n=128)


def test_matmul_library_size_check(rng):
    from repro.sim.errors import DriverError
    soc = SoC(racs=[MatMulRac(n=4)])
    library = OuessantLibrary(soc, environment="baremetal")
    with pytest.raises(DriverError):
        library.matmul([[0] * 8] * 8, [[0] * 8] * 8)


# ---------------------------------------------------------------------------
# waveform probing
# ---------------------------------------------------------------------------

def test_waveform_probe_samples_signals():
    from repro.sim.kernel import Simulator

    sim = Simulator()
    value = {"v": 0}
    vcd = VCDWriter()
    probe = WaveformProbe("probe", vcd, {"level": lambda: value["v"]})
    sim.add(probe)
    for v in (0, 1, 1, 3):
        value["v"] = v
        sim.step()
    assert probe.samples == 4
    text = vcd.render()
    assert "#0" in text and "#3" in text
    assert "level" in text


def test_ocp_probe_traces_a_real_run(rng, tmp_path):
    from repro.core.program import OuProgram
    from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
    from repro.rac.scale import PassthroughRac
    from repro.system import RAM_BASE

    soc = SoC(racs=[PassthroughRac(block_size=16)])
    vcd = VCDWriter(timescale="20ns")
    soc.sim.add(ocp_probe("probe", vcd, soc.ocp))

    program = (OuProgram().stream_to(1, 16).execs()
               .stream_from(2, 16).eop())
    prog, inp, out = RAM_BASE + 0x1000, RAM_BASE + 0x2000, RAM_BASE + 0x3000
    soc.write_ram(inp, list(range(16)))
    soc.write_ram(prog, program.words())
    for bank, base in {0: prog, 1: inp, 2: out}.items():
        soc.ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    soc.ocp.interface.write_word(REG_PROG_SIZE, len(program))
    soc.ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: soc.ocp.done, max_cycles=50_000)

    path = tmp_path / "run.vcd"
    vcd.write(str(path))
    text = path.read_text()
    # the controller walked through fetch/xfer states and raised done+irq
    assert "ctrl_state" in text
    assert "fifo_in_level" in text
    assert "irq" in text
    assert text.count("#") > 10  # many change timestamps
