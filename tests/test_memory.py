"""Tests for the memory models, IRQ lines and the cycle timer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus.irq import IRQController, IRQLine
from repro.mem.memory import Memory, ROM
from repro.sim.errors import MemoryError_


def test_read_write_roundtrip():
    mem = Memory("m", 4096)
    mem.write_word(0x10, 0xCAFEBABE)
    assert mem.read_word(0x10) == 0xCAFEBABE


def test_values_masked_to_32_bits():
    mem = Memory("m", 64)
    mem.write_word(0, 1 << 40 | 5)
    assert mem.read_word(0) == 5


def test_unaligned_access_rejected():
    mem = Memory("m", 64)
    with pytest.raises(MemoryError_):
        mem.read_word(2)
    with pytest.raises(MemoryError_):
        mem.write_word(5, 0)


def test_out_of_range_rejected():
    mem = Memory("m", 64)
    with pytest.raises(MemoryError_):
        mem.read_word(64)
    with pytest.raises(MemoryError_):
        mem.read_burst(56, 4)
    with pytest.raises(MemoryError_):
        mem.write_burst(60, [1, 2])


def test_bad_size_rejected():
    with pytest.raises(MemoryError_):
        Memory("m", 0)
    with pytest.raises(MemoryError_):
        Memory("m", 10)


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64))
def test_burst_roundtrip(words):
    mem = Memory("m", 4096)
    mem.write_burst(0x100, words)
    assert mem.read_burst(0x100, len(words)) == words


def test_load_bytes_little_endian():
    mem = Memory("m", 64)
    mem.load_bytes(0, b"\x01\x02\x03\x04\x05")
    assert mem.read_word(0) == 0x04030201
    assert mem.read_word(4) == 0x05


def test_clear_zeroes_everything():
    mem = Memory("m", 64, fill=0xFFFFFFFF)
    assert mem.read_word(0) == 0xFFFFFFFF
    mem.clear()
    assert mem.read_word(0) == 0


def test_rom_rejects_bus_writes_but_allows_loads():
    rom = ROM("rom", [1, 2, 3])
    assert rom.read_word(4) == 2
    with pytest.raises(MemoryError_):
        rom.write_word(0, 9)
    with pytest.raises(MemoryError_):
        rom.write_burst(0, [9])
    rom.load_words(0, [7])
    assert rom.read_word(0) == 7
    # lock restored after load
    with pytest.raises(MemoryError_):
        rom.write_word(0, 1)


def test_irq_line_semantics():
    line = IRQLine("test")
    assert not line.pending
    line.assert_()
    line.assert_()  # idempotent
    assert line.pending
    assert line.raise_count == 1
    line.clear()
    assert not line.pending
    line.assert_()
    assert line.raise_count == 2


def test_irq_controller_priorities():
    ctrl = IRQController()
    a = IRQLine("a")
    b = IRQLine("b")
    assert ctrl.register(a) == 0
    assert ctrl.register(b) == 1
    assert ctrl.highest_pending() is None
    b.assert_()
    assert ctrl.highest_pending() == 1
    a.assert_()
    assert ctrl.highest_pending() == 0  # lower number wins
    assert ctrl.any_pending()
    assert ctrl.snapshot() == {"a": True, "b": True}
    assert ctrl.line(0) is a
