"""Waveform probe (VCD) and run profiler coverage."""

from repro.core.program import OuProgram
from repro.rac.scale import PassthroughRac
from repro.sim.kernel import Component, Simulator
from repro.sim.tracing import VCDWriter
from repro.sim.waveform import WaveformProbe, ocp_probe
from repro.sw.driver import OuessantDriver
from repro.sw.profiler import profile_run
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000
BLOCK = 16


class _Counter(Component):
    def __init__(self) -> None:
        super().__init__("ctr")
        self.value = 0

    def tick(self) -> None:
        self.value += 1


def test_vcd_golden():
    """A two-signal probe over four cycles renders a pinned VCD."""
    sim = Simulator()
    counter = sim.add(_Counter())
    vcd = VCDWriter(timescale="20ns")
    sim.add(WaveformProbe("probe", vcd, {
        "count": lambda: counter.value,
        "lsb": lambda: counter.value & 1,
    }, width_hint=8))
    sim.step(4)
    assert vcd.render() == (
        "$timescale 20ns $end\n"
        "$scope module repro $end\n"
        "$var wire 8 ! count $end\n"
        "$var wire 8 \" lsb $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n"
        "#0\n"
        "b1 !\n"
        "b1 \"\n"
        "#1\n"
        "b10 !\n"
        "b0 \"\n"
        "#2\n"
        "b11 !\n"
        "b1 \"\n"
        "#3\n"
        "b100 !\n"
        "b0 \"\n"
    )


def test_vcd_deduplicates_unchanged_values():
    vcd = VCDWriter()
    vcd.register("sig", width=4)
    vcd.change(0, "sig", 5)
    vcd.change(1, "sig", 5)  # no change, no line
    vcd.change(2, "sig", 6)
    text = vcd.render()
    assert text.count("b101 ") == 1
    assert text.count("b110 ") == 1
    assert "#1\n" not in text


def _run_loopback(soc):
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    program = (
        OuProgram().stream_to(1, BLOCK).execs().stream_from(2, BLOCK).eop()
    )
    return driver.run(program.words(), {0: PROG, 1: IN, 2: OUT})


def test_ocp_probe_captures_a_run():
    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    vcd = VCDWriter(timescale="20ns")
    probe = soc.sim.add(ocp_probe("probe", vcd, soc.ocp))
    _run_loopback(soc)
    assert probe.samples == soc.sim.cycle
    text = vcd.render()
    # every standard signal declared...
    for signal in ("ctrl_state", "irq", "done",
                   "fifo_in_level", "fifo_out_level", "rac_end_op"):
        assert f"$var wire 8 " in text and signal in text
    # ...and the FSM actually moved through transfer states
    assert text.count("#") > 4


def test_profile_breakdown_sums_to_total():
    """config + compute + ack is the whole measured window."""
    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    result = _run_loopback(soc)
    assert (result.config_cycles + result.compute_cycles
            + result.ack_cycles) == result.total_cycles
    assert result.hardware_cycles == result.total_cycles  # no OS model here

    profile = profile_run(soc, result)
    assert profile.total_cycles == result.total_cycles
    assert profile.words_to_rac == BLOCK
    assert profile.words_from_rac == BLOCK
    assert profile.words_total == 2 * BLOCK
    # the controller accounts its cycles by state; those states all fit
    # inside the measured window
    assert profile.transfer_cycles > 0
    assert 0 < sum(profile.controller_states.values()) <= result.total_cycles
    assert profile.cycles_per_word > 0
    assert 0.0 < profile.bus_utilization <= 1.0
    assert profile.max_fifo_in_atoms > 0

    rendered = profile.render()
    assert f"({BLOCK} in / {BLOCK} out)" in rendered
    assert "cycles/word" in rendered


def test_profile_handles_empty_run():
    from repro.sw.driver import RunResult

    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    profile = profile_run(
        soc, RunResult(total_cycles=0, config_cycles=0,
                       compute_cycles=0, ack_cycles=0)
    )
    assert profile.words_total == 0
    assert profile.cycles_per_word == 0.0
    profile.render()  # must not raise on all-zero stats
