"""Tests for the instruction-set simulator's execution semantics."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.cpu import CPU
from repro.cpu.isa import CostModel
from repro.mem.memory import Memory
from repro.sim.errors import SimulationError


def run_program(source, setup=None, mem_bytes=1 << 16):
    memory = Memory("ram", mem_bytes)
    cpu = CPU(memory=memory)
    program = assemble(source, text_base=0, data_base=0x8000)
    cpu.load(program)
    if setup:
        setup(cpu, program)
    cycles = cpu.run()
    return cpu, program, cycles


def test_r0_is_hardwired_zero():
    cpu, _, _ = run_program("addi r0, r0, 5\nadd r1, r0, r0\nhalt")
    assert cpu.reg(0) == 0
    assert cpu.reg(1) == 0


def test_arithmetic_wraps_32_bits():
    cpu, _, _ = run_program("""
        li  r1, 0xFFFFFFFF
        addi r2, r1, 1
        halt
    """)
    assert cpu.reg(2) == 0


def test_signed_ops():
    cpu, _, _ = run_program("""
        addi r1, r0, -5
        addi r2, r0, 3
        mul  r3, r1, r2       # -15
        slt  r4, r1, r2       # 1 (signed)
        sltu r5, r1, r2       # 0 (unsigned: big < 3 is false)
        srai r6, r1, 1        # -3
        halt
    """)
    assert cpu.reg_signed(3) == -15
    assert cpu.reg(4) == 1
    assert cpu.reg(5) == 0
    assert cpu.reg_signed(6) == -3


def test_div_rem_truncate_toward_zero():
    cpu, _, _ = run_program("""
        addi r1, r0, -7
        addi r2, r0, 2
        div  r3, r1, r2
        rem  r4, r1, r2
        halt
    """)
    assert cpu.reg_signed(3) == -3
    assert cpu.reg_signed(4) == -1


def test_div_by_zero_defined_result():
    cpu, _, _ = run_program("""
        addi r1, r0, 9
        div  r2, r1, r0
        rem  r3, r1, r0
        halt
    """)
    assert cpu.reg(2) == 0xFFFFFFFF
    assert cpu.reg(3) == 9


def test_shifts():
    cpu, _, _ = run_program("""
        addi r1, r0, 1
        slli r2, r1, 31
        srli r3, r2, 31
        srai r4, r2, 31
        halt
    """)
    assert cpu.reg(2) == 0x8000_0000
    assert cpu.reg(3) == 1
    assert cpu.reg(4) == 0xFFFF_FFFF


def test_loads_and_stores():
    cpu, program, _ = run_program("""
        la  r1, buf
        addi r2, r0, 42
        sw  r2, 4(r1)
        lw  r3, 4(r1)
        halt
    .data
    buf:
        .space 16
    """)
    assert cpu.reg(3) == 42


def test_store_r0_writes_zero():
    cpu, program, _ = run_program("""
        la  r1, buf
        sw  r0, 0(r1)
        halt
    .data
    buf:
        .word 0xFFFF
    """)
    assert cpu.memory.read_word(program.address_of("buf")) == 0


def test_branch_loop_counts():
    cpu, _, _ = run_program("""
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        addi r2, r2, 3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    assert cpu.reg(2) == 30


def test_jal_jalr_call_return():
    cpu, _, _ = run_program("""
        call fn
        addi r2, r0, 1
        halt
    fn:
        addi r1, r0, 7
        ret
    """)
    assert cpu.reg(1) == 7
    assert cpu.reg(2) == 1


def test_unsigned_branches():
    cpu, _, _ = run_program("""
        li   r1, 0xFFFFFFFF
        addi r2, r0, 1
        bltu r2, r1, yes
        addi r3, r0, 99
        halt
    yes:
        addi r3, r0, 1
        halt
    """)
    assert cpu.reg(3) == 1


def test_cycle_cost_accounting():
    cost = CostModel(alu=1, mul=4, div=35)
    memory = Memory("ram", 1 << 12)
    cpu = CPU(memory=memory, cost_model=cost)
    cpu.load(assemble("mul r1, r0, r0\ndiv r2, r1, r1\nhalt"))
    cycles = cpu.run()
    assert cycles == 4 + 35 + 1


def test_instret_counts_instructions():
    cpu, _, _ = run_program("nop\nnop\nnop\nhalt")
    assert cpu.instret == 4


def test_fast_mode_rejects_mmio():
    memory = Memory("ram", 1 << 12)
    cpu = CPU(memory=memory, memory_base=0)
    cpu.load(assemble("li r1, 0x80000000\nlw r2, 0(r1)\nhalt"))
    with pytest.raises(SimulationError):
        cpu.run()


def test_fast_mode_rejects_wfi():
    memory = Memory("ram", 1 << 12)
    cpu = CPU(memory=memory)
    cpu.load(assemble("wfi\nhalt"))
    with pytest.raises(SimulationError):
        cpu.run()


def test_runaway_detection():
    memory = Memory("ram", 1 << 12)
    cpu = CPU(memory=memory)
    cpu.load(assemble("loop: j loop"))
    with pytest.raises(SimulationError):
        cpu.run(max_instructions=1000)


def test_reset_clears_state():
    cpu, _, _ = run_program("addi r1, r0, 9\nhalt")
    cpu.reset()
    assert cpu.reg(1) == 0
    assert cpu.halted
    assert cpu.cycles == 0
