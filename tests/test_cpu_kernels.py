"""Tests for the hand-written assembly kernels vs the golden models."""

import pytest

from repro.baselines.software import (
    software_dft_direct,
    software_fft,
    software_idct,
    software_memcpy,
)
from repro.cpu import kernels
from repro.sim.errors import ConfigurationError
from repro.utils import fixedpoint as fp


def test_memcpy_copies_and_costs_linear(rng):
    words = [rng.randrange(1 << 32) for _ in range(32)]
    out, run = software_memcpy(words)
    assert out == words
    out2, run2 = software_memcpy(words * 2)
    # cost grows linearly: 6 instructions per word
    assert run2.cycles - run.cycles == pytest.approx(6 * 32, abs=4)


def test_idct_kernel_bit_exact(coef_block):
    result, run = software_idct(coef_block)
    assert result == fp.idct2_q15(coef_block)
    assert run.cycles > 0


def test_idct_kernel_cycles_near_paper():
    block = [[100] * 8 for _ in range(8)]
    _, run = software_idct(block)
    # paper Table I: SW IDCT = 5000 cycles
    assert 4000 <= run.cycles <= 7000


def test_idct_kernel_saturates():
    block = [[32767] * 8 for _ in range(8)]
    result, _ = software_idct(block)
    assert all(-32768 <= v <= 32767 for row in result for v in row)
    assert result == fp.idct2_q15(block)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_direct_dft_kernel_close_to_golden(n, q15_signal):
    re, im = q15_signal(n)
    (yr, yi), run = software_dft_direct(re, im)
    gr, gi = fp.direct_dft_q15(re, im)
    assert max(abs(a - b) for a, b in zip(yr, gr)) <= 2
    assert max(abs(a - b) for a, b in zip(yi, gi)) <= 2
    # ~21 inner instructions per point pair
    assert run.cycles > 15 * n * n


@pytest.mark.parametrize("n", [8, 16, 64])
def test_fft_kernel_bit_exact(n, q15_signal):
    re, im = q15_signal(n)
    (yr, yi), _ = software_fft(re, im)
    assert (yr, yi) == fp.fft_q15(re, im)


def test_fft_kernel_much_faster_than_direct(q15_signal):
    re, im = q15_signal(64)
    _, direct = software_dft_direct(re, im)
    _, fast = software_fft(re, im)
    assert fast.cycles < direct.cycles / 3


def test_kernel_sources_reject_bad_sizes():
    with pytest.raises(ConfigurationError):
        kernels.dft_sw_source(12)
    with pytest.raises(ConfigurationError):
        kernels.dft_sw_source(2048)
    with pytest.raises(ConfigurationError):
        kernels.fft_sw_source(0)
    with pytest.raises(ConfigurationError):
        kernels.memcpy_source(0)


def test_dft_kernel_scales_quadratically(q15_signal):
    re8, im8 = q15_signal(8)
    re16, im16 = q15_signal(16)
    _, run8 = software_dft_direct(re8, im8)
    _, run16 = software_dft_direct(re16, im16)
    ratio = run16.cycles / run8.cycles
    assert 3.0 < ratio < 5.0  # ~4x for O(N^2)


def test_fft_kernel_scales_n_log_n(q15_signal):
    re, im = q15_signal(16)
    re2, im2 = q15_signal(64)
    _, run16 = software_fft(re, im)
    _, run64 = software_fft(re2, im2)
    ratio = run64.cycles / run16.cycles
    # 64*6 / 16*4 = 6x (plus bit-reversal overhead)
    assert 4.0 < ratio < 9.0
