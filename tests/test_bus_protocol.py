"""Tests for the bus protocol timing models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus.protocol import (
    AHB,
    ALL_PROTOCOLS,
    AXI4,
    AXI4_LITE,
    WISHBONE,
    BusProtocol,
    protocol_by_name,
)
from repro.sim.errors import ConfigurationError


def test_catalogue_lookup_case_insensitive():
    assert protocol_by_name("ahb") is AHB
    assert protocol_by_name("AXI4-Lite") is AXI4_LITE
    with pytest.raises(KeyError):
        protocol_by_name("pcie")


@given(st.integers(1, 500))
def test_split_burst_conserves_beats(total):
    for protocol in ALL_PROTOCOLS:
        chunks = protocol.split_burst(total)
        assert sum(chunks) == total
        assert all(1 <= c <= protocol.max_burst_beats for c in chunks)


def test_split_burst_rejects_zero():
    with pytest.raises(ValueError):
        AHB.split_burst(0)


def test_ahb_single_beat_cost():
    # arbitration 1 + address 1 + latency + 1 beat
    assert AHB.transfer_cycles(1, slave_latency=1) == 4


def test_ahb_64_word_burst_cost():
    # 4 chunks of 16; arbitration once (locked), address per chunk
    expected = 1 + 4 * (1 + 1 + 16)
    assert AHB.transfer_cycles(64, slave_latency=1) == expected


def test_ahb_amortized_cost_near_one_cycle_per_word():
    assert AHB.cycles_per_word(64, slave_latency=1) < 1.25


def test_axi4_lite_pays_handshake_per_word():
    lite = AXI4_LITE.cycles_per_word(64, slave_latency=1)
    full = AXI4.cycles_per_word(64, slave_latency=1)
    assert lite > 3.5
    assert full < 1.5


def test_axi4_long_bursts_beat_ahb_on_big_transfers():
    assert AXI4.transfer_cycles(256) <= AHB.transfer_cycles(256)


def test_wishbone_classic_two_cycles_per_beat():
    assert WISHBONE.cycles_per_word(64) >= 2.0


@given(st.integers(1, 256), st.integers(0, 4))
def test_transfer_cycles_monotone_in_beats(total, latency):
    for protocol in ALL_PROTOCOLS:
        assert protocol.transfer_cycles(total + 1, latency) >= (
            protocol.transfer_cycles(total, latency)
        )


@given(st.integers(1, 256))
def test_locked_chunks_never_cost_more_than_unlocked(total):
    locked = BusProtocol("l", 2, 1, 1, 16, locked_chunks=True)
    unlocked = BusProtocol("u", 2, 1, 1, 16, locked_chunks=False)
    assert locked.transfer_cycles(total) <= unlocked.transfer_cycles(total)


def test_bad_protocol_parameters_rejected():
    with pytest.raises(ConfigurationError):
        BusProtocol("bad", 1, 1, 1, 0)
    with pytest.raises(ConfigurationError):
        BusProtocol("bad", 1, 1, 0, 4)


@given(st.integers(1, 2048), st.integers(0, 6))
def test_closed_form_matches_chunked_reference(total, latency):
    """The O(1) transfer_cycles formula used on the kernel's hot path
    must equal the per-chunk summation for every catalogue protocol --
    the burst lane's cycle accounting is only legal because of this."""
    for protocol in ALL_PROTOCOLS:
        assert protocol.transfer_cycles(total, latency) == (
            protocol.transfer_cycles_chunked(total, latency)
        ), protocol.name


@given(st.integers(1, 1024), st.integers(0, 4), st.integers(1, 7),
       st.integers(0, 3), st.integers(1, 3), st.integers(1, 300),
       st.booleans())
def test_closed_form_matches_chunked_on_random_protocols(
    total, latency, arb, addr, per_beat, max_beats, locked
):
    protocol = BusProtocol("fuzz", arb, addr, per_beat, max_beats,
                           locked_chunks=locked)
    assert protocol.transfer_cycles(total, latency) == (
        protocol.transfer_cycles_chunked(total, latency)
    )
