"""Tests for the static timing model and the OUFW firmware format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.binary import (
    FirmwareImage,
    HEADER_WORDS,
    MAGIC,
    pack,
    unpack,
)
from repro.core.program import figure4_program
from repro.rac.base import RACPortSpec, StreamingRAC
from repro.rac.dft import DFTRac
from repro.rac.idct import IDCTRac
from repro.sim.errors import ConfigurationError
from repro.synth.timing import (
    ARTIX7_TECH,
    SPARTAN6_TECH,
    Technology,
    component_paths,
    timing_report,
)
from repro.system import SoC
from repro.utils import bits


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------

def test_ocp_closes_50mhz_on_artix7():
    """§V-A: 50 MHz, "no timing errors were left"."""
    for rac in (IDCTRac(), DFTRac(256)):
        report = timing_report(SoC(racs=[rac]).ocp, clock_mhz=50.0)
        assert report.closes, report.render()
        assert report.slack_ns > 0


def test_ocp_closes_50mhz_even_on_spartan6():
    report = timing_report(SoC(racs=[IDCTRac()]).ocp, clock_mhz=50.0,
                           technology=SPARTAN6_TECH)
    assert report.closes


def test_critical_path_is_the_interface_translation():
    report = timing_report(SoC(racs=[DFTRac(256)]).ocp)
    assert report.critical.component == "interface.translate"


def test_unrealistic_clock_fails_closure():
    report = timing_report(SoC(racs=[IDCTRac()]).ocp, clock_mhz=400.0)
    assert not report.closes
    assert report.slack_ns < 0


def test_width_converting_fifo_adds_a_level():
    flat = timing_report(SoC(racs=[IDCTRac()]).ocp)
    wide_rac = StreamingRAC(
        "wide", [3], [3], lambda c: [list(c[0])],
        ports=RACPortSpec([96], [96]),
    )
    wide = timing_report(SoC(racs=[wide_rac]).ocp)
    flat_serdes = next(p for p in flat.paths if p.component == "fifo.serdes")
    wide_serdes = next(p for p in wide.paths if p.component == "fifo.serdes")
    assert wide_serdes.levels == flat_serdes.levels + 1


def test_technology_math():
    tech = Technology("t", lut_delay=0.5, net_delay=0.5, clk_to_q=0.5,
                      setup=0.5)
    assert tech.path_ns(4) == pytest.approx(5.0)
    assert tech.fmax_mhz(4) == pytest.approx(200.0)
    with pytest.raises(ConfigurationError):
        tech.path_ns(-1)


def test_report_renders():
    report = timing_report(SoC(racs=[IDCTRac()]).ocp)
    text = report.render()
    assert "MET" in text
    assert "interface.translate" in text


def test_timing_validation():
    with pytest.raises(ConfigurationError):
        timing_report(SoC(racs=[IDCTRac()]).ocp, clock_mhz=0)


def test_component_paths_cover_the_hierarchy():
    names = {p.component for p in component_paths()}
    assert any(n.startswith("interface") for n in names)
    assert any(n.startswith("controller") for n in names)
    assert any(n.startswith("fifo") for n in names)


# ---------------------------------------------------------------------------
# OUFW firmware images
# ---------------------------------------------------------------------------

def test_pack_unpack_roundtrip():
    words = figure4_program(256).words()
    image = unpack(pack(words))
    assert image.words == words
    assert image.banks_referenced == [0, 1, 2]
    assert image.requires_bank(1)
    assert not image.requires_bank(5)


def test_pack_rejects_empty_and_invalid():
    with pytest.raises(ConfigurationError):
        pack([])
    with pytest.raises(Exception):
        pack([0xFFFFFFFF])  # undefined opcode 0x1F


def test_unpack_rejects_bad_magic():
    words = figure4_program(64).words()
    data = bytearray(pack(words))
    data[0] ^= 0xFF
    with pytest.raises(ConfigurationError):
        unpack(bytes(data))


def test_unpack_rejects_corrupted_payload():
    words = figure4_program(64).words()
    data = bytearray(pack(words))
    data[4 * HEADER_WORDS + 1] ^= 0x04  # flip an instruction bit
    with pytest.raises(ConfigurationError):
        unpack(bytes(data))


def test_unpack_rejects_truncation():
    data = pack(figure4_program(64).words())
    with pytest.raises(ConfigurationError):
        unpack(data[:-8])
    with pytest.raises(ConfigurationError):
        unpack(data[:8])


def test_unpack_rejects_wrong_version():
    words = figure4_program(64).words()
    data = bytearray(pack(words))
    data[4] = 99  # version word
    with pytest.raises(ConfigurationError):
        unpack(bytes(data))


def test_driver_runs_packed_image(q15_signal):
    from repro.sim.errors import DriverError
    from repro.sw.driver import OuessantDriver
    from repro.system import RAM_BASE
    from repro.utils import fixedpoint as fp

    n = 64
    soc = SoC(racs=[DFTRac(n_points=n)])
    driver = OuessantDriver(soc)
    re, im = q15_signal(n)
    prog, inp, out = (RAM_BASE + 0x1000, RAM_BASE + 0x2000,
                      RAM_BASE + 0x4000)
    soc.write_ram(inp, fp.interleave_complex(re, im))
    image = pack(figure4_program(n).words())
    # missing bank 2 -> rejected before touching hardware
    with pytest.raises(DriverError):
        driver.run_image(image, {0: prog, 1: inp})
    driver.run_image(image, {0: prog, 1: inp, 2: out})
    spectrum = fp.deinterleave_complex(soc.read_ram(out, 2 * n))
    assert spectrum == fp.fft_q15(re, im)


@given(st.integers(1, 30))
def test_pack_size_formula(n_chunks):
    from repro.core.program import OuProgram
    program = OuProgram()
    for i in range(n_chunks):
        program.mvtc(1, i * 4, 4)
    program.eop()
    data = pack(program.words())
    assert len(data) == 4 * (HEADER_WORDS + n_chunks + 1)
