"""Cost-aware scheduling and SLA admission (perfbound x sched).

The ``cost-aware`` policy routes on *predicted work* (per-job
``repro.perfbound`` midpoints plus the queue's pending-cycle
estimate), not queue length.  Placement is a pure scheduling decision:
the outputs must stay bit-exact against the one-job-at-a-time
sequential reference, while the makespan on a skewed stream (one big
job then small ones -- ``examples/streams/cost_skewed.json``) must
match or beat the count-based shortest-queue policy, which parks small
jobs behind the big one.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import List

import pytest

from repro.obs import attribute_schedule
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sched import Job, ThroughputScheduler, run_sequential_reference
from repro.sched.scheduler import SlaRejectionError
from repro.system import build_mpsoc

SKEWED = (Path(__file__).resolve().parent.parent
          / "examples" / "streams" / "cost_skewed.json")
BLOCK = 16
COMPUTE_LATENCY = 200


def _rac(name: str) -> PassthroughRac:
    return PassthroughRac(name=name, block_size=BLOCK,
                          compute_latency=COMPUTE_LATENCY)


def _skewed_jobs() -> List[Job]:
    doc = json.loads(SKEWED.read_text())
    assert doc["ocps"] == ["passthrough:16", "passthrough:16"]
    rng = random.Random(20240)
    return [
        Job(job_id=entry["id"], kind=entry["kind"],
            words=[rng.randrange(1 << 15) for _ in
                   range(entry["size"])])
        for entry in doc["jobs"]
    ]


def _run(policy: str, jobs: List[Job]):
    soc = build_mpsoc([_rac("pt0"), _rac("pt1")])
    sched = ThroughputScheduler(soc, policy=policy, queue_bound=4)
    results = sched.run_stream(jobs)
    return soc.sim.cycle, results, sched


def test_cost_aware_is_bit_exact_on_the_skewed_stream():
    jobs = _skewed_jobs()
    _, results, _ = _run("cost-aware", jobs)
    reference = run_sequential_reference(
        jobs, {"passthrough": lambda: _rac("ref")})
    for result in results:
        assert result.outputs == reference[result.job.job_id]


def test_cost_aware_beats_shortest_queue_on_the_skewed_stream():
    jobs = _skewed_jobs()
    sq_cycles, sq_results, _ = _run("shortest-queue", jobs)
    ca_cycles, ca_results, _ = _run("cost-aware", jobs)
    # same outputs either way: placement never changes data
    for sq, ca in zip(sq_results, ca_results):
        assert sq.outputs == ca.outputs
    assert ca_cycles <= sq_cycles


def test_cost_aware_is_bit_exact_on_mixed_kinds():
    """A heterogeneous stream (non-identity kernel included) stays
    bit-exact under cost-aware placement."""
    rng = random.Random(77)
    racs = [
        PassthroughRac(name="pt0", block_size=8),
        ScaleRac(name="sc1", block_size=8, factor=3, shift=1),
    ]
    soc = build_mpsoc(racs)
    sched = ThroughputScheduler(soc, policy="cost-aware", queue_bound=4)
    jobs = [
        Job(job_id=f"m{index}",
            kind=rng.choice(("passthrough", "scale")),
            words=[rng.randrange(1 << 15) for _ in range(8)])
        for index in range(12)
    ]
    results = sched.run_stream(jobs)
    reference = run_sequential_reference(jobs, {
        "passthrough": lambda: PassthroughRac(block_size=8),
        "scale": lambda: ScaleRac(block_size=8, factor=3, shift=1),
    })
    for result in results:
        assert result.outputs == reference[result.job.job_id]


def test_sla_admission_rejects_unschedulable_jobs():
    soc = build_mpsoc([_rac("pt0")])
    sched = ThroughputScheduler(soc, policy="cost-aware",
                                sla_cycles=50)
    with pytest.raises(SlaRejectionError):
        sched.submit(Job(job_id="big", kind="passthrough",
                         words=list(range(64))))
    assert sched.submitted == 0


def test_sla_admission_accepts_schedulable_jobs():
    soc = build_mpsoc([_rac("pt0")])
    sched = ThroughputScheduler(soc, policy="cost-aware",
                                sla_cycles=1_000_000)
    job = Job(job_id="ok", kind="passthrough", words=list(range(16)))
    assert sched.submit(job)
    sched.drain()
    assert sched.completed["ok"].outputs == job.words


def test_attribute_schedule_reports_predicted_work():
    jobs = _skewed_jobs()
    soc = build_mpsoc([_rac("pt0"), _rac("pt1")])
    sched = ThroughputScheduler(soc, policy="cost-aware",
                                queue_bound=4)
    # mid-flight: queued jobs carry a pending-cycle estimate
    for job in jobs[:4]:
        assert sched.submit(job)
    report = attribute_schedule(sched)
    assert sum(s.pending_jobs for s in report.per_ocp) == 4
    assert sum(s.est_pending_cycles for s in report.per_ocp) > 0
    # drained: pending collapses to zero, completed work is attributed
    for job in jobs[4:]:
        sched.submit_blocking(job)
    sched.drain()
    report = attribute_schedule(sched)
    assert report.consistent
    assert all(s.pending_jobs == 0 for s in report.per_ocp)
    assert all(s.est_pending_cycles == 0 for s in report.per_ocp)
    assert all(s.predicted_done_cycles > 0 for s in report.per_ocp)
    assert "work(pred)" in report.render()
