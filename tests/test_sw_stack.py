"""Tests for the software stack: driver, baremetal, Linux model, library."""

import pytest

from repro.core.program import OuProgram
from repro.core.registers import CTRL_D, CTRL_S, REG_CTRL
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac, fir_q15
from repro.rac.idct import IDCTRac
from repro.rac.scale import PassthroughRac
from repro.sim.errors import DriverError
from repro.sw.baremetal import BaremetalRuntime
from repro.sw.driver import OuessantDriver
from repro.sw.library import OuessantLibrary
from repro.sw.linux import LinuxCosts, LinuxRuntime
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def simple_program(n=16):
    return OuProgram().stream_to(1, n).execs().stream_from(2, n).eop()


# ---------------------------------------------------------------------------
# register driver
# ---------------------------------------------------------------------------

def test_driver_register_access_costs_cycles(soc_passthrough):
    driver = OuessantDriver(soc_passthrough)
    cycles = driver.write_register(REG_CTRL, 0)
    assert cycles > 0
    value, cycles = driver.read_register(REG_CTRL)
    assert value == 0
    assert cycles > 0


def test_driver_full_run_interrupt_mode(soc_passthrough):
    soc = soc_passthrough
    driver = OuessantDriver(soc, use_interrupt=True)
    soc.write_ram(IN, list(range(16)))
    result = driver.run(simple_program().words(),
                        {0: PROG, 1: IN, 2: OUT})
    assert soc.read_ram(OUT, 16) == list(range(16))
    assert result.total_cycles == (
        result.config_cycles + result.compute_cycles + result.ack_cycles
    )
    assert result.sw_overhead_cycles == 0
    assert not soc.ocp.irq.pending  # acknowledged


def test_driver_polling_mode(soc_passthrough):
    soc = soc_passthrough
    driver = OuessantDriver(soc, use_interrupt=False)
    soc.write_ram(IN, list(range(16)))
    result = driver.run(simple_program().words(), {0: PROG, 1: IN, 2: OUT})
    assert soc.read_ram(OUT, 16) == list(range(16))
    assert driver.poll_count >= 1


def test_polling_costs_more_bus_traffic_than_interrupt():
    results = {}
    for use_interrupt in (True, False):
        soc = SoC(racs=[PassthroughRac(block_size=16, compute_latency=200)])
        driver = OuessantDriver(soc, use_interrupt=use_interrupt)
        soc.write_ram(IN, list(range(16)))
        driver.run(simple_program().words(), {0: PROG, 1: IN, 2: OUT})
        results[use_interrupt] = soc.bus.stats["requests.cpu"]
    assert results[False] > results[True]


def test_driver_validation(soc_passthrough):
    driver = OuessantDriver(soc_passthrough)
    with pytest.raises(DriverError):
        driver.run(simple_program().words(), {1: IN})  # no bank 0
    with pytest.raises(DriverError):
        driver.configure({0: PROG}, prog_size=0)
    with pytest.raises(DriverError):
        driver.place_program([0], 0x100)  # not in RAM


# ---------------------------------------------------------------------------
# baremetal runtime
# ---------------------------------------------------------------------------

def test_baremetal_run_and_data_helpers(soc_passthrough):
    soc = soc_passthrough
    runtime = BaremetalRuntime(soc)
    runtime.write_words(IN, list(range(16)))
    result = runtime.run(simple_program().words(), {0: PROG, 1: IN, 2: OUT})
    assert runtime.read_words(OUT, 16) == list(range(16))
    assert runtime.last_result is result


def test_baremetal_cache_flush_fallback(soc_passthrough):
    from repro.mem.cache import Cache
    cache = Cache(size_bytes=1024, line_bytes=32)
    cache.access_read(OUT)
    runtime = BaremetalRuntime(soc_passthrough, cache=cache)
    runtime.write_words(IN, list(range(16)))
    result = runtime.run(simple_program().words(), {0: PROG, 1: IN, 2: OUT})
    assert result.notes["cache_flush"] == 1
    assert not cache.holds(OUT)


# ---------------------------------------------------------------------------
# Linux model
# ---------------------------------------------------------------------------

def test_linux_overhead_decomposition_is_3000_cycles():
    costs = LinuxCosts()
    assert costs.blocking_run_overhead == 3000


def test_linux_run_adds_overhead_over_baremetal():
    cycles = {}
    for env in ("baremetal", "linux"):
        soc = SoC(racs=[PassthroughRac(block_size=16)])
        if env == "baremetal":
            runtime = BaremetalRuntime(soc)
        else:
            runtime = LinuxRuntime(soc)
            runtime.open_device()
        soc.write_ram(IN, list(range(16)))
        result = runtime.run(simple_program().words(),
                             {0: PROG, 1: IN, 2: OUT})
        cycles[env] = result.total_cycles
    assert cycles["linux"] - cycles["baremetal"] == LinuxCosts().blocking_run_overhead


def test_linux_copy_path_charges_per_word():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    runtime = LinuxRuntime(soc, data_path="copy")
    before = soc.sim.cycle
    staged = runtime.stage_input(IN, list(range(16)))
    costs = LinuxCosts()
    assert staged == costs.syscall_entry + costs.syscall_exit + 16 * costs.copy_per_word
    words, fetched = runtime.fetch_output(IN, 16)
    assert words == list(range(16))
    assert fetched == staged
    assert soc.sim.cycle - before == staged + fetched


def test_linux_mmap_path_is_zero_copy():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    runtime = LinuxRuntime(soc, data_path="mmap")
    runtime.open_device()
    assert runtime.stage_input(IN, [1, 2]) == 0
    _, cost = runtime.fetch_output(IN, 2)
    assert cost == 0


def test_linux_polling_mode_charges_poll_syscalls():
    soc = SoC(racs=[PassthroughRac(block_size=16, compute_latency=300)])
    runtime = LinuxRuntime(soc, use_interrupt=False)
    runtime.open_device()
    soc.write_ram(IN, list(range(16)))
    result = runtime.run(simple_program().words(), {0: PROG, 1: IN, 2: OUT})
    polls = runtime.driver.poll_count
    assert polls > 0
    assert result.sw_overhead_cycles >= LinuxCosts().poll_syscall * polls


def test_linux_rejects_unknown_data_path():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    with pytest.raises(DriverError):
        LinuxRuntime(soc, data_path="zero-copy-magic")


# ---------------------------------------------------------------------------
# transparent library
# ---------------------------------------------------------------------------

def test_library_dft_matches_golden(soc_dft64, q15_signal):
    library = OuessantLibrary(soc_dft64, environment="baremetal")
    re, im = q15_signal(64)
    out = library.dft(re, im)
    assert out == fp.fft_q15(re, im)


def test_library_idct_matches_golden(soc_idct, coef_block):
    library = OuessantLibrary(soc_idct, environment="baremetal")
    assert library.idct(coef_block) == fp.idct2_q15(coef_block)


def test_library_fir_matches_golden(q15_signal):
    soc = SoC(racs=[FIRRac(block_size=32, n_taps=4)])
    library = OuessantLibrary(soc, environment="baremetal")
    samples, _ = q15_signal(32)
    taps = [8192, 4096, 2048, 1024]
    assert library.fir(samples, taps) == fir_q15(samples, taps)


def test_library_multi_accelerator_soc(q15_signal, coef_block):
    soc = SoC(racs=[IDCTRac(), DFTRac(n_points=64)])
    library = OuessantLibrary(soc, environment="baremetal")
    re, im = q15_signal(64)
    assert library.dft(re, im) == fp.fft_q15(re, im)
    assert library.idct(coef_block) == fp.idct2_q15(coef_block)


def test_library_validates_sizes(soc_dft64):
    library = OuessantLibrary(soc_dft64)
    with pytest.raises(DriverError):
        library.dft([0] * 32, [0] * 32)  # RAC is configured for 64


def test_library_missing_accelerator(soc_dft64, coef_block):
    library = OuessantLibrary(soc_dft64)
    with pytest.raises(DriverError):
        library.idct(coef_block)


def test_library_unknown_environment(soc_dft64):
    with pytest.raises(DriverError):
        OuessantLibrary(soc_dft64, environment="windows")


def test_library_repeated_calls_allocate_fresh_buffers(soc_dft64, q15_signal):
    library = OuessantLibrary(soc_dft64, environment="baremetal")
    re, im = q15_signal(64)
    first = library.dft(re, im)
    second = library.dft(re, im)
    assert first == second
