"""Tests for the JPEG application layer."""

import numpy as np
import pytest

from repro.apps import jpeg
from repro.rac.idct import IDCTRac
from repro.sim.errors import ConfigurationError
from repro.sw.library import OuessantLibrary
from repro.system import SoC


def test_zigzag_order_is_a_permutation():
    order = jpeg.zigzag_order()
    assert len(order) == 64
    assert len(set(order)) == 64
    # the canonical first few entries of the JPEG scan
    assert order[:6] == [(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]
    assert order[-1] == (7, 7)


def test_zigzag_roundtrip(rng):
    block = [[rng.randint(-300, 300) for _ in range(8)] for _ in range(8)]
    assert jpeg.from_zigzag(jpeg.to_zigzag(block)) == block


def test_from_zigzag_validates_length():
    with pytest.raises(ConfigurationError):
        jpeg.from_zigzag([0] * 63)


def test_quality_scaling_monotone():
    low = np.array(jpeg.quality_scaled_table(10))
    mid = np.array(jpeg.quality_scaled_table(50))
    high = np.array(jpeg.quality_scaled_table(95))
    assert (low >= mid).all()
    assert (mid >= high).all()
    assert (high >= 1).all()
    with pytest.raises(ConfigurationError):
        jpeg.quality_scaled_table(0)


def test_encode_validates_geometry():
    with pytest.raises(ConfigurationError):
        jpeg.encode(np.zeros((10, 16)))
    with pytest.raises(ConfigurationError):
        jpeg.encode(np.zeros(16))


def test_encode_decode_golden_psnr():
    image = jpeg.test_card(32)
    encoded = jpeg.encode(image, quality=90)
    assert encoded.n_blocks == 16
    decoder = jpeg.JPEGDecoder()  # golden backend
    decoded = decoder.decode(encoded)
    assert decoder.blocks_decoded == 16
    assert jpeg.psnr(image, decoded) > 30.0


def test_lower_quality_lower_psnr():
    image = jpeg.test_card(32)
    good = jpeg.JPEGDecoder().decode(jpeg.encode(image, quality=90))
    bad = jpeg.JPEGDecoder().decode(jpeg.encode(image, quality=10))
    assert jpeg.psnr(image, good) > jpeg.psnr(image, bad)


def test_hardware_backend_matches_golden():
    image = jpeg.test_card(16)
    encoded = jpeg.encode(image, quality=75)
    soc = SoC(racs=[IDCTRac()])
    library = OuessantLibrary(soc, environment="baremetal")
    hw = jpeg.JPEGDecoder(library=library)
    golden = jpeg.JPEGDecoder()
    assert np.array_equal(hw.decode(encoded), golden.decode(encoded))
    assert hw.cycles > 0


def test_iss_backend_matches_golden():
    image = jpeg.test_card(16)
    encoded = jpeg.encode(image, quality=75)
    iss = jpeg.JPEGDecoder(use_iss=True)
    golden = jpeg.JPEGDecoder()
    assert np.array_equal(iss.decode(encoded), golden.decode(encoded))
    # ~5000 cycles per block on the ISS
    assert iss.cycles > 4000 * encoded.n_blocks


def test_backend_exclusivity():
    with pytest.raises(ConfigurationError):
        jpeg.JPEGDecoder(library=object(), use_iss=True)  # type: ignore[arg-type]


def test_psnr_of_identical_images_is_infinite():
    image = jpeg.test_card(16)
    assert jpeg.psnr(image, image) == float("inf")
