"""Span reconstruction: synthetic traces and truncated-trace refusal."""

import warnings

import pytest

from repro.core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from repro.core.program import OuProgram
from repro.obs import reconstruct_spans
from repro.obs.spans import Span, SpanTrace
from repro.rac.scale import PassthroughRac
from repro.sim.errors import SimulationError
from repro.sim.tracing import Trace
from repro.sw.profiler import profile_run
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


# ---------------------------------------------------------------------------
# synthetic traces
# ---------------------------------------------------------------------------

def _controller_trace():
    """A hand-written controller run: fetch -> decode -> xfer -> idle."""
    t = Trace()
    ctrl = "ocp.ctrl"
    t.record(10, ctrl, "start", {})
    t.record(10, ctrl, "phase", {"state": "fetch", "at": 10})
    t.record(11, ctrl, "phase", {"state": "decode", "at": 12})
    t.record(12, ctrl, "instr", {"pc": 0, "mnemonic": "st 1, #8"})
    t.record(12, ctrl, "phase", {"state": "xfer_to", "at": 13})
    t.record(18, ctrl, "stall", {"cycles": 3, "at": 19})
    t.record(20, ctrl, "phase", {"state": "fetch", "at": 21})
    t.record(21, ctrl, "phase", {"state": "idle", "at": 22})
    return t


def test_state_spans_follow_phase_boundaries():
    spans = reconstruct_spans(_controller_trace())
    states = spans.query(category="state")
    assert [(s.name, s.begin, s.end) for s in states] == [
        ("fetch", 10, 12),
        ("decode", 12, 13),
        ("xfer_to", 13, 21),
        ("fetch", 21, 22),
    ]


def test_instruction_span_covers_decode_to_next_fetch():
    spans = reconstruct_spans(_controller_trace())
    (instr,) = spans.query(category="instr")
    assert instr.name == "st 1, #8"
    assert (instr.begin, instr.end) == (12, 21)
    # the decode and xfer states it drove are its children
    child_names = {c.name for c in instr.children}
    assert child_names == {"decode", "xfer_to"}


def test_stall_span_nests_inside_its_transfer_state():
    spans = reconstruct_spans(_controller_trace())
    (stall,) = spans.query(category="stall")
    assert (stall.begin, stall.end) == (16, 19)
    (xfer,) = spans.query(category="state", name="xfer_to")
    assert stall in xfer.children


def test_query_filters_compose():
    spans = reconstruct_spans(_controller_trace())
    assert len(spans.query(category="state", name="fetch")) == 2
    assert len(spans.query(category="state", name="fetch", since=20)) == 1
    assert spans.query(component="nope") == []
    assert spans.total_cycles("state") == 12


def test_overlap_cycles_is_union_of_intersections():
    trace = SpanTrace([], end_cycle=0)
    a = [Span("a", "x", "c", 0, 10), Span("a", "x", "c", 20, 30)]
    b = [Span("b", "y", "d", 5, 25), Span("b", "y", "d", 8, 12)]
    # [5,10) and [20,25): the [8,10) double-cover counts once
    assert trace.overlap_cycles(a, b) == 10
    assert trace.overlap_cycles(a, []) == 0


def test_driver_op_adopts_everything_it_contains():
    t = _controller_trace()
    t.record(5, "driver0", "op.begin", {"op": "run"})
    t.record(30, "driver0", "op.end", {"op": "run"})
    spans = reconstruct_spans(t)
    (op,) = spans.query(category="driver")
    assert (op.begin, op.end) == (5, 30)
    descendants = {s.category for s in op.walk()} - {"driver"}
    assert descendants == {"instr", "state", "stall"}


def test_unmatched_op_begin_closes_at_trace_end():
    t = Trace()
    t.record(5, "driver0", "op.begin", {"op": "run"})
    t.record(9, "driver0", "noise", {})
    spans = reconstruct_spans(t)
    (op,) = spans.query(category="driver")
    assert op.end == 10  # one past the last recorded event


def test_bus_spans_pair_grant_and_complete_per_master():
    t = Trace()
    t.record(3, "bus", "grant", {"master": "m0", "kind": "read",
                                 "address": "0x0", "burst": 4})
    t.record(4, "bus", "grant", {"master": "m1", "kind": "write",
                                 "address": "0x10", "burst": 1})
    t.record(6, "bus", "complete", {"master": "m1", "latency": 2})
    t.record(8, "bus", "complete", {"master": "m0", "latency": 5})
    spans = reconstruct_spans(t)
    by_master = {s.data["master"]: s for s in spans.query(category="bus")}
    assert (by_master["m0"].begin, by_master["m0"].end) == (3, 9)
    assert (by_master["m1"].begin, by_master["m1"].end) == (4, 7)


def test_rac_spans_pair_start_and_end_inclusive():
    t = Trace()
    t.record(7, "dft", "start_op", {"op": 1})
    t.record(19, "dft", "end_op", {})
    spans = reconstruct_spans(t)
    (busy,) = spans.query(category="rac")
    assert (busy.begin, busy.end) == (7, 20)


# ---------------------------------------------------------------------------
# truncated traces refuse loudly (mirrors faults.harness.fault_history)
# ---------------------------------------------------------------------------

def _capacity_limited_run(capacity):
    """A real OCP run whose trace overflows at ``capacity`` events."""
    soc = SoC(racs=[PassthroughRac(block_size=8)],
              trace=Trace(capacity=capacity))
    program = OuProgram().stream_to(1, 8).execs().stream_from(2, 8).eop()
    soc.write_ram(IN, list(range(8)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=50_000)
    return soc


def test_span_reconstruction_refuses_truncated_trace():
    soc = _capacity_limited_run(capacity=5)
    assert soc.sim.trace.truncated
    with pytest.raises(SimulationError, match="truncated"):
        reconstruct_spans(soc.sim.trace)


def test_profiler_warns_on_truncated_trace():
    from repro.sw.driver import RunResult

    soc = _capacity_limited_run(capacity=5)
    result = RunResult(total_cycles=soc.sim.cycle, config_cycles=0,
                       compute_cycles=0, ack_cycles=0)
    with pytest.warns(RuntimeWarning, match="dropped"):
        profile = profile_run(soc, result)
    assert profile.trace_dropped == soc.sim.trace.dropped
    assert "TRACE TRUNCATED" in profile.render()


def test_profiler_quiet_on_complete_trace():
    from repro.sw.driver import RunResult

    soc = _capacity_limited_run(capacity=None)
    assert not soc.sim.trace.truncated
    result = RunResult(total_cycles=soc.sim.cycle, config_cycles=0,
                       compute_cycles=0, ack_cycles=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        profile_run(soc, result)
    reconstruct_spans(soc.sim.trace)  # and spans build fine
