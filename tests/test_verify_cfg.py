"""CFG construction: blocks, edges, loops, reachability, cycles."""

from repro.core.program import OuProgram, figure4_looped_program
from repro.verify.cfg import build_cfg


def _codes(cfg):
    return [code for code, _index, _msg in cfg.problems]


def test_straight_line_is_one_block():
    program = (OuProgram()
               .mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop().instructions)
    cfg = build_cfg(program)
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0]
    assert (block.start, block.end) == (0, 3)
    assert block.successors == []
    assert not block.falls_off_end
    assert cfg.structured
    assert cfg.acyclic_order() == [0]


def test_loop_blocks_and_back_edge():
    program = figure4_looped_program(256).instructions
    cfg = build_cfg(program)
    assert cfg.structured
    assert len(cfg.loops) == 2
    first, second = cfg.loops
    assert (first.loop_index, first.endl_index, first.trip) == (1, 4, 8)
    assert (second.loop_index, second.endl_index, second.trip) == (7, 10, 8)
    endl_block = cfg.block_at(first.endl_index)
    assert endl_block.back_edge == cfg.block_of[first.loop_index + 1]
    # the back-edge target and the exit edge are both successors
    assert set(endl_block.successors) == {
        cfg.block_of[first.loop_index + 1],
        cfg.block_of[first.endl_index + 1],
    }
    # topological order exists and every reachable block appears once
    order = cfg.acyclic_order()
    assert sorted(order) == sorted(cfg.reachable)


def test_jmp_out_of_range_is_a_problem():
    program = OuProgram().jmp(9).eop().instructions
    cfg = build_cfg(program)
    assert "OU003" in _codes(cfg)


def test_loop_balance_problems():
    nested = (OuProgram().loop(2).loop(2).nop().endl().endl().eop()
              .instructions)
    assert "OU004" in _codes(build_cfg(nested))
    orphan = OuProgram().endl().eop().instructions
    assert "OU005" in _codes(build_cfg(orphan))
    unclosed = OuProgram().loop(4).nop().eop().instructions
    assert "OU006" in _codes(build_cfg(unclosed))


def test_jmp_into_loop_body_is_unstructured():
    program = (OuProgram()
               .jmp(3)               # 0: into the body
               .loop(4)              # 1
               .nop()                # 2
               .nop()                # 3
               .endl()               # 4
               .eop()                # 5
               .instructions)
    cfg = build_cfg(program)
    assert "OU007" in _codes(cfg)


def test_jmp_out_of_loop_body_is_unstructured():
    program = (OuProgram()
               .loop(4)              # 0
               .jmp(3)               # 1: escapes the body
               .endl()               # 2
               .eop()                # 3
               .instructions)
    cfg = build_cfg(program)
    assert "OU007" in _codes(cfg)


def test_unconditional_jmp_cycle_is_infinite():
    program = OuProgram().nop().jmp(0).eop().instructions
    cfg = build_cfg(program)
    assert "OU009" in _codes(cfg)
    assert cfg.acyclic_order() is None


def test_endl_back_edge_is_not_an_infinite_cycle():
    program = OuProgram().loop(3).nop().endl().eop().instructions
    cfg = build_cfg(program)
    assert cfg.structured
    assert cfg.acyclic_order() is not None


def test_dead_code_after_eop():
    program = OuProgram().eop().nop().nop().instructions
    cfg = build_cfg(program)
    assert cfg.dead_ranges() == [(1, 2)]


def test_jmp_skipping_instructions_marks_them_dead():
    program = OuProgram().jmp(3).nop().nop().eop().instructions
    cfg = build_cfg(program)
    assert cfg.dead_ranges() == [(1, 2)]
    assert cfg.reachable_instructions() == {0, 3}


def test_falls_off_end_detected():
    program = OuProgram().jmp(2).eop().nop().instructions
    cfg = build_cfg(program)
    tail = cfg.block_at(2)
    assert tail.falls_off_end
    assert tail.id in cfg.reachable


def test_empty_program_builds_empty_cfg():
    cfg = build_cfg([])
    assert cfg.blocks == []
    assert cfg.structured
