"""Tests for the fixed-point golden models (Q15, FFT, IDCT, packing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import fixedpoint as fp

q15 = st.integers(fp.Q15_MIN, fp.Q15_MAX)


@given(st.floats(-2.0, 2.0, allow_nan=False))
def test_float_q15_roundtrip_saturates(value):
    q = fp.float_to_q15(value)
    assert fp.Q15_MIN <= q <= fp.Q15_MAX
    if -1.0 < value < 0.999:
        assert abs(fp.q15_to_float(q) - value) < 1e-4


@given(q15, q15)
def test_q15_mul_close_to_real_product(a, b):
    got = fp.q15_mul(a, b)
    expected = (a / fp.Q15_ONE) * (b / fp.Q15_ONE)
    assert abs(got / fp.Q15_ONE - expected) <= 1.0 / fp.Q15_ONE


def test_q15_mul_rounds_half_up():
    # 0.5 * 0.5 = 0.25 exactly
    half = 1 << 14
    assert fp.q15_mul(half, half) == 1 << 13


@given(q15, q15)
def test_q15_mul_sat_bounded(a, b):
    assert fp.Q15_MIN <= fp.q15_mul_sat(a, b) <= fp.Q15_MAX


@pytest.mark.parametrize("n", [8, 16, 64, 256])
def test_twiddle_tables_match_trig(n):
    cos_t, sin_t = fp.twiddle_table_q15(n)
    ks = np.arange(n)
    np.testing.assert_allclose(
        np.array(cos_t) / fp.Q15_ONE, np.cos(2 * np.pi * ks / n), atol=2e-4
    )
    np.testing.assert_allclose(
        np.array(sin_t) / fp.Q15_ONE, -np.sin(2 * np.pi * ks / n), atol=2e-4
    )


@given(st.integers(0, 255))
def test_bit_reverse_involution(value):
    assert fp.bit_reverse(fp.bit_reverse(value, 8), 8) == value


@pytest.mark.parametrize("n", [8, 16, 64, 256])
def test_fft_q15_matches_float_reference(n, ):
    rng = np.random.default_rng(n)
    re = [int(v) for v in rng.integers(-12000, 12000, n)]
    im = [int(v) for v in rng.integers(-12000, 12000, n)]
    out_re, out_im = fp.fft_q15(re, im)
    ref_re, ref_im = fp.dft_reference(re, im)
    # per-stage scaling truncation: error grows with log2(n)
    tol = 2 * int(np.log2(n)) + 2
    assert np.max(np.abs(np.array(out_re) - ref_re)) <= tol
    assert np.max(np.abs(np.array(out_im) - ref_im)) <= tol


def test_fft_q15_impulse_is_flat():
    n = 16
    re = [fp.Q15_MAX] + [0] * (n - 1)
    out_re, out_im = fp.fft_q15(re, [0] * n)
    expected = fp.Q15_MAX // n
    assert all(abs(v - expected) <= 2 for v in out_re)
    assert all(abs(v) <= 2 for v in out_im)


def test_fft_q15_rejects_bad_sizes():
    with pytest.raises(ValueError):
        fp.fft_q15([0] * 12, [0] * 12)
    with pytest.raises(ValueError):
        fp.fft_q15([0] * 8, [0] * 4)


@pytest.mark.parametrize("n", [8, 16, 64])
def test_direct_dft_agrees_with_fft(n):
    rng = np.random.default_rng(n + 1)
    re = [int(v) for v in rng.integers(-12000, 12000, n)]
    im = [int(v) for v in rng.integers(-12000, 12000, n)]
    d_re, d_im = fp.direct_dft_q15(re, im)
    f_re, f_im = fp.fft_q15(re, im)
    tol = 2 * int(np.log2(n)) + 3
    assert max(abs(a - b) for a, b in zip(d_re, f_re)) <= tol
    assert max(abs(a - b) for a, b in zip(d_im, f_im)) <= tol


def test_idct_matrix_orthogonality():
    m = np.array(fp.idct_coefficient_matrix(), dtype=float) / (1 << fp.IDCT_COEF_BITS)
    # M is the IDCT basis: M @ M.T should be close to identity
    np.testing.assert_allclose(m @ m.T, np.eye(8), atol=1e-3)


def test_idct2_q15_close_to_float_reference(coef_block):
    fixed = np.array(fp.idct2_q15(coef_block))
    ref = fp.idct2_reference(coef_block)
    assert np.max(np.abs(fixed - ref)) <= 2.0


def test_idct2_dc_only_block_is_constant():
    block = [[0] * 8 for _ in range(8)]
    block[0][0] = 800
    out = fp.idct2_q15(block)
    values = {v for row in out for v in row}
    assert len(values) == 1
    assert abs(next(iter(values)) - 100) <= 1  # 800/8


def test_idct2_rejects_bad_shapes():
    with pytest.raises(ValueError):
        fp.idct2_q15([[0] * 8] * 7)
    with pytest.raises(ValueError):
        fp.idct1_q15([0] * 7)


def test_idct2_saturates_extremes():
    block = [[32767] * 8 for _ in range(8)]
    out = fp.idct2_q15(block)
    assert all(-32768 <= v <= 32767 for row in out for v in row)


@given(st.lists(q15, min_size=1, max_size=32))
def test_block_word_helpers_roundtrip(values):
    padded = (values * 64)[:64]
    block = [padded[8 * i : 8 * i + 8] for i in range(8)]
    assert fp.words_to_block(fp.block_to_words(block)) == block


@given(st.lists(q15, min_size=4, max_size=16), st.lists(q15, min_size=4, max_size=16))
def test_complex_packing_roundtrips(re, im):
    n = min(len(re), len(im))
    re, im = re[:n], im[:n]
    assert fp.words_to_complex(fp.complex_to_words(re, im)) == (re, im)
    assert fp.deinterleave_complex(fp.interleave_complex(re, im)) == (re, im)


def test_interleave_rejects_mismatch():
    with pytest.raises(ValueError):
        fp.interleave_complex([1, 2], [3])
    with pytest.raises(ValueError):
        fp.deinterleave_complex([1, 2, 3])


# -- vectorized datapath vs scalar reference (hot-path bit-exactness) -------

@given(st.data(), st.sampled_from([2, 4, 8, 16, 64, 256]))
@settings(max_examples=40, deadline=None)
def test_fft_q15_vectorized_matches_scalar_reference(data, n):
    """The numpy FFT used on the simulator's hot path must be
    bit-identical to the retained pure-Python butterfly, sample for
    sample, including q15 rounding and the per-stage >>1 scaling."""
    word = st.integers(-(1 << 15), (1 << 15) - 1)
    re = data.draw(st.lists(word, min_size=n, max_size=n))
    im = data.draw(st.lists(word, min_size=n, max_size=n))
    assert fp.fft_q15(re, im) == fp.fft_q15_scalar(re, im)


def test_fft_q15_vectorized_matches_scalar_at_extremes():
    for n in (2, 8, 1024):
        lo = [-(1 << 15)] * n
        hi = [(1 << 15) - 1] * n
        assert fp.fft_q15(lo, hi) == fp.fft_q15_scalar(lo, hi)
        assert fp.fft_q15(hi, lo) == fp.fft_q15_scalar(hi, lo)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_idct2_q15_vectorized_matches_scalar_reference(data):
    """The matmul IDCT must reproduce the scalar row/column passes
    bit-exactly, saturation included."""
    coef = st.integers(-(1 << 15), (1 << 15) - 1)
    block = data.draw(st.lists(st.lists(coef, min_size=8, max_size=8),
                               min_size=8, max_size=8))
    assert fp.idct2_q15(block) == fp.idct2_q15_scalar(block)


def test_idct2_q15_vectorized_matches_scalar_at_extremes():
    for fill in (-(1 << 15), (1 << 15) - 1):
        block = [[fill] * 8 for _ in range(8)]
        assert fp.idct2_q15(block) == fp.idct2_q15_scalar(block)
