"""Tests for the standalone DMA peripheral."""

import pytest

from repro.bus.bus import SystemBus
from repro.mem.dma import (
    CTRL_DONE,
    CTRL_IE,
    CTRL_START,
    DMAEngine,
    REG_COUNT,
    REG_CTRL,
    REG_DST,
    REG_SRC,
)
from repro.mem.memory import Memory
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator


def make_system(buffer_words=16):
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    dma = DMAEngine("dma", bus=bus, buffer_words=buffer_words)
    bus.attach_slave("dma", 0x1_0000, 64, dma)
    sim.add(dma)
    return sim, bus, mem, dma


def program(dma, src, dst, count, ie=False):
    dma.write_word(REG_SRC, src)
    dma.write_word(REG_DST, dst)
    dma.write_word(REG_COUNT, count)
    dma.write_word(REG_CTRL, CTRL_START | (CTRL_IE if ie else 0))


def test_copy_moves_data():
    sim, bus, mem, dma = make_system()
    mem.load_words(0x100, list(range(40)))
    program(dma, 0x100, 0x800, 40)
    sim.run_until(lambda: dma.done, max_cycles=2000)
    assert mem.dump_words(0x800, 40) == list(range(40))


def test_done_bit_and_registers_readable():
    sim, bus, mem, dma = make_system()
    mem.load_words(0, [5])
    program(dma, 0x0, 0x10, 1)
    sim.run_until(lambda: dma.read_word(REG_CTRL) & CTRL_DONE, max_cycles=200)
    assert dma.read_word(REG_SRC) == 4  # advanced past the moved word
    assert dma.read_word(REG_COUNT) == 1


def test_interrupt_raised_when_enabled():
    sim, bus, mem, dma = make_system()
    program(dma, 0x0, 0x10, 2, ie=True)
    sim.run_until(lambda: dma.irq.pending, max_cycles=200)
    assert dma.done


def test_no_interrupt_without_ie():
    sim, bus, mem, dma = make_system()
    program(dma, 0x0, 0x10, 2, ie=False)
    sim.run_until(lambda: dma.done, max_cycles=200)
    assert not dma.irq.pending


def test_zero_count_finishes_immediately():
    sim, bus, mem, dma = make_system()
    program(dma, 0x0, 0x10, 0)
    assert dma.done


def test_chunking_respects_buffer_size():
    sim, bus, mem, dma = make_system(buffer_words=8)
    mem.load_words(0x0, list(range(100, 130)))
    program(dma, 0x0, 0x400, 30)
    sim.run_until(lambda: dma.done, max_cycles=2000)
    assert mem.dump_words(0x400, 30) == list(range(100, 130))
    # 30 words in 8-word chunks: 4 read bursts + 4 write bursts
    assert dma.bus.stats["requests.dma"] == 8


def test_busy_flag_during_transfer():
    sim, bus, mem, dma = make_system()
    program(dma, 0x0, 0x10, 16)
    assert dma.busy
    sim.run_until(lambda: dma.done, max_cycles=500)
    assert not dma.busy


def test_overlapping_copy_forward_is_chunk_safe():
    sim, bus, mem, dma = make_system(buffer_words=64)
    mem.load_words(0x100, list(range(64)))
    # dst > src but gap >= buffer: one full chunk staged then written
    program(dma, 0x100, 0x200, 64)
    sim.run_until(lambda: dma.done, max_cycles=2000)
    assert mem.dump_words(0x200, 64) == list(range(64))


def test_bad_buffer_size_rejected():
    with pytest.raises(ConfigurationError):
        DMAEngine("bad", buffer_words=0)


def test_reset_clears_state():
    sim, bus, mem, dma = make_system()
    program(dma, 0x0, 0x10, 8, ie=True)
    sim.run_until(lambda: dma.done, max_cycles=500)
    dma.reset()
    assert not dma.done
    assert not dma.irq.pending
    assert dma.read_word(REG_SRC) == 0
