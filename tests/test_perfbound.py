"""Unit, property and mutant tests for ``repro.perfbound`` (OU3xx).

Complements ``tests/test_perfbound_soundness.py`` (the differential
gate): this file pins the refusal discipline (OU300 rather than a
wrong bound), the advisory diagnostics (OU301..OU304), the
:class:`~repro.perfbound.CostBound` surface, the algebraic properties
the interval cost semantics must satisfy, a mutant corpus proving the
measurement harness *would* catch an under-approximating cost model,
and the soclint throughput-closure checks (OU162/OU163) built on top.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.program import OuProgram
from repro.obs import compare_attribution
from repro.perfbound import CostModel, RacTiming, bound_program
from repro.perfbound.engine import bound_cycles_hi
from repro.rac.scale import PassthroughRac
from repro.soclint import lint_soc
from repro.system import RAM_BASE, SoC
from repro.verify.domain import INF, Interval

from tests.test_perfbound_soundness import measure


def _rac(block=8, depth=16, latency=2):
    return PassthroughRac(block_size=block, fifo_depth=depth,
                          compute_latency=latency)


def _block(p: OuProgram, n: int = 8) -> OuProgram:
    return p.stream_to(1, n).execs().stream_from(2, n)


def _bound(p: OuProgram, rac=None, **kwargs):
    return bound_program(list(p.instructions), rac, **kwargs)


def codes(bound) -> List[str]:
    return bound.report.codes()


# -- OU300: refusal discipline -------------------------------------------


def test_empty_program_is_refused():
    bound = bound_program([], _rac())
    assert not bound.bounded
    assert not bound.clean
    assert codes(bound) == ["OU300"]
    assert bound.tightness() is None


def test_waitf_is_refused():
    p = OuProgram()
    _block(p).waitf("out", 0, 1).eop()
    bound = _bound(p, _rac())
    assert not bound.bounded
    assert "OU300" in codes(bound)
    assert "waitf" in bound.report.render()


def test_transfers_without_rac_contract_are_refused():
    p = OuProgram()
    _block(p).eop()
    bound = _bound(p, rac=None)
    assert not bound.bounded
    assert "OU300" in codes(bound)


def test_blocking_exec_overflowing_fifo_is_refused():
    # the op emits 32 words through a 16-deep FIFO nobody drains while
    # exec blocks: the wait has no static bound
    p = OuProgram()
    p.stream_to(1, 32, chunk=32).exec_().stream_from(2, 32).eop()
    bound = _bound(p, _rac(block=32, depth=16))
    assert not bound.bounded
    assert "OU300" in codes(bound)


def test_unstructured_flow_is_refused():
    p = OuProgram()
    p.loop(2).nop()  # unclosed loop: no reducible region
    bound = _bound(p, _rac())
    assert not bound.bounded
    assert "OU300" in codes(bound)


def test_bound_cycles_hi_mirrors_refusal():
    p = OuProgram()
    _block(p).eop()
    assert bound_cycles_hi(list(p.instructions), None) is None
    assert bound_cycles_hi(list(p.instructions), _rac()) is not None


# -- OU301..OU304: advisory diagnostics ----------------------------------


def test_ou301_flags_fifo_round_trips():
    p = OuProgram()
    p.stream_to(1, 32, chunk=32).execs().stream_from(2, 32).eop()
    bound = _bound(p, _rac(block=32, depth=8))
    assert bound.bounded
    assert "OU301" in codes(bound)
    assert bound.clean  # advisory: warnings do not gate the exit code


def test_ou302_flags_control_dominated_programs():
    p = OuProgram()
    for _ in range(20):
        p.nop()
    p.eop()
    bound = _bound(p)
    assert bound.bounded
    assert "OU302" in codes(bound)


def test_ou303_flags_shared_bus():
    p = OuProgram()
    _block(p).eop()
    rac = _rac()
    model = CostModel(rac=RacTiming.of(rac), masters=2)
    bound = _bound(p, rac, model=model)
    assert bound.bounded
    assert "OU303" in codes(bound)


def test_ou304_flags_sla_violation_and_suppression():
    p = OuProgram()
    _block(p).eop()
    bound = _bound(p, _rac(), sla_cycles=1)
    assert bound.bounded
    assert "OU304" in codes(bound)
    assert not bound.clean
    suppressed = _bound(p, _rac(), sla_cycles=1, suppress=("OU304",))
    assert suppressed.clean
    generous = _bound(p, _rac(), sla_cycles=10_000_000)
    assert "OU304" not in codes(generous)


# -- CostBound surface ---------------------------------------------------


def test_costbound_json_and_render():
    p = OuProgram()
    _block(p).eop()
    bound = _bound(p, _rac())
    payload = bound.to_json()
    assert payload["bounded"] is True
    assert payload["total"]["lo"] <= payload["total"]["hi"]
    assert set(payload["attribution"]) == {
        "transfer", "compute", "control"}
    assert payload["tightness"] == pytest.approx(bound.tightness())
    text = bound.render()
    assert "cost bound [bounded]" in text
    assert "tightness" in text
    with pytest.raises(KeyError):
        bound.bucket("latency")


def test_unbounded_json_uses_null_hi():
    bound = bound_program([], _rac())
    payload = bound.to_json()
    assert payload["bounded"] is False
    assert payload["total"]["hi"] is None
    assert "UNBOUNDED" in bound.render()


def test_buckets_sum_to_total():
    p = OuProgram()
    _block(p).wait(9).eop()
    bound = _bound(p, _rac())
    total = bound.transfer + bound.compute + bound.control
    assert (int(total.lo), int(total.hi)) == \
        (int(bound.total.lo), int(bound.total.hi))


# -- algebraic properties ------------------------------------------------


def test_concat_monotonicity():
    """Appending work never shrinks either end of the bound."""
    rac = _rac()
    prev_lo, prev_hi = 0, 0
    for blocks in range(1, 6):
        p = OuProgram()
        for _ in range(blocks):
            _block(p)
        p.eop()
        bound = _bound(p, rac)
        assert bound.bounded
        assert int(bound.total.lo) >= prev_lo
        assert int(bound.total.hi) >= prev_hi
        prev_lo, prev_hi = int(bound.total.lo), int(bound.total.hi)


def test_batch_widening_is_exact_per_trip():
    """Loop acceleration is linear in the trip count: the per-trip
    increment is constant, and extrapolates exactly past the unroll
    limit (trip 100 is accelerated, not unrolled)."""
    rac = _rac()

    def total(trip: int) -> Interval:
        p = OuProgram()
        p.loop(trip)
        _block(p)
        p.endl().eop()
        bound = _bound(p, rac)
        assert bound.bounded
        return bound.total

    t2, t3, t4 = total(2), total(3), total(4)
    d_lo = int(t3.lo) - int(t2.lo)
    d_hi = int(t3.hi) - int(t2.hi)
    assert d_lo > 0 and d_hi > 0
    assert (int(t4.lo) - int(t3.lo), int(t4.hi) - int(t3.hi)) == \
        (d_lo, d_hi)
    t100 = total(100)
    assert int(t100.lo) == int(t2.lo) + 98 * d_lo
    assert int(t100.hi) == int(t2.hi) + 98 * d_hi


def test_wait_shifts_control_exactly():
    p = OuProgram()
    _block(p).eop()
    q = OuProgram()
    _block(q).wait(37).eop()
    rac = _rac()
    base, waited = _bound(p, rac), _bound(q, rac)
    # wait(37) adds its own fetch/decode (2), the 37 held cycles, and
    # one more beat in the microcode prefetch burst
    extra_lo = int(waited.control.lo) - int(base.control.lo)
    extra_hi = int(waited.control.hi) - int(base.control.hi)
    assert extra_lo == extra_hi == 37 + 2 + 1


# -- mutant corpus: under-approximation must be observable ---------------


def _shrink(interval: Interval, k: int) -> Interval:
    return Interval(int(interval.lo) // k, int(interval.hi) // k)


class QuarterTransferModel(CostModel):
    """Mutant: transfer costs slashed 4x, stall ceiling dropped."""

    def mvtc_cost(self, count):
        return _shrink(super().mvtc_cost(count), 4)

    def mvfc_cost(self, count):
        return _shrink(super().mvfc_cost(count), 4)

    def stall_ceiling(self, ops_hi):
        return Interval.point(0)


class FreeComputeModel(CostModel):
    """Mutant: blocking exec modeled as a single cycle."""

    def exec_cost(self):
        return Interval.point(1)

    def stall_ceiling(self, ops_hi):
        return Interval.point(0)


class FreeControlModel(CostModel):
    """Mutant: fetch/decode and the prefetch burst cost nothing."""

    def fetch_decode_cost(self, index):
        return Interval.point(0)

    def prefetch_cost(self, prog_size):
        return Interval.point(0)


class InflatedFloorModel(CostModel):
    """Mutant: a lower bound above what the hardware can ever hit."""

    def fetch_decode_cost(self, index):
        base = super().fetch_decode_cost(index)
        return base.add_const(50)


def _mutant_caught(program, factory, model, mem_latency=1) -> bool:
    bound = bound_program(list(program.instructions), factory(),
                          model=model)
    assert bound.bounded
    report = measure(program, factory(), mem_latency=mem_latency)
    return not compare_attribution(report, bound).sound


def test_mutant_transfer_underapproximation_is_caught():
    factory = lambda: _rac(block=8, depth=16, latency=2)  # noqa: E731
    timing = RacTiming.of(factory())
    p = OuProgram()
    for _ in range(4):
        _block(p)
    p.eop()
    mutant = QuarterTransferModel(rac=timing)
    assert _mutant_caught(p, factory, mutant)


def test_mutant_compute_underapproximation_is_caught():
    factory = lambda: _rac(block=8, depth=16, latency=200)  # noqa: E731
    timing = RacTiming.of(factory())
    p = OuProgram()
    p.stream_to(1, 8).exec_().stream_from(2, 8).eop()
    mutant = FreeComputeModel(rac=timing)
    assert _mutant_caught(p, factory, mutant)


def test_mutant_control_underapproximation_is_caught():
    factory = lambda: _rac()  # noqa: E731
    timing = RacTiming.of(factory())
    p = OuProgram()
    _block(p).eop()
    mutant = FreeControlModel(rac=timing)
    assert _mutant_caught(p, factory, mutant)


def test_mutant_inflated_lower_bound_is_caught():
    factory = lambda: _rac()  # noqa: E731
    timing = RacTiming.of(factory())
    p = OuProgram()
    _block(p).eop()
    mutant = InflatedFloorModel(rac=timing)
    assert _mutant_caught(p, factory, mutant)


def test_reference_model_is_not_caught():
    """Control: the real cost model passes the same harness."""
    factory = lambda: _rac()  # noqa: E731
    timing = RacTiming.of(factory())
    p = OuProgram()
    for _ in range(4):
        _block(p)
    p.eop()
    assert not _mutant_caught(p, factory, CostModel(rac=timing))


# -- model validation ----------------------------------------------------


def test_cost_model_rejects_open_latency_contracts():
    with pytest.raises(ValueError):
        CostModel(mem_latency=Interval(1, INF))
    with pytest.raises(ValueError):
        CostModel(mem_latency=Interval(-1, 1))


# -- soclint throughput closure (OU162/OU163) ----------------------------


BANKS = {0: RAM_BASE + 0x1000, 1: RAM_BASE + 0x2000,
         2: RAM_BASE + 0x3000}


def _firmware() -> OuProgram:
    p = OuProgram()
    _block(p, 16).eop()
    return p


def _throughput_soc() -> SoC:
    return SoC(racs=[PassthroughRac(block_size=16)])


def _firmware_wcet(soc: SoC) -> int:
    ocp = soc.ocp
    model = CostModel(
        protocol=soc.bus.protocol,
        mem_latency=Interval.point(
            getattr(soc.memory, "access_latency", 1)),
        rac=RacTiming.of(ocp.rac),
        ibuf_size=ocp.controller.ibuf_size,
        prefetch=ocp.controller.prefetch,
    )
    bound = bound_program(list(_firmware().instructions), ocp.rac,
                          model=model)
    assert bound.bounded
    return int(bound.total.hi)


def test_ou162_throughput_budget_not_closed():
    report = lint_soc(_throughput_soc(), banks=BANKS,
                      firmware=_firmware(), budget_cycles=10)
    findings = [f for f in report.findings if f.code == "OU162"]
    assert findings and findings[0].severity == "error"
    assert not report.clean


def test_ou162_unbounded_firmware():
    p = OuProgram()
    _block(p, 16).waitf("out", 0, 1).eop()
    report = lint_soc(_throughput_soc(), banks=BANKS, firmware=p,
                      budget_cycles=100_000)
    assert "OU162" in report.codes()
    assert "OU300" in [f for f in report.findings
                       if f.code == "OU162"][0].message


def test_ou163_marginal_budget_warns():
    soc = _throughput_soc()
    wcet = _firmware_wcet(soc)
    report = lint_soc(soc, banks=BANKS, firmware=_firmware(),
                      budget_cycles=wcet)  # fits, but > 90% used
    assert "OU162" not in report.codes()
    assert "OU163" in report.codes()
    finding = [f for f in report.findings if f.code == "OU163"][0]
    assert finding.severity == "warning"


def test_throughput_budget_closes_cleanly_with_headroom():
    soc = _throughput_soc()
    wcet = _firmware_wcet(soc)
    report = lint_soc(soc, banks=BANKS, firmware=_firmware(),
                      budget_cycles=wcet * 2)
    assert "OU162" not in report.codes()
    assert "OU163" not in report.codes()


def test_throughput_budget_without_firmware_is_rejected():
    with pytest.raises(ValueError):
        lint_soc(_throughput_soc(), banks=BANKS, firmware=_firmware(),
                 budget_cycles=0)
