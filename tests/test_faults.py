"""Fault-injection subsystem: plans, injectors, traps, recovery."""

import pytest

from repro.core.program import OuProgram
from repro.core.registers import (
    CTRL_S,
    ERR_BUS,
    ERR_ILLEGAL_OP,
    ERR_WATCHDOG,
    OuessantRegisters,
)
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultyFIFO,
    FaultySlave,
    RECOVERABLE_KINDS,
    build_faulty_soc,
    fault_signature,
    fifo_site_for,
)
from repro.mem.memory import Memory
from repro.rac.scale import PassthroughRac
from repro.sim.errors import DriverTimeout, OcpRunError
from repro.sim.tracing import Trace
from repro.sw.driver import OuessantDriver
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000
BLOCK = 16


def loopback_program(use_exec=False):
    program = OuProgram().stream_to(1, BLOCK)
    program.exec_() if use_exec else program.execs()
    return program.stream_from(2, BLOCK).eop()


def run_driver(plan, watchdog_cycles=0, use_exec=False, **recovery_kwargs):
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan,
        watchdog_cycles=watchdog_cycles,
    )
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    result = driver.run_with_recovery(
        loopback_program(use_exec).words(), {0: PROG, 1: IN, 2: OUT},
        timeout_cycles=20_000, **recovery_kwargs,
    )
    return soc, result


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------

def test_plan_same_seed_same_events():
    assert FaultPlan.random(7).events == FaultPlan.random(7).events
    assert FaultPlan.random(7).events != FaultPlan.random(8).events


def test_plan_random_stalls_is_recoverable():
    plan = FaultPlan.random_stalls(3, n_events=5)
    assert plan.recoverable
    assert all(e.kind is FaultKind.STALL for e in plan.events)


def test_plan_mixed_kinds_not_recoverable():
    plan = FaultPlan(events=[FaultEvent(FaultKind.BIT_FLIP, "ram")])
    assert not plan.recoverable
    assert RECOVERABLE_KINDS == {FaultKind.STALL}


def test_plan_site_filter_and_describe():
    plan = FaultPlan(seed=1, events=[
        FaultEvent(FaultKind.STALL, "ram", index=2, duration=5),
        FaultEvent(FaultKind.DROP_WORD, "fifo.in0", index=1),
    ])
    assert len(plan.at_site("ram")) == 1
    assert len(plan) == 2
    assert "stall@ram[2]" in plan.describe()


def test_fifo_site_naming_convention():
    assert fifo_site_for("ocp.fin0") == "fifo.in0"
    assert fifo_site_for("ocp3.fout1.g2") == "fifo.out1"
    assert fifo_site_for("bus") is None


# ---------------------------------------------------------------------------
# injectors in isolation
# ---------------------------------------------------------------------------

def test_faulty_slave_stall_adds_latency():
    memory = Memory("m", 1024, access_latency=1)
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.STALL, "ram", index=0, duration=9),
    ])
    slave = FaultySlave("fs", memory, plan)
    assert slave.latency_for(0, 4) == 10   # access 0: injected
    assert slave.latency_for(0, 4) == 1    # access 1: clean


def test_faulty_slave_flips_read_data():
    memory = Memory("m", 1024, access_latency=1)
    memory.write_word(8, 0)
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.BIT_FLIP, "ram", index=0, bit=5, word=2),
    ])
    slave = FaultySlave("fs", memory, plan)
    slave.latency_for(0, 4)  # the grant that arms access 0
    assert slave.read_burst(0, 4)[2] == 1 << 5
    assert memory.read_word(8) == 0  # memory itself untouched


def test_faulty_fifo_drop_dup_flip():
    def fifo_with(kind, **fields):
        plan = FaultPlan(events=[
            FaultEvent(kind, "fifo.in0", index=0, **fields),
        ])
        return FaultyFIFO("ocp.fin0", plan=plan, depth=8)

    dropper = fifo_with(FaultKind.DROP_WORD)
    dropper.push_many([1, 2, 3])
    dropper.commit()
    assert dropper.pop_many(dropper.occupancy) == [2, 3]

    duper = fifo_with(FaultKind.DUP_WORD)
    duper.push(5)
    duper.commit()
    assert duper.pop_many(duper.occupancy) == [5, 5]

    flipper = fifo_with(FaultKind.BIT_FLIP, bit=3)
    flipper.push(0)
    flipper.commit()
    assert flipper.pop() == 8


# ---------------------------------------------------------------------------
# controller error handling
# ---------------------------------------------------------------------------

def test_registers_error_field_lifecycle():
    regs = OuessantRegisters()
    regs.set_error(ERR_BUS)
    assert regs.error and regs.error_code == ERR_BUS
    assert regs.error_name == "bus_error"
    regs.write(0x00, 0)            # stop: E stays latched (sticky)
    assert regs.error
    regs.prog_size = 1
    regs.write(0x00, CTRL_S)       # new run clears E + code
    assert not regs.error and regs.error_code == 0


def test_slave_error_containment_and_bus_trap():
    """An ERROR response must trap the OCP, not crash the simulation."""
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.SLAVE_ERROR, "ram", index=0),  # the prefetch
    ])
    soc = build_faulty_soc(PassthroughRac(block_size=BLOCK), plan)
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    with pytest.raises(OcpRunError) as excinfo:
        driver.run(loopback_program().words(), {0: PROG, 1: IN, 2: OUT},
                   check_status=True)
    assert excinfo.value.code == ERR_BUS
    assert soc.ocp.controller.errored
    assert soc.bus.stats["slave_errors"] == 1


def test_illegal_opcode_traps():
    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    driver = OuessantDriver(soc)
    undefined = 0x15 << 27  # opcode 0x15 is outside the defined set
    with pytest.raises(OcpRunError) as excinfo:
        driver.run([undefined], {0: PROG}, check_status=True)
    assert excinfo.value.code == ERR_ILLEGAL_OP


def test_microcode_corruption_causes_illegal_opcode_trap():
    # flipping bit 31 of a NOP (0x05 << 27) yields undefined opcode 0x15
    program = OuProgram().nop().eop()
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.CORRUPT_MICROCODE, "mc", index=0, bit=31,
                   word=PROG),
    ])
    soc = build_faulty_soc(PassthroughRac(block_size=BLOCK), plan)
    driver = OuessantDriver(soc)
    with pytest.raises(OcpRunError) as excinfo:
        driver.run(program.words(), {0: PROG}, check_status=True)
    assert excinfo.value.code == ERR_ILLEGAL_OP
    assert len(soc.sim.trace.events(event="fault.corrupt_microcode")) == 1


def test_watchdog_traps_hung_exec():
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.HANG_EXEC, "rac", index=0, duration=0),
    ])
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan, watchdog_cycles=500
    )
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    with pytest.raises(OcpRunError) as excinfo:
        driver.run(loopback_program(use_exec=True).words(),
                   {0: PROG, 1: IN, 2: OUT}, check_status=True)
    assert excinfo.value.code == ERR_WATCHDOG
    assert soc.ocp.controller.stats["traps"] == 1


def test_hung_exec_without_watchdog_times_out():
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.HANG_EXEC, "rac", index=0, duration=0),
    ])
    soc = build_faulty_soc(PassthroughRac(block_size=BLOCK), plan)
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    with pytest.raises(DriverTimeout):
        driver.run(loopback_program(use_exec=True).words(),
                   {0: PROG, 1: IN, 2: OUT}, max_wait_cycles=5_000)


def test_finite_exec_hang_is_timing_only():
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.HANG_EXEC, "rac", index=0, duration=300),
    ])
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan, watchdog_cycles=5_000
    )
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    result = driver.run(loopback_program(use_exec=True).words(),
                        {0: PROG, 1: IN, 2: OUT}, check_status=True)
    assert soc.read_ram(OUT, BLOCK) == list(range(BLOCK))
    assert result.total_cycles > 300  # completion held back by the window


def test_clearing_s_aborts_inflight_run():
    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    program = (OuProgram().wait(10_000).eop()).words()
    driver.place_program(program, PROG)
    driver.configure({0: PROG}, len(program))
    driver.start()
    soc.sim.step(50)
    assert soc.ocp.controller.running
    driver.abort()
    assert not soc.ocp.controller.running
    assert soc.ocp.controller.state == "idle"


# ---------------------------------------------------------------------------
# driver recovery
# ---------------------------------------------------------------------------

def test_recovery_retries_past_transient_fault():
    # ERROR response on the very first RAM access (the prefetch); the
    # access counter has moved past it by the retry, which succeeds
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.SLAVE_ERROR, "ram", index=0),
    ])
    soc, result = run_driver(plan, max_attempts=3)
    assert not result.degraded
    assert result.attempts == 2
    assert result.recovered
    assert soc.read_ram(OUT, BLOCK) == list(range(BLOCK))
    events = [e.event for e in soc.sim.trace.events(component="driver")
              if not e.event.startswith("op.")]
    assert events == ["fault", "abort", "retry", "recovered"]
    # each attempt opens an op span; only the successful one closes it
    spans = [e.event for e in soc.sim.trace.events(component="driver")
             if e.event.startswith("op.")]
    assert spans == ["op.begin", "op.begin", "op.end"]


def test_recovery_degrades_to_software_fallback():
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.HANG_EXEC, "rac", index=0, duration=0),
    ])
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan, watchdog_cycles=500
    )
    driver = OuessantDriver(soc)
    data = list(range(BLOCK))
    soc.write_ram(IN, data)
    result = driver.run_with_recovery(
        loopback_program(use_exec=True).words(),
        {0: PROG, 1: IN, 2: OUT},
        max_attempts=2, timeout_cycles=20_000,
        fallback=lambda: list(data),
    )
    assert result.degraded
    assert result.fallback_value == data
    assert result.attempts == 2
    assert len(result.faults) == 2
    assert soc.sim.trace.events(component="driver", event="degraded")


def test_recovery_without_fallback_reraises():
    plan = FaultPlan(events=[
        FaultEvent(FaultKind.HANG_EXEC, "rac", index=0, duration=0),
    ])
    with pytest.raises(OcpRunError):
        run_driver(plan, watchdog_cycles=500, use_exec=True, max_attempts=2)


def test_recovery_rejects_bad_max_attempts():
    from repro.sim.errors import DriverError

    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    driver = OuessantDriver(soc)
    with pytest.raises(DriverError):
        driver.run_with_recovery([], {0: PROG}, max_attempts=0)


# ---------------------------------------------------------------------------
# replay + demo + tracing
# ---------------------------------------------------------------------------

def test_fault_history_replays_identically():
    plan = FaultPlan.random(
        99, n_events=5, sites=("ram",),
        kinds=(FaultKind.STALL, FaultKind.BIT_FLIP), max_index=3,
    )
    signatures = []
    for _ in range(2):
        soc, _ = run_driver(plan, max_attempts=3)
        signatures.append(fault_signature(soc.sim.trace))
    assert signatures[0] == signatures[1]
    assert signatures[0]  # something actually fired


def test_trace_prefix_filter():
    trace = Trace()
    trace.record(1, "x", "fault.stall", {})
    trace.record(2, "x", "complete", {})
    assert [e.event for e in trace.with_prefix("fault.")] == ["fault.stall"]


def test_demo_reports():
    from repro.faults.demo import demo_degradation, demo_replay

    replay = demo_replay(seed=2024)
    assert replay.identical
    assert replay.signature
    degraded = demo_degradation(seed=2024)
    assert degraded.recovery.degraded
    assert degraded.watchdog_traps == 2
    assert degraded.output_correct


def test_soft_reset_preserves_configuration():
    soc = SoC(racs=[PassthroughRac(block_size=BLOCK)])
    ocp = soc.ocp
    ocp.registers.write(0x08, RAM_BASE)  # bank 0
    ocp.fifos_in[0].push(42)
    ocp.fifos_in[0].commit()
    ocp.soft_reset()
    assert ocp.fifos_in[0].empty
    assert ocp.registers.bank_base(0) == RAM_BASE
