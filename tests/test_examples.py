"""Smoke tests: every shipped example runs to completion.

The examples double as end-to-end acceptance tests (each asserts its
own results internally); here we only check they exit cleanly.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "standalone_pipeline.py", "custom_accelerator.py",
        "ofdm_receiver.py"]
SLOW = ["jpeg_decode.py", "spectral_analysis.py"]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_example(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert "gain" in result.stdout.lower() or "cycles" in result.stdout
