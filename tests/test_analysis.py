"""Tests for the experiment drivers (fast variants of the benchmarks)."""

import pytest

from repro.analysis import (
    TableOneRow,
    measure_dft_hw,
    measure_idct_hw,
    measure_idct_sw,
    measure_transfer_efficiency,
    render_table_one,
    table_one,
)


def test_table_row_gain():
    row = TableOneRow("X", lat=10, hw=100, sw=250)
    assert row.gain == 2.5


def test_idct_hw_measurement_correct_and_in_band():
    result, correct = measure_idct_hw(environment="linux")
    assert correct
    # paper: 3000 cycles for IDCT under Linux
    assert 2500 <= result.total_cycles <= 4500


def test_idct_sw_measurement_in_band():
    run = measure_idct_sw()
    # paper: 5000 cycles
    assert 4000 <= run.cycles <= 7000


def test_dft_hw_baremetal_vs_linux_overhead():
    bare, ok_b = measure_dft_hw(64, environment="baremetal")
    lin, ok_l = measure_dft_hw(64, environment="linux")
    assert ok_b and ok_l
    overhead = lin.total_cycles - bare.total_cycles
    # paper in-text: ~3000 cycles of Linux overhead
    assert 2800 <= overhead <= 3200


def test_transfer_efficiency_near_paper():
    m = measure_transfer_efficiency(1024)
    assert m.words == 1024
    # paper in-text: ~1.5 cycles per word
    assert 1.0 <= m.cycles_per_word <= 1.8


def test_transfer_efficiency_validates_input():
    with pytest.raises(ValueError):
        measure_transfer_efficiency(33)


@pytest.mark.slow
def test_table_one_small_dft_shape():
    """Scaled-down Table I (DFT-64 to keep the ISS run short)."""
    rows = table_one(dft_points=64, environment="linux")
    idct, dft = rows
    assert idct.name == "IDCT" and dft.name == "DFT"
    assert idct.lat == 18
    # who-wins: hardware beats software on both rows
    assert idct.gain > 1.0
    assert dft.gain > 5.0
    text = render_table_one(rows)
    assert "Gain" in text and "IDCT" in text
