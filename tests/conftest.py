"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.rac.dft import DFTRac
from repro.rac.idct import IDCTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def soc_passthrough() -> SoC:
    """SoC with a 16-word loopback RAC (fast, deterministic)."""
    return SoC(racs=[PassthroughRac(block_size=16)])


@pytest.fixture
def soc_scale() -> SoC:
    return SoC(racs=[ScaleRac(block_size=16, factor=3, shift=1)])


@pytest.fixture
def soc_idct() -> SoC:
    return SoC(racs=[IDCTRac()])


@pytest.fixture
def soc_dft64() -> SoC:
    """Small DFT keeps integration tests quick."""
    return SoC(racs=[DFTRac(n_points=64)])


@pytest.fixture
def q15_signal(rng):
    def make(n: int):
        re = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
        im = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
        return re, im

    return make


@pytest.fixture
def coef_block(rng):
    return [[rng.randint(-400, 400) for _ in range(8)] for _ in range(8)]


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration measurement"
    )
