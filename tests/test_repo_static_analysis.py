"""Run the repo's own static-analysis gates when the tools exist.

CI installs ruff and mypy in the `static-analysis` job; locally they
are optional, so these tests skip (not fail) when the tools are
absent.  The configuration lives in pyproject.toml so CI and local
runs check exactly the same thing.
"""

import pathlib
import shutil
import subprocess

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
TARGETS = ["src/repro/soclint", "src/repro/verify"]


def _run(tool, *args):
    if shutil.which(tool) is None:
        pytest.skip(f"{tool} not installed")
    return subprocess.run(
        [tool, *args], cwd=REPO, capture_output=True, text=True
    )


def test_ruff_clean_on_analyzer_packages():
    proc = _run("ruff", "check", *TARGETS)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean_on_analyzer_packages():
    proc = _run("mypy")
    assert proc.returncode == 0, proc.stdout + proc.stderr
