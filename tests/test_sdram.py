"""Tests for the SDRAM open-row model and failure injection."""

import pytest

from repro.bus.bus import SystemBus
from repro.bus.types import AccessKind, BusRequest
from repro.core.program import OuProgram
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.mem.sdram import SDRAM
from repro.rac.scale import PassthroughRac
from repro.sim.errors import AddressError, ConfigurationError, RACError
from repro.sim.kernel import Simulator
from repro.system import RAM_BASE, SoC


def make_bus(sdram):
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    bus.attach_slave("sdram", 0x0, sdram.size_bytes, sdram)
    return sim, bus


def read_latency(sim, bus, address, burst=1):
    transfer = bus.submit(BusRequest(master="m", kind=AccessKind.READ,
                                     address=address, burst=burst))
    sim.run_until(lambda: transfer.done, max_cycles=1000)
    return transfer.latency


def test_row_hit_vs_miss_latency():
    sdram = SDRAM(size_bytes=1 << 16, row_bytes=2048, cas_latency=3,
                  row_miss_penalty=9)
    sim, bus = make_bus(sdram)
    first = read_latency(sim, bus, 0x100)    # cold: row miss
    second = read_latency(sim, bus, 0x104)   # same row: hit
    assert first - second == 9
    assert sdram.dram_stats["row_misses"] == 1
    assert sdram.dram_stats["row_hits"] == 1


def test_banks_keep_rows_open_independently():
    sdram = SDRAM(size_bytes=1 << 16, row_bytes=1024, n_banks=4)
    sim, bus = make_bus(sdram)
    read_latency(sim, bus, 0x0)        # bank 0, row 0
    read_latency(sim, bus, 0x400)      # bank 1, row 1
    # returning to bank 0 row 0: still open
    assert read_latency(sim, bus, 0x8) < read_latency(sim, bus, 0x1000)


def test_sequential_bursts_are_row_friendly():
    sdram = SDRAM(size_bytes=1 << 16, row_bytes=2048)
    sim, bus = make_bus(sdram)
    for chunk in range(8):
        read_latency(sim, bus, 0x0 + 64 * chunk, burst=16)
    assert sdram.row_hit_rate > 0.8


def test_scattered_accesses_thrash_rows():
    sdram = SDRAM(size_bytes=1 << 18, row_bytes=1024, n_banks=2)
    sim, bus = make_bus(sdram)
    for i in range(16):
        read_latency(sim, bus, (i * 0x800) % (1 << 18))
    assert sdram.row_hit_rate < 0.3


def test_burst_crossing_row_boundary_charged_once():
    sdram = SDRAM(size_bytes=1 << 16, row_bytes=1024)
    sim, bus = make_bus(sdram)
    sdram.precharge_all()
    # burst straddles offset 0x400 (rows 0 and 1)
    latency = read_latency(sim, bus, 0x3F8, burst=4)
    assert sdram.dram_stats["row_misses"] == 2


def test_precharge_all_closes_rows():
    sdram = SDRAM(size_bytes=1 << 16)
    sim, bus = make_bus(sdram)
    read_latency(sim, bus, 0x0)
    sdram.precharge_all()
    read_latency(sim, bus, 0x0)
    assert sdram.dram_stats["row_misses"] == 2


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        SDRAM(row_bytes=100)
    with pytest.raises(ConfigurationError):
        SDRAM(n_banks=3)


def test_ouessant_runs_from_sdram():
    """Build the SoC on SDRAM instead of SRAM: everything still works."""
    sdram = SDRAM("sdram", 1 << 20)
    soc = SoC(racs=[PassthroughRac(block_size=32, fifo_depth=64)],
              memory=sdram)

    prog, inp, out = (RAM_BASE + 0x1000, RAM_BASE + 0x2000,
                      RAM_BASE + 0x3000)
    program = (OuProgram().stream_to(1, 32).execs()
               .stream_from(2, 32).eop())
    soc.write_ram(inp, list(range(32)))
    soc.write_ram(prog, program.words())
    ocp = soc.ocp
    for bank, base in {0: prog, 1: inp, 2: out}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=100_000)
    assert soc.read_ram(out, 32) == list(range(32))
    assert sdram.dram_stats["row_hits"] > 0


# ---------------------------------------------------------------------------
# failure injection
# ---------------------------------------------------------------------------

def test_bank_pointing_at_unmapped_address_faults():
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    program = OuProgram().stream_to(1, 16).eop()
    prog = RAM_BASE + 0x1000
    soc.write_ram(prog, program.words())
    ocp = soc.ocp
    ocp.interface.write_word(REG_BANK_BASE, prog)
    ocp.interface.write_word(REG_BANK_BASE + 4, 0x7000_0000)  # unmapped!
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S)
    with pytest.raises(AddressError):
        soc.sim.step(200)


def test_rac_compute_failure_propagates():
    from repro.rac.base import StreamingRAC

    def broken(collected):
        raise RACError("datapath meltdown")

    rac = StreamingRAC("broken", [4], [4], compute_fn=broken)
    soc = SoC(racs=[rac])
    program = OuProgram().stream_to(1, 4).execs().stream_from(2, 4).eop()
    prog, inp = RAM_BASE + 0x1000, RAM_BASE + 0x2000
    soc.write_ram(prog, program.words())
    soc.write_ram(inp, [1, 2, 3, 4])
    ocp = soc.ocp
    for bank, base in {0: prog, 1: inp, 2: RAM_BASE + 0x3000}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S)
    with pytest.raises(RACError):
        soc.sim.step(500)
