"""Tests for the GPP assembler."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import Op, decode
from repro.sim.errors import AssemblerError


def ops_of(program):
    return [decode(w).op for w in program.text]


def test_simple_program_assembles():
    program = assemble("""
        addi r1, r0, 5
        add  r2, r1, r1
        halt
    """)
    assert ops_of(program) == [Op.ADDI, Op.ADD, Op.HALT]


def test_labels_and_branches():
    program = assemble("""
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    branch = decode(program.text[1])
    assert branch.imm == -2  # back to pc+4 - 8


def test_forward_reference_resolved():
    program = assemble("""
        beq r0, r0, end
        nop
    end:
        halt
    """)
    assert decode(program.text[0]).imm == 1


def test_li_expands_to_two_words():
    program = assemble("li r5, 0x12345678\nhalt")
    assert len(program.text) == 3
    assert decode(program.text[0]).op == Op.LUI
    assert decode(program.text[0]).imm == 0x1234
    assert decode(program.text[1]).op == Op.ORI
    assert decode(program.text[1]).imm == 0x5678


def test_li_negative_value():
    program = assemble("li r5, -32768\nhalt")
    assert decode(program.text[0]).imm == 0xFFFF
    assert decode(program.text[1]).imm == 0x8000


def test_la_uses_symbol_address():
    program = assemble(
        "la r1, buf\nhalt\n.data\nbuf:\n.word 0",
        text_base=0, data_base=0x2_0000,
    )
    assert decode(program.text[0]).imm == 0x2
    assert decode(program.text[1]).imm == 0x0
    assert program.address_of("buf") == 0x2_0000


def test_memory_operands():
    program = assemble("lw r1, 8(r2)\nsw r3, -4(r2)\nhalt")
    load = decode(program.text[0])
    assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
    store = decode(program.text[1])
    assert (store.rd, store.rs1, store.imm) == (3, 2, -4)


def test_data_directives():
    program = assemble("""
        halt
    .data
    tbl:
        .word 1, -2, 0x30
        .space 8
    after:
        .word 9
    """)
    assert program.data[:3] == [1, 0xFFFFFFFE, 0x30]
    assert program.data[3:5] == [0, 0]
    assert program.address_of("after") == program.data_base + 20


def test_word_accepts_label_values():
    program = assemble("""
    start:
        halt
    .data
    ptr:
        .word start
    """, text_base=0x400)
    assert program.data[0] == 0x400


def test_pseudo_instructions():
    program = assemble("""
        nop
        mv  r1, r2
        neg r3, r4
        j   done
        call fn
        ble r1, r2, done
        bgt r1, r2, done
        beqz r1, done
        bnez r1, done
    fn:
        ret
    done:
        halt
    """)
    assert decode(program.text[0]).op == Op.ADDI
    assert decode(program.text[1]).op == Op.ADDI
    assert decode(program.text[2]).op == Op.SUB
    assert decode(program.text[3]).op == Op.JAL
    assert decode(program.text[4]).rd == 31  # call links ra
    assert decode(program.text[5]).op == Op.BGE  # ble swaps
    assert decode(program.text[6]).op == Op.BLT  # bgt swaps
    assert decode(program.text[7]).op == Op.BEQ
    assert decode(program.text[8]).op == Op.BNE
    assert decode(program.text[9]).op == Op.JALR  # ret


def test_comments_and_blank_lines_ignored():
    program = assemble("""
        # full line comment
        nop   # trailing
        halt  ; semicolon style
    """)
    assert len(program.text) == 2


def test_errors_carry_line_numbers():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("nop\nbogus r1, r2\n")
    assert "line 2" in str(excinfo.value)


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x:\nnop\nx:\nhalt")


def test_unknown_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("j nowhere\nhalt")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2\nhalt")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblerError):
        assemble("lw r1, r2\nhalt")


def test_misaligned_space_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\n.space 3")


def test_unknown_directive_rejected():
    with pytest.raises(AssemblerError):
        assemble(".bss\nhalt")


def test_unaligned_base_rejected():
    with pytest.raises(AssemblerError):
        assemble("halt", text_base=2)


def test_unknown_symbol_lookup_raises():
    program = assemble("halt")
    with pytest.raises(AssemblerError):
        program.address_of("missing")
