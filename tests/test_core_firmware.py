"""Tests for the firmware planner."""

import pytest

from repro.core.firmware import FirmwarePlan, plan_streaming_run
from repro.core.isa import OuOp
from repro.core.program import figure4_program
from repro.rac.base import RACPortSpec, StreamingRAC
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.rac.matmul import MatMulRac
from repro.rac.scale import PassthroughRac
from repro.sim.errors import ConfigurationError


def test_dft_plan_reproduces_figure4():
    plan = plan_streaming_run(DFTRac(n_points=256))
    assert plan.program.words() == figure4_program(256).words()
    assert plan.input_banks == [1]
    assert plan.output_banks == [2]
    assert plan.words_in == [512]
    assert plan.words_out == [512]


def test_multi_port_plan_streams_config_first():
    plan = plan_streaming_run(FIRRac(block_size=32, n_taps=4))
    ops = [i.op for i in plan.program.instructions]
    first_transfer = plan.program.instructions[0]
    # the config port (FIFO1) is loaded before the data port
    assert first_transfer.fifo == 1
    assert plan.input_banks == [1, 2]
    assert plan.output_banks == [3]
    assert ops[-1] is OuOp.EOP


def test_multi_operation_plan_offsets():
    plan = plan_streaming_run(IDCTRac(fifo_depth=128), operations=3)
    transfers_in = [i for i in plan.program.instructions
                    if i.op is OuOp.MVTC]
    offsets = sorted(i.offset for i in transfers_in)
    assert offsets == [0, 64, 128]
    assert plan.words_in == [192]
    assert plan.operations == 3


def test_plan_is_lint_clean_for_all_shipped_racs():
    for rac in (IDCTRac(), DFTRac(64), FIRRac(block_size=16, n_taps=4),
                MatMulRac(n=4), PassthroughRac(block_size=8)):
        plan = plan_streaming_run(rac, operations=2)
        assert isinstance(plan, FirmwarePlan)


def test_blocking_exec_guard():
    # output block (64) larger than the FIFO depth (16): would deadlock
    rac = PassthroughRac(block_size=64, fifo_depth=16)
    with pytest.raises(ConfigurationError):
        plan_streaming_run(rac, blocking_exec=True)
    # fits: allowed
    rac2 = PassthroughRac(block_size=8, fifo_depth=16)
    plan = plan_streaming_run(rac2, blocking_exec=True)
    assert any(i.op is OuOp.EXEC for i in plan.program.instructions)


def test_bank_window_overflow_rejected():
    rac = PassthroughRac(block_size=1024, fifo_depth=64)
    with pytest.raises(ConfigurationError):
        plan_streaming_run(rac, operations=32)  # 32k words > 16k window


def test_too_many_ports_rejected():
    rac = StreamingRAC(
        "wide", [4] * 5, [4] * 4, lambda c: [list(w) for w in c[:4]],
        ports=RACPortSpec([32] * 5, [32] * 4),
    )
    with pytest.raises(ConfigurationError):
        plan_streaming_run(rac)


def test_operations_validation():
    with pytest.raises(ConfigurationError):
        plan_streaming_run(PassthroughRac(), operations=0)


def test_bank_map_checks_completeness():
    plan = plan_streaming_run(PassthroughRac(block_size=8))
    with pytest.raises(ConfigurationError):
        plan.bank_map({0: 0x1000, 1: 0x2000})  # bank 2 missing
    mapped = plan.bank_map({0: 0x1000, 1: 0x2000, 2: 0x3000, 5: 0x9999})
    assert 5 not in mapped  # only the banks the plan uses
    assert plan.banks_used == [0, 1, 2]
