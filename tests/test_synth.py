"""Tests for the FPGA resource estimation substrate."""

import pytest

from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.hls import HLSInterfaceSpec, wrap_function
from repro.rac.idct import IDCTRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ConfigurationError
from repro.synth import (
    ARTIX7_100T,
    ALL_DEVICES,
    ResourceEstimate,
    SPARTAN6_LX45,
    adder,
    comparator,
    counter,
    device_by_name,
    estimate_controller,
    estimate_fifo_control,
    estimate_fifo_memory,
    estimate_interface,
    estimate_ocp,
    estimate_rac,
    fsm,
    multiplier,
    mux,
    ram,
    register,
    utilization_report,
)
from repro.rac.fifo import FIFO
from repro.system import SoC


def test_estimate_algebra():
    a = ResourceEstimate(luts=10, ffs=5, bram18=1)
    b = ResourceEstimate(luts=1, ffs=2, dsps=3)
    total = a + b
    assert (total.luts, total.ffs, total.bram18, total.dsps) == (11, 7, 1, 3)
    doubled = 2 * a
    assert doubled.luts == 20
    assert "LUT" in str(total)


def test_primitive_formulas_sane():
    assert register(32).ffs == 32
    assert adder(32).luts == 32
    assert counter(8).luts == 8 and counter(8).ffs == 8
    assert comparator(14).luts >= 7
    assert mux(2, 32).luts == 32          # 2:1 -> 1 LUT/bit
    assert mux(8, 32).luts > mux(4, 32).luts
    assert mux(1, 32).luts == 0
    assert fsm(10).ffs >= 4
    assert multiplier(16, 16).dsps == 1
    assert multiplier(32, 32).dsps > 1
    assert ram(18 * 1024).bram18 == 1
    assert ram(18 * 1024 + 1).bram18 == 2
    assert ram(512, force_bram=False).bram18 == 0
    assert ram(0).bram18 == 0


def test_paper_envelope_ocp_under_1000_lut_750_ff():
    """Section V-B: OCP overhead < 1000 LUT and < 750 FF."""
    for rac in (IDCTRac(), DFTRac(256), PassthroughRac()):
        soc = SoC(racs=[rac])
        estimate = estimate_ocp(soc.ocp)
        overhead = estimate.ocp_overhead
        assert overhead.luts < 1000, f"{rac.name}: {overhead}"
        assert overhead.ffs < 750, f"{rac.name}: {overhead}"
        # OCP overhead itself uses no DSP
        assert overhead.dsps == 0


def test_fifo_memory_is_bram():
    """Section V-B: "FIFO memory is inferred as BRAM"."""
    soc = SoC(racs=[DFTRac(256)])
    estimate = estimate_ocp(soc.ocp)
    assert estimate.fifo_memory.bram18 >= 2
    assert estimate.fifo_memory.luts == 0


def test_idct_and_dft_similar_except_rac():
    """Section V-B: "IDCT and DFT gives similar results except for the
    FIFO size and the RAC"."""
    est_idct = estimate_ocp(SoC(racs=[IDCTRac()]).ocp)
    est_dft = estimate_ocp(SoC(racs=[DFTRac(256)]).ocp)
    assert est_idct.parts["interface"] == est_dft.parts["interface"]
    assert est_idct.parts["controller"] == est_dft.parts["controller"]
    assert est_idct.rac != est_dft.rac


def test_interface_dominates_then_controller():
    interface = estimate_interface()
    controller = estimate_controller()
    fifo = estimate_fifo_control(FIFO("f", 32, 32, 64))
    assert interface.ffs > controller.ffs > fifo.ffs


def test_serdes_fifo_costs_more_control():
    same = estimate_fifo_control(FIFO("f", 32, 32, 64))
    wide = estimate_fifo_control(FIFO("f", 32, 96, 64))
    assert wide.ffs > same.ffs


def test_fifo_memory_scales_with_depth():
    small = estimate_fifo_memory(FIFO("f", 32, 32, 16))
    large = estimate_fifo_memory(FIFO("f", 32, 32, 1024))
    assert large.bram18 > small.bram18


def test_rac_estimates_dispatch():
    assert estimate_rac(DFTRac(256)).dsps == 4
    assert estimate_rac(IDCTRac()).dsps == 8
    assert estimate_rac(FIRRac(n_taps=16)).dsps == 16
    assert estimate_rac(ScaleRac()).dsps == 1
    hls = wrap_function("x", lambda c: [list(c[0])],
                        HLSInterfaceSpec([8], [8]))
    assert estimate_rac(hls).luts > 0


def test_dft_rac_scales_with_size():
    small = estimate_rac(DFTRac(64))
    large = estimate_rac(DFTRac(1024))
    assert large.bram18 > small.bram18


def test_whole_ocp_fits_artix7():
    """Section V-A: deployed on an Artix7 LX100T with room to spare."""
    for rac in (IDCTRac(), DFTRac(256)):
        estimate = estimate_ocp(SoC(racs=[rac]).ocp).total
        assert ARTIX7_100T.fits(estimate)
        util = ARTIX7_100T.utilization(estimate)
        assert util["luts"] < 0.10  # "very low footprint"


def test_devices_catalogue():
    assert device_by_name("xc7a100t") is ARTIX7_100T
    with pytest.raises(ConfigurationError):
        device_by_name("xc7vliegenthart")
    assert len(ALL_DEVICES) >= 4


def test_utilization_report_renders():
    soc = SoC(racs=[DFTRac(256)])
    estimate = estimate_ocp(soc.ocp)
    report = utilization_report(estimate.parts, ARTIX7_100T)
    assert "interface" in report
    assert "TOTAL" in report
    assert "utilization" in report


def test_spartan6_also_fits():
    estimate = estimate_ocp(SoC(racs=[DFTRac(256)]).ocp).total
    assert SPARTAN6_LX45.fits(estimate)
