"""Unit tests for the system-level integrity analyzer (repro.soclint).

Every OU1xx diagnostic code must be reachable from at least one test in
this file or in the differential suite (test_soclint_soundness.py);
test_catalog.py enforces that closure over the whole test tree.
"""

import pytest

from repro.core.coprocessor import OuessantCoprocessor
from repro.mem.cache import Cache
from repro.rac.fifo import FIFO
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ConfigurationError
from repro.soclint import lint_map_plan, lint_soc
from repro.system import OCP_BASE, RAM_BASE, SoC


def codes(report):
    return {finding.code for finding in report.findings}


# ---------------------------------------------------------------------------
# memory-map plans (OU10x)
# ---------------------------------------------------------------------------

def test_clean_plan_is_clean():
    report = lint_map_plan([
        ("ram", RAM_BASE, 0x1000),
        ("ocp", OCP_BASE, 64),
    ])
    assert report.clean
    assert report.findings == []


def test_plan_overlap_is_ou100():
    report = lint_map_plan([
        ("ram", RAM_BASE, 0x1000),
        ("rom", RAM_BASE + 0x800, 0x1000),
    ])
    assert "OU100" in codes(report)
    assert not report.clean


def test_plan_misalignment_is_ou101():
    report = lint_map_plan([("odd", 0x8000_0002, 64)])
    assert "OU101" in codes(report)
    report = lint_map_plan([("empty", 0x8000_0000, 0)])
    assert "OU101" in codes(report)


def test_plan_duplicate_name_is_ou102_warning():
    report = lint_map_plan([
        ("ocp", OCP_BASE, 64),
        ("ocp", OCP_BASE + 0x100, 64),
    ])
    assert "OU102" in codes(report)
    # shadowing is a hazard, not a proven failure: warning severity,
    # so the report stays "clean" (no errors)
    assert report.clean


# ---------------------------------------------------------------------------
# windows & reachability (OU11x)
# ---------------------------------------------------------------------------

def _raw_soc():
    """A SoC with no coprocessors, ready for hand-wiring."""
    return SoC(racs=[])


def test_truncated_window_is_ou110():
    soc = _raw_soc()
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    soc.sim.add_all(ocp.components())
    # 16 bytes < the 40-byte register file
    soc.bus.attach_slave("ocp", OCP_BASE, 16, ocp.interface)
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU110" in codes(lint_soc(soc))


def test_perf_truncated_window_is_ou113():
    soc = _raw_soc()
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    soc.sim.add_all(ocp.components())
    # 40 bytes fit the register file but cut off the perf counters
    soc.bus.attach_slave("ocp", OCP_BASE, 40, ocp.interface)
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    report = lint_soc(soc)
    assert "OU113" in codes(report)
    assert "OU110" not in codes(report)
    assert not report.errors  # warning: the coprocessor itself works


def test_unreachable_component_is_ou111():
    soc = _raw_soc()
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    soc.sim.add_all(ocp.components())  # registered but never mapped
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU111" in codes(lint_soc(soc))


def test_misaligned_window_is_ou112():
    soc = _raw_soc()
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    soc.sim.add_all(ocp.components())
    soc.bus.attach_slave(
        "ocp", OCP_BASE + 4, OuessantCoprocessor.WINDOW_BYTES,
        ocp.interface,
    )
    soc.irqc.register(ocp.irq)
    soc.ocps.append(ocp)
    assert "OU112" in codes(lint_soc(soc))


# ---------------------------------------------------------------------------
# driver bank tables (OU12x)
# ---------------------------------------------------------------------------

def test_good_bank_table_is_clean():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(soc, banks={
        0: RAM_BASE + 0x1000,
        1: RAM_BASE + 0x2000,
        2: RAM_BASE + 0x3000,
    })
    assert report.clean


def test_unmapped_bank_is_ou120():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(soc, banks={1: 0x9000_0000})
    assert "OU120" in codes(report)


def test_misaligned_bank_is_ou121():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(soc, banks={1: RAM_BASE + 0x1002})
    assert "OU121" in codes(report)


def test_bank_into_register_window_is_ou122():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(soc, banks={2: OCP_BASE})
    assert "OU122" in codes(report)


def test_aliased_banks_are_ou123_warning():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(
        soc, banks={1: RAM_BASE + 0x1000, 2: RAM_BASE + 0x1000}
    )
    assert "OU123" in codes(report)
    assert report.clean  # aliasing may be intentional (in-place ops)


# ---------------------------------------------------------------------------
# FIFO fabric (OU13x)
# ---------------------------------------------------------------------------

def test_underdepth_manual_start_is_ou130():
    soc = SoC(racs=[PassthroughRac(block_size=32, fifo_depth=8,
                                   autostart=False)])
    assert "OU130" in codes(lint_soc(soc))


def test_underdepth_with_autostart_is_fine():
    # the RAC drains the FIFO while the controller fills it
    soc = SoC(racs=[PassthroughRac(block_size=32, fifo_depth=8,
                                   autostart=True)])
    assert lint_soc(soc).clean


def test_fabric_width_mismatch_is_ou131():
    def bad_factory(name, width_push=32, width_pop=32, depth=64):
        return FIFO(name, width_push=width_push, width_pop=64,
                    depth=depth)

    soc = SoC(racs=[])
    soc.add_ocp(PassthroughRac(block_size=16), fifo_factory=bad_factory)
    assert "OU131" in codes(lint_soc(soc))


def test_fabric_depth_mismatch_is_ou131():
    def shallow_factory(name, width_push=32, width_pop=32, depth=64):
        return FIFO(name, width_push=width_push, width_pop=width_pop,
                    depth=4)

    soc = SoC(racs=[])
    soc.add_ocp(PassthroughRac(block_size=16, fifo_depth=64),
                fifo_factory=shallow_factory)
    assert "OU131" in codes(lint_soc(soc))


# ---------------------------------------------------------------------------
# timing closure (OU14x)
# ---------------------------------------------------------------------------

def test_timing_violation_is_ou140():
    soc = SoC(racs=[ScaleRac()], clock_mhz=400.0)
    report = lint_soc(soc)
    assert "OU140" in codes(report)
    assert not report.clean


def test_marginal_timing_is_ou141_warning():
    # the interface translate chain tops out near 142.9 MHz on Artix-7;
    # 140 MHz closes with well under 5% of the period as slack
    soc = SoC(racs=[ScaleRac()], clock_mhz=140.0)
    report = lint_soc(soc)
    assert "OU141" in codes(report)
    assert report.clean


def test_technology_override():
    # 120 MHz closes on the Artix-7 default (fmax ~142.9) but not on
    # the slower Spartan-6 (fmax ~108.1)
    soc = SoC(racs=[ScaleRac()], clock_mhz=120.0)
    assert lint_soc(soc).clean
    slow = lint_soc(soc, technology="spartan6")
    assert "OU140" in codes(slow)
    with pytest.raises(ConfigurationError):
        lint_soc(soc, technology="asic7nm")


# ---------------------------------------------------------------------------
# coherence (OU15x)
# ---------------------------------------------------------------------------

def test_unsnooped_cache_is_ou150_warning():
    soc = SoC(racs=[ScaleRac()])
    report = lint_soc(soc, caches=[Cache()])
    assert "OU150" in codes(report)
    assert report.clean


def test_snooped_cache_is_quiet():
    soc = SoC(racs=[ScaleRac()])
    cache = Cache()
    soc.ocp.interface.attach_snooped_cache(cache)
    assert "OU150" not in codes(lint_soc(soc, caches=[cache]))


def test_dma_without_snoop_path_is_ou150():
    soc = SoC(racs=[ScaleRac()], with_dma=True)
    cache = Cache()
    soc.ocp.interface.attach_snooped_cache(cache)
    report = lint_soc(soc, caches=[cache])
    assert any(f.code == "OU150" and f.where == "dma"
               for f in report.findings)


# ---------------------------------------------------------------------------
# interrupt routing (OU16x)
# ---------------------------------------------------------------------------

def test_unrouted_irq_is_ou160_warning():
    soc = _raw_soc()
    ocp = OuessantCoprocessor(PassthroughRac(), name="ocp", bus=soc.bus)
    ocp.attach(soc.sim, soc.bus, OCP_BASE)
    soc.ocps.append(ocp)  # deliberately NOT registered with the irqc
    report = lint_soc(soc)
    assert "OU160" in codes(report)
    # the driver waits on the line directly, so this can still work:
    # warning, not error
    assert report.clean


def test_double_registered_irq_is_ou161():
    soc = SoC(racs=[ScaleRac()])
    soc.irqc.register(soc.ocp.irq)
    report = lint_soc(soc)
    assert "OU161" in codes(report)
    assert report.clean


# ---------------------------------------------------------------------------
# multi-OCP elaborations and capability tables (OU17x)
# ---------------------------------------------------------------------------

def _mpsoc(n_ocps=4):
    from repro.system import build_mpsoc

    racs = [
        PassthroughRac(name=f"pt{i}") if i % 2 == 0
        else ScaleRac(name=f"sc{i}")
        for i in range(n_ocps)
    ]
    return build_mpsoc(racs)


@pytest.mark.parametrize("n_ocps", [2, 4, 8])
def test_heterogeneous_mpsoc_elaboration_is_clean(n_ocps):
    """build_mpsoc SoCs pass every OU1xx check at 2/4/8 coprocessors."""
    report = lint_soc(_mpsoc(n_ocps))
    assert report.clean
    assert report.findings == []


def test_overlapping_mpsoc_plan_is_ou100():
    """A map plan whose OCP stride is below the window size overlaps."""
    from repro.system import plan_mpsoc_map

    assert lint_map_plan(plan_mpsoc_map(4)).clean
    report = lint_map_plan(plan_mpsoc_map(4, ocp_stride=32))
    assert "OU100" in codes(report)
    assert not report.clean


def test_truncated_mpsoc_window_is_ou110():
    """A truncated window in a generated multi-OCP map is caught."""
    soc = _raw_soc()
    for index in range(3):
        ocp = OuessantCoprocessor(
            PassthroughRac(name=f"pt{index}"), name=f"ocp{index}",
            bus=soc.bus,
        )
        soc.sim.add_all(ocp.components())
        # the last window is 16 bytes: too small for the register file
        size = 16 if index == 2 else OuessantCoprocessor.WINDOW_BYTES
        soc.bus.attach_slave(
            f"ocp{index}", OCP_BASE + index * 0x100, size, ocp.interface
        )
        soc.irqc.register(ocp.irq)
        soc.ocps.append(ocp)
    report = lint_soc(soc)
    assert "OU110" in codes(report)
    assert any(f.code == "OU110" and "ocp2" in f.where
               for f in report.findings)


def test_capability_kind_with_no_serving_rac_is_ou170():
    report = lint_soc(_mpsoc(2), capabilities={"dft": [0]})
    assert "OU170" in codes(report)
    assert "OU171" in codes(report)  # index 0 hosts a passthrough RAC
    assert not report.clean


def test_capability_index_out_of_range_is_ou171():
    report = lint_soc(_mpsoc(2), capabilities={"passthrough": [0, 5]})
    assert "OU171" in codes(report)
    assert "OU170" not in codes(report)  # index 0 still serves the kind


def test_capability_wrong_kind_target_is_ou171():
    # index 1 hosts the scale RAC, not a passthrough
    report = lint_soc(_mpsoc(2), capabilities={"passthrough": [1]})
    assert {"OU170", "OU171"} <= codes(report)


def test_derived_capability_table_is_clean():
    from repro.sched import CapabilityTable

    soc = _mpsoc(4)
    report = CapabilityTable.from_soc(soc).validate(soc)
    assert report.clean
    assert report.findings == []


def test_scheduler_rejects_invalid_capability_table():
    from repro.sched import CapabilityTable, ThroughputScheduler

    soc = _mpsoc(2)
    bad = CapabilityTable({"passthrough": [1]})
    with pytest.raises(ConfigurationError) as excinfo:
        ThroughputScheduler(soc, capability=bad)
    assert "OU171" in str(excinfo.value)


# ---------------------------------------------------------------------------
# SoC integration: strict mode and .lint()
# ---------------------------------------------------------------------------

def test_default_soc_is_clean():
    assert SoC(racs=[ScaleRac()]).lint().clean


def test_strict_soc_raises_on_error_finding():
    with pytest.raises(ConfigurationError) as excinfo:
        SoC(racs=[ScaleRac()], clock_mhz=400.0, strict=True)
    assert "OU140" in str(excinfo.value)


def test_strict_add_ocp_rechecks():
    soc = SoC(racs=[ScaleRac()], strict=True)

    def shallow_factory(name, width_push=32, width_pop=32, depth=64):
        return FIFO(name, width_push=width_push, width_pop=width_pop,
                    depth=4)

    with pytest.raises(ConfigurationError) as excinfo:
        soc.add_ocp(PassthroughRac(), fifo_factory=shallow_factory)
    assert "OU131" in str(excinfo.value)


def test_suppressed_findings_are_kept_aside():
    soc = SoC(racs=[ScaleRac()], clock_mhz=400.0)
    report = lint_soc(soc, suppress=["OU140"])
    assert report.clean
    assert [f.code for f in report.suppressed] == ["OU140"]
    assert "suppressed" in report.render()


def test_lint_map_plan_on_live_regions():
    # elaborated Region objects are accepted directly
    soc = SoC(racs=[ScaleRac()])
    assert lint_map_plan(soc.bus.memmap.regions).clean
