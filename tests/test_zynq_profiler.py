"""Tests for the Zynq system model and the run profiler."""

import pytest

from repro.core.program import OuProgram, figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.sim.errors import ConfigurationError
from repro.sw.baremetal import BaremetalRuntime
from repro.sw.driver import OuessantDriver
from repro.sw.profiler import profile_run
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp
from repro.zynq import ZynqSoC, molen_portability_note

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x8000


def boot_and_run(soc, program, banks, max_cycles=500_000):
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {**{0: PROG}, **banks}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return soc.run_until(lambda: ocp.done, max_cycles=max_cycles)


# ---------------------------------------------------------------------------
# Zynq
# ---------------------------------------------------------------------------

def test_zynq_runs_figure4_correctly(q15_signal):
    n = 256
    soc = ZynqSoC(racs=[DFTRac(n_points=n)])
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    boot_and_run(soc, figure4_program(n), {1: IN, 2: OUT})
    out = fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
    assert out == fp.fft_q15(re, im)


def test_zynq_register_access_pays_bridge_latency(q15_signal):
    leon = SoC(racs=[PassthroughRac(block_size=16)])
    zynq = ZynqSoC(racs=[PassthroughRac(block_size=16)])
    leon_cycles = OuessantDriver(leon).write_register(REG_PROG_SIZE, 1)
    zynq_cycles = OuessantDriver(zynq).write_register(REG_PROG_SIZE, 1)
    assert zynq_cycles >= leon_cycles + zynq.gp_bridge_latency


def test_zynq_dma_still_efficient(q15_signal):
    """Bridge latency hits register accesses, not the HP-port bursts."""
    n = 256
    cycles = {}
    for name, soc in (("leon", SoC(racs=[DFTRac(n_points=n)])),
                      ("zynq", ZynqSoC(racs=[DFTRac(n_points=n)]))):
        re, im = q15_signal(n)
        soc.write_ram(IN, fp.interleave_complex(re, im))
        cycles[name] = boot_and_run(soc, figure4_program(n), {1: IN, 2: OUT})
    # AXI4 long bursts compensate the DDR latency: within 25%
    assert cycles["zynq"] < cycles["leon"] * 1.25


def test_zynq_driver_config_cost_higher_but_bounded():
    leon = SoC(racs=[PassthroughRac(block_size=16)])
    zynq = ZynqSoC(racs=[PassthroughRac(block_size=16)])
    results = {}
    for name, soc in (("leon", leon), ("zynq", zynq)):
        runtime = BaremetalRuntime(soc)
        soc.write_ram(IN, list(range(16)))
        program = (OuProgram().stream_to(1, 16).execs()
                   .stream_from(2, 16).eop())
        results[name] = runtime.run(program.words(),
                                    {0: PROG, 1: IN, 2: OUT})
        assert soc.read_ram(OUT, 16) == list(range(16))
    assert results["zynq"].config_cycles > results["leon"].config_cycles
    # 12 extra cycles x 12 register accesses: still tiny vs the payload
    delta = results["zynq"].config_cycles - results["leon"].config_cycles
    assert delta < 300


def test_zynq_validation_and_note():
    with pytest.raises(ConfigurationError):
        ZynqSoC(gp_bridge_latency=-1)
    assert "AXI" in molen_portability_note()


def test_zynq_has_no_iss_cpu():
    soc = ZynqSoC(racs=[PassthroughRac(block_size=4)])
    assert soc.cpu is None


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------

def test_profile_run_accounts_cycles(q15_signal):
    n = 64
    soc = SoC(racs=[DFTRac(n_points=n)])
    runtime = BaremetalRuntime(soc)
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    result = runtime.run(figure4_program(n).words(),
                         {0: PROG, 1: IN, 2: OUT})
    profile = profile_run(soc, result)
    assert profile.total_cycles == result.total_cycles
    assert profile.instructions == 18 if n == 256 else profile.instructions > 0
    assert profile.words_to_rac == 2 * n
    assert profile.words_from_rac == 2 * n
    assert 0.5 < profile.cycles_per_word < 3.0
    assert profile.exec_wait_cycles == 0  # Figure 4 uses execs
    assert 0.0 < profile.bus_utilization <= 1.0
    assert profile.max_fifo_in_atoms > 0


def test_profile_render_is_readable(q15_signal):
    soc = SoC(racs=[PassthroughRac(block_size=16)])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(IN, list(range(16)))
    program = (OuProgram().stream_to(1, 16).execs()
               .stream_from(2, 16).eop())
    result = runtime.run(program.words(), {0: PROG, 1: IN, 2: OUT})
    text = profile_run(soc, result).render()
    assert "cycles/word" in text
    assert "bus utilization" in text
    assert "GPP config" in text


def test_profile_transfer_cycles_match_controller_states(q15_signal):
    soc = SoC(racs=[PassthroughRac(block_size=64, fifo_depth=128)])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(IN, list(range(64)))
    program = (OuProgram().stream_to(1, 64).execs()
               .stream_from(2, 64).eop())
    result = runtime.run(program.words(), {0: PROG, 1: IN, 2: OUT})
    profile = profile_run(soc, result)
    stats = soc.ocp.controller.stats
    assert profile.transfer_cycles == (
        stats["cycles.xfer_to"] + stats["cycles.xfer_from"]
    )
    assert profile.fifo_stall_cycles == stats["cycles.fifo_stall"]
