"""Property suite for the throughput scheduler.

Invariants the scheduler must uphold on every stream, independent of
the differential (bit-exactness) gate:

* every submitted job completes exactly once;
* no per-OCP queue ever exceeds its configured bound (back-pressure
  is real, not advisory);
* no serving OCP starves under round-robin -- distribution is even
  and the worst-case wait is bounded by the stream's makespan;
* batching never reorders jobs within a dependency chain, and a chain
  never migrates between OCPs;
* malformed submissions (duplicate ids, unknown kinds, infeasible
  sizes) are rejected loudly at submit time, not lost at dispatch.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sched import (
    CapabilityTable,
    Job,
    RoundRobinPolicy,
    ThroughputScheduler,
)
from repro.sim.errors import ConfigurationError
from repro.system import build_mpsoc

BLOCK = 8


def _soc(n_ocps: int = 4):
    return build_mpsoc([
        PassthroughRac(name=f"pt{i}", block_size=BLOCK)
        for i in range(n_ocps)
    ])


def _jobs(seed: int, count: int, prefix: str = "p") -> List[Job]:
    rng = random.Random(seed)
    return [
        Job(
            f"{prefix}{index}",
            "passthrough",
            [rng.getrandbits(32) for _ in range(BLOCK * rng.randrange(1, 4))],
        )
        for index in range(count)
    ]


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("batch_jobs", [1, 3])
def test_every_job_completes_exactly_once(seed, batch_jobs):
    sched = ThroughputScheduler(_soc(), batch_jobs=batch_jobs)
    jobs = _jobs(seed, 18)
    sched.run_stream(jobs)
    assert sched.submitted == len(jobs)
    assert len(sched.completion_order) == len(jobs)
    assert len(set(sched.completion_order)) == len(jobs)
    assert set(sched.completion_order) == {job.job_id for job in jobs}
    assert sum(slot.jobs_done for slot in sched.slots) == len(jobs)


@pytest.mark.parametrize("queue_bound", [1, 2, 3])
def test_queue_depth_never_exceeds_bound(queue_bound):
    """High-water marks respect the bound even under blocking pressure."""
    sched = ThroughputScheduler(
        _soc(2), queue_bound=queue_bound, batch_jobs=2
    )
    jobs = _jobs(11, 20)
    for job in jobs:
        sched.submit_blocking(job)
        for slot in sched.slots:
            assert len(slot.queue) <= queue_bound
    sched.drain()
    for slot in sched.slots:
        assert slot.queue_high_water <= queue_bound


def test_submit_exerts_back_pressure_when_all_queues_full():
    """submit() returns False (and mutates nothing) once queues fill."""
    sched = ThroughputScheduler(_soc(2), queue_bound=1)
    accepted = 0
    refused = None
    for job in _jobs(5, 10):
        if sched.submit(job):
            accepted += 1
        else:
            refused = job
            break
    # two queues of depth 1, plus whatever dispatch drained at cycle 0:
    # pressure must appear well before the stream ends
    assert refused is not None
    assert not sched.can_accept(refused)
    assert sched.submitted == accepted
    assert all(len(slot.queue) <= 1 for slot in sched.slots)


def test_round_robin_starves_no_ocp():
    """Uniform streams spread evenly; worst wait is within the makespan."""
    n_ocps, n_jobs = 4, 32
    sched = ThroughputScheduler(
        _soc(n_ocps), policy=RoundRobinPolicy(), queue_bound=n_jobs
    )
    rng = random.Random(21)
    jobs = [
        Job(f"rr{index}", "passthrough",
            [rng.getrandbits(32) for _ in range(BLOCK)])
        for index in range(n_jobs)
    ]
    results = sched.run_stream(jobs)
    per_ocp = [slot.jobs_done for slot in sched.slots]
    assert all(done > 0 for done in per_ocp), f"starved OCP: {per_ocp}"
    assert max(per_ocp) - min(per_ocp) <= 1
    makespan = max(r.complete_cycle for r in results)
    assert all(0 <= r.wait_cycles <= makespan for r in results)


def test_batching_preserves_order_within_chain():
    """Chained jobs complete in submission order, on one pinned OCP."""
    rng = random.Random(31)
    chains = ("a", "b", "c")
    jobs = [
        Job(f"cj{index}", "passthrough",
            [rng.getrandbits(32) for _ in range(BLOCK)],
            chain=chains[index % len(chains)])
        for index in range(15)
    ]
    sched = ThroughputScheduler(_soc(4), batch_jobs=3)
    results = sched.run_stream(jobs)
    position = {jid: i for i, jid in enumerate(sched.completion_order)}
    by_result = {r.job.job_id: r for r in results}
    for chain in chains:
        members = [job for job in jobs if job.chain == chain]
        homes = {by_result[job.job_id].ocp_index for job in members}
        assert len(homes) == 1, f"chain {chain} migrated across {homes}"
        order = [position[job.job_id] for job in members]
        assert order == sorted(order), (
            f"chain {chain} completed out of submission order: {order}"
        )


def test_duplicate_job_id_is_rejected():
    sched = ThroughputScheduler(_soc(2))
    job = Job("dup", "passthrough", list(range(BLOCK)))
    assert sched.submit(job)
    with pytest.raises(ConfigurationError, match="duplicate job id"):
        sched.submit(Job("dup", "passthrough", list(range(BLOCK))))


def test_unknown_kind_is_rejected():
    sched = ThroughputScheduler(_soc(2))
    with pytest.raises(ConfigurationError, match="no OCP serves"):
        sched.submit(Job("x", "dft", list(range(BLOCK))))


def test_infeasible_size_is_rejected():
    sched = ThroughputScheduler(_soc(2))
    with pytest.raises(ConfigurationError, match="fits no serving OCP"):
        sched.submit(Job("odd", "passthrough", list(range(BLOCK + 1))))
    with pytest.raises(ConfigurationError, match="fits no serving OCP"):
        sched.submit(Job("huge", "passthrough", list(range(BLOCK * 64))))


def test_empty_job_is_rejected():
    with pytest.raises(ConfigurationError):
        Job("empty", "passthrough", [])


def test_unknown_policy_is_rejected():
    with pytest.raises(ConfigurationError, match="choose from"):
        ThroughputScheduler(_soc(2), policy="lottery")


def test_capability_table_round_trip():
    soc = build_mpsoc([
        PassthroughRac(name="pt0"),
        ScaleRac(name="sc1"),
        PassthroughRac(name="pt2"),
    ])
    table = CapabilityTable.from_soc(soc)
    assert table.as_dict() == {"passthrough": [0, 2], "scale": [1]}
    assert table.serving("scale") == (1,)
    assert not table.validate(soc).errors
