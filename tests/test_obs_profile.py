"""End-to-end observability: counters, attribution, exporters, CLI.

The acceptance property of the observability layer: on the example
workloads, the OCP performance-counter registers read back over the
bus equal the values re-derived purely from the event trace --
bit-exactly, with and without idle skipping -- and the attribution's
transfer/compute/control buckets tile the simulator's cycle count
exactly.
"""

import json

import pytest

from repro.cli import main
from repro.core.perf import (
    N_PERF_REGISTERS,
    PERF_BASE,
    PERF_NAMES,
    PERF_WINDOW_BYTES,
)
from repro.obs import (
    attribute_run,
    derive_counters,
    reconstruct_spans,
    to_perfetto,
    to_vcd,
)
from repro.obs.workloads import PROFILE_WORKLOADS
from repro.sw.driver import OuessantDriver

WORKLOAD_MATRIX = [
    (name, idle_skip)
    for name in PROFILE_WORKLOADS
    for idle_skip in (True, False)
]


def _ids(param):
    return {True: "skip", False: "naive"}.get(param, str(param))


@pytest.fixture(scope="module")
def finished_runs():
    """Each workload run once per kernel mode (shared: runs are slow)."""
    return {
        (name, idle_skip): PROFILE_WORKLOADS[name](idle_skip=idle_skip)
        for name, idle_skip in WORKLOAD_MATRIX
    }


@pytest.mark.parametrize("name,idle_skip", WORKLOAD_MATRIX, ids=_ids)
def test_counters_match_trace_derivation_bit_exactly(
    finished_runs, name, idle_skip
):
    run = finished_runs[(name, idle_skip)]
    ocp = run.soc.ocps[run.ocp_index]
    derived = derive_counters(run.soc.sim.trace, ocp,
                              end_cycle=run.total_cycles)
    hardware = ocp.controller.perf.snapshot()
    assert hardware == derived


@pytest.mark.parametrize("name,idle_skip", WORKLOAD_MATRIX, ids=_ids)
def test_counter_registers_read_back_over_the_bus(
    finished_runs, name, idle_skip
):
    run = finished_runs[(name, idle_skip)]
    ocp = run.soc.ocps[run.ocp_index]
    expected = ocp.controller.perf.snapshot()
    driver = OuessantDriver(run.soc, ocp_index=run.ocp_index)
    for index in range(N_PERF_REGISTERS):
        value, _ = driver.read_register(PERF_BASE + 4 * index)
        assert value == expected[PERF_NAMES[index]]
    # reads beyond the counter block fall off the window
    assert ocp.interface.read_word(PERF_WINDOW_BYTES) == 0


@pytest.mark.parametrize("name,idle_skip", WORKLOAD_MATRIX, ids=_ids)
def test_attribution_tiles_the_total_cycle_count(
    finished_runs, name, idle_skip
):
    run = finished_runs[(name, idle_skip)]
    spans = reconstruct_spans(run.soc.sim.trace,
                              end_cycle=run.total_cycles)
    report = attribute_run(run.soc, workload=name,
                           ocp_index=run.ocp_index,
                           total_cycles=run.total_cycles, spans=spans)
    assert report.consistent
    assert (report.transfer_cycles + report.compute_cycles
            + report.control_cycles) == run.total_cycles
    assert report.words_moved > 0
    assert report.overlap_cycles <= report.transfer_cycles


def test_attribution_identical_across_kernel_modes(finished_runs):
    for name in PROFILE_WORKLOADS:
        reports = {}
        for idle_skip in (True, False):
            run = finished_runs[(name, idle_skip)]
            reports[idle_skip] = attribute_run(
                run.soc, workload=name, ocp_index=run.ocp_index,
                total_cycles=run.total_cycles,
            ).as_dict()
        assert reports[True] == reports[False]


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def test_perfetto_spans_nest_structurally(finished_runs):
    run = finished_runs[("jpeg-idct", True)]
    spans = reconstruct_spans(run.soc.sim.trace,
                              end_cycle=run.total_cycles)
    doc = to_perfetto(spans, trace=run.soc.sim.trace)
    json.dumps(doc)  # serialisable as-is
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices
    # per thread lane, sort by (ts, -dur): each slice must nest inside
    # the enclosing open slice -- Perfetto's own stacking rule
    by_tid = {}
    for event in slices:
        by_tid.setdefault(event["tid"], []).append(event)
    for lane in by_tid.values():
        lane.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for event in lane:
            begin, end = event["ts"], event["ts"] + event["dur"]
            while stack and begin >= stack[-1]:
                stack.pop()
            if stack:
                assert end <= stack[-1], "slice crosses its parent"
            stack.append(end)
    # metadata names every lane
    named = {e["tid"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert named == set(by_tid)
    # the driver op and the controller states appear
    names = {e["name"] for e in slices}
    assert "run" in names
    assert "xfer_to" in names


def test_perfetto_counter_track_carries_fifo_occupancy(finished_runs):
    run = finished_runs[("dft", True)]
    spans = reconstruct_spans(run.soc.sim.trace,
                              end_cycle=run.total_cycles)
    doc = to_perfetto(spans, trace=run.soc.sim.trace)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    assert max(e["args"]["occupancy_atoms"] for e in counters) == 64


def test_vcd_export_has_state_and_fifo_lanes(finished_runs):
    run = finished_runs[("dft", True)]
    spans = reconstruct_spans(run.soc.sim.trace,
                              end_cycle=run.total_cycles)
    text = to_vcd(spans, trace=run.soc.sim.trace)
    assert text.startswith("$timescale")
    assert "_state" in text.replace(".", "_")
    assert "_atoms" in text.replace(".", "_")
    assert "$enddefinitions" in text


# ---------------------------------------------------------------------------
# CLI (exit-code contract mirrors verify/lint)
# ---------------------------------------------------------------------------

def test_cli_profile_human_output(capsys):
    assert main(["profile", "dft"]) == 0
    out = capsys.readouterr().out
    assert "dft:" in out and "transfer" in out and "counters   ok" in out


def test_cli_profile_json_is_schema_clean(capsys):
    assert main(["profile", "jpeg-idct", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    from repro.obs.attribution import REPORT_FIELDS

    assert set(payload) == set(REPORT_FIELDS)
    assert (payload["transfer_cycles"] + payload["compute_cycles"]
            + payload["control_cycles"]) == payload["total_cycles"]


def test_cli_profile_writes_export_files(tmp_path, capsys):
    perfetto = tmp_path / "trace.json"
    vcd = tmp_path / "trace.vcd"
    assert main(["profile", "dft", "--perfetto", str(perfetto),
                 "--vcd", str(vcd)]) == 0
    doc = json.loads(perfetto.read_text())
    assert doc["traceEvents"]
    assert vcd.read_text().startswith("$timescale")


def test_cli_profile_unknown_workload_is_usage_error(capsys):
    assert main(["profile", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# bench integration (satellite: artifact by default, with attribution)
# ---------------------------------------------------------------------------

def test_bench_records_attribution_and_default_artifact(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "loopback"]) == 0
    artifact = tmp_path / "BENCH_simulator.json"
    assert artifact.exists(), "bench must write its artifact by default"
    payload = json.loads(artifact.read_text())
    (row,) = payload["workloads"]
    attribution = row["attribution"]
    assert (attribution["transfer_cycles"] + attribution["compute_cycles"]
            + attribution["control_cycles"]) == attribution["total_cycles"]
    assert attribution["total_cycles"] == row["cycles"]
