"""Tests for the address map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus.memmap import MemoryMap, Region
from repro.bus.types import BusSlave
from repro.sim.errors import AddressError, ConfigurationError


class Dummy(BusSlave):
    def read_word(self, offset):
        return 0

    def write_word(self, offset, value):
        pass


def test_add_and_lookup():
    memmap = MemoryMap()
    memmap.add("ram", 0x1000, 0x100, Dummy())
    region, offset = memmap.lookup(0x1040)
    assert region.name == "ram"
    assert offset == 0x40


def test_unmapped_address_raises():
    memmap = MemoryMap()
    memmap.add("ram", 0x1000, 0x100, Dummy())
    with pytest.raises(AddressError):
        memmap.lookup(0x2000)
    assert memmap.find(0x2000) is None


def test_span_crossing_region_end_raises():
    memmap = MemoryMap()
    memmap.add("ram", 0x1000, 0x100, Dummy())
    with pytest.raises(AddressError):
        memmap.lookup(0x10F8, span_bytes=16)
    # exactly to the end is fine
    memmap.lookup(0x10F0, span_bytes=16)


def test_overlap_rejected():
    memmap = MemoryMap()
    memmap.add("a", 0x1000, 0x100, Dummy())
    with pytest.raises(ConfigurationError):
        memmap.add("b", 0x10F0, 0x100, Dummy())
    # adjacent is fine
    memmap.add("c", 0x1100, 0x100, Dummy())


def test_alignment_and_size_validation():
    memmap = MemoryMap()
    with pytest.raises(ConfigurationError):
        memmap.add("x", 0x1002, 0x100, Dummy())
    with pytest.raises(ConfigurationError):
        memmap.add("x", 0x1000, 0x102, Dummy())
    with pytest.raises(ConfigurationError):
        memmap.add("x", 0x1000, 0, Dummy())


def test_regions_sorted_and_rendered():
    memmap = MemoryMap()
    memmap.add("hi", 0x8000, 0x100, Dummy())
    memmap.add("lo", 0x1000, 0x100, Dummy())
    assert [r.name for r in memmap.regions] == ["lo", "hi"]
    rendering = memmap.render()
    assert "lo" in rendering and "hi" in rendering


@given(st.integers(0, 0xFF))
def test_region_contains_matches_range(offset):
    region = Region("r", 0x1000, 0x100, Dummy())
    address = 0x1000 + offset
    assert region.contains(address)
    assert not region.contains(0x1000 + 0x100)
    assert not region.contains(0xFFF)


@given(
    st.integers(0, 64).map(lambda v: v * 4),
    st.integers(1, 16).map(lambda v: v * 4),
    st.integers(0, 64).map(lambda v: v * 4),
    st.integers(1, 16).map(lambda v: v * 4),
)
def test_overlap_symmetry(base_a, size_a, base_b, size_b):
    a = Region("a", base_a, size_a, Dummy())
    b = Region("b", base_b, size_b, Dummy())
    assert a.overlaps(b) == b.overlaps(a)
    # overlap iff some word is in both
    words_a = set(range(base_a, base_a + size_a, 4))
    words_b = set(range(base_b, base_b + size_b, 4))
    assert a.overlaps(b) == bool(words_a & words_b)
