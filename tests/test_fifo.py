"""Tests for the variable-width FIFO (incl. property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rac.fifo import FIFO
from repro.sim.errors import ConfigurationError, FIFOError
from repro.sim.kernel import Simulator


def settled(fifo):
    """Commit staged pushes (what a clock edge does)."""
    fifo.commit()
    return fifo


def test_push_visible_only_after_commit():
    fifo = FIFO("f")
    fifo.push(7)
    assert fifo.empty
    fifo.commit()
    assert not fifo.empty
    assert fifo.pop() == 7


def test_fifo_ordering():
    fifo = FIFO("f")
    fifo.push_many([1, 2, 3])
    fifo.commit()
    assert fifo.pop_many(3) == [1, 2, 3]


def test_push_full_raises():
    fifo = FIFO("f", depth=2)
    fifo.push_many([1, 2])
    with pytest.raises(FIFOError):
        fifo.push(3)


def test_pop_empty_raises():
    fifo = FIFO("f")
    with pytest.raises(FIFOError):
        fifo.pop()
    with pytest.raises(FIFOError):
        fifo.peek()


def test_value_width_checked():
    fifo = FIFO("f", width_push=16, width_pop=16)
    with pytest.raises(FIFOError):
        fifo.push(1 << 16)
    with pytest.raises(FIFOError):
        fifo.push(-1)


def test_serialize_32_to_96():
    fifo = FIFO("f", width_push=32, width_pop=96, depth=4)
    fifo.push_many([0x11111111, 0x22222222, 0x33333333])
    fifo.commit()
    assert fifo.occupancy == 1
    wide = fifo.pop()
    assert wide == (0x33333333 << 64) | (0x22222222 << 32) | 0x11111111


def test_deserialize_96_to_32():
    fifo = FIFO("f", width_push=96, width_pop=32, depth=8)
    fifo.push((0xCC << 64) | (0xBB << 32) | 0xAA)
    fifo.commit()
    assert fifo.pop_many(3) == [0xAA, 0xBB, 0xCC]


def test_partial_wide_word_not_poppable():
    fifo = FIFO("f", width_push=32, width_pop=96, depth=4)
    fifo.push_many([1, 2])
    fifo.commit()
    assert fifo.occupancy == 0
    fifo.push(3)
    fifo.commit()
    assert fifo.occupancy == 1


def test_capacity_in_pop_words():
    fifo = FIFO("f", width_push=32, width_pop=96, depth=2)
    # capacity = 2 pop-words = 6 push words
    assert fifo.free_push_words == 6
    fifo.push_many([0] * 6)
    assert fifo.full
    with pytest.raises(FIFOError):
        fifo.push(0)


def test_peek_does_not_consume():
    fifo = FIFO("f")
    fifo.push(9)
    fifo.commit()
    assert fifo.peek() == 9
    assert fifo.occupancy == 1
    assert fifo.pop() == 9


def test_bad_geometry_rejected():
    with pytest.raises(ConfigurationError):
        FIFO("f", width_push=4)
    with pytest.raises(ConfigurationError):
        FIFO("f", width_pop=2048)
    with pytest.raises(ConfigurationError):
        FIFO("f", depth=0)


def test_reset_empties():
    fifo = FIFO("f")
    fifo.push_many([1, 2])
    fifo.commit()
    fifo.reset()
    assert fifo.empty
    assert fifo.free_push_words == fifo.depth


def test_stats_and_high_water():
    fifo = FIFO("f", depth=8)
    fifo.push_many([1, 2, 3])
    fifo.commit()
    fifo.pop()
    assert fifo.stats["pushes"] == 3
    assert fifo.stats["pops"] == 1
    assert fifo.stats["max_occupancy_atoms"] == 3


def test_storage_bits():
    assert FIFO("f", 32, 32, depth=64).storage_bits == 64 * 32
    assert FIFO("f", 32, 96, depth=4).storage_bits == 4 * 96


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=60))
def test_conservation_and_order_same_width(values):
    fifo = FIFO("f", depth=64)
    fifo.push_many(values)
    fifo.commit()
    assert fifo.drain() == values


@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=3, max_size=30),
    st.sampled_from([(32, 64), (32, 96), (64, 32), (96, 32), (16, 32)]),
)
@settings(max_examples=50)
def test_width_conversion_conserves_bits(values, widths):
    width_push, width_pop = widths
    fifo = FIFO("f", width_push, width_pop, depth=128)
    mask = (1 << width_push) - 1
    values = [v & mask for v in values]
    fifo.push_many(values)
    fifo.commit()
    popped = fifo.drain()
    # reconstruct the bit stream both ways (little-endian atoms)
    def to_bits(words, width):
        total = 0
        for index, word in enumerate(words):
            total |= word << (index * width)
        return total

    n_bits_out = len(popped) * width_pop
    in_bits = to_bits(values, width_push)
    out_bits = to_bits(popped, width_pop)
    assert out_bits == in_bits & ((1 << n_bits_out) - 1)


@given(st.data())
@settings(max_examples=50)
def test_random_push_pop_interleaving_is_fifo(data):
    fifo = FIFO("f", depth=16)
    reference = []
    pushed = popped = 0
    for _ in range(40):
        action = data.draw(st.sampled_from(["push", "pop", "commit"]))
        if action == "push" and fifo.can_push():
            fifo.push(pushed)
            reference.append(pushed)
            pushed += 1
        elif action == "pop" and fifo.can_pop():
            value = fifo.pop()
            assert value == popped  # strict FIFO order
            popped += 1
        elif action == "commit":
            fifo.commit()
    # total conservation
    fifo.commit()
    remaining = fifo.drain()
    assert remaining == list(range(popped, pushed))
