"""Differential gate for the multi-OCP throughput scheduler.

Every case runs a seeded job stream twice:

* scheduled -- through :class:`repro.sched.ThroughputScheduler` on a
  heterogeneous 2/4/8-OCP SoC (mixed kernels, mixed sizes, with and
  without batching);
* reference -- one job at a time, in submission order, on a
  single-OCP SoC per kernel kind via the ordinary blocking driver.

Kernels are pure functions of their input block, so placement,
batching, fairness and bus interleaving must not change a single
output word: the comparison is bit-exact, never approximate.

Fault variants rerun the scheduled side under ``repro.faults``:

* recoverable RAM stall plans must still drain bit-exact (timing-only
  faults cannot alter data);
* a microcode corruption that turns a staged ``mvtc`` into a blocking
  ``exec`` parks the engine in EXEC_WAIT, traps the watchdog, and must
  be healed by the scheduler's abort/backoff/re-stage retry path.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan, inject_faults
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sched import Job, ThroughputScheduler, run_sequential_reference
from repro.sched.scheduler import SCHED_ARENA_BASE_OFFSET
from repro.system import RAM_BASE, build_mpsoc

PT_BLOCK = 8
SC_BLOCK = 4
SEED_BASE = 20240
N_SEEDS = 14
OCP_COUNTS = (2, 4, 8)


def _scale_params(seed: int) -> Dict[str, int]:
    rng = random.Random(seed * 7919)
    return {"factor": rng.randrange(-7, 8) or 5, "shift": rng.randrange(0, 4)}


def _build_soc(n_ocps: int, seed: int, **ocp_kwargs):
    """Heterogeneous SoC: alternate passthrough / scale coprocessors."""
    params = _scale_params(seed)
    racs = []
    for index in range(n_ocps):
        if index % 2 == 0:
            racs.append(PassthroughRac(name=f"pt{index}", block_size=PT_BLOCK))
        else:
            racs.append(
                ScaleRac(name=f"sc{index}", block_size=SC_BLOCK, **params)
            )
    return build_mpsoc(racs, ocp_kwargs=ocp_kwargs or None)


def _factories(n_ocps: int, seed: int) -> Dict[str, Callable[[], object]]:
    params = _scale_params(seed)
    factories: Dict[str, Callable[[], object]] = {
        "passthrough": lambda: PassthroughRac(block_size=PT_BLOCK),
    }
    if n_ocps > 1:
        factories["scale"] = lambda: ScaleRac(block_size=SC_BLOCK, **params)
    return factories


def _stream(seed: int, n_ocps: int, n_jobs: int = 14) -> List[Job]:
    """A seeded mixed-kind, mixed-size job stream."""
    rng = random.Random(seed)
    kinds = ["passthrough"] + (["scale"] if n_ocps > 1 else [])
    jobs = []
    for index in range(n_jobs):
        kind = rng.choice(kinds)
        block = PT_BLOCK if kind == "passthrough" else SC_BLOCK
        size = block * rng.randrange(1, 5)
        words = [rng.getrandbits(32) for _ in range(size)]
        jobs.append(Job(f"j{seed}-{index}", kind, words))
    return jobs


def _run_scheduled(
    jobs: List[Job], n_ocps: int, seed: int, plan=None, **sched_kwargs
) -> Dict[str, List[int]]:
    soc = _build_soc(n_ocps, seed, **sched_kwargs.pop("ocp_kwargs", {}))
    if plan is not None:
        inject_faults(soc, plan)
    sched = ThroughputScheduler(soc, **sched_kwargs)
    results = sched.run_stream(jobs)
    assert len(results) == len(jobs)
    return {r.job.job_id: r.outputs for r in results}


CASES = [
    (SEED_BASE + offset, n_ocps)
    for offset in range(N_SEEDS)
    for n_ocps in OCP_COUNTS
]
assert len(CASES) >= 40


@pytest.mark.parametrize("seed,n_ocps", CASES)
def test_scheduled_stream_matches_sequential_reference(seed, n_ocps):
    """Scheduled multi-OCP output is bit-exact vs the sequential run."""
    jobs = _stream(seed, n_ocps)
    # odd seeds exercise batching, even seeds dispatch one job at a time
    batch_jobs = 4 if seed % 2 else 1
    policy = "shortest-queue" if seed % 3 == 0 else "round-robin"
    scheduled = _run_scheduled(
        jobs, n_ocps, seed, batch_jobs=batch_jobs, policy=policy
    )
    reference = run_sequential_reference(jobs, _factories(n_ocps, seed))
    assert scheduled == reference


@pytest.mark.parametrize("seed", [SEED_BASE + o for o in range(6)])
def test_scheduled_stream_bit_exact_under_ram_stalls(seed):
    """Recoverable stall plans drain cleanly and change no output word."""
    n_ocps = 4
    jobs = _stream(seed, n_ocps)
    plan = FaultPlan.random_stalls(
        seed, n_events=6, sites=("ram",), max_index=64, max_stall=20
    )
    assert plan.recoverable
    faulted = _run_scheduled(jobs, n_ocps, seed, plan=plan, batch_jobs=2)
    reference = run_sequential_reference(jobs, _factories(n_ocps, seed))
    assert faulted == reference


def test_corrupted_batch_traps_watchdog_and_retries_bit_exact():
    """A corrupted staged program is healed by the retry re-stage.

    Flipping bit 28 of the first staged instruction turns the opening
    ``mvtc`` (0x01) into a blocking ``exec`` (0x03); with no input data
    the engine parks in EXEC_WAIT until the watchdog traps.  The
    scheduler must abort (CTRL=0 + soft reset), back off, re-stage the
    arena (which rewrites the corrupted word) and complete bit-exact.
    """
    seed = SEED_BASE + 99
    n_ocps = 2
    jobs = _stream(seed, n_ocps, n_jobs=8)
    plan = FaultPlan(seed=seed, events=[
        FaultEvent(
            FaultKind.CORRUPT_MICROCODE, "mc", index=2, bit=28,
            word=RAM_BASE + SCHED_ARENA_BASE_OFFSET,
        ),
    ])
    soc = _build_soc(n_ocps, seed, watchdog_cycles=2000)
    inject_faults(soc, plan)
    sched = ThroughputScheduler(soc, batch_jobs=2, backoff_cycles=64)
    results = sched.run_stream(jobs)

    retried = [r for r in results if r.attempts > 1]
    assert retried, "the corrupted batch must have been re-dispatched"
    assert sum(slot.retries for slot in sched.slots) >= 1
    scheduled = {r.job.job_id: r.outputs for r in results}
    reference = run_sequential_reference(jobs, _factories(n_ocps, seed))
    assert scheduled == reference


def test_chained_jobs_bit_exact_with_batching():
    """Dependency chains stay bit-exact when fused into batches."""
    seed = SEED_BASE + 7
    rng = random.Random(seed)
    jobs = []
    for index in range(12):
        chain = f"c{index % 3}"
        words = [rng.getrandbits(32) for _ in range(PT_BLOCK)]
        jobs.append(Job(f"ch{index}", "passthrough", words, chain=chain))
    scheduled = _run_scheduled(jobs, 4, seed, batch_jobs=3)
    reference = run_sequential_reference(jobs, _factories(1, seed))
    assert scheduled == reference
