"""Tests for the microcode assembler / disassembler / program builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.assembler import assemble_microcode, disassemble
from repro.core.encoding import decode, encode
from repro.core.isa import FIFODirection, OuInstruction, OuOp
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
    idct_program,
)
from repro.sim.errors import AssemblerError, ConfigurationError

FIGURE4_TEXT = """\
# 64 words from offset 0 of bank 1
# to coprocessor FIFO 0
mvtc BANK1,0,DMA64,FIFO0
mvtc BANK1,64,DMA64,FIFO0
mvtc BANK1,128,DMA64,FIFO0
mvtc BANK1,192,DMA64,FIFO0
mvtc BANK1,256,DMA64,FIFO0
mvtc BANK1,320,DMA64,FIFO0
mvtc BANK1,384,DMA64,FIFO0
mvtc BANK1,448,DMA64,FIFO0
execs
mvfc BANK2,0,DMA64,FIFO0
mvfc BANK2,64,DMA64,FIFO0
mvfc BANK2,128,DMA64,FIFO0
mvfc BANK2,192,DMA64,FIFO0
mvfc BANK2,256,DMA64,FIFO0
mvfc BANK2,320,DMA64,FIFO0
mvfc BANK2,384,DMA64,FIFO0
mvfc BANK2,448,DMA64,FIFO0
eop
"""


def test_figure4_assembles_to_18_instructions():
    words = assemble_microcode(FIGURE4_TEXT)
    assert len(words) == 18
    first = decode(words[0])
    assert first.op is OuOp.MVTC
    assert (first.bank, first.offset, first.count, first.fifo) == (1, 0, 64, 0)
    assert decode(words[8]).op is OuOp.EXECS
    last_mvfc = decode(words[16])
    assert (last_mvfc.bank, last_mvfc.offset) == (2, 448)
    assert decode(words[17]).op is OuOp.EOP


def test_figure4_text_matches_program_builder():
    assert assemble_microcode(FIGURE4_TEXT) == figure4_program(256).words()


def test_operands_accept_plain_integers():
    a = assemble_microcode("mvtc 1, 64, 16, 2")
    b = assemble_microcode("mvtc BANK1,64,DMA16,FIFO2")
    assert a == b


def test_extension_instructions_assemble():
    words = assemble_microcode("""
    top:
        clrofr
        loop 8
        mvtcx BANK1,0,DMA64,FIFO0
        addofr 64
        endl
        execs
        wait 100
        waitf out,FIFO0,16
        irq
        sync
        jmp top
        halt
    """)
    assert decode(words[1]).imm == 8
    assert decode(words[6]).imm == 100
    waitf = decode(words[7])
    assert waitf.direction is FIFODirection.OUTPUT
    assert waitf.count == 16
    assert decode(words[10]).imm == 0  # label `top` = index 0
    assert decode(words[11]).op is OuOp.HALT


def test_labels_resolve_forward():
    words = assemble_microcode("jmp end\nnop\nend: eop")
    assert decode(words[0]).imm == 2


def test_assembler_errors():
    with pytest.raises(AssemblerError):
        assemble_microcode("frobnicate")
    with pytest.raises(AssemblerError):
        assemble_microcode("mvtc BANK1,0")
    with pytest.raises(AssemblerError):
        assemble_microcode("jmp nowhere")
    with pytest.raises(AssemblerError):
        assemble_microcode("eop extra")
    with pytest.raises(AssemblerError):
        assemble_microcode("waitf sideways,FIFO0,4")
    with pytest.raises(AssemblerError):
        assemble_microcode("x: nop\nx: nop")
    with pytest.raises(AssemblerError):
        assemble_microcode("mvtc BANKQ,0,DMA64,FIFO0")


def test_error_reports_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble_microcode("nop\nnop\nbogus")
    assert "line 3" in str(excinfo.value)


def test_disassemble_roundtrip_figure4():
    words = assemble_microcode(FIGURE4_TEXT)
    text = disassemble(words)
    assert assemble_microcode(text) == words
    assert "mvtc BANK1,0,DMA64,FIFO0" in text


@given(st.integers(1, 16).map(lambda k: 32 * k))
def test_program_builder_figure4_structure(total):
    program = (
        OuProgram().stream_to(1, total, chunk=64).execs()
        .stream_from(2, total, chunk=64).eop()
    )
    words = program.words()
    decoded = [decode(w) for w in words]
    mvtcs = [i for i in decoded if i.op is OuOp.MVTC]
    mvfcs = [i for i in decoded if i.op is OuOp.MVFC]
    assert sum(i.count for i in mvtcs) == total
    assert sum(i.count for i in mvfcs) == total
    # offsets tile the block exactly
    assert [i.offset for i in mvtcs] == sorted(i.offset for i in mvtcs)
    assert decoded[-1].op is OuOp.EOP


def test_program_builder_validation():
    with pytest.raises(ConfigurationError):
        OuProgram().stream_to(1, 0)
    with pytest.raises(ConfigurationError):
        OuProgram().stream_to(1, 64, chunk=0)
    with pytest.raises(ConfigurationError):
        OuProgram().waitf("up", 0, 1)


def test_idct_program_shape():
    program = idct_program(n_blocks=2)
    decoded = [decode(w) for w in program.words()]
    assert sum(1 for i in decoded if i.op is OuOp.EXECS) == 2
    assert decoded[-1].op is OuOp.EOP


def test_looped_program_is_constant_size():
    small = figure4_looped_program(256)
    large = figure4_looped_program(1024)
    assert len(small) == len(large) == 12


def test_program_listing_is_parseable():
    program = figure4_looped_program(256)
    words = assemble_microcode(program.listing())
    assert words == program.words()
