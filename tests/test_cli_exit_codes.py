"""The exit-code contract, uniformly across every analyzer CLI.

Each analyzer promises the same three-way contract: ``0`` for a clean
input (warnings included), ``1`` when error findings are reported,
``2`` for usage errors (bad flags, bad specs, missing files).  The CI
``analyzer-cli`` matrix job runs this file filtered per analyzer
(``pytest -k verify``, ``-k lint``, ``-k racecheck``, ``-k
perfbound``, ``-k diag``), so test ids carry the analyzer token.
"""

from pathlib import Path

import pytest

from repro.cli import main

STREAMS = Path(__file__).resolve().parent.parent / "examples" / "streams"

FIGURE4_16 = """\
mvtc BANK1,0,DMA16,FIFO0
execs
mvfc BANK2,0,DMA16,FIFO0
eop
"""

BANK_ARGS = ["--bank", "0=0x40001000", "--bank", "1=0x40002000",
             "--bank", "2=0x40003000"]


@pytest.fixture
def prog16(tmp_path):
    path = tmp_path / "prog16.ouasm"
    path.write_text(FIGURE4_16)
    return str(path)


@pytest.fixture
def truncated(tmp_path):
    path = tmp_path / "bad.ouasm"
    path.write_text("mvtc BANK1,0,DMA16,FIFO0\n")  # no eop
    return str(path)


# -- verify ---------------------------------------------------------------


def test_verify_clean_exits_0(prog16):
    assert main(["verify", prog16, "--rac", "passthrough:16"]) == 0


def test_verify_findings_exit_1(truncated):
    assert main(["verify", truncated, "--rac", "passthrough:16"]) == 1


def test_verify_usage_error_exits_2(prog16):
    assert main(["verify", prog16, "--rac", "nosuchrac:9"]) == 2
    assert main(["verify", "/nonexistent.ouasm"]) == 2


# -- lint -----------------------------------------------------------------


def test_lint_clean_exits_0():
    assert main(["lint", "--rac", "scale:16", *BANK_ARGS]) == 0


def test_lint_findings_exit_1():
    assert main(["lint", "--rac", "idct", "--clock", "400"]) == 1


def test_lint_usage_error_exits_2():
    assert main(["lint", "--bank", "one=2"]) == 2
    # a throughput budget needs firmware to bound
    assert main(["lint", "--rac", "scale:16",
                 "--budget-cycles", "5000"]) == 2


# -- racecheck ------------------------------------------------------------


def test_racecheck_clean_exits_0():
    assert main(["racecheck", str(STREAMS / "clean_mixed.json")]) == 0


def test_racecheck_findings_exit_1():
    assert main(
        ["racecheck", str(STREAMS / "racy_shared_arena.json")]) == 1


def test_racecheck_usage_error_exits_2():
    assert main(["racecheck", "/nonexistent.json"]) == 2


# -- perfbound ------------------------------------------------------------


def test_perfbound_clean_exits_0(prog16):
    assert main(["perfbound", prog16, "--rac", "passthrough:16"]) == 0


def test_perfbound_findings_exit_1(prog16):
    # OU304: worst case cannot fit a 1-cycle SLA
    assert main(["perfbound", prog16, "--rac", "passthrough:16",
                 "--sla-cycles", "1"]) == 1
    # OU300: transfers with no RAC timing contract
    assert main(["perfbound", prog16]) == 1


def test_perfbound_usage_error_exits_2(prog16):
    assert main(["perfbound", prog16, "--rac", "passthrough:16",
                 "--mem-latency", "3:1"]) == 2
    assert main(["perfbound", prog16, "--rac", "passthrough:16",
                 "--masters", "0"]) == 2
    assert main(["perfbound", "/nonexistent.ouasm"]) == 2


# -- diag -----------------------------------------------------------------


def test_diag_known_code_exits_0():
    assert main(["diag", "OU300"]) == 0


def test_diag_listing_exits_0():
    assert main(["diag"]) == 0


def test_diag_unknown_code_exits_2():
    assert main(["diag", "OU999"]) == 2
