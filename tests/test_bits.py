"""Property-based and unit tests for the bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bits


@given(st.integers(min_value=-(2**40), max_value=2**40), st.integers(1, 64))
def test_unsigned_signed_roundtrip(value, width):
    wrapped = bits.to_unsigned(value, width)
    assert 0 <= wrapped < (1 << width)
    assert bits.to_unsigned(bits.to_signed(wrapped, width), width) == wrapped


@given(st.integers(0, 2**32 - 1), st.integers(0, 31), st.integers(0, 31))
def test_get_field_matches_shift_mask(word, a, b):
    hi, lo = max(a, b), min(a, b)
    assert bits.get_field(word, hi, lo) == (word >> lo) & ((1 << (hi - lo + 1)) - 1)


@given(st.integers(0, 2**32 - 1), st.integers(0, 28), st.integers(0, 15))
def test_set_then_get_field(word, lo, value):
    hi = lo + 3
    updated = bits.set_field(word, hi, lo, value)
    assert bits.get_field(updated, hi, lo) == value
    # other bits untouched
    mask = ~(0xF << lo) & 0xFFFFFFFF
    assert updated & mask == word & mask


def test_set_field_rejects_oversized_value():
    with pytest.raises(ValueError):
        bits.set_field(0, 3, 0, 16)


def test_get_field_rejects_inverted_range():
    with pytest.raises(ValueError):
        bits.get_field(0, 0, 5)


@given(st.integers(-32768, 32767), st.integers(-32768, 32767))
def test_halfword_pack_roundtrip(lo, hi):
    assert bits.unpack_halfwords(bits.pack_halfwords(lo, hi)) == (lo, hi)


@given(st.binary(max_size=64))
def test_words_bytes_roundtrip(data):
    words = bits.words_from_bytes(data)
    out = bits.bytes_from_words(words)
    assert out[: len(data)] == data
    assert all(b == 0 for b in out[len(data):])


@given(st.integers(-(2**31), 2**31 - 1), st.integers(1, 31))
def test_sign_extend_preserves_value(value, from_bits):
    small = bits.to_unsigned(value, from_bits)
    extended = bits.sign_extend(small, from_bits)
    assert bits.to_signed(extended, 32) == bits.to_signed(small, from_bits)


@given(st.integers(0, 2**32 - 1))
def test_popcount_matches_bin(value):
    assert bits.popcount(value) == bin(value).count("1")


@given(st.integers(0, 30))
def test_power_of_two_detection(exponent):
    value = 1 << exponent
    assert bits.is_power_of_two(value)
    assert bits.log2_exact(value) == exponent
    if value > 2:
        assert not bits.is_power_of_two(value + 1)


def test_log2_exact_rejects_non_powers():
    with pytest.raises(ValueError):
        bits.log2_exact(12)
    assert not bits.is_power_of_two(0)
    assert not bits.is_power_of_two(-4)


@given(st.integers(0, 10_000), st.integers(1, 512))
def test_align_up_properties(value, alignment):
    aligned = bits.align_up(value, alignment)
    assert aligned >= value
    assert aligned % alignment == 0
    assert aligned - value < alignment


def test_align_up_rejects_bad_alignment():
    with pytest.raises(ValueError):
        bits.align_up(4, 0)


def test_fits_helpers():
    assert bits.fits_unsigned(255, 8)
    assert not bits.fits_unsigned(256, 8)
    assert bits.fits_signed(-128, 8)
    assert not bits.fits_signed(128, 8)
    assert not bits.fits_signed(-129, 8)
