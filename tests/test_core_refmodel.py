"""Differential testing: cycle-accurate controller vs reference model.

Random microcode programs are generated (structurally valid: chunked
transfers through a loopback RAC, optionally using the extension ISA),
executed both on the full simulated SoC and on the functional
reference model, and the final memory contents compared word for word.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.program import OuProgram
from repro.core.refmodel import ReferenceMemory, ReferenceRAC, execute_reference
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.sim.errors import ControllerError
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def run_both(rac_factory, ref_rac_factory, program, input_words,
             out_words_count):
    """Run on the SoC and on the reference model; return both outputs."""
    # --- cycle-accurate ---
    soc = SoC(racs=[rac_factory()])
    soc.write_ram(IN, input_words)
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=500_000)
    simulated = soc.read_ram(OUT, out_words_count)

    # --- reference ---
    memory = ReferenceMemory()
    memory.write(IN, input_words)
    reference_rac = ref_rac_factory()
    execute_reference(
        program.instructions, {0: PROG, 1: IN, 2: OUT}, memory,
        reference_rac,
    )
    referenced = memory.read(OUT, out_words_count)
    return simulated, referenced


def test_reference_matches_simple_program():
    block = 16
    program = (OuProgram().stream_to(1, block).execs()
               .stream_from(2, block).eop())
    rac = lambda: PassthroughRac(block_size=block)
    ref = lambda: ReferenceRAC([block], [block], lambda c: [list(c[0])])
    simulated, referenced = run_both(rac, ref, program,
                                     list(range(100, 100 + block)), block)
    assert simulated == referenced


@settings(max_examples=25, deadline=None)
@given(
    n_blocks=st.integers(1, 4),
    chunk=st.sampled_from([4, 8, 16]),
    use_loop=st.booleans(),
    factor=st.integers(-3, 3),
    data=st.data(),
)
def test_random_programs_differential(n_blocks, chunk, use_loop, factor, data):
    block = 16
    total = n_blocks * block
    input_words = [
        data.draw(st.integers(0, 0xFFFF)) for _ in range(total)
    ]

    if use_loop and total % chunk == 0:
        n_chunks = total // chunk
        program = (
            OuProgram()
            .clrofr()
            .loop(n_chunks).mvtcx(1, 0, chunk).addofr(chunk).endl()
            .execs()
            .clrofr()
            .loop(n_chunks).mvfcx(2, 0, chunk).addofr(chunk).endl()
            .eop()
        )
    else:
        program = (OuProgram()
                   .stream_to(1, total, chunk=chunk)
                   .execs()
                   .stream_from(2, total, chunk=chunk)
                   .eop())

    def compute(collected):
        return [[((v - (1 << 32) if v & (1 << 31) else v) * factor
                  >> 1) & 0xFFFFFFFF for v in collected[0]]]

    rac = lambda: ScaleRac(block_size=block, factor=factor, shift=1,
                           fifo_depth=64)
    ref = lambda: ReferenceRAC([block], [block], compute)
    simulated, referenced = run_both(rac, ref, program, input_words, total)
    assert simulated == referenced


def test_reference_detects_overdrain():
    memory = ReferenceMemory()
    memory.write(IN, [1, 2, 3, 4])
    rac = ReferenceRAC([4], [4], lambda c: [list(c[0])])
    program = (OuProgram().stream_to(1, 4).execs()
               .stream_from(2, 8).eop())  # drains 8, produces 4
    with pytest.raises(ControllerError):
        execute_reference(program.instructions, {0: PROG, 1: IN, 2: OUT},
                          memory, rac)


def test_reference_memory_defaults_to_zero():
    memory = ReferenceMemory()
    assert memory.read(0x100, 2) == [0, 0]
    memory.write(0x100, [7])
    assert memory.read(0x100, 2) == [7, 0]
    assert memory.snapshot() == {0x100: 7}


def test_reference_fires_multi_port_operations():
    rac = ReferenceRAC([2, 1], [2], lambda c: [[c[0][0] + c[1][0],
                                                c[0][1] + c[1][0]]])
    rac.push(0, [10, 20])
    assert rac.ops_fired == 0  # config port still empty
    rac.push(1, [5])
    assert rac.ops_fired == 1
    assert rac.pop(0, 2) == [15, 25]


@settings(max_examples=15, deadline=None)
@given(
    positions=st.lists(st.integers(0, 3), min_size=1, max_size=4),
    filler=st.sampled_from(["nop", "sync", "wait", "waitf"]),
    data=st.data(),
)
def test_timing_only_instructions_never_change_results(positions, filler,
                                                       data):
    """nop/sync/wait/waitf sprinkled anywhere: same memory outcome."""
    from repro.core.isa import OuInstruction, OuOp
    from repro.core.program import OuProgram

    block = 8
    base = (OuProgram().stream_to(1, 2 * block, chunk=block).execs()
            .stream_from(2, 2 * block, chunk=block).eop())
    instructions = base.instructions
    for position in sorted(set(positions)):
        if filler == "nop":
            extra = OuInstruction(OuOp.NOP)
        elif filler == "sync":
            extra = OuInstruction(OuOp.SYNC)
        elif filler == "wait":
            extra = OuInstruction(OuOp.WAIT,
                                  imm=data.draw(st.integers(0, 40)))
        else:
            extra = OuInstruction(OuOp.WAITF, fifo=0,
                                  count=data.draw(st.integers(0, 4)))
        instructions = (instructions[:position] + [extra]
                        + instructions[position:])
    program = OuProgram.from_instructions(instructions)
    rac = lambda: PassthroughRac(block_size=block)
    ref = lambda: ReferenceRAC([block], [block], lambda c: [list(c[0])])
    input_words = [data.draw(st.integers(0, 0xFFFF))
                   for _ in range(2 * block)]
    simulated, referenced = run_both(rac, ref, program, input_words,
                                     2 * block)
    assert simulated == referenced == input_words


@settings(max_examples=20, deadline=None)
@given(
    block=st.sampled_from([8, 16, 32]),
    n_blocks=st.integers(1, 3),
    chunk=st.sampled_from([4, 8, 16, 64]),
    drain_everything=st.booleans(),
)
def test_lint_clean_programs_complete(block, n_blocks, chunk,
                                      drain_everything):
    """Anything the linter passes must run to completion (no deadlock)."""
    from repro.verify import verify_program

    total = block * n_blocks
    drained = total if drain_everything else total - block
    program = OuProgram().stream_to(1, total, chunk=chunk).execs()
    if drained:
        program.stream_from(2, drained, chunk=chunk)
    program.eop()

    rac = PassthroughRac(block_size=block, fifo_depth=64)
    report = verify_program(program.instructions, rac=rac,
                            configured_banks={1, 2})
    if not report.clean:
        return  # verifier rejected it; nothing to check
    soc = SoC(racs=[rac])
    soc.write_ram(IN, list(range(total)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=200_000)
    if drained:
        assert soc.read_ram(OUT, drained) == list(range(drained))


def test_reference_rejects_runaway_program():
    memory = ReferenceMemory()
    rac = ReferenceRAC([1], [1], lambda c: [list(c[0])])
    program = OuProgram().jmp(0)  # infinite loop, no eop
    with pytest.raises(ControllerError):
        execute_reference(program.instructions, {}, memory, rac,
                          max_steps=100)
