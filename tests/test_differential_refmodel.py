"""Differential harness: 200 seeded programs, controller vs refmodel.

Each case is generated from a seed by a deterministic builder: a random
(but lint-clean by construction) microcode program around a
:class:`ScaleRac`, with random block/chunk geometry, loop/offset-
register form or straight-line form, timing-only filler instructions,
and a random drain amount (some cases deliberately leave words in the
output FIFO so residual occupancy is part of the comparison).

Every case runs three ways:

1. functionally on :mod:`repro.core.refmodel` (the spec),
2. cycle-accurately on the full SoC,
3. cycle-accurately again under a seeded *recoverable* fault plan
   (stall windows on main memory -- extra latency, no data change).

Memory contents and residual FIFO occupancy must agree across all
three.  The fault-injected run additionally proves the claim encoded
in :data:`repro.faults.plan.RECOVERABLE_KINDS`: timing faults never
change functional outcomes.

The seed base can be shifted with ``REPRO_DIFF_SEED`` (the CI harness
pins it) without touching the file.
"""

import os
import random

import pytest

from repro.core.program import OuProgram
from repro.core.refmodel import (
    ReferenceMemory,
    ReferenceRAC,
    execute_reference,
)
from repro.core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from repro.faults import FaultPlan, inject_faults
from repro.rac.scale import ScaleRac
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000

N_PROGRAMS = 200
SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED", "20240"))


class Case:
    """One generated differential test case."""

    def __init__(self, rng: random.Random) -> None:
        self.block = rng.choice([4, 8])
        self.n_blocks = rng.randint(1, 3)
        self.total = self.block * self.n_blocks
        self.chunk = rng.choice([2, 4, 8])
        self.factor = rng.randint(-3, 3)
        self.shift = rng.randint(0, 2)
        # sometimes leave one block undrained: residual FIFO occupancy
        # then becomes part of the differential comparison
        self.drained = self.total - (
            self.block if (self.n_blocks > 1 and rng.random() < 0.3) else 0
        )
        self.inputs = [rng.randrange(0, 1 << 16) for _ in range(self.total)]
        self.program = self._build_program(rng)

    def _build_program(self, rng: random.Random) -> OuProgram:
        program = OuProgram()
        use_loop = rng.random() < 0.5 and self.total % self.chunk == 0

        def filler() -> None:
            roll = rng.random()
            if roll < 0.15:
                program.nop()
            elif roll < 0.25:
                program.wait(rng.randint(0, 30))
            elif roll < 0.3:
                program.sync()

        filler()
        if use_loop:
            n_chunks = self.total // self.chunk
            program.clrofr()
            program.loop(n_chunks)
            program.mvtcx(1, 0, self.chunk)
            program.addofr(self.chunk)
            program.endl()
        else:
            program.stream_to(1, self.total, chunk=self.chunk)
        filler()
        # execs, not exec: with an autostart streaming RAC the ops fire
        # data-driven, so a blocking exec issued after the data is
        # already consumed would start an input-less op and hang
        program.execs()
        filler()
        if self.drained:
            program.stream_from(2, self.drained, chunk=self.chunk)
        program.eop()
        return program

    def compute(self, collected):
        out = []
        for word in collected[0]:
            signed = word - (1 << 32) if word & (1 << 31) else word
            out.append(((signed * self.factor) >> self.shift) & 0xFFFFFFFF)
        return [out]

    def rac(self) -> ScaleRac:
        return ScaleRac(
            block_size=self.block, factor=self.factor, shift=self.shift,
            fifo_depth=64,
        )


def run_reference(case: Case):
    memory = ReferenceMemory()
    memory.write(IN, case.inputs)
    rac = ReferenceRAC([case.block], [case.block], case.compute)
    execute_reference(
        case.program.instructions, {0: PROG, 1: IN, 2: OUT}, memory, rac
    )
    return memory.read(OUT, case.total), len(rac.out_streams[0])


def run_soc(case: Case, plan=None):
    soc = SoC(racs=[case.rac()])
    if plan is not None:
        inject_faults(soc, plan)
    soc.write_ram(IN, case.inputs)
    soc.write_ram(PROG, case.program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(case.program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=500_000)
    assert not ocp.registers.error, "no trap expected in these runs"
    # under-drained cases: eop can fire while the accelerator is still
    # emitting its last words -- settle before reading residuals
    previous = -1
    while ocp.fifos_out[0].occupancy != previous:
        previous = ocp.fifos_out[0].occupancy
        soc.sim.step(50)
    return soc.read_ram(OUT, case.total), previous


@pytest.mark.parametrize("index", range(N_PROGRAMS))
def test_differential(index):
    seed = SEED_BASE + index
    rng = random.Random(seed)
    case = Case(rng)

    from repro.verify import verify_program

    report = verify_program(
        case.program.instructions, rac=case.rac(), configured_banks={1, 2}
    )
    assert report.clean, (
        f"seed {seed} generated a verifier-rejected program:\n"
        + report.render()
    )

    ref_memory, ref_residual = run_reference(case)
    sim_memory, sim_residual = run_soc(case)
    assert sim_memory == ref_memory, f"memory divergence at seed {seed}"
    assert sim_residual == ref_residual, (
        f"FIFO residual divergence at seed {seed}"
    )

    # same program under recoverable (timing-only) faults: stall
    # windows on main memory must not change any functional outcome
    plan = FaultPlan.random_stalls(
        seed, n_events=rng.randint(1, 4), sites=("ram",), max_index=6,
        max_stall=25,
    )
    assert plan.recoverable
    faulted_memory, faulted_residual = run_soc(case, plan=plan)
    assert faulted_memory == ref_memory, (
        f"stall faults changed memory at seed {seed}"
    )
    assert faulted_residual == ref_residual, (
        f"stall faults changed FIFO residual at seed {seed}"
    )


def test_seed_base_is_stable_without_env():
    """Guard: the default seed base is pinned (CI overrides via env)."""
    if "REPRO_DIFF_SEED" not in os.environ:
        assert SEED_BASE == 20240
