"""Idle-skip kernel: unit tests and naive-vs-fast equivalence.

The fast path is only allowed to exist because it is invisible: with
``idle_skip=True`` every observable -- memory contents, trace events
(including their cycle stamps), final cycle counts, per-component
statistics -- must be bit-identical to the naive two-phase stepper.
The first half of this file unit-tests the kernel mechanics (wake
computation, chunked predicate re-checks, strict mode, profiling); the
second half property-tests whole-SoC equivalence on the seeded random
workloads of the differential harness, clean and under injected stall
faults.
"""

import random
import warnings

import pytest

from repro.faults import FaultPlan, inject_faults
from repro.sim import (
    Component,
    DeadlockError,
    SimulationError,
    Simulator,
    Trace,
)
from repro.system import SoC

from tests.test_differential_refmodel import (
    IN,
    OUT,
    PROG,
    SEED_BASE,
    Case,
)
from repro.core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)

N_EQUIVALENCE = 60
N_STRICT = 8


# -- unit-test components ---------------------------------------------------

class Sleeper(Component):
    """Does one unit of work every ``period`` cycles, ``limit`` times.

    Between wakes it is honestly quiescent, so it exercises the whole
    declare/skip/wake cycle of the protocol.
    """

    def __init__(self, name="sleeper", period=100, limit=3):
        super().__init__(name)
        self.period = period
        self.limit = limit
        self.wakes = []
        self._due = 0

    def next_activity(self):
        if len(self.wakes) >= self.limit:
            return None
        return max(self._due, self.now)

    def tick(self):
        if len(self.wakes) >= self.limit or self.now < self._due:
            return
        self.wakes.append(self.now)
        self.trace_event("wake", n=len(self.wakes))
        self._due = self.now + self.period


class Liar(Component):
    """Claims indefinite idleness but emits an event every cycle."""

    def next_activity(self):
        return None

    def tick(self):
        self.trace_event("sneaky")


class Fickle(Component):
    """Declares a far wake-up, then claims to be active mid-window."""

    def __init__(self):
        super().__init__("fickle")
        self._polls = 0

    def next_activity(self):
        self._polls += 1
        return self.now + 50 if self._polls == 1 else self.now


# -- kernel unit tests ------------------------------------------------------

def _sleeper_run(idle_skip, cycles=350):
    sim = Simulator(trace=Trace(), idle_skip=idle_skip)
    sleeper = sim.add(Sleeper())
    sim.step(cycles)
    return sim, sleeper


def test_skip_is_invisible_to_component_behavior():
    naive_sim, naive = _sleeper_run(idle_skip=False)
    fast_sim, fast = _sleeper_run(idle_skip=True)
    assert fast.wakes == naive.wakes == [0, 100, 200]
    assert fast_sim.cycle == naive_sim.cycle == 350
    assert fast_sim.trace.dump() == naive_sim.trace.dump()


def test_profile_accounts_ticked_and_skipped():
    naive_sim, _ = _sleeper_run(idle_skip=False)
    fast_sim, _ = _sleeper_run(idle_skip=True)
    naive_prof = naive_sim.profile()
    fast_prof = fast_sim.profile()
    assert naive_prof.skipped == 0
    assert naive_prof.ticked == naive_prof.cycles == 350
    assert fast_prof.ticked + fast_prof.skipped == fast_prof.cycles == 350
    # only the three wake cycles need real ticks
    assert fast_prof.ticked == 3
    assert fast_prof.skip_windows == 3
    assert fast_prof.skip_ratio == pytest.approx(347 / 350)
    assert "skipped" in fast_prof.render()


def test_step_stops_exactly_at_target_mid_window():
    sim = Simulator()
    sim.add(Sleeper(period=100))
    sim.step(50)  # target falls inside a declared-idle window
    assert sim.cycle == 50


def test_run_until_wakes_exactly_on_predicate_state_change():
    sim = Simulator(idle_skip=True)
    sleeper = sim.add(Sleeper(period=100))
    elapsed = sim.run_until(lambda: len(sleeper.wakes) == 3)
    # third wake happens at cycle 200; the tick completes it at 201
    assert elapsed == 201
    assert sim.profile().skipped > 0


def test_run_until_deadlock_identical_between_modes():
    messages = []
    for idle_skip in (False, True):
        sim = Simulator(idle_skip=idle_skip)
        sim.add(Sleeper(period=100, limit=1))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run_until(lambda: False, max_cycles=777, what="nothing")
        messages.append(str(excinfo.value))
        assert sim.cycle == 777
    assert messages[0] == messages[1]


def test_run_until_rechecks_predicate_in_bounded_chunks():
    sim = Simulator(idle_skip=True)
    sim.add(Sleeper(limit=0))  # idle forever from cycle 0
    calls = []

    def predicate():
        calls.append(sim.cycle)
        return sim.cycle >= 40_000

    sim.run_until(predicate, max_cycles=1_000_000)
    # a clock-reading predicate may overshoot, but never by more than
    # one chunk -- and it is re-evaluated sparsely, not every cycle
    assert sim.cycle < 40_000 + sim.max_skip_chunk
    assert len(calls) <= 40_000 // sim.max_skip_chunk + 2


def test_strict_mode_passes_honest_components():
    sim = Simulator(trace=Trace(), idle_skip=True, strict=True)
    sleeper = sim.add(Sleeper())
    sim.step(350)
    assert sleeper.wakes == [0, 100, 200]


def test_strict_mode_catches_event_during_declared_idle():
    sim = Simulator(trace=Trace(), idle_skip=True, strict=True)
    sim.add(Liar("liar"))
    with pytest.raises(SimulationError, match="declared-idle window"):
        sim.step(10)


def test_strict_mode_catches_early_wake():
    sim = Simulator(idle_skip=True, strict=True)
    sim.add(Fickle())
    with pytest.raises(SimulationError, match="turned active"):
        sim.step(50)


def test_profile_time_attributes_host_time_per_component():
    sim = Simulator(idle_skip=False, profile_time=True)

    class Busy(Component):
        def tick(self):
            pass

    sim.add(Busy("busy"))
    sim.step(10)
    prof = sim.profile()
    assert prof.components["busy"].ticks == 10
    assert prof.components["busy"].time_s >= 0.0
    assert "busy" in prof.render()


def test_waveform_probe_disables_skipping():
    from repro.sim import VCDWriter, WaveformProbe

    sim = Simulator(idle_skip=True)
    sleeper = sim.add(Sleeper())
    vcd = VCDWriter()
    sim.add(WaveformProbe("probe", vcd, {"wakes": lambda: len(sleeper.wakes)}))
    sim.step(250)
    prof = sim.profile()
    assert prof.skipped == 0
    assert prof.ticked == 250  # every cycle sampled: gap-free dump


def test_default_component_is_always_active():
    """Unknown components must never be skipped over."""
    sim = Simulator(idle_skip=True)

    class Legacy(Component):
        ticks = 0

        def tick(self):
            Legacy.ticks += 1

    sim.add(Legacy("legacy"))
    sim.add(Sleeper())
    sim.step(120)
    assert Legacy.ticks == 120
    assert sim.profile().skipped == 0


# -- whole-SoC equivalence (property-style, seeded) -------------------------

def _execute(case, plan=None, trace=None, **soc_kw):
    """Elaborate, program and run one differential-harness workload.

    Returns ``(soc, residual)`` so callers can pick their own
    observables (the hot-mode tests need the live objects, not a
    rendered snapshot).
    """
    soc = SoC(racs=[case.rac()], trace=trace, **soc_kw)
    if plan is not None:
        inject_faults(soc, plan)
        # armed fault injectors must deterministically force the
        # kernel off the dispatch-table fast path, whatever the
        # requested mode (satellite c)
        assert not soc.sim.dispatch_active
    soc.write_ram(IN, case.inputs)
    soc.write_ram(PROG, case.program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(case.program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=500_000)
    previous = -1
    while ocp.fifos_out[0].occupancy != previous:
        previous = ocp.fifos_out[0].occupancy
        soc.sim.step(50)
    return soc, previous


def _run_case(case, idle_skip, plan=None, strict=False, vectorized=True):
    """Run one differential-harness workload; capture all observables."""
    trace = Trace()
    soc, residual = _execute(case, plan=plan, trace=trace,
                             idle_skip=idle_skip, strict=strict,
                             vectorized=vectorized)
    ocp = soc.ocp
    return {
        "memory": soc.read_ram(OUT, case.total),
        "residual": residual,
        "cycle": soc.sim.cycle,
        "trace": trace.dump(),
        "controller_stats": ocp.controller.stats.as_dict(),
        "bus_stats": soc.bus.stats.as_dict(),
    }, soc.sim.profile()


@pytest.mark.parametrize("index", range(N_EQUIVALENCE))
def test_equivalence_random_workloads(index):
    """Same seeded SoC workload, naive vs idle-skip vs vectorized
    dispatch, clean and faulted: memory, residuals, traces, cycle
    counts and statistics all equal."""
    seed = SEED_BASE + 100_000 + index
    rng = random.Random(seed)
    case = Case(rng)

    naive, naive_prof = _run_case(case, idle_skip=False, vectorized=False)
    fast, fast_prof = _run_case(case, idle_skip=True, vectorized=False)
    vec, vec_prof = _run_case(case, idle_skip=True, vectorized=True)
    assert fast == naive, f"idle-skip diverged at seed {seed}"
    assert vec == naive, f"vectorized dispatch diverged at seed {seed}"
    assert naive_prof.skipped == 0
    assert fast_prof.ticked + fast_prof.skipped == fast_prof.cycles
    assert vec_prof.ticked + vec_prof.skipped == vec_prof.cycles

    plan = FaultPlan.random_stalls(
        seed, n_events=rng.randint(1, 4), sites=("ram",), max_index=6,
        max_stall=25,
    )
    naive_faulted, _ = _run_case(case, idle_skip=False, plan=plan,
                                 vectorized=False)
    fast_faulted, _ = _run_case(case, idle_skip=True, plan=plan,
                                vectorized=False)
    vec_faulted, _ = _run_case(case, idle_skip=True, plan=plan,
                               vectorized=True)
    assert fast_faulted == naive_faulted, (
        f"idle-skip diverged under stall faults at seed {seed}"
    )
    assert vec_faulted == naive_faulted, (
        f"vectorized dispatch diverged under stall faults at seed {seed}"
    )
    # when a stall actually fired (short programs can finish before the
    # scheduled access index), the cycle count must have moved with it
    if "fault.stall" in naive_faulted["trace"]:
        assert naive_faulted["cycle"] != naive["cycle"]


@pytest.mark.parametrize("index", range(N_STRICT))
def test_equivalence_strict_mode_audits_idle_claims(index):
    """strict=True re-executes every declared-idle window naively and
    asserts the quiescence claims held -- on real SoC workloads."""
    seed = SEED_BASE + 200_000 + index
    case = Case(random.Random(seed))
    naive, _ = _run_case(case, idle_skip=False)
    strict, _ = _run_case(case, idle_skip=True, strict=True)
    assert strict == naive, f"strict-mode divergence at seed {seed}"
    # asking for the fast path under strict must not change anything:
    # strict mode wins and forces full dispatch
    strict_vec, _ = _run_case(case, idle_skip=True, strict=True,
                              vectorized=True)
    assert strict_vec == naive, (
        f"strict+vectorized divergence at seed {seed}"
    )


# -- trace-free hot mode (tentpole: spans compile down to counters) ---------

def test_hot_mode_counters_match_trace_derived_values():
    """A trace-free hot run must leave every architectural observable
    and every live counter bit-identical to a traced run -- and its
    perf registers must equal the counters *re-derived from the traced
    run's span forest*, closing the loop between the two accounting
    paths."""
    from repro.obs import derive_counters

    case = Case(random.Random(SEED_BASE + 300_000))
    trace = Trace()
    ref_soc, ref_residual = _execute(case, trace=trace, idle_skip=True,
                                     vectorized=True)
    hot_soc, hot_residual = _execute(case, trace=None, idle_skip=True,
                                     vectorized=True)
    assert hot_soc.sim.hot  # genuinely ran trace-free on the table

    assert hot_residual == ref_residual
    assert (hot_soc.read_ram(OUT, case.total)
            == ref_soc.read_ram(OUT, case.total))
    assert hot_soc.sim.cycle == ref_soc.sim.cycle
    assert (hot_soc.ocp.controller.stats.as_dict()
            == ref_soc.ocp.controller.stats.as_dict())
    assert hot_soc.bus.stats.as_dict() == ref_soc.bus.stats.as_dict()

    derived = derive_counters(trace, ref_soc.ocp,
                              end_cycle=ref_soc.sim.cycle)
    assert hot_soc.ocp.controller.perf.snapshot() == derived


def test_hot_mode_span_reconstruction_refuses_loudly():
    """Hot runs record no events; asking for spans afterwards must be
    a loud, actionable error rather than an empty forest."""
    from repro.obs import reconstruct_spans

    case = Case(random.Random(SEED_BASE + 310_000))
    soc, _ = _execute(case, trace=None, idle_skip=True, vectorized=True)
    assert soc.sim.hot
    with pytest.raises(SimulationError, match="hot mode"):
        reconstruct_spans(soc.sim.trace)


# -- overlapping DMA bursts + controller prefetch (satellite b) -------------

def _run_dma_overlap(idle_skip, vectorized, seed):
    """OCP run with a DMA copy bursting across the same bus.

    The DMA engine contends with the controller's whole-ibuf PREFETCH
    burst and with every mvtc/mvfc transfer, so each component's
    ``next_activity`` claim is exercised against wake-ups caused by a
    *third party's* bus traffic -- the exact overlap the idle-skip
    audit worried about.
    """
    from repro.mem.dma import (
        CTRL_START as DMA_START,
        REG_COUNT as DMA_COUNT,
        REG_CTRL as DMA_CTRL,
        REG_DST as DMA_DST,
        REG_SRC as DMA_SRC,
    )

    rng = random.Random(seed)
    case = Case(rng)
    dma_src = OUT + 0x4000
    dma_dst = OUT + 0x8000
    dma_words = 64 + rng.randrange(64)
    payload = [rng.getrandbits(32) for _ in range(dma_words)]

    trace = Trace()
    soc = SoC(racs=[case.rac()], trace=trace, idle_skip=idle_skip,
              vectorized=vectorized, with_dma=True)
    soc.write_ram(IN, case.inputs)
    soc.write_ram(PROG, case.program.words())
    soc.write_ram(dma_src, payload)
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(case.program))
    # kick both masters in the same cycle: the DMA's first read burst
    # races the controller's microcode prefetch for the bus
    soc.dma.write_word(DMA_SRC, dma_src)
    soc.dma.write_word(DMA_DST, dma_dst)
    soc.dma.write_word(DMA_COUNT, dma_words)
    soc.dma.write_word(DMA_CTRL, DMA_START)
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done and soc.dma.done, max_cycles=500_000)
    previous = -1
    while ocp.fifos_out[0].occupancy != previous:
        previous = ocp.fifos_out[0].occupancy
        soc.sim.step(50)
    assert soc.read_ram(dma_dst, dma_words) == payload
    return {
        "memory": soc.read_ram(OUT, case.total),
        "residual": previous,
        "cycle": soc.sim.cycle,
        "trace": trace.dump(),
        "controller_stats": ocp.controller.stats.as_dict(),
        "bus_stats": soc.bus.stats.as_dict(),
    }, soc.sim.profile()


@pytest.mark.parametrize("index", range(6))
def test_equivalence_dma_bursts_overlap_prefetch_and_xfers(index):
    """Naive vs idle-skip vs vectorized with a DMA engine hammering
    the bus during controller PREFETCH and data transfers: no mode may
    skip past a wake-up caused by the other master's bursts."""
    seed = SEED_BASE + 400_000 + index
    naive, naive_prof = _run_dma_overlap(idle_skip=False,
                                         vectorized=False, seed=seed)
    fast, _ = _run_dma_overlap(idle_skip=True, vectorized=False,
                               seed=seed)
    vec, _ = _run_dma_overlap(idle_skip=True, vectorized=True,
                              seed=seed)
    assert naive_prof.skipped == 0
    assert fast == naive, f"idle-skip diverged under DMA overlap ({seed})"
    assert vec == naive, f"vectorized diverged under DMA overlap ({seed})"
    # the contention must be real: both masters issued bus requests
    assert naive["bus_stats"].get("requests.dma", 0) > 0
    assert any(key.startswith("requests.ocp") for key in
               naive["bus_stats"])


# -- multi-OCP scheduler contention (satellite: scale-out equivalence) ------

def _run_sched_case(idle_skip, strict=False, n_ocps=4, seed=424242):
    """A contended multi-OCP scheduler stream; capture all observables.

    Four-plus coprocessors behind one arbiter, driven by the throughput
    scheduler, is the densest wake/skip interleaving the kernel sees:
    per-slot FSMs sleep on bus transfers and IRQ lines while neighbours
    stay busy, so declared-idle windows open and close constantly.
    """
    from repro.obs import attribute_run, attribute_schedule
    from repro.rac.scale import PassthroughRac, ScaleRac
    from repro.sched import Job, ThroughputScheduler
    from repro.system import build_mpsoc

    trace = Trace()
    racs = []
    for index in range(n_ocps):
        if index % 2 == 0:
            racs.append(PassthroughRac(name=f"pt{index}", block_size=8,
                                       compute_latency=30))
        else:
            racs.append(ScaleRac(name=f"sc{index}", block_size=4))
    soc = build_mpsoc(racs, trace=trace, idle_skip=idle_skip, strict=strict)
    sched = ThroughputScheduler(soc, batch_jobs=2, queue_bound=3)

    rng = random.Random(seed)
    jobs = []
    for index in range(20):
        kind = rng.choice(["passthrough", "scale"])
        block = 8 if kind == "passthrough" else 4
        size = block * rng.randrange(1, 4)
        jobs.append(Job(
            f"mj{index}", kind, [rng.getrandbits(32) for _ in range(size)]
        ))
    results = sched.run_stream(jobs)

    schedule = attribute_schedule(sched)
    assert schedule.consistent
    return {
        "outputs": {r.job.job_id: r.outputs for r in results},
        "cycle": soc.sim.cycle,
        "trace": trace.dump(),
        "completion_order": list(sched.completion_order),
        "busy": [slot.busy_cycles for slot in sched.slots],
        "bus_stats": soc.bus.stats.as_dict(),
        "per_ocp_attribution": [
            attribute_run(soc, ocp_index=index).as_dict()
            for index in range(n_ocps)
        ],
        "schedule": schedule.as_dict(),
    }, soc.sim.profile()


def test_equivalence_multi_ocp_scheduler_contention():
    """Naive vs idle-skip on a contended 4-OCP scheduler stream: every
    observable -- outputs, cycle counts, traces, completion order,
    per-OCP attribution and the schedule report -- is bit-identical."""
    naive, naive_prof = _run_sched_case(idle_skip=False)
    fast, fast_prof = _run_sched_case(idle_skip=True)
    assert fast == naive
    assert naive_prof.skipped == 0
    assert fast_prof.skipped > 0  # the fast path must actually engage
    assert fast_prof.ticked + fast_prof.skipped == fast_prof.cycles


def test_equivalence_multi_ocp_strict_audits_scheduler_idle_claims():
    """strict=True naively re-executes every window the scheduler (and
    its six-OCP neighbourhood) declared idle, and must find no lies."""
    naive, _ = _run_sched_case(idle_skip=False, n_ocps=6, seed=515151)
    strict, _ = _run_sched_case(idle_skip=True, strict=True, n_ocps=6,
                                seed=515151)
    assert strict == naive


def test_profiler_surfaces_kernel_and_truncation_counters():
    """profile_run carries skip accounting and warns on truncated
    traces (satellite: no silent analysis of incomplete logs)."""
    from repro.core.program import OuProgram
    from repro.rac.scale import PassthroughRac
    from repro.sw.driver import OuessantDriver
    from repro.sw.profiler import profile_run

    trace = Trace(capacity=5)  # deliberately far too small
    soc = SoC(racs=[PassthroughRac(block_size=4)], trace=trace)
    program = (OuProgram().stream_to(1, 4).execs()
               .stream_from(2, 4).eop())
    soc.write_ram(IN, [1, 2, 3, 4])
    driver = OuessantDriver(soc)
    result = driver.run(program.words(), banks={0: PROG, 1: IN, 2: OUT})
    assert trace.truncated
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        profile = profile_run(soc, result)
    assert any("dropped" in str(w.message) for w in caught)
    assert profile.trace_dropped == trace.dropped
    assert profile.kernel_skipped == soc.sim.profile().skipped
    assert profile.kernel_ticked + profile.kernel_skipped == soc.sim.cycle
    assert "TRACE TRUNCATED" in profile.render()
