"""Tests for the GPP disassembler (incl. reassembly property)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.disassembler import disassemble_program, disassemble_word
from repro.cpu.isa import Instruction, Op, encode
from repro.cpu import kernels


def test_disassemble_simple_forms():
    assert disassemble_word(encode(Instruction(Op.ADD, rd=1, rs1=2, rs2=3))) \
        == "add r1, r2, r3"
    assert disassemble_word(encode(Instruction(Op.ADDI, rd=1, rs1=0, imm=-5))) \
        == "addi r1, r0, -5"
    assert disassemble_word(encode(Instruction(Op.LW, rd=4, rs1=2, imm=8))) \
        == "lw r4, 8(r2)"
    assert disassemble_word(encode(Instruction(Op.SW, rd=4, rs1=2, imm=-4))) \
        == "sw r4, -4(r2)"
    assert disassemble_word(encode(Instruction(Op.LUI, rd=7, imm=0x1234))) \
        == "lui r7, 4660"
    assert disassemble_word(encode(Instruction(Op.HALT))) == "halt"
    assert disassemble_word(encode(Instruction(Op.WFI))) == "wfi"
    assert disassemble_word(encode(Instruction(Op.JALR, rd=0, rs1=31, imm=0))) \
        == "jalr r0, r31, 0"


def test_branch_targets_resolved_against_pc():
    word = encode(Instruction(Op.BEQ, rs1=1, rs2=2, imm=3))
    # target = pc + 4 + 4*imm = 0x100 + 4 + 12
    assert disassemble_word(word, pc=0x100) == "beq r1, r2, 0x110"


def test_program_listing_has_labels_and_addresses():
    program = assemble("""
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    listing = disassemble_program(program.text, base=0)
    assert "L0:" in listing
    assert "bne r1, r0, L0" in listing
    assert "# 0x00000000" in listing


def test_listing_reassembles_to_same_words():
    """Disassembly of every hand-written kernel reassembles bit-exact."""
    for source in (kernels.idct_sw_source(), kernels.fft_sw_source(16),
                   kernels.dft_sw_source(16), kernels.memcpy_source(8)):
        program = assemble(source, text_base=0x1000, data_base=0x8000)
        listing = disassemble_program(program.text, base=0x1000)
        # strip comments; keep labels and instructions
        cleaned = "\n".join(
            line.split("#")[0].rstrip() for line in listing.splitlines()
        )
        again = assemble(cleaned, text_base=0x1000, data_base=0x8000)
        assert again.text == program.text


@given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
def test_r_type_roundtrip(rd, rs1, rs2):
    word = encode(Instruction(Op.XOR, rd=rd, rs1=rs1, rs2=rs2))
    text = disassemble_word(word)
    program = assemble(text + "\nhalt")
    assert program.text[0] == word
