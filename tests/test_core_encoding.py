"""Property and unit tests for the Ouessant instruction encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import decode, encode
from repro.core.isa import (
    BASE_SET,
    FIFODirection,
    MAX_JUMP,
    MAX_LOOP,
    MAX_OFFSET,
    MAX_TRANSFER_WORDS,
    MAX_WAIT,
    OuInstruction,
    OuOp,
    TRANSFER_OPS,
)
from repro.sim.errors import EncodingError

banks = st.integers(0, 7)
offsets = st.integers(0, MAX_OFFSET)
counts = st.integers(1, MAX_TRANSFER_WORDS)
fifos = st.integers(0, 7)


def _instructions():
    return st.one_of(
        st.builds(
            OuInstruction,
            op=st.sampled_from(sorted(TRANSFER_OPS, key=int)),
            bank=banks, offset=offsets, count=counts, fifo=fifos,
        ),
        st.builds(OuInstruction, op=st.just(OuOp.WAIT),
                  imm=st.integers(0, MAX_WAIT)),
        st.builds(
            OuInstruction, op=st.just(OuOp.WAITF),
            direction=st.sampled_from(list(FIFODirection)),
            fifo=fifos, count=st.integers(0, 127),
        ),
        st.builds(OuInstruction, op=st.just(OuOp.JMP),
                  imm=st.integers(0, MAX_JUMP)),
        st.builds(OuInstruction, op=st.just(OuOp.LOOP),
                  imm=st.integers(1, MAX_LOOP)),
        st.builds(OuInstruction, op=st.just(OuOp.ADDOFR),
                  imm=st.integers(0, MAX_OFFSET)),
        st.builds(
            OuInstruction,
            op=st.sampled_from([
                OuOp.EOP, OuOp.EXEC, OuOp.EXECS, OuOp.NOP, OuOp.ENDL,
                OuOp.CLROFR, OuOp.IRQ, OuOp.SYNC, OuOp.HALT,
            ]),
        ),
    )


@given(_instructions())
def test_encode_decode_inverse(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.op == instr.op
    if instr.op in TRANSFER_OPS:
        assert (back.bank, back.offset, back.count, back.fifo) == (
            instr.bank, instr.offset, instr.count, instr.fifo
        )
    elif instr.op in (OuOp.WAIT, OuOp.JMP, OuOp.LOOP, OuOp.ADDOFR):
        assert back.imm == instr.imm
    elif instr.op is OuOp.WAITF:
        assert (back.direction, back.fifo, back.count) == (
            instr.direction, instr.fifo, instr.count
        )


def test_opcode_is_five_bits():
    # "Operation code is stored on 5 bits, which allows up to 32
    # different instructions"
    assert all(0 <= int(op) < 32 for op in OuOp)
    word = encode(OuInstruction(OuOp.MVTC, bank=1, offset=0, count=64))
    assert (word >> 27) == int(OuOp.MVTC)


def test_base_set_is_the_papers_four_plus_execs():
    names = {op.name for op in BASE_SET}
    assert names == {"MVTC", "MVFC", "EXEC", "EXECS", "EOP"}


def test_field_bounds_enforced():
    good = dict(bank=0, offset=0, count=1, fifo=0)
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.MVTC, **{**good, "bank": 8}))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.MVTC, **{**good, "offset": MAX_OFFSET + 1}))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.MVTC, **{**good, "count": 0}))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.MVTC, **{**good, "count": MAX_TRANSFER_WORDS + 1}))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.MVTC, **{**good, "fifo": 8}))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.WAIT, imm=MAX_WAIT + 1))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.LOOP, imm=0))
    with pytest.raises(EncodingError):
        encode(OuInstruction(OuOp.JMP, imm=-1))


def test_undefined_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0x1F << 27)


def test_figure4_transfer_encoding_fields():
    # mvtc BANK1,448,DMA64,FIFO0
    word = encode(OuInstruction(OuOp.MVTC, bank=1, offset=448, count=64, fifo=0))
    assert (word >> 24) & 0x7 == 1
    assert (word >> 10) & 0x3FFF == 448
    assert ((word >> 3) & 0x7F) + 1 == 64
    assert word & 0x7 == 0
