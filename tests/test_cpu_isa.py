"""Tests for the GPP ISA encode/decode (incl. property-based inverse)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.isa import (
    CostModel,
    Format,
    Instruction,
    Op,
    decode,
    encode,
    op_zero_extends,
    parse_register,
)
from repro.sim.errors import EncodingError

regs = st.integers(0, 31)
imm16_signed = st.integers(-(1 << 15), (1 << 15) - 1)
imm16_unsigned = st.integers(0, (1 << 16) - 1)
imm21 = st.integers(-(1 << 20), (1 << 20) - 1)


def _instructions():
    r_ops = st.sampled_from([Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.SLT])
    i_ops = st.sampled_from([Op.ADDI, Op.SLLI, Op.SLTI])
    log_ops = st.sampled_from([Op.ANDI, Op.ORI, Op.XORI])
    b_ops = st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGEU])
    return st.one_of(
        st.builds(Instruction, op=r_ops, rd=regs, rs1=regs, rs2=regs),
        st.builds(Instruction, op=i_ops, rd=regs, rs1=regs, imm=imm16_signed),
        st.builds(Instruction, op=log_ops, rd=regs, rs1=regs, imm=imm16_unsigned),
        st.builds(Instruction, op=st.just(Op.LUI), rd=regs, imm=imm16_unsigned),
        st.builds(Instruction, op=st.sampled_from([Op.LW, Op.SW, Op.JALR]),
                  rd=regs, rs1=regs, imm=imm16_signed),
        st.builds(Instruction, op=b_ops, rs1=regs, rs2=regs, imm=imm16_signed),
        st.builds(Instruction, op=st.just(Op.JAL), rd=regs, imm=imm21),
        st.builds(Instruction, op=st.sampled_from([Op.HALT, Op.WFI])),
    )


@given(_instructions())
def test_encode_decode_inverse(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.op == instr.op
    fmt = instr.format
    if fmt is Format.R:
        assert (back.rd, back.rs1, back.rs2) == (instr.rd, instr.rs1, instr.rs2)
    elif fmt in (Format.I, Format.LOAD, Format.STORE, Format.JALR):
        assert (back.rd, back.rs1, back.imm) == (instr.rd, instr.rs1, instr.imm)
    elif fmt is Format.LUI:
        assert (back.rd, back.imm) == (instr.rd, instr.imm)
    elif fmt is Format.BRANCH:
        assert (back.rs1, back.rs2, back.imm) == (instr.rs1, instr.rs2, instr.imm)
    elif fmt is Format.JAL:
        assert (back.rd, back.imm) == (instr.rd, instr.imm)


def test_undefined_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0x3F << 26)


def test_oversized_fields_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADDI, rd=1, rs1=1, imm=1 << 16))
    with pytest.raises(EncodingError):
        encode(Instruction(Op.JAL, rd=1, imm=1 << 21))
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADD, rd=32, rs1=0, rs2=0))


def test_logical_immediates_zero_extend():
    assert op_zero_extends(Op.ORI)
    assert not op_zero_extends(Op.ADDI)
    word = encode(Instruction(Op.ORI, rd=1, rs1=1, imm=0x8000))
    assert decode(word).imm == 0x8000
    word = encode(Instruction(Op.ADDI, rd=1, rs1=1, imm=-1))
    assert decode(word).imm == -1


def test_parse_register_forms():
    assert parse_register("r0") == 0
    assert parse_register("R31") == 31
    assert parse_register("zero") == 0
    assert parse_register("ra") == 31
    assert parse_register("sp") == 30
    for bad in ("r32", "x1", "", "r-1"):
        with pytest.raises(EncodingError):
            parse_register(bad)


def test_cost_model_defaults():
    cost = CostModel()
    assert cost.cost(Op.ADD) == 1
    assert cost.cost(Op.MUL) == 1
    assert cost.cost(Op.DIV) == 35
    assert cost.cost(Op.REM) == 35
    assert cost.cost(Op.LW) == 1
    assert cost.cost(Op.BEQ) == 1
    assert cost.cost(Op.JAL) == 1


def test_cost_model_custom():
    cost = CostModel(load=2, mul=4)
    assert cost.cost(Op.LW) == 2
    assert cost.cost(Op.MUL) == 4
