"""Edge-case coverage across modules (small behaviours with no home)."""

import pytest

from repro.analysis import measure_dft_sw, render_table_one, TableOneRow
from repro.core.codegen import estimate_program_cycles
from repro.core.program import figure4_program
from repro.rac.hls import HLSInterfaceSpec, wrap_function
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.sim.errors import DriverError
from repro.sw.library import OuessantLibrary
from repro.system import SoC
from repro.zynq import ZynqSoC


def test_analysis_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        measure_dft_sw(16, algorithm="quantum")


def test_render_table_one_formats_gain():
    rows = [TableOneRow("X", 1, 2, 10)]
    text = render_table_one(rows)
    assert "5.00" in text


def test_table_row_infinite_gain_when_free():
    assert TableOneRow("X", 0, 0, 10).gain == float("inf")


def test_hls_spec_explicit_widths():
    spec = HLSInterfaceSpec(
        items_in=[2], items_out=[2],
        input_widths=[96], output_widths=[64],
    )
    rac = wrap_function("wide", lambda c: [list(c[0])], spec)
    assert rac.ports.input_widths == [96]
    assert rac.ports.output_widths == [64]


def test_library_run_plan_checks_input_lengths():
    from repro.core.firmware import plan_streaming_run
    soc = SoC(racs=[PassthroughRac(block_size=8)])
    library = OuessantLibrary(soc, environment="baremetal")
    plan = plan_streaming_run(soc.ocp.rac)
    with pytest.raises(DriverError):
        library._run_plan(0, plan, [[1, 2, 3]])  # needs 8 words


def test_estimate_without_prefetch():
    program = figure4_program(64)
    rac = DFTRac(n_points=64)
    with_prefetch = estimate_program_cycles(program.instructions, rac=rac,
                                            prefetch=True)
    without = estimate_program_cycles(program.instructions, rac=rac,
                                      prefetch=False)
    assert without.fetch_decode < with_prefetch.fetch_decode


def test_interface_window_size():
    soc = SoC(racs=[PassthroughRac()])
    # 10 config registers + 6 perf counters
    assert soc.ocp.interface.window_bytes == 64


def test_zynq_without_racs():
    soc = ZynqSoC()
    assert soc.ocps == []
    with pytest.raises(LookupError):
        soc.ocp


def test_soc_ocp_property_raises_when_empty():
    soc = SoC()
    with pytest.raises(LookupError):
        soc.ocp


def test_add_ocp_after_construction():
    soc = SoC()
    ocp = soc.add_ocp(PassthroughRac(block_size=4))
    assert soc.ocp is ocp
    assert soc.ocp_base(0) == 0x8000_0000


def test_cycle_timer_ignores_writes():
    soc = SoC()
    soc.timer.write_word(0, 123)
    soc.sim.step(5)
    assert soc.timer.read_word(0) == 5


def test_round_robin_rank_unseen_master():
    from repro.bus.arbiter import RoundRobinArbiter
    from repro.bus.types import AccessKind, BusRequest, BusTransfer

    arbiter = RoundRobinArbiter()
    t1 = BusTransfer(
        BusRequest(master="a", kind=AccessKind.READ, address=0x1000),
        issue_cycle=0,
    )
    t2 = BusTransfer(
        BusRequest(master="b", kind=AccessKind.READ, address=0x1000),
        issue_cycle=0,
    )
    first = arbiter.pick([t1, t2])
    second = arbiter.pick([t1, t2])
    assert first is not second  # rotation after a grant


def test_transfer_latency_before_completion_raises():
    from repro.bus.types import AccessKind, BusRequest, BusTransfer

    transfer = BusTransfer(
        BusRequest(master="m", kind=AccessKind.READ, address=0x0),
        issue_cycle=0,
    )
    with pytest.raises(RuntimeError):
        transfer.latency


def test_dft_rejects_non_integer_size():
    from repro.sim.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        DFTRac(n_points="256")  # type: ignore[arg-type]
