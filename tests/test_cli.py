"""Tests for the command-line toolbox."""

import pytest

from repro.cli import _make_rac, build_parser, main
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.matmul import MatMulRac
from repro.sim.errors import ReproError

FIGURE4 = """\
mvtc BANK1,0,DMA64,FIFO0
execs
mvfc BANK2,0,DMA64,FIFO0
eop
"""


@pytest.fixture
def microcode_file(tmp_path):
    path = tmp_path / "prog.ouasm"
    path.write_text(FIGURE4)
    return str(path)


def test_assemble_outputs_hex(microcode_file, capsys):
    assert main(["assemble", microcode_file]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 4
    assert all(len(line) == 8 for line in out)


def test_assemble_disasm_roundtrip(microcode_file, tmp_path, capsys):
    main(["assemble", microcode_file])
    hexwords = capsys.readouterr().out
    hexfile = tmp_path / "prog.hex"
    hexfile.write_text(hexwords)
    assert main(["disasm", str(hexfile)]) == 0
    text = capsys.readouterr().out
    assert "mvtc BANK1,0,DMA64,FIFO0" in text
    assert "eop" in text


def test_verify_clean_program(microcode_file, capsys):
    # the fixture moves 64 words each way = one 32-point DFT (2 words
    # per complex sample)
    code = main(["verify", microcode_file, "--rac", "dft:32",
                 "--banks", "1", "2"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_verify_reports_errors(tmp_path, capsys):
    bad = tmp_path / "bad.ouasm"
    bad.write_text("mvtc BANK1,0,DMA64,FIFO5\n")  # no eop, bad fifo
    code = main(["verify", str(bad), "--rac", "idct"])
    assert code == 1
    out = capsys.readouterr().out
    assert "error" in out


def test_verify_accepts_hex_input(tmp_path, capsys):
    hexfile = tmp_path / "prog.hex"
    # eop only
    hexfile.write_text("00000000\n")
    assert main(["verify", str(hexfile)]) == 0


def test_estimate_report(capsys):
    assert main(["estimate", "--rac", "idct"]) == 0
    out = capsys.readouterr().out
    assert "interface" in out
    assert "OCP overhead" in out


def test_transfer_command(capsys):
    assert main(["transfer", "--words", "256"]) == 0
    assert "cycles/word" in capsys.readouterr().out


def test_table1_small(capsys):
    assert main(["table1", "--dft-points", "16", "--env",
                 "baremetal"]) == 0
    out = capsys.readouterr().out
    assert "IDCT" in out and "DFT" in out


def test_unknown_rac_is_exit_2(microcode_file, capsys):
    assert main(["verify", microcode_file, "--rac", "quantum"]) == 2
    assert "unknown RAC" in capsys.readouterr().err
    assert main(["lint", "--rac", "quantum"]) == 2


def test_missing_file_is_exit_2(capsys):
    assert main(["assemble", "/nonexistent/prog.ouasm"]) == 2


def test_compress_command(tmp_path, capsys):
    source = tmp_path / "unrolled.ouasm"
    lines = [f"mvtc BANK1,{64 * k},DMA64,FIFO0" for k in range(8)]
    lines += ["execs"]
    lines += [f"mvfc BANK2,{64 * k},DMA64,FIFO0" for k in range(8)]
    lines += ["eop"]
    source.write_text("\n".join(lines))
    assert main(["compress", str(source)]) == 0
    captured = capsys.readouterr()
    assert "loop 8" in captured.out
    assert "18 -> 12 instructions" in captured.err


def test_compress_expand_inverse(tmp_path, capsys):
    source = tmp_path / "looped.ouasm"
    source.write_text(
        "clrofr\nloop 4\nmvtcx BANK1,0,DMA16,FIFO0\naddofr 16\nendl\n"
        "execs\nmvfc BANK2,0,DMA64,FIFO0\neop\n"
    )
    assert main(["compress", str(source), "--expand"]) == 0
    out = capsys.readouterr().out
    assert "mvtc BANK1,48,DMA16,FIFO0" in out
    assert "loop" not in out


def test_pack_info_roundtrip(microcode_file, tmp_path, capsys):
    image = tmp_path / "prog.oufw"
    assert main(["pack", microcode_file, str(image)]) == 0
    assert image.exists()
    assert main(["info", str(image)]) == 0
    out = capsys.readouterr().out
    assert "4 instructions" in out
    assert "banks referenced: [0, 1, 2]" in out
    assert "mvtc BANK1,0,DMA64,FIFO0" in out


def test_timing_command(capsys):
    assert main(["timing", "--rac", "idct", "--clock", "50"]) == 0
    assert "MET" in capsys.readouterr().out
    assert main(["timing", "--rac", "idct", "--clock", "400"]) == 1


def test_make_rac_specs():
    assert isinstance(_make_rac("dft:64"), DFTRac)
    assert _make_rac("dft:64").n_points == 64
    fir = _make_rac("fir:64,8")
    assert isinstance(fir, FIRRac)
    assert (fir.block_size, fir.n_taps) == (64, 8)
    assert isinstance(_make_rac("matmul:4"), MatMulRac)
    with pytest.raises(ReproError):
        _make_rac("tpu")


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


# ---------------------------------------------------------------------------
# verify subcommand & the exit-code contract (0 clean / 1 errors / 2 usage)
# ---------------------------------------------------------------------------

def test_verify_json_output(microcode_file, capsys):
    import json

    code = main(["verify", microcode_file, "--rac", "dft:32",
                 "--banks", "1", "2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["findings"] == []


def test_verify_json_carries_diagnostic_codes(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.ouasm"
    bad.write_text("mvtc BANK1,0,DMA64,FIFO5\n")  # no eop, bad fifo
    code = main(["verify", str(bad), "--rac", "idct", "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {f["code"] for f in payload["findings"]}
    assert "OU002" in codes
    assert "OU030" in codes
    for finding in payload["findings"]:
        # the documented schema: every finding carries the catalog
        # title and its severity
        assert finding["title"]
        assert finding["severity"] in ("error", "warning")
        assert "where" in finding


# ---------------------------------------------------------------------------
# the system-level `repro lint` command (OU1xx + --firmware composition)
# ---------------------------------------------------------------------------

def test_lint_clean_system(capsys):
    code = main(["lint", "--rac", "scale:16",
                 "--bank", "0=0x40001000", "--bank", "1=0x40002000",
                 "--bank", "2=0x40003000"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_lint_flags_unmapped_bank(capsys):
    code = main(["lint", "--rac", "scale:16",
                 "--bank", "1=0x90000000"])
    assert code == 1
    assert "OU120" in capsys.readouterr().out


def test_lint_flags_timing_violation(capsys):
    code = main(["lint", "--rac", "idct", "--clock", "400"])
    assert code == 1
    assert "OU140" in capsys.readouterr().out


def test_lint_composes_firmware_pass(microcode_file, capsys):
    # the Figure 4 fixture moves 64 words through banks 1 and 2: with
    # both banks mapped in RAM the composed report is clean...
    code = main(["lint", "--rac", "dft:32", "--firmware",
                 microcode_file, "--bank", "0=0x40001000",
                 "--bank", "1=0x40002000", "--bank", "2=0x40003000"])
    assert code == 0
    capsys.readouterr()
    # ...but a bank pointing at the very end of RAM leaves no room for
    # the 64-word burst: the *actual* map bounds the window (OU022)
    end_of_ram = 0x4000_0000 + (16 << 20) - 8
    code = main(["lint", "--rac", "dft:32", "--firmware",
                 microcode_file, "--bank", "0=0x40001000",
                 f"--bank", f"1={end_of_ram:#x}",
                 "--bank", "2=0x40003000"])
    assert code == 1
    assert "OU022" in capsys.readouterr().out


def test_lint_json_includes_where(capsys):
    import json

    code = main(["lint", "--rac", "scale:16", "--clock", "400",
                 "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    finding = payload["findings"][0]
    assert finding["code"] == "OU140"
    assert finding["where"] == "ocp"
    assert finding["title"] == "timing-violation"


def test_lint_suppress_and_exit_codes(capsys):
    code = main(["lint", "--rac", "idct", "--clock", "400",
                 "--suppress", "OU140"])
    assert code == 0
    assert "suppressed" in capsys.readouterr().out


def test_lint_bad_bank_spec_is_exit_2(capsys):
    assert main(["lint", "--bank", "one=2"]) == 2
    assert main(["lint", "--bank", "1=zz"]) == 2


def test_verify_enforces_mapped_bank_size(microcode_file, capsys):
    # the fixture bursts 64 words through bank 1; map only 32
    code = main(["verify", microcode_file, "--bank-size", "1=32"])
    assert code == 1
    assert "OU022" in capsys.readouterr().out
    assert main(["verify", microcode_file, "--bank-size", "1=64"]) == 0


def test_verify_step_budget(tmp_path, capsys):
    src = tmp_path / "slow.ouasm"
    src.write_text("loop 4000\nnop\nendl\neop\n")
    assert main(["verify", str(src)]) == 0
    code = main(["verify", str(src), "--step-budget", "1000"])
    assert code == 1
    assert "OU011" in capsys.readouterr().out


def test_verify_detects_infinite_loop(tmp_path, capsys):
    src = tmp_path / "spin.ouasm"
    src.write_text("nop\njmp 0\neop\n")
    code = main(["verify", str(src)])
    assert code == 1
    assert "OU009" in capsys.readouterr().out


def test_suppress_turns_errors_into_exit_zero(tmp_path, capsys):
    src = tmp_path / "nobank.ouasm"
    src.write_text("mvtc BANK5,0,DMA16,FIFO0\neop\n")
    assert main(["verify", str(src), "--banks", "1", "2"]) == 1
    capsys.readouterr()
    code = main(["verify", str(src), "--banks", "1", "2",
                 "--suppress", "OU020"])
    assert code == 0
    assert "suppressed" in capsys.readouterr().out


def test_bad_bank_size_spec_is_exit_2(microcode_file, capsys):
    assert main(["verify", microcode_file, "--bank-size", "one=32"]) == 2
    assert main(["verify", microcode_file, "--bank-size", "32"]) == 2


def test_perfbound_renders_bound(microcode_file, capsys):
    code = main(["perfbound", microcode_file, "--rac", "dft:32"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cost bound [bounded]" in out
    assert "transfer" in out and "tightness" in out


def test_perfbound_json_shape(microcode_file, capsys):
    import json

    code = main(["perfbound", microcode_file, "--rac", "dft:32",
                 "--mem-latency", "1:3", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["bounded"] is True
    assert payload["total"]["lo"] <= payload["total"]["hi"]
    assert set(payload["attribution"]) == {"transfer", "compute",
                                           "control"}
    assert payload["tightness"] >= 1.0
    assert payload["findings"] == []


def test_perfbound_sla_violation_exits_1(microcode_file, capsys):
    code = main(["perfbound", microcode_file, "--rac", "dft:32",
                 "--sla-cycles", "2"])
    assert code == 1
    assert "OU304" in capsys.readouterr().out


def test_perfbound_refuses_without_contract(microcode_file, capsys):
    code = main(["perfbound", microcode_file])
    assert code == 1
    assert "OU300" in capsys.readouterr().out


def test_perfbound_bad_latency_spec_is_exit_2(microcode_file, capsys):
    assert main(["perfbound", microcode_file, "--rac", "dft:32",
                 "--mem-latency", "fast"]) == 2
    assert main(["perfbound", microcode_file, "--rac", "dft:32",
                 "--mem-latency", "5:1"]) == 2


def test_diag_prints_catalog_entry(capsys):
    code = main(["diag", "OU304"])
    assert code == 0
    out = capsys.readouterr().out
    assert "OU304" in out and "sla-exceeded" in out
    assert "docs/ANALYSIS.md" in out


def test_diag_lists_whole_catalog(capsys):
    code = main(["diag"])
    assert code == 0
    out = capsys.readouterr().out
    for code_name in ("OU001", "OU110", "OU200", "OU300"):
        assert code_name in out


def test_diag_unknown_code_is_exit_2(capsys):
    assert main(["diag", "OU999"]) == 2
