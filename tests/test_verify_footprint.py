"""Footprint extraction over the interval abstract interpreter.

The racelint concurrency analyzer is only as sound as the per-bank
read/write hulls it builds on; these tests pin the extraction against
programs whose footprints are known by construction.
"""

import pytest

from repro.core.isa import OuInstruction, OuOp
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
)
from repro.verify import program_footprint


def test_figure4_footprint_exact():
    fp = program_footprint(figure4_program(n_points=256).instructions)
    assert fp.bounded
    # 256 complex points = 512 words streamed from bank 1 and back to
    # bank 2, word offsets 0..511
    assert (fp.reads[1].lo, fp.reads[1].hi) == (0, 511)
    assert (fp.writes[2].lo, fp.writes[2].hi) == (0, 511)
    assert fp.banks() == [1, 2]


def test_unrolled_and_looped_footprints_agree():
    flat = program_footprint(figure4_program(n_points=256).instructions)
    looped = program_footprint(
        figure4_looped_program(n_points=256).instructions
    )
    assert looped.bounded
    # the hardware-loop rewrite uses indexed transfers through the
    # OFR; the interval interpreter must recover the same hulls
    for bank in flat.banks():
        for table in ("reads", "writes"):
            a = getattr(flat, table).get(bank)
            b = getattr(looped, table).get(bank)
            assert (a is None) == (b is None), (table, bank)
            if a is not None:
                assert (a.lo, a.hi) == (b.lo, b.hi), (table, bank)


def test_indexed_transfer_widens_with_ofr():
    program = (
        OuProgram()
        .loop(4)
        .mvtcx(1, 8, count=8)
        .addofr(16)
        .endl()
        .eop()
    )
    fp = program_footprint(program.instructions)
    assert fp.bounded
    # OFR in {0, 16, 32, 48}: offsets 8..15, 24..31, ..., hull 8..63
    assert (fp.reads[1].lo, fp.reads[1].hi) == (8, 63)


def test_offsets_below_base_do_not_leak_into_hull():
    program = (
        OuProgram()
        .mvtc(1, 100, count=4)
        .execs()
        .mvfc(2, 200, count=2)
        .eop()
    )
    fp = program_footprint(program.instructions)
    assert (fp.reads[1].lo, fp.reads[1].hi) == (100, 103)
    assert (fp.writes[2].lo, fp.writes[2].hi) == (200, 201)


def test_unstructured_program_is_unbounded():
    program = [
        OuInstruction(OuOp.MVTC, bank=1, offset=0, count=1),
        OuInstruction(OuOp.JMP, imm=0),
    ]
    fp = program_footprint(program)
    assert not fp.bounded
    assert fp.banks() == []


@pytest.mark.parametrize("n_points", [64, 128, 256])
def test_footprint_scales_with_program_size(n_points):
    fp = program_footprint(figure4_program(n_points=n_points).instructions)
    words = 2 * n_points
    assert (fp.reads[1].lo, fp.reads[1].hi) == (0, words - 1)
    assert (fp.writes[2].lo, fp.writes[2].hi) == (0, words - 1)
