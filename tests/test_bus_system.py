"""Tests for the system bus: arbitration, timing, data movement."""

import pytest

from repro.bus.arbiter import FixedPriorityArbiter, RoundRobinArbiter
from repro.bus.bus import SystemBus
from repro.bus.protocol import AHB, AXI4_LITE
from repro.bus.types import AccessKind, BusRequest
from repro.mem.memory import Memory
from repro.sim.errors import AddressError
from repro.sim.kernel import Simulator


def make_system(protocol=AHB, arbiter=None):
    sim = Simulator()
    bus = SystemBus(protocol=protocol, arbiter=arbiter)
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x1000, 1 << 16, mem)
    return sim, bus, mem


def read(bus, address, burst=1, master="m0", priority=0):
    return bus.submit(BusRequest(master=master, kind=AccessKind.READ,
                                 address=address, burst=burst,
                                 priority=priority))


def write(bus, address, data, master="m0", priority=0):
    return bus.submit(BusRequest(master=master, kind=AccessKind.WRITE,
                                 address=address, burst=len(data),
                                 data=list(data), priority=priority))


def test_single_read_latency_matches_protocol():
    sim, bus, mem = make_system()
    mem.load_words(0x10, [0xDEAD])
    transfer = read(bus, 0x1010)
    sim.run_until(lambda: transfer.done)
    assert transfer.data == [0xDEAD]
    # grant next tick after submit; occupancy = arb+addr+lat+beat = 4
    assert transfer.latency == AHB.transfer_cycles(1, 1)


def test_write_then_read_roundtrip():
    sim, bus, mem = make_system()
    wr = write(bus, 0x1000, [1, 2, 3, 4])
    sim.run_until(lambda: wr.done)
    rd = read(bus, 0x1000, burst=4)
    sim.run_until(lambda: rd.done)
    assert rd.data == [1, 2, 3, 4]


def test_burst_occupancy_accounted():
    sim, bus, mem = make_system()
    transfer = read(bus, 0x1000, burst=64)
    sim.run_until(lambda: transfer.done)
    assert transfer.latency == AHB.transfer_cycles(64, 1)
    assert bus.stats["beats"] == 64


def test_unmapped_submit_raises_immediately():
    sim, bus, mem = make_system()
    with pytest.raises(AddressError):
        read(bus, 0x9999_0000)


def test_burst_crossing_region_rejected():
    sim, bus, mem = make_system()
    with pytest.raises(AddressError):
        read(bus, 0x1000 + (1 << 16) - 8, burst=4)


def test_fixed_priority_orders_grants():
    sim, bus, mem = make_system(arbiter=FixedPriorityArbiter())
    low = read(bus, 0x1000, burst=16, master="low", priority=5)
    high = read(bus, 0x1000, burst=16, master="high", priority=0)
    sim.run_until(lambda: low.done and high.done)
    # both were pending before the first bus tick, so priority decides
    assert high.grant_cycle < low.grant_cycle


def test_round_robin_alternates_between_masters():
    sim, bus, mem = make_system(arbiter=RoundRobinArbiter())
    grants = []
    for _ in range(3):
        a = read(bus, 0x1000, master="a")
        b = read(bus, 0x1000, master="b")
        sim.run_until(lambda: a.done and b.done)
        grants.append((a.grant_cycle, b.grant_cycle))
    # each pair was granted in some order; over rounds both got service
    assert all(ga is not None and gb is not None for ga, gb in grants)


def test_backdoor_access_costs_no_cycles():
    sim, bus, mem = make_system()
    bus.write_now(0x1000, [7, 8])
    assert bus.read_now(0x1000, 2) == [7, 8]
    assert sim.cycle == 0


def test_bus_utilization_and_idle():
    sim, bus, mem = make_system()
    assert bus.idle
    transfer = read(bus, 0x1000, burst=16)
    assert not bus.idle
    sim.run_until(lambda: transfer.done)
    assert 0.0 < bus.utilization() <= 1.0


def test_axi4_lite_slower_than_ahb_for_bursts():
    sim_a, bus_a, _ = make_system(protocol=AHB)
    sim_l, bus_l, _ = make_system(protocol=AXI4_LITE)
    ta = read(bus_a, 0x1000, burst=32)
    tl = read(bus_l, 0x1000, burst=32)
    sim_a.run_until(lambda: ta.done)
    sim_l.run_until(lambda: tl.done)
    assert tl.latency > ta.latency


def test_on_complete_callback_fires():
    sim, bus, mem = make_system()
    transfer = read(bus, 0x1000)
    seen = []
    transfer.on_complete = lambda t: seen.append(t.complete_cycle)
    sim.run_until(lambda: transfer.done)
    assert seen == [transfer.complete_cycle]


def test_request_validation():
    with pytest.raises(ValueError):
        BusRequest(master="m", kind=AccessKind.READ, address=0x1002)
    with pytest.raises(ValueError):
        BusRequest(master="m", kind=AccessKind.READ, address=0x1000, burst=0)
    with pytest.raises(ValueError):
        BusRequest(master="m", kind=AccessKind.WRITE, address=0x1000,
                   burst=2, data=[1])
    with pytest.raises(ValueError):
        BusRequest(master="m", kind=AccessKind.READ, address=0x1000,
                   data=[1])


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_random_traffic_conservation(data):
    """Random masters/bursts/priorities: every transfer completes, all
    written data reads back, grants never overlap."""
    sim, bus, mem = make_system()
    n_requests = data.draw(st.integers(1, 12))
    expected = {}
    transfers = []
    cursor = 0x1000
    for index in range(n_requests):
        burst = data.draw(st.integers(1, 32))
        payload = [index * 1000 + k for k in range(burst)]
        transfers.append((
            write(bus, cursor, payload,
                  master=f"m{data.draw(st.integers(0, 2))}",
                  priority=data.draw(st.integers(0, 3))),
            cursor, payload,
        ))
        expected[cursor] = payload
        cursor += 4 * burst
    sim.run_until(lambda: all(t.done for t, _, _ in transfers),
                  max_cycles=10_000)
    # data integrity
    for _, address, payload in transfers:
        rd = read(bus, address, burst=len(payload))
        sim.run_until(lambda: rd.done, max_cycles=1000)
        assert rd.data == payload
    # bus occupancy never overlapped: each transfer completes no later
    # than the next one is granted (they may share the handover cycle)
    ordered = sorted((t for t, _, _ in transfers),
                     key=lambda t: t.grant_cycle)
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier.complete_cycle <= later.grant_cycle


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 16), min_size=2, max_size=6))
def test_round_robin_no_starvation(bursts):
    """Under round-robin, every master's transfer completes even when
    one master floods the queue."""
    sim, bus, mem = make_system(arbiter=RoundRobinArbiter())
    flood = [read(bus, 0x1000, burst=16, master="flood")
             for _ in range(8)]
    victims = [read(bus, 0x1000, burst=b, master=f"v{i}")
               for i, b in enumerate(bursts)]
    sim.run_until(
        lambda: all(t.done for t in flood + victims), max_cycles=20_000
    )
    # victims were not all serviced after the whole flood
    first_victim = min(t.grant_cycle for t in victims)
    last_flood = max(t.grant_cycle for t in flood)
    assert first_victim < last_flood


def test_reset_clears_queue():
    sim, bus, mem = make_system()
    read(bus, 0x1000, burst=64)
    bus.reset()
    assert bus.idle
    assert bus.stats["requests"] == 0
