"""Differential soundness gate for ``repro.perfbound`` (OU3xx).

A seeded corpus of >= 60 programs spanning every streaming RAC kind is
bounded statically and then *run* on the full simulator; the measured
total cycles and the per-bucket Fig.-4 attribution must land inside the
predicted ``[lo, hi]`` intervals.  Each program is measured at both
ends of its declared memory-latency contract, so the same corpus
exercises clean runs and stall-faulted runs (a slow slave is exactly a
persistent bus-stall fault from the controller's point of view).

The gate also tracks tightness (``hi / lo`` of the total bound): bounds
that stay sound by being vacuous are a regression too.
"""

from __future__ import annotations

import random
import statistics
from typing import Callable, List, Tuple

import pytest

from repro.core.program import OuProgram
from repro.core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from repro.mem.memory import Memory
from repro.obs import attribute_run, compare_attribution
from repro.perfbound import CostModel, RacTiming, bound_program
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.rac.matmul import MatMulRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.system import RAM_BASE, SoC
from repro.verify import verify_program
from repro.verify.domain import Interval

SEED_BASE = 20240
PROGRAMS_PER_KIND = 10

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x4000

#: every streaming RAC kind in the tree, smallest sensible geometry
KINDS: List[Tuple[str, Callable[[], object]]] = [
    ("idct", lambda: IDCTRac()),
    ("dft", lambda: DFTRac(n_points=16)),
    ("fir", lambda: FIRRac(block_size=16, n_taps=4)),
    ("matmul", lambda: MatMulRac(n=4)),
    ("scale", lambda: ScaleRac(block_size=8, factor=3, shift=1)),
    ("passthrough", lambda: PassthroughRac(block_size=8)),
]

#: declared memory-latency contracts the generator picks from; each
#: program is measured at both endpoints
CONTRACTS = (Interval(1, 1), Interval(1, 2), Interval(1, 3),
             Interval(2, 4))


def _op_block(p: OuProgram, timing: RacTiming) -> None:
    """One balanced accelerator operation: fill all ports, start,
    drain."""
    for port, need in enumerate(timing.items_in):
        p.stream_to(1, need, fifo=port)
    p.execs()
    p.stream_from(2, timing.items_out[0], fifo=0)


def build_seeded_program(seed: int, timing: RacTiming) -> OuProgram:
    """A random well-formed program: op blocks, loops, waits, nops."""
    rng = random.Random(seed)
    p = OuProgram()
    for _ in range(rng.randint(1, 3)):
        segment = rng.choice(("block", "block", "loop", "wait", "nops"))
        if segment == "block":
            for _ in range(rng.randint(1, 2)):
                _op_block(p, timing)
        elif segment == "loop":
            p.loop(rng.randint(2, 4))
            _op_block(p, timing)
            p.endl()
        elif segment == "wait":
            p.wait(rng.randint(1, 40))
        else:
            for _ in range(rng.randint(1, 4)):
                p.nop()
    if not any(True for _ in p.instructions):  # pragma: no cover
        _op_block(p, timing)
    p.eop()
    return p


def measure(program: OuProgram, rac, mem_latency: int,
            max_cycles: int = 2_000_000):
    """Run ``program`` on the real simulator, return the attribution."""
    soc = SoC(racs=[rac],
              memory=Memory("ram", 1 << 20, access_latency=mem_latency))
    soc.write_ram(IN, list(range(512)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=max_cycles)
    return attribute_run(soc)


def check_sound(program: OuProgram, factory, contract: Interval,
                tightness_log: List[float]) -> None:
    """Bound once, measure at both contract endpoints, assert
    containment."""
    instrs = list(program.instructions)
    rac = factory()
    assert verify_program(instrs, rac=rac,
                          configured_banks={0, 1, 2}).clean
    model = CostModel(mem_latency=contract, rac=RacTiming.of(rac))
    bound = bound_program(instrs, rac, model=model)
    assert bound.bounded, bound.report.render()
    tightness = bound.tightness()
    assert tightness is not None
    tightness_log.append(tightness)
    latencies = {int(contract.lo), int(contract.hi)}
    for latency in sorted(latencies):
        report = measure(program, factory(), mem_latency=latency)
        check = compare_attribution(report, bound)
        assert check.sound, (
            f"latency {latency}: {check.violations} "
            f"(measured {check.measured}, predicted {check.predicted})"
        )


@pytest.mark.parametrize("kind,factory", KINDS,
                         ids=[kind for kind, _ in KINDS])
def test_seeded_corpus_is_sound(kind, factory):
    """>= PROGRAMS_PER_KIND seeded programs per RAC kind stay inside
    their bounds at both ends of the latency contract."""
    timing = RacTiming.of(factory())
    tightness: List[float] = []
    for index in range(PROGRAMS_PER_KIND):
        seed = SEED_BASE + index * 31 + sum(map(ord, kind))
        rng = random.Random(seed)
        contract = rng.choice(CONTRACTS)
        program = build_seeded_program(seed, timing)
        check_sound(program, factory, contract, tightness)
    assert len(tightness) == PROGRAMS_PER_KIND
    # sound but vacuous bounds are a regression: the worst-case
    # inflation over the whole corpus stays bounded
    assert max(tightness) < 25.0
    assert statistics.median(tightness) < 12.0


def test_corpus_size_meets_gate_floor():
    """The differential gate covers >= 60 seeded programs."""
    assert len(KINDS) * PROGRAMS_PER_KIND >= 60


def test_blocking_exec_is_sound():
    """Blocking ``exec`` (items_out <= depth) is covered too."""
    factory = lambda: PassthroughRac(  # noqa: E731
        block_size=8, fifo_depth=16, compute_latency=6)
    timing = RacTiming.of(factory())
    p = OuProgram()
    for port, need in enumerate(timing.items_in):
        p.stream_to(1, need, fifo=port)
    p.exec_()
    p.stream_from(2, timing.items_out[0], fifo=0)
    p.eop()
    check_sound(p, factory, Interval(1, 2), [])


def test_shallow_fifo_round_trips_are_sound():
    """Fills larger than the FIFO (OU301 territory) stay sound."""
    factory = lambda: PassthroughRac(  # noqa: E731
        block_size=16, fifo_depth=8, compute_latency=2)
    p = OuProgram()
    p.stream_to(1, 16, chunk=16).execs().stream_from(2, 16).eop()
    rac = factory()
    model = CostModel(mem_latency=Interval(1, 2), rac=RacTiming.of(rac))
    bound = bound_program(list(p.instructions), rac, model=model)
    assert bound.bounded
    assert "OU301" in bound.report.codes()
    for latency in (1, 2):
        report = measure(p, factory(), mem_latency=latency)
        assert compare_attribution(report, bound).sound


def test_past_ibuf_fetch_path_is_sound():
    """Programs longer than the instruction buffer pay per-fetch bus
    transactions; the bound must absorb them."""
    factory = lambda: PassthroughRac(  # noqa: E731
        block_size=8, fifo_depth=16, compute_latency=2)
    p = OuProgram()
    for _ in range(70):
        p.nop()
    p.stream_to(1, 8).execs().stream_from(2, 8)
    for _ in range(70):
        p.nop()
    p.eop()
    check_sound(p, factory, Interval(1, 2), [])


def test_big_indexed_loop_is_sound():
    """Trip counts past the unroll limit (accelerated, not unrolled)
    with offset-indexed transfers stay sound.

    The volume verifier widens the drained interval over the 100-trip
    loop and conservatively flags OU034, so this case checks
    containment without the verifier-clean precondition: the cost
    bound must hold for any program that does run to completion.
    """
    factory = lambda: PassthroughRac(  # noqa: E731
        block_size=2, fifo_depth=8, compute_latency=1)
    p = OuProgram()
    p.clrofr()
    p.loop(100).mvtcx(1, 0, 2, fifo=0).execs().mvfcx(2, 0, 2, fifo=0)
    p.addofr(2).endl().eop()
    rac = factory()
    model = CostModel(mem_latency=Interval(1, 4), rac=RacTiming.of(rac))
    bound = bound_program(list(p.instructions), rac, model=model)
    assert bound.bounded, bound.report.render()
    for latency in (1, 4):
        report = measure(p, factory(), mem_latency=latency)
        check = compare_attribution(report, bound)
        assert check.sound, check.violations
