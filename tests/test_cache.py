"""Tests for the snooping cache model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.sim.errors import ConfigurationError


def test_cold_miss_then_hit():
    cache = Cache(size_bytes=1024, line_bytes=32, hit_cycles=1, miss_penalty=8)
    assert cache.access_read(0x100) == 9
    assert cache.access_read(0x100) == 1
    assert cache.access_read(0x104) == 1  # same line
    assert cache.stats["read_misses"] == 1
    assert cache.stats["read_hits"] == 2


def test_conflict_eviction_direct_mapped():
    cache = Cache(size_bytes=1024, line_bytes=32)
    cache.access_read(0x0)
    cache.access_read(0x400)  # same index, different tag -> evicts
    assert cache.access_read(0x0) > cache.hit_cycles  # miss again


def test_write_through_no_allocate():
    cache = Cache(size_bytes=1024, line_bytes=32)
    cache.access_write(0x200)
    assert cache.stats["write_misses"] == 1
    # the write did not install the line
    assert not cache.holds(0x200)


def test_snoop_invalidates_held_line():
    cache = Cache(size_bytes=1024, line_bytes=32)
    cache.access_read(0x300)
    assert cache.holds(0x300)
    assert cache.snoop_write(0x300)
    assert not cache.holds(0x300)
    assert cache.stats["snoop_invalidations"] == 1


def test_snoop_miss_is_harmless():
    cache = Cache(size_bytes=1024, line_bytes=32)
    assert not cache.snoop_write(0x300)


def test_snoop_burst_counts_lines():
    cache = Cache(size_bytes=1024, line_bytes=32)
    for address in (0x0, 0x20, 0x40):
        cache.access_read(address)
    invalidated = cache.snoop_write_burst(0x0, 24)  # 96 bytes = 3 lines
    assert invalidated >= 3  # one hit per word within held lines


def test_flush_invalidates_all():
    cache = Cache(size_bytes=1024, line_bytes=32)
    cache.access_read(0x0)
    cache.access_read(0x40)
    cache.flush()
    assert not cache.holds(0x0)
    assert not cache.holds(0x40)
    assert cache.stats["flushes"] == 1


def test_hit_rate():
    cache = Cache(size_bytes=1024, line_bytes=32)
    assert cache.hit_rate == 0.0
    cache.access_read(0x0)
    cache.access_read(0x0)
    assert cache.hit_rate == pytest.approx(0.5)


def test_bad_geometry_rejected():
    with pytest.raises(ConfigurationError):
        Cache(size_bytes=1000)
    with pytest.raises(ConfigurationError):
        Cache(size_bytes=1024, line_bytes=3)
    with pytest.raises(ConfigurationError):
        Cache(size_bytes=32, line_bytes=64)


@given(st.lists(st.integers(0, 0x3FFF).map(lambda a: a * 4), min_size=1, max_size=64))
def test_snoop_after_read_always_invalidates(addresses):
    cache = Cache(size_bytes=2048, line_bytes=32)
    for address in addresses:
        cache.access_read(address)
        assert cache.holds(address)
        assert cache.snoop_write(address)
        assert not cache.holds(address)
