#!/usr/bin/env python3
"""Spectral analysis with the Spiral-style 256-point DFT accelerator.

The paper's flagship result: a 256-point complex DFT accelerated 85x
over software under Linux.  This example is the application around
that number, built on :mod:`repro.apps.spectrum`: a two-tone signal
buried in noise is analysed with the DFT RAC through the transparent
library (Linux driver model, interrupt mode), the detected peaks are
reported, and the same analysis is timed on the instruction-set
simulator's software DFT.

Run:  python examples/spectral_analysis.py
"""

from repro import DFTRac, OuessantLibrary, SoC
from repro.apps.spectrum import SpectrumAnalyzer, Tone, synthesize
from repro.rac.dft import dft_latency

N = 256
SAMPLE_RATE = 10_000.0  # Hz (pretend ADC)
TONES = [Tone(1200.0, 0.30), Tone(3400.0, 0.18)]
NOISE = 0.02


def main() -> None:
    re, im = synthesize(TONES, N, SAMPLE_RATE, noise_rms=NOISE, seed=42)
    print(f"{N}-point complex DFT, tones at "
          + ", ".join(f"{t.frequency:.0f} Hz" for t in TONES))

    # ---- hardware: OCP + DFT RAC under the Linux driver model ----
    soc = SoC(racs=[DFTRac(n_points=N)])
    library = OuessantLibrary(soc, environment="linux")
    hw = SpectrumAnalyzer(N, SAMPLE_RATE, backend="ocp", library=library)
    peaks = hw.analyze(re, im)
    print(f"\nhardware run: {hw.cycles} cycles total "
          f"(accelerator core latency {dft_latency(N)}, "
          f"Linux overhead included)")
    print("detected peaks:")
    bin_width = SAMPLE_RATE / N
    for peak in peaks:
        is_tone = any(abs(peak.frequency - t.frequency) < bin_width
                      for t in TONES)
        marker = "  <-- tone" if is_tone else ""
        print(f"    {peak.frequency:7.1f} Hz  magnitude "
              f"{peak.magnitude:.4f}{marker}")
    for tone in TONES:
        assert any(abs(p.frequency - tone.frequency) < bin_width
                   and p.magnitude > 0.02 for p in peaks), (
            f"tone at {tone.frequency} Hz not found"
        )

    # ---- software baseline: direct DFT on the ISS ----
    print("\nrunning the software baseline on the ISS "
          "(direct Q15 DFT, ~1.4M instructions)...")
    sw = SpectrumAnalyzer(N, SAMPLE_RATE, backend="sw-dft")
    sw_peaks = sw.analyze(re, im)
    print(f"software run: {sw.cycles} cycles")
    gain = sw.cycles / hw.cycles
    print(f"\nacceleration factor: {gain:.0f}x "
          f"(paper Table I: 85x against its 600k-cycle software DFT)")
    # both paths find the same spectral peaks
    assert [p.bin for p in sw_peaks] == [p.bin for p in peaks]


if __name__ == "__main__":
    main()
