#!/usr/bin/env python3
"""JPEG-style decoding with the 2-D IDCT accelerator.

The paper's first RAC is "a locally developed 2D Inverse Discrete
Cosine Transform (IDCT) for JPEG decoding".  This example runs the
full decoder pipeline from :mod:`repro.apps.jpeg`: a synthetic 64x64
image is DCT-coded and quantized (JPEG luminance table, zig-zag
ordering), then decoded two ways --

* **hardware**: the IDCT RAC behind an OCP, one microcode program per
  8x8 block, under the Linux driver model, and
* **software**: the hand-written fixed-point IDCT kernel on the
  Leon3-like instruction-set simulator --

and the per-block cycle counts are compared against the IDCT row of
Table I (3000 vs 5000 cycles, gain 1.67).

Run:  python examples/jpeg_decode.py
"""

import numpy as np

from repro import IDCTRac, OuessantLibrary, SoC
from repro.apps import jpeg


def main() -> None:
    image = jpeg.test_card(64)
    encoded = jpeg.encode(image, quality=85)
    print(f"encoded {image.shape[0]}x{image.shape[1]} image -> "
          f"{encoded.n_blocks} quantized 8x8 blocks "
          f"(zig-zag coefficient vectors)")

    # ---- hardware decode: IDCT RAC behind an OCP, Linux driver ----
    soc = SoC(racs=[IDCTRac()])
    library = OuessantLibrary(soc, environment="linux")
    hw_decoder = jpeg.JPEGDecoder(library=library)
    decoded_hw = hw_decoder.decode(encoded)

    # ---- software decode: the ISS kernel, block by block ----
    sw_decoder = jpeg.JPEGDecoder(use_iss=True)
    decoded_sw = sw_decoder.decode(encoded)

    # both paths run the same fixed-point arithmetic: bit identical
    assert np.array_equal(decoded_hw, decoded_sw)
    quality = jpeg.psnr(image, decoded_hw)
    print(f"decoded image PSNR: {quality:.1f} dB "
          f"(quantization loss only -- HW and SW decoders bit-match)")

    gain = sw_decoder.cycles / hw_decoder.cycles
    n = encoded.n_blocks
    print(f"\nper-image cycles   HW: {hw_decoder.cycles:>9}   "
          f"SW: {sw_decoder.cycles:>9}   gain: {gain:.2f}x")
    print(f"per-block cycles   HW: {hw_decoder.cycles // n:>9}   "
          f"SW: {sw_decoder.cycles // n:>9}   "
          f"(paper Table I: 3000 / 5000, gain 1.67)")
    print(f"at 50 MHz: {1e3 * hw_decoder.cycles / 50e6:.2f} ms vs "
          f"{1e3 * sw_decoder.cycles / 50e6:.2f} ms per image")


if __name__ == "__main__":
    main()
