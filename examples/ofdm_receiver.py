#!/usr/bin/env python3
"""OFDM reception on the DFT accelerator.

"Dealing with compute-intensive tasks such as signal processing
presents challenging performance issues" -- the paper's opening
motivation.  This example is that workload: a QPSK/OFDM downlink
(64 subcarriers, 48 used, 16-sample cyclic prefix -- 802.11a-like
numerology) demodulated symbol by symbol on the DFT RAC, through the
transparent library, with the bit-error rate checked against the
transmitted data and the throughput compared to the ISS software FFT.

Run:  python examples/ofdm_receiver.py
"""

import random

from repro import DFTRac, OuessantLibrary, SoC
from repro.apps.ofdm import (
    OFDMParams,
    OFDMReceiver,
    awgn,
    bit_error_rate,
    modulate,
)

PARAMS = OFDMParams(n_fft=64, cp_len=16, used=48)
N_SYMBOLS = 8
NOISE_RMS = 0.015
CLOCK_HZ = 50e6


def main() -> None:
    rng = random.Random(7)
    bits = [rng.randint(0, 1) for _ in range(N_SYMBOLS * PARAMS.bits_per_symbol)]
    print(f"transmitting {len(bits)} bits over {N_SYMBOLS} OFDM symbols "
          f"({PARAMS.used} QPSK carriers, CP {PARAMS.cp_len})")

    re, im = modulate(bits, PARAMS)
    re, im = awgn(re, im, noise_rms=NOISE_RMS, seed=3)
    print(f"channel: AWGN, noise RMS {NOISE_RMS} full scale")

    # ---- hardware receiver: DFT RAC behind an OCP ----
    soc = SoC(racs=[DFTRac(n_points=PARAMS.n_fft)])
    library = OuessantLibrary(soc, environment="baremetal")
    hw = OFDMReceiver(PARAMS, backend="ocp", library=library)
    received = hw.demodulate(re, im)
    ber = bit_error_rate(bits, received)
    cycles_per_symbol = hw.cycles / N_SYMBOLS
    symbol_rate = CLOCK_HZ / cycles_per_symbol
    print(f"\nhardware receiver: BER = {ber:.4f} "
          f"({int(ber * len(bits))} errors in {len(bits)} bits)")
    print(f"    {cycles_per_symbol:.0f} cycles/symbol -> "
          f"{symbol_rate / 1e3:.0f} ksymbol/s at 50 MHz "
          f"({symbol_rate * PARAMS.bits_per_symbol / 1e6:.1f} Mbit/s)")
    assert ber == 0.0, "clean-ish channel must decode error free"

    # ---- software receiver on the ISS ----
    sw = OFDMReceiver(PARAMS, backend="sw")
    sw_received = sw.demodulate(re, im)
    assert sw_received == received  # same fixed-point arithmetic
    sw_cycles_per_symbol = sw.cycles / N_SYMBOLS
    print(f"\nsoftware receiver (ISS radix-2 FFT): "
          f"{sw_cycles_per_symbol:.0f} cycles/symbol")
    print(f"acceleration: {sw_cycles_per_symbol / cycles_per_symbol:.1f}x "
          f"per symbol -- and the GPP is free during every transform")


if __name__ == "__main__":
    main()
