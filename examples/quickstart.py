#!/usr/bin/env python3
"""Quickstart: integrate an accelerator with Ouessant in ~40 lines.

Builds a SoC (bus + RAM + CPU slot), drops in a trivial "scale by
3/2" accelerator behind an OCP, writes the Figure-4-style microcode,
runs it through the baremetal driver and inspects the results and the
cycle accounting.

Run:  python examples/quickstart.py
"""

from repro import OuProgram, ScaleRac, SoC
from repro.core.assembler import assemble_microcode, disassemble
from repro.sw import BaremetalRuntime
from repro.system import RAM_BASE

PROGRAM_ADDR = RAM_BASE + 0x1000   # bank 0: microcode
INPUT_ADDR = RAM_BASE + 0x2000     # bank 1: input data
OUTPUT_ADDR = RAM_BASE + 0x3000    # bank 2: results


def main() -> None:
    # 1. build the system: one OCP around a y = (3*x) >> 1 accelerator
    soc = SoC(racs=[ScaleRac(block_size=16, factor=3, shift=1)])

    # 2. write the microcode -- the paper's Figure 4 pattern.
    #    You can use the assembler...
    microcode = assemble_microcode("""
        mvtc BANK1,0,DMA16,FIFO0    # memory -> accelerator
        execs                       # start, keep going
        mvfc BANK2,0,DMA16,FIFO0    # accelerator -> memory
        eop                         # set D, raise the interrupt
    """)
    #    ...or the Python builder; both produce identical words:
    builder = (OuProgram().mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop())
    assert builder.words() == microcode

    # 3. the application owns its arrays; put some input in RAM
    soc.write_ram(INPUT_ADDR, list(range(16)))

    # 4. run through the baremetal driver (registers, start, IRQ, ack)
    runtime = BaremetalRuntime(soc)
    result = runtime.run(
        microcode, {0: PROGRAM_ADDR, 1: INPUT_ADDR, 2: OUTPUT_ADDR}
    )

    # 5. results are directly in the output array
    output = soc.read_ram(OUTPUT_ADDR, 16)
    print("microcode:")
    for line in disassemble(microcode).splitlines():
        print(f"    {line}")
    print(f"input : {list(range(16))}")
    print(f"output: {output}")
    assert output == [(3 * v) >> 1 for v in range(16)]

    print(f"\ncycle accounting (50 MHz system clock):")
    print(f"    configuration : {result.config_cycles:>5} cycles")
    print(f"    run (to IRQ)  : {result.compute_cycles:>5} cycles")
    print(f"    acknowledge   : {result.ack_cycles:>5} cycles")
    print(f"    total         : {result.total_cycles:>5} cycles "
          f"({result.total_cycles / 50_000:.3f} ms)")
    stats = soc.ocp.controller.stats
    print(f"    controller ran {stats['instructions']} microcode "
          f"instructions, moved {stats['words_to_rac']} + "
          f"{stats['words_from_rac']} words")


if __name__ == "__main__":
    main()
