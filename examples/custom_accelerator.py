#!/usr/bin/env python3
"""Adding your own accelerator: FIR with a config FIFO + HLS wrapping.

"Adding new accelerators is also made easier" -- this example shows the
two ways a user brings a new core into Ouessant:

1. a hand-modelled RAC with **multiple FIFO ports** (the FIR filter:
   signal on FIFO0, coefficients on the dedicated configuration FIFO1,
   exactly the pattern Section III-B describes), and
2. the **HLS wrapper** (Section VI future work): any block function +
   an interface spec becomes a RAC with no other code.

Run:  python examples/custom_accelerator.py
"""

import math

from repro import FIRRac, OuProgram, SoC
from repro.rac.fir import fir_q15
from repro.rac.hls import HLSInterfaceSpec, wrap_function
from repro.sw import BaremetalRuntime, OuessantLibrary
from repro.synth import estimate_ocp
from repro.system import RAM_BASE
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def main() -> None:
    # ------------------------------------------------------------------
    # 1. the FIR RAC: data FIFO + dedicated configuration FIFO
    # ------------------------------------------------------------------
    block, n_taps = 128, 8
    soc = SoC(racs=[FIRRac(block_size=block, n_taps=n_taps)])
    library = OuessantLibrary(soc, environment="baremetal")

    # a noisy step signal and a moving-average low-pass filter
    signal = [fp.float_to_q15(0.4 if t >= block // 2 else -0.4)
              for t in range(block)]
    signal = [s + ((-1) ** t) * 800 for t in range(block) for s in [signal[t]]]
    taps = [fp.float_to_q15(1.0 / n_taps)] * n_taps

    filtered = library.fir(signal, taps)
    assert filtered == fir_q15(signal, taps)
    ripple_in = max(abs(signal[t] - signal[t - 1]) for t in range(60, 64))
    ripple_out = max(abs(filtered[t] - filtered[t - 1]) for t in range(60, 64))
    print("FIR RAC (config FIFO carries the taps per operation):")
    print(f"    run: {library.last_result.total_cycles} cycles for "
          f"{block} samples + {n_taps} taps")
    print(f"    high-frequency ripple {ripple_in} -> {ripple_out} LSB")
    assert ripple_out < ripple_in / 4

    # the taps travel on FIFO1: retune per call without reconfiguring
    sharp = [fp.Q15_MAX] + [0] * (n_taps - 1)     # identity filter
    assert library.fir(signal, sharp) == fir_q15(signal, sharp)
    print("    retuned the filter by streaming new taps -- no bitstream,")
    print("    no microcode change, just different FIFO1 contents.")

    # ------------------------------------------------------------------
    # 2. HLS wrapping: a Python function becomes a RAC
    # ------------------------------------------------------------------
    def saturating_sqrt(collected):
        out = []
        for word in collected[0]:
            value = word & 0xFFFF
            out.append(int(math.isqrt(value << 15)) & 0xFFFFFFFF)
        return [out]

    spec = HLSInterfaceSpec(
        items_in=[32], items_out=[32],
        initiation_interval=2,       # "synthesized" at II=2
        pipeline_depth=20,
    )
    rac = wrap_function("q15-sqrt", saturating_sqrt, spec)
    soc2 = SoC(racs=[rac])
    runtime = BaremetalRuntime(soc2)
    inputs = [fp.float_to_q15(v / 32) for v in range(32)]
    soc2.write_ram(IN, [v & 0xFFFFFFFF for v in inputs])
    program = (OuProgram().stream_to(1, 32).execs()
               .stream_from(2, 32).eop())
    result = runtime.run(program.words(), {0: PROG, 1: IN, 2: OUT})
    roots = soc2.read_ram(OUT, 32)

    print("\nHLS-wrapped accelerator (sqrt in Q15):")
    print(f"    end-to-end: {result.total_cycles} cycles "
          f"(II=2, depth=20 per the interface spec)")
    checks = [(0.25, 0.5), (0.5625, 0.75)]
    for x, expected in checks:
        index = inputs.index(fp.float_to_q15(x))
        got = fp.q15_to_float(roots[index])
        print(f"    sqrt({x}) = {got:.4f} (exact {expected})")
        assert abs(got - expected) < 0.01

    # the generated RAC participates in the resource flow like any other
    estimate = estimate_ocp(soc2.ocp)
    print(f"    estimated footprint with OCP: {estimate.total}")


if __name__ == "__main__":
    main()
