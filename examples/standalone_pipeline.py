#!/usr/bin/env python3
"""Processor-free operation and dynamic partial reconfiguration.

Two of the paper's announced extensions (Section VI), working together:

1. **Standalone mode** -- the SoC is built *without a CPU*; a strap
   sequencer boots the OCP from memory-resident microcode and re-arms
   it after every completion, turning the coprocessor into a
   free-running streaming engine.
2. **DPR** -- the RAC region is then reconfigured at runtime (IDCT
   swapped in for the loopback core) without touching the interface,
   controller, or microcode format; the reconfiguration time is
   charged at ICAP speed.

Run:  python examples/standalone_pipeline.py
"""

from repro import IDCTRac, OuProgram, PassthroughRac, SoC
from repro.core.dpr import DPRManager, PartialBitstream
from repro.core.standalone import StandaloneSequencer
from repro.system import RAM_BASE
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def main() -> None:
    # ---- a SoC with NO processor at all ----
    soc = SoC(racs=[PassthroughRac(block_size=64, fifo_depth=128)],
              with_cpu=False)
    program = (OuProgram().stream_to(1, 64).execs()
               .stream_from(2, 64).eop())
    soc.write_ram(PROG, program.words())
    soc.write_ram(IN, list(range(64)))

    sequencer = StandaloneSequencer(
        "straps", soc.ocp,
        bank_bases={0: PROG, 1: IN, 2: OUT},
        prog_size=len(program),
        restart=True, max_runs=8,
    )
    soc.sim.add(sequencer)
    soc.run_until(lambda: sequencer.runs_completed >= 8, max_cycles=500_000)
    per_run = soc.sim.cycle / sequencer.runs_completed
    print("standalone (processor-free) mode:")
    print(f"    {sequencer.runs_completed} back-to-back runs, "
          f"{per_run:.0f} cycles per 64-word block")
    print(f"    throughput at 50 MHz: "
          f"{50e6 * 64 / per_run / 1e6:.1f} Mwords/s, zero CPU cycles")
    assert soc.read_ram(OUT, 64) == list(range(64))

    # ---- swap the RAC while the system is live ----
    print("\ndynamic partial reconfiguration:")
    soc.sim.remove(sequencer)  # retire the old strap FSM with its RAC
    manager = DPRManager(soc.sim, soc.ocp)
    cycles = manager.reconfigure(
        PartialBitstream(IDCTRac(fifo_depth=128), size_words=25_000)
    )
    print(f"    streamed a 25k-word partial bitstream in {cycles} cycles "
          f"({1e3 * cycles / 50e6:.2f} ms at 50 MHz)")

    # the same microcode format now drives a completely different core
    block = [[(r * 8 + c) % 64 - 32 for c in range(8)] for r in range(8)]
    soc.write_ram(IN, fp.block_to_words(block))
    restart = StandaloneSequencer(
        "straps2", soc.ocp,
        bank_bases={0: PROG, 1: IN, 2: OUT},
        prog_size=len(program),
    )
    soc.sim.add(restart)
    soc.run_until(lambda: restart.runs_completed >= 1, max_cycles=100_000)
    decoded = fp.words_to_block(soc.read_ram(OUT, 64))
    assert decoded == fp.idct2_q15(block)
    print("    IDCT now runs behind the unchanged interface/controller --")
    print("    results verified against the fixed-point golden model.")


if __name__ == "__main__":
    main()
