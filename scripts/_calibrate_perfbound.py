"""Scratch calibration: measured vs predicted cost buckets (dev aid)."""
import sys

sys.path.insert(0, "src")

from repro.core.program import OuProgram
from repro.core.registers import (
    CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE,
)
from repro.mem.memory import Memory
from repro.obs.attribution import attribute_run
from repro.perfbound import CostModel, RacTiming, bound_program
from repro.rac.scale import PassthroughRac
from repro.system import RAM_BASE, SoC
from repro.verify.domain import Interval

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000


def measure(program, rac, mem_latency=1, max_cycles=2_000_000):
    soc = SoC(racs=[rac],
              memory=Memory("ram", 1 << 20, access_latency=mem_latency))
    soc.write_ram(IN, list(range(512)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=max_cycles)
    return attribute_run(soc)


def check(name, program, rac_factory, latencies=(1,), contract=None):
    rac = rac_factory()
    timing = RacTiming.of(rac)
    lat = contract or Interval(min(latencies), max(latencies))
    model = CostModel(mem_latency=lat, rac=timing)
    bound = bound_program(list(program.instructions), rac, model=model)
    print(f"== {name} bounded={bound.bounded} "
          f"codes={bound.report.codes()}")
    for L in latencies:
        rep = measure(program, rac_factory(), mem_latency=L)
        ok = True
        for bucket, meas in (("transfer", rep.transfer_cycles),
                             ("compute", rep.compute_cycles),
                             ("control", rep.control_cycles),
                             ("total", rep.total_cycles)):
            iv = getattr(bound, bucket)
            inside = iv.lo <= meas <= iv.hi
            ok = ok and inside
            flag = "" if inside else "   <<< OUT OF BOUNDS"
            print(f"   L={L} {bucket:9s} measured={meas:6d} "
                  f"pred=[{iv.lo}, {iv.hi}]{flag}")
        print(f"   L={L} {'OK' if ok else 'FAIL'}")


def main():
    blocks = [(4, 8), (8, 16), (16, 8), (32, 64)]
    for block, depth in blocks:
        p = OuProgram()
        p.stream_to(1, block).execs().stream_from(2, block).eop()
        check(
            f"pass b={block} d={depth}", p,
            lambda block=block, depth=depth: PassthroughRac(
                block_size=block, fifo_depth=depth, compute_latency=4),
            latencies=(1, 3), contract=Interval(1, 3),
        )

    p = OuProgram()
    for _ in range(3):
        p.stream_to(1, 8).execs().stream_from(2, 8)
    p.wait(25).eop()
    check("3x + wait", p,
          lambda: PassthroughRac(block_size=8, fifo_depth=16,
                                 compute_latency=2),
          latencies=(1, 2), contract=Interval(1, 2))

    p = OuProgram()
    p.loop(5).stream_to(1, 8).execs().stream_from(2, 8).endl().eop()
    check("loop5", p,
          lambda: PassthroughRac(block_size=8, fifo_depth=16,
                                 compute_latency=2),
          latencies=(1, 2), contract=Interval(1, 2))

    p = OuProgram()
    p.stream_to(1, 8).exec_().stream_from(2, 8).eop()
    check("exec blocking", p,
          lambda: PassthroughRac(block_size=8, fifo_depth=16,
                                 compute_latency=6),
          latencies=(1,))


if __name__ == "__main__":
    main()


def extra():
    # long program: slow fetch path past the 128-word ibuf
    p = OuProgram()
    for _ in range(70):
        p.nop()
    p.stream_to(1, 8).execs().stream_from(2, 8)
    for _ in range(70):
        p.nop()
    p.eop()
    check("past-ibuf", p,
          lambda: PassthroughRac(block_size=8, fifo_depth=16,
                                 compute_latency=2),
          latencies=(1, 2), contract=Interval(1, 2))

    # big loop (trip > CHECK_UNROLL_LIMIT) with indexed transfers
    p = OuProgram()
    p.clrofr()
    p.loop(100).mvtcx(1, 0, 2, fifo=0).execs().mvfcx(2, 0, 2, fifo=0)
    p.addofr(2).endl().eop()
    check("loop100 indexed", p,
          lambda: PassthroughRac(block_size=2, fifo_depth=8,
                                 compute_latency=1),
          latencies=(1, 4), contract=Interval(1, 4))


extra()
