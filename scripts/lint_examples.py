#!/usr/bin/env python
"""Run the system analyzer over every shipped example configuration.

CI gate (the `analysis` job): each SoC configuration built by the
examples in `examples/` and by the firmware targets of
`scripts/verify_firmware.py` must lint clean at the system level
(`OU1xx`), with the firmware composition (`OU0xx` against the actual
memory map) where the example carries explicit microcode.  Exits
non-zero and prints the findings when any configuration regresses.

Findings that are intentional in an example must be suppressed here
with a comment explaining why, never silently dropped.
"""

from __future__ import annotations

import sys

from repro.core.firmware import plan_streaming_run
from repro.core.program import OuProgram
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.rac.matmul import MatMulRac
from repro.rac.scale import PassthroughRac, ScaleRac
from repro.soclint import lint_soc
from repro.system import RAM_BASE, SoC

#: the bank layout the quickstart and standalone examples use
BANKS = {0: RAM_BASE + 0x1000, 1: RAM_BASE + 0x2000,
         2: RAM_BASE + 0x3000}


def example_configurations():
    """(name, soc, banks, firmware, suppress) per shipped config."""
    # examples/quickstart.py: ScaleRac with its explicit microcode
    yield (
        "examples/quickstart.py",
        SoC(racs=[ScaleRac(block_size=16, factor=3, shift=1)]),
        BANKS,
        OuProgram().mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop(),
        (),
    )
    # examples/jpeg_decode.py: IDCT behind the Linux library
    yield ("examples/jpeg_decode.py", SoC(racs=[IDCTRac()]),
           None, None, ())
    # examples/ofdm_receiver.py: 64-point DFT, baremetal library
    yield ("examples/ofdm_receiver.py",
           SoC(racs=[DFTRac(n_points=64)]), None, None, ())
    # examples/spectral_analysis.py: 256-point DFT, Linux library
    yield ("examples/spectral_analysis.py",
           SoC(racs=[DFTRac(n_points=256)]), None, None, ())
    # examples/custom_accelerator.py: FIR via the library
    yield ("examples/custom_accelerator.py",
           SoC(racs=[FIRRac(block_size=128, n_taps=8)]),
           None, None, ())
    # examples/standalone_pipeline.py: deep-FIFO passthrough with
    # explicit streaming microcode
    yield (
        "examples/standalone_pipeline.py",
        SoC(racs=[PassthroughRac(block_size=64, fifo_depth=128)]),
        BANKS,
        OuProgram().stream_to(1, 64).execs().stream_from(2, 64).eop(),
        (),
    )
    # every RAC scripts/verify_firmware.py plans firmware for, hosted
    # in a default SoC with the planner's own program composed in
    for rac in (DFTRac(n_points=256), IDCTRac(),
                FIRRac(block_size=128, n_taps=8), MatMulRac(n=8),
                ScaleRac(block_size=16), PassthroughRac(block_size=16)):
        plan = plan_streaming_run(rac, operations=1)
        banks = {bank: BANKS.get(bank, RAM_BASE + 0x1000 * (bank + 1))
                 for bank in plan.banks_used}
        yield (f"verify_firmware target: {rac.name}",
               SoC(racs=[rac]), banks, plan.program, ())


def main() -> int:
    failures = 0
    for name, soc, banks, firmware, suppress in example_configurations():
        report = lint_soc(soc, banks=banks, firmware=firmware,
                          suppress=suppress)
        status = "clean" if report.clean else "FAIL"
        n_warn = sum(1 for f in report.findings
                     if f.severity == "warning")
        print(f"{status:5}  {name:45}  "
              f"{len(report.findings)} finding(s), {n_warn} warning(s)")
        if not report.clean:
            failures += 1
            for line in report.render().splitlines():
                print(f"       {line}")
    if failures:
        print(f"\n{failures} example configuration(s) failed the "
              "system lint")
        return 1
    print("\nall example configurations lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
