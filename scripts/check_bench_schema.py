#!/usr/bin/env python
"""Validate a ``BENCH_simulator.json`` bench artifact.

CI gate (the ``bench`` and ``mpsoc-bench`` jobs): the artifact is a
contract for downstream dashboards, so its shape is checked field by
field:

* top level: ``bench == "simulator"`` plus a ``workloads`` list whose
  rows carry the :class:`repro.bench.BenchResult` fields (and whose
  attribution, when present, satisfies transfer+compute+control ==
  total, and whose perfbound check, when present, is sound: measured
  cycles inside the statically predicted ``[lo, hi]``);
* the optional ``mpsoc`` section: sweep parameters plus a scaling
  curve of per-OCP-count points, strictly increasing in OCP count,
  with the smallest point pinned at ``speedup_vs_1 == 1.0``;
* ``--require-mpsoc`` makes the section mandatory and
  ``--min-mpsoc-speedup X`` fails the gate if the largest point's
  aggregate throughput regresses below ``X`` times the 1-OCP baseline;
* ``--baseline PATH`` compares the fresh artifact against the
  committed one and fails on a >20% regression of the vectorized
  path's wall-clock advantage (per-workload ``hot_speedup`` -- the
  within-run fast/vectorized ratio, so the gate is robust to CI hosts
  of different absolute speed).

Reads stdin by default (pipe the CLI into it) or a file argument.
A *missing* artifact file is itself a failure: the artifact is the
deliverable, so "nothing to check" must not pass the gate.
Exits non-zero with one line per violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

WORKLOAD_FIELDS = (
    "workload", "cycles", "naive_seconds", "fast_seconds",
    "vectorized_seconds", "skip_ratio", "attribution", "perfbound",
    "speedup", "hot_speedup", "naive_cycles_per_sec",
    "fast_cycles_per_sec", "vectorized_cycles_per_sec",
)

#: hot_speedup may shrink to this fraction of the committed baseline
#: before the gate fails (>20% wall-clock regression of the
#: vectorized path)
BASELINE_TOLERANCE = 0.8

#: workloads whose idle-skip leg finishes faster than this are excluded
#: from the baseline gate: a ratio of two sub-5ms timings is host
#: noise, not a regression signal (the transfer-heavy workloads the
#: vectorized lane exists for run >100ms and are always gated)
MIN_GATE_SECONDS = 0.05
PERFBOUND_FIELDS = (
    "predicted_lo", "predicted_hi", "measured", "tightness", "sound",
)
MPSOC_FIELDS = (
    "workload", "jobs", "job_words", "compute_latency", "batch_jobs",
    "clock_mhz", "points",
)
POINT_FIELDS = (
    "ocps", "jobs", "cycles", "ops_per_sec", "words_per_cycle",
    "speedup_vs_1", "utilization", "host_seconds",
)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_fields(obj: dict, fields: tuple, label: str) -> list:
    problems = []
    missing = [f for f in fields if f not in obj]
    extra = [f for f in obj if f not in fields]
    if missing:
        problems.append(f"{label}: missing fields {missing}")
    if extra:
        problems.append(f"{label}: unknown fields {extra}")
    return problems


def check_workload(row: object, label: str) -> list:
    if not isinstance(row, dict):
        return [f"{label}: not a JSON object"]
    problems = _check_fields(row, WORKLOAD_FIELDS, label)
    if not isinstance(row.get("workload"), str):
        problems.append(f"{label}: workload is not a string")
    cycles = row.get("cycles")
    if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 0:
        problems.append(f"{label}: cycles is {cycles!r}")
    for field in ("naive_seconds", "fast_seconds", "vectorized_seconds",
                  "skip_ratio", "speedup", "hot_speedup",
                  "naive_cycles_per_sec", "fast_cycles_per_sec",
                  "vectorized_cycles_per_sec"):
        if field in row and not _is_number(row[field]):
            problems.append(f"{label}: {field} is not a number")
    attribution = row.get("attribution")
    if attribution is not None and isinstance(attribution, dict):
        try:
            summed = (attribution["transfer_cycles"]
                      + attribution["compute_cycles"]
                      + attribution["control_cycles"])
            if summed != attribution["total_cycles"]:
                problems.append(
                    f"{label}: attribution buckets sum to {summed}, "
                    f"not total_cycles {attribution['total_cycles']}"
                )
        except (KeyError, TypeError):
            problems.append(f"{label}: attribution is malformed")
    elif attribution is not None:
        problems.append(f"{label}: attribution is neither null nor object")
    perfbound = row.get("perfbound")
    if perfbound is not None and isinstance(perfbound, dict):
        problems.extend(
            _check_fields(perfbound, PERFBOUND_FIELDS,
                          f"{label}.perfbound")
        )
        lo = perfbound.get("predicted_lo")
        hi = perfbound.get("predicted_hi")
        measured = perfbound.get("measured")
        if perfbound.get("sound") is not True:
            problems.append(
                f"{label}: perfbound check is not sound "
                f"(measured cycles escaped the static bound)"
            )
        if _is_number(lo) and _is_number(measured) and measured < lo:
            problems.append(
                f"{label}: measured {measured} under predicted_lo {lo}"
            )
        if _is_number(hi) and _is_number(measured) and measured > hi:
            problems.append(
                f"{label}: measured {measured} over predicted_hi {hi}"
            )
    elif perfbound is not None:
        problems.append(f"{label}: perfbound is neither null nor object")
    return problems


def check_mpsoc(section: object, min_speedup: float | None) -> list:
    label = "mpsoc"
    if not isinstance(section, dict):
        return [f"{label}: not a JSON object"]
    problems = _check_fields(section, MPSOC_FIELDS, label)
    points = section.get("points")
    if not isinstance(points, list) or not points:
        problems.append(f"{label}: points is not a non-empty list")
        return problems
    last_ocps = 0
    for index, point in enumerate(points):
        plabel = f"{label}.points[{index}]"
        if not isinstance(point, dict):
            problems.append(f"{plabel}: not a JSON object")
            continue
        problems.extend(_check_fields(point, POINT_FIELDS, plabel))
        for field in POINT_FIELDS:
            if field in point and not _is_number(point[field]):
                problems.append(f"{plabel}: {field} is not a number")
        ocps = point.get("ocps")
        if isinstance(ocps, int) and not isinstance(ocps, bool):
            if ocps <= last_ocps:
                problems.append(
                    f"{plabel}: ocps {ocps} does not increase "
                    f"(previous {last_ocps})"
                )
            last_ocps = ocps
        cycles = point.get("cycles")
        if _is_number(cycles) and cycles <= 0:
            problems.append(f"{plabel}: cycles {cycles!r} not positive")
    if problems:
        return problems
    if abs(points[0]["speedup_vs_1"] - 1.0) > 1e-9:
        problems.append(
            f"{label}: smallest point has speedup_vs_1 = "
            f"{points[0]['speedup_vs_1']}, expected 1.0"
        )
    if min_speedup is not None:
        top = points[-1]
        if top["speedup_vs_1"] < min_speedup:
            problems.append(
                f"{label}: {top['ocps']}-OCP aggregate throughput is "
                f"{top['speedup_vs_1']:.2f}x the 1-OCP baseline, below "
                f"the committed floor of {min_speedup:g}x"
            )
    return problems


def check_against_baseline(payload: object, baseline: object) -> list:
    """Per-workload hot_speedup regression gate vs the committed artifact.

    Absolute wall-clock is incomparable across CI hosts, so the gate
    compares ``hot_speedup`` (vectorized vs idle-skip within the *same*
    run): a drop past :data:`BASELINE_TOLERANCE` means the vectorized
    path itself got slower, whatever the host.
    """
    problems = []
    if not isinstance(payload, dict) or not isinstance(baseline, dict):
        return ["baseline: both artifacts must be JSON objects"]
    fresh = {row.get("workload"): row
             for row in payload.get("workloads", [])
             if isinstance(row, dict)}
    for row in baseline.get("workloads", []):
        if not isinstance(row, dict):
            continue
        name = row.get("workload")
        old = row.get("hot_speedup")
        if not _is_number(old) or old <= 0:
            continue  # workload predates the vectorized lane
        baseline_fast = row.get("fast_seconds")
        if not _is_number(baseline_fast) or baseline_fast < MIN_GATE_SECONDS:
            continue  # too short for the ratio to be timing-stable
        if name not in fresh:
            problems.append(
                f"baseline: workload {name!r} present in the committed "
                f"artifact but missing from the fresh one"
            )
            continue
        new = fresh[name].get("hot_speedup")
        if not _is_number(new):
            problems.append(
                f"baseline: workload {name!r} lost its hot_speedup field"
            )
        elif new < BASELINE_TOLERANCE * old:
            problems.append(
                f"baseline: workload {name!r} vectorized-path speedup "
                f"regressed {old:.2f}x -> {new:.2f}x (more than "
                f"{100 * (1 - BASELINE_TOLERANCE):.0f}% slower than the "
                f"committed artifact)"
            )
    return problems


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?",
                        help="artifact path (default: stdin)")
    parser.add_argument("--require-mpsoc", action="store_true",
                        help="fail if the mpsoc section is absent")
    parser.add_argument("--min-mpsoc-speedup", type=float, default=None,
                        help="largest-point speedup_vs_1 floor")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed artifact to gate hot_speedup "
                             "regressions against")
    args = parser.parse_args(argv[1:])

    if args.report:
        if not os.path.exists(args.report):
            print(
                f"bench artifact missing: {args.report} was not "
                f"produced (the bench must write it, not just pass)",
                file=sys.stderr,
            )
            return 1
        with open(args.report, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(sys.stdin)

    problems = []
    if not isinstance(payload, dict):
        problems.append("input: not a JSON object")
    else:
        if payload.get("bench") != "simulator":
            problems.append(
                f"input: bench is {payload.get('bench')!r}, "
                f"expected 'simulator'"
            )
        workloads = payload.get("workloads")
        if not isinstance(workloads, list):
            problems.append("input: workloads is not a list")
        else:
            for index, row in enumerate(workloads):
                name = (row.get("workload", index)
                        if isinstance(row, dict) else index)
                problems.extend(check_workload(row, f"workload[{name}]"))
        if "mpsoc" in payload:
            problems.extend(
                check_mpsoc(payload["mpsoc"], args.min_mpsoc_speedup)
            )
        elif args.require_mpsoc:
            problems.append("input: mpsoc section is missing")
        if args.baseline is not None:
            if not os.path.exists(args.baseline):
                problems.append(
                    f"baseline: committed artifact {args.baseline} not "
                    f"found (commit BENCH_simulator.json alongside the "
                    f"code)"
                )
            else:
                with open(args.baseline, "r", encoding="utf-8") as handle:
                    problems.extend(
                        check_against_baseline(payload, json.load(handle))
                    )

    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        n_points = len(payload.get("mpsoc", {}).get("points", []))
        print(
            f"bench schema ok ({len(payload.get('workloads', []))} "
            f"workload(s), {n_points} mpsoc point(s))"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
