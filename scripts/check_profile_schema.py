#!/usr/bin/env python
"""Validate a ``repro profile --json`` attribution report.

CI gate (the `profile` job): the machine-readable report is consumed
by downstream tooling (dashboards, the bench artifact), so its shape
is a contract.  This checks, for every report in the input (a single
object or a list):

* exactly the fields of ``repro.obs.attribution.REPORT_FIELDS``, no
  more, no fewer;
* cycle fields are non-negative integers, ``breakdown`` maps state
  names to non-negative integers;
* the defining invariant holds exactly:
  ``transfer + compute + control == total``.

Reads stdin by default (pipe the CLI into it) or a file argument.
Exits non-zero with one line per violation.
"""

from __future__ import annotations

import json
import sys

from repro.obs.attribution import REPORT_FIELDS

_INT_FIELDS = tuple(f for f in REPORT_FIELDS
                    if f not in ("workload", "breakdown"))


def check_report(report: object, label: str) -> list:
    problems = []
    if not isinstance(report, dict):
        return [f"{label}: not a JSON object"]
    missing = [f for f in REPORT_FIELDS if f not in report]
    extra = [f for f in report if f not in REPORT_FIELDS]
    if missing:
        problems.append(f"{label}: missing fields {missing}")
    if extra:
        problems.append(f"{label}: unknown fields {extra}")
    if not isinstance(report.get("workload"), str):
        problems.append(f"{label}: workload is not a string")
    for field in _INT_FIELDS:
        value = report.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(
                f"{label}: {field} is {value!r}, "
                f"expected a non-negative integer"
            )
    breakdown = report.get("breakdown")
    if not isinstance(breakdown, dict) or any(
        not isinstance(k, str) or not isinstance(v, int)
        or isinstance(v, bool) or v < 0
        for k, v in breakdown.items()
    ):
        problems.append(
            f"{label}: breakdown is not a state -> non-negative "
            f"integer map"
        )
    if problems:
        return problems
    total = (report["transfer_cycles"] + report["compute_cycles"]
             + report["control_cycles"])
    if total != report["total_cycles"]:
        problems.append(
            f"{label}: transfer+compute+control = {total} but "
            f"total_cycles = {report['total_cycles']}"
        )
    return problems


def main(argv) -> int:
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(sys.stdin)
    reports = payload if isinstance(payload, list) else [payload]
    problems = []
    if not reports:
        problems.append("input: empty report list")
    for index, report in enumerate(reports):
        name = (report.get("workload", index)
                if isinstance(report, dict) else index)
        problems.extend(check_report(report, f"report[{name}]"))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"profile schema ok ({len(reports)} report(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
