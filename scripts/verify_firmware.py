#!/usr/bin/env python
"""Run the static verifier over every in-tree firmware program.

CI gate (the `analysis` job): each microcode program the repository
can generate — the canonical Figure 4 programs, the firmware planner's
output for every shipped RAC, and the explicit programs the examples
build — must verify clean against the accelerator it targets.  Exits
non-zero and prints the findings when any program regresses.
"""

from __future__ import annotations

import sys

from repro.core.firmware import plan_streaming_run
from repro.core.program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
    idct_program,
)
from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.rac.matmul import MatMulRac
from repro.rac.scale import PassthroughRac, ScaleRac


def canonical_programs():
    """(name, program, rac, configured_banks) for every firmware source."""
    yield ("figure4 dft-256", figure4_program(256),
           DFTRac(n_points=256), {1, 2})
    yield ("figure4-looped dft-256", figure4_looped_program(256),
           DFTRac(n_points=256), {1, 2})
    yield ("figure4 dft-1024", figure4_program(1024),
           DFTRac(n_points=1024), {1, 2})
    yield ("idct 3 blocks", idct_program(n_blocks=3), IDCTRac(), {1, 2})

    # the firmware planner over every shipped RAC (what OuessantLibrary
    # loads in examples/jpeg_decode.py, ofdm_receiver.py, ...)
    for rac in (DFTRac(n_points=256), IDCTRac(),
                FIRRac(block_size=128, n_taps=8), MatMulRac(n=8),
                ScaleRac(block_size=16), PassthroughRac(block_size=16)):
        for operations in (1, 2):
            plan = plan_streaming_run(rac, operations=operations)
            yield (f"plan {rac.name} x{operations}", plan.program,
                   rac, set(plan.banks_used))

    # explicit programs from the examples
    yield ("examples/quickstart.py",
           OuProgram().mvtc(1, 0, 16).execs().mvfc(2, 0, 16).eop(),
           ScaleRac(block_size=16), {1, 2})
    yield ("examples/custom_accelerator.py (hls sqrt)",
           OuProgram().stream_to(1, 32).execs().stream_from(2, 32).eop(),
           None, {1, 2})
    yield ("examples/standalone_pipeline.py",
           OuProgram().stream_to(1, 64).execs().stream_from(2, 64).eop(),
           IDCTRac(), {1, 2})


def main() -> int:
    failures = 0
    for name, program, rac, banks in canonical_programs():
        report = program.verify(rac=rac, configured_banks=banks)
        status = "clean" if report.clean else "FAIL"
        bound = report.max_steps if report.max_steps is not None else "?"
        print(f"{status:5}  {name:40}  "
              f"{len(program):3} instrs, <= {bound} steps")
        if not report.clean:
            failures += 1
            for line in report.render().splitlines():
                print(f"       {line}")
    if failures:
        print(f"\n{failures} firmware program(s) failed verification")
        return 1
    print("\nall firmware programs verified clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
