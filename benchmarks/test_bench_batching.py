"""[A8] Batch ablation: amortizing the per-call overhead.

Table I's IDCT gain is only 1.67x because a single 8x8 block pays the
full ~3000-cycle Linux tax.  The microcode ISA makes the fix natural:
one program processes N blocks back to back, with the coprocessor
pipelining transfers against compute while the GPP sleeps once.
This bench quantifies how the *effective* per-block gain grows with
batch size -- the deployment story behind the paper's JPEG use case.
"""

import random

from conftest import once

from repro.analysis import measure_idct_sw
from repro.rac.idct import IDCTRac
from repro.sw.library import OuessantLibrary
from repro.system import SoC


def _blocks(count, seed=9):
    rng = random.Random(seed)
    return [
        [[rng.randint(-300, 300) for _ in range(8)] for _ in range(8)]
        for _ in range(count)
    ]


def test_idct_batch_size_sweep(benchmark):
    sw_per_block = measure_idct_sw().cycles

    def sweep():
        results = {}
        for batch in (1, 4, 16, 64):
            soc = SoC(racs=[IDCTRac(fifo_depth=128)])
            library = OuessantLibrary(soc, environment="linux")
            library.idct_batch(_blocks(batch))
            results[batch] = library.last_result.total_cycles / batch
        return results

    per_block = once(benchmark, sweep)
    print()
    print(f"  software: {sw_per_block} cycles/block")
    for batch, cycles in sorted(per_block.items()):
        gain = sw_per_block / cycles
        print(f"  batch {batch:>3}: {cycles:>7.0f} cycles/block, "
              f"gain {gain:.2f}x")
        benchmark.extra_info[f"batch{batch}"] = round(cycles, 1)

    # batch=1 reproduces the Table I operating point (~1.6x)
    assert 1.2 <= sw_per_block / per_block[1] <= 2.3
    # batching overtakes the fixed overhead: the gain keeps growing
    assert per_block[1] > per_block[4] > per_block[16] > per_block[64]
    # at 64 blocks/call the IDCT gain exceeds 10x
    assert sw_per_block / per_block[64] > 10.0
