"""[A6] Future-work features realized: DPR, standalone, looped ISA, HLS.

Section VI lists work in progress: Zynq/AXI4 integration (covered by
the protocol bench), Dynamic Partial Reconfiguration, standalone
processor-free operation, a richer instruction set, and HLS interface
generation.  This bench exercises each and quantifies its cost.
"""

from conftest import once

from repro.core.dpr import DPRManager, PartialBitstream
from repro.core.program import OuProgram, figure4_looped_program, figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.core.standalone import StandaloneSequencer
from repro.rac.dft import DFTRac
from repro.rac.hls import HLSInterfaceSpec, wrap_function
from repro.rac.idct import IDCTRac
from repro.rac.scale import PassthroughRac
from repro.sw.baremetal import BaremetalRuntime
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x4000


def _boot(soc, program, banks):
    ocp = soc.ocp
    soc.write_ram(PROG, program.words())
    all_banks = {0: PROG}
    all_banks.update(banks)
    for bank, base in all_banks.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return ocp


def test_dpr_swap_idct_to_dft(benchmark, q15_signal):
    """One OCP serves both of the paper's accelerators via DPR."""
    def measure():
        soc = SoC(racs=[IDCTRac()])
        manager = DPRManager(soc.sim, soc.ocp)
        # run an IDCT
        block = [[100] * 8 for _ in range(8)]
        soc.write_ram(IN, fp.block_to_words(block))
        program = (OuProgram().stream_to(1, 64).execs()
                   .stream_from(2, 64).eop())
        _boot(soc, program, {1: IN, 2: OUT})
        soc.run_until(lambda: soc.ocp.done, max_cycles=100_000)
        assert fp.words_to_block(soc.read_ram(OUT, 64)) == fp.idct2_q15(block)
        soc.ocp.interface.write_word(REG_CTRL, 0)

        # swap to the DFT (typical small partial bitstream)
        reconf_cycles = manager.reconfigure(
            PartialBitstream(DFTRac(n_points=64), size_words=25_000))

        # run a DFT through the SAME interface/controller
        re, im = q15_signal(64)
        soc.write_ram(IN, fp.interleave_complex(re, im))
        _boot(soc, figure4_program(64), {1: IN, 2: OUT})
        soc.run_until(lambda: soc.ocp.done, max_cycles=100_000)
        out = fp.deinterleave_complex(soc.read_ram(OUT, 128))
        assert out == fp.fft_q15(re, im)
        return reconf_cycles

    reconf_cycles = once(benchmark, measure)
    print(f"\nDPR swap IDCT->DFT: {reconf_cycles} reconfiguration cycles "
          f"({reconf_cycles / 50_000:.1f} ms at 50 MHz)")
    benchmark.extra_info["reconfiguration_cycles"] = reconf_cycles


def test_standalone_throughput(benchmark):
    """Processor-free streaming: runs per second with zero GPP work."""
    def measure():
        soc = SoC(racs=[PassthroughRac(block_size=64, fifo_depth=128)],
                  with_cpu=False)
        program = (OuProgram().stream_to(1, 64).execs()
                   .stream_from(2, 64).eop())
        soc.write_ram(PROG, program.words())
        soc.write_ram(IN, list(range(64)))
        sequencer = StandaloneSequencer(
            "straps", soc.ocp, bank_bases={0: PROG, 1: IN, 2: OUT},
            prog_size=len(program), restart=True, max_runs=10,
        )
        soc.sim.add(sequencer)
        soc.run_until(lambda: sequencer.runs_completed >= 10,
                      max_cycles=500_000)
        return soc.sim.cycle / 10

    cycles_per_run = once(benchmark, measure)
    print(f"\nstandalone free-running: {cycles_per_run:.0f} cycles/block "
          f"(no processor in the system)")
    assert cycles_per_run < 1000
    benchmark.extra_info["cycles_per_run"] = cycles_per_run


def test_looped_isa_compresses_microcode(benchmark, q15_signal):
    """The extension ISA shrinks Figure 4 from 18 to 12 words with a
    negligible cycle penalty (loop bookkeeping)."""
    def measure():
        out = {}
        for label, program in (("unrolled", figure4_program(256)),
                               ("looped", figure4_looped_program(256))):
            soc = SoC(racs=[DFTRac(n_points=256)])
            re, im = q15_signal(256)
            soc.write_ram(IN, fp.interleave_complex(re, im))
            _boot(soc, program, {1: IN, 2: OUT})
            cycles = soc.run_until(lambda: soc.ocp.done, max_cycles=100_000)
            assert (fp.deinterleave_complex(soc.read_ram(OUT, 512))
                    == fp.fft_q15(re, im))
            out[label] = (len(program), cycles)
        return out

    results = once(benchmark, measure)
    print()
    for label, (words, cycles) in results.items():
        print(f"  {label:<9} {words:>3} instruction words, {cycles} cycles")
    unrolled_words, unrolled_cycles = results["unrolled"]
    looped_words, looped_cycles = results["looped"]
    assert looped_words < unrolled_words
    assert looped_cycles < unrolled_cycles * 1.10  # <10% penalty
    benchmark.extra_info.update(
        {"unrolled": results["unrolled"], "looped": results["looped"]}
    )


def test_hls_wrapper_integration_cost(benchmark):
    """Section VI: automatic interface generation for HLS accelerators.
    A wrapped Python function integrates with zero extra microcode."""
    def measure():
        spec = HLSInterfaceSpec(items_in=[64], items_out=[64],
                                initiation_interval=1, pipeline_depth=12)
        rac = wrap_function(
            "sum-prefix",
            lambda c: [[sum(c[0][: i + 1]) & 0xFFFFFFFF
                        for i in range(len(c[0]))]],
            spec,
        )
        soc = SoC(racs=[rac])
        runtime = BaremetalRuntime(soc)
        soc.write_ram(IN, [1] * 64)
        program = (OuProgram().stream_to(1, 64).execs()
                   .stream_from(2, 64).eop())
        result = runtime.run(program.words(), {0: PROG, 1: IN, 2: OUT})
        assert soc.read_ram(OUT, 64) == list(range(1, 65))
        return result.total_cycles

    cycles = once(benchmark, measure)
    print(f"\nHLS-wrapped accelerator end-to-end: {cycles} cycles")
    assert cycles < 2000
    benchmark.extra_info["cycles"] = cycles
