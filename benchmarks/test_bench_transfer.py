"""[C2/A5] Transfer efficiency: ~1.5 cycles per word, and ablations.

Paper in-text analysis: "we have roughly 1500 cycles needed for data
transfer, and 1024 32-bits words to transfer.  This means that around
1.5 cycles per word were required, which is quite a good result."

Ablations: DMA chunk size sweep (why DMA64 is the right microcode
granularity) and microcode prefetch vs per-instruction fetch.
"""

from conftest import once

from repro.analysis import measure_transfer_efficiency
from repro.core.program import OuProgram, figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.sw.baremetal import BaremetalRuntime
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x10_0000
OUT = RAM_BASE + 0x20_0000


def test_cycles_per_word_near_1_5(benchmark):
    m = once(benchmark, lambda: measure_transfer_efficiency(1024))
    print(f"\n{m.words} words in {m.cycles} cycles = "
          f"{m.cycles_per_word:.2f} cycles/word (paper: ~1.5)")
    assert 1.0 <= m.cycles_per_word <= 1.8
    benchmark.extra_info["cycles_per_word"] = round(m.cycles_per_word, 3)


def _transfer_with_chunk(chunk: int, total: int = 512) -> float:
    rac = PassthroughRac(block_size=total, fifo_depth=256)
    soc = SoC(racs=[rac])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(IN, list(range(total)))
    program = (OuProgram().stream_to(1, total, chunk=chunk).execs()
               .stream_from(2, total, chunk=chunk).eop())
    result = runtime.run(program.words(), {0: PROG, 1: IN, 2: OUT})
    assert soc.read_ram(OUT, total) == list(range(total))
    return result.total_cycles / (2 * total)


def test_dma_chunk_size_sweep(benchmark):
    """Bigger microcode chunks amortize per-instruction overheads."""
    def sweep():
        return {chunk: _transfer_with_chunk(chunk)
                for chunk in (4, 8, 16, 32, 64, 128)}

    results = once(benchmark, sweep)
    print()
    for chunk, cpw in sorted(results.items()):
        print(f"  DMA{chunk:<4} {cpw:.2f} cycles/word")
    # monotone improvement until the bus burst limit dominates
    assert results[64] < results[8] < results[4]
    assert results[64] <= 1.8
    benchmark.extra_info.update(
        {f"dma{k}": round(v, 3) for k, v in results.items()}
    )


def _figure4_cycles(prefetch: bool, q15_signal) -> int:
    n = 256
    soc = SoC(racs=[DFTRac(n_points=n)], prefetch=prefetch)
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    soc.write_ram(PROG, figure4_program(n).words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(figure4_program(n)))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    return soc.run_until(lambda: ocp.done, max_cycles=100_000)


def test_prefetch_ablation(benchmark, q15_signal):
    """Microcode prefetch burst vs one bus read per instruction."""
    def measure():
        return (_figure4_cycles(True, q15_signal),
                _figure4_cycles(False, q15_signal))

    with_prefetch, without = once(benchmark, measure)
    print(f"\nprefetch {with_prefetch} cycles vs per-instruction fetch "
          f"{without} cycles")
    assert with_prefetch < without
    # 18 instructions * ~4-cycle bus read each
    assert without - with_prefetch >= 18
    benchmark.extra_info.update(
        {"prefetch": with_prefetch, "per_instruction": without}
    )
