"""[C1/A4] Linux vs baremetal: the in-text overhead decomposition.

Paper: "When running it without Linux, the DFT took 4000 cycles, which
gives an overhead of 3000 cycles coming from Linux.  This comes from
system calls."  Plus the Section IV design discussion: mmap (chosen)
vs copy_to_user (rejected), and interrupt vs polling.
"""

from conftest import once

from repro.analysis import measure_dft_hw
from repro.core.program import figure4_program
from repro.rac.dft import DFTRac
from repro.sw.linux import LinuxCosts, LinuxRuntime
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x4000


def test_baremetal_4000_linux_7000(benchmark, q15_signal):
    def measure():
        bare, ok_b = measure_dft_hw(256, environment="baremetal")
        linux, ok_l = measure_dft_hw(256, environment="linux")
        assert ok_b and ok_l
        return bare.total_cycles, linux.total_cycles

    bare, linux = once(benchmark, measure)
    overhead = linux - bare
    print(f"\nDFT-256 baremetal {bare} cycles, Linux {linux} cycles, "
          f"overhead {overhead}")
    assert 3400 <= bare <= 4600       # paper: 4000
    assert 6400 <= linux <= 7600      # paper: 7000
    assert 2800 <= overhead <= 3200   # paper: ~3000, "from system calls"
    benchmark.extra_info.update(
        {"baremetal": bare, "linux": linux, "overhead": overhead}
    )


def _linux_run(data_path, use_interrupt, q15_signal, n=256):
    soc = SoC(racs=[DFTRac(n_points=n)])
    runtime = LinuxRuntime(soc, data_path=data_path,
                           use_interrupt=use_interrupt)
    runtime.open_device()
    re, im = q15_signal(n)
    words = fp.interleave_complex(re, im)
    staged = runtime.stage_input(IN, words)
    result = runtime.run(figure4_program(n).words(),
                         {0: PROG, 1: IN, 2: OUT})
    out, fetched = runtime.fetch_output(OUT, 2 * n)
    assert fp.deinterleave_complex(out) == fp.fft_q15(re, im)
    return result.total_cycles + staged + fetched


def test_mmap_beats_copy_data_path(benchmark, q15_signal):
    """Section IV: "data copies are performance killers"."""
    def measure():
        return (
            _linux_run("mmap", True, q15_signal),
            _linux_run("copy", True, q15_signal),
        )

    mmap_cycles, copy_cycles = once(benchmark, measure)
    print(f"\nmmap {mmap_cycles} cycles vs copy {copy_cycles} cycles")
    assert copy_cycles > mmap_cycles
    costs = LinuxCosts()
    # the copy path pays >= per-word copies both ways + 2 extra syscalls
    assert copy_cycles - mmap_cycles >= 1024 * costs.copy_per_word
    benchmark.extra_info.update(
        {"mmap": mmap_cycles, "copy": copy_cycles}
    )


def test_interrupt_beats_polling_under_linux(benchmark, q15_signal):
    """Table I was measured in interrupt mode; polling syscalls hurt."""
    def measure():
        return (
            _linux_run("mmap", True, q15_signal),
            _linux_run("mmap", False, q15_signal),
        )

    irq_cycles, poll_cycles = once(benchmark, measure)
    print(f"\ninterrupt {irq_cycles} cycles vs polling {poll_cycles} cycles")
    assert poll_cycles > irq_cycles
    benchmark.extra_info.update(
        {"interrupt": irq_cycles, "polling": poll_cycles}
    )


def test_overhead_constant_across_workload_size(benchmark, q15_signal):
    """The Linux tax is additive, not multiplicative (IDCT pays the
    same ~3000 cycles as the DFT -- why its gain is only 1.67)."""
    def measure():
        out = {}
        for n in (64, 256):
            bare, _ = measure_dft_hw(n, environment="baremetal")
            linux, _ = measure_dft_hw(n, environment="linux")
            out[n] = linux.total_cycles - bare.total_cycles
        return out

    overheads = once(benchmark, measure)
    print(f"\noverheads by size: {overheads}")
    values = list(overheads.values())
    assert max(values) - min(values) <= 200
