"""[S1] Simulator performance (host-side, not a paper artifact).

Unlike the other benches, these measure the *reproduction's* own speed
-- simulated cycles and instructions per host second -- so regressions
in the simulation kernel show up.  They use pytest-benchmark
conventionally (multiple rounds, statistics meaningful).

``test_idle_skip_speedup`` additionally writes the machine-readable
``BENCH_simulator.json`` artifact (override the path with the
``REPRO_BENCH_OUT`` environment variable) comparing naive ticking with
the idle-skip fast path per workload; CI uploads it per run.
"""

import os

from repro.bench import run_benchmarks, write_report
from repro.core.program import OuProgram
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.cpu.assembler import assemble
from repro.cpu.cpu import CPU
from repro.mem.memory import Memory
from repro.rac.fifo import FIFO
from repro.rac.scale import PassthroughRac
from repro.system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000

SPIN = """
    li r1, 20000
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def test_iss_instructions_per_second(benchmark):
    program = assemble(SPIN, text_base=0, data_base=0x10000)

    def run():
        memory = Memory("ram", 1 << 16)
        cpu = CPU(memory=memory)
        cpu.load(program)
        return cpu.run()

    cycles = benchmark(run)
    assert cycles == 2 + 2 * 20_000 + 1
    benchmark.extra_info["simulated_cycles"] = cycles


def test_fifo_throughput(benchmark):
    def run():
        fifo = FIFO("f", depth=64)
        moved = 0
        for _ in range(500):
            fifo.push_many(list(range(32)))
            fifo.commit()
            moved += len(fifo.pop_many(32))
        return moved

    moved = benchmark(run)
    assert moved == 16_000


def test_ocp_loopback_cycles_per_second(benchmark):
    program = (OuProgram().stream_to(1, 64).execs()
               .stream_from(2, 64).eop())

    def run():
        soc = SoC(racs=[PassthroughRac(block_size=64, fifo_depth=128)])
        soc.write_ram(IN, list(range(64)))
        soc.write_ram(PROG, program.words())
        ocp = soc.ocp
        for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
            ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
        ocp.interface.write_word(REG_PROG_SIZE, len(program))
        ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
        return soc.run_until(lambda: ocp.done, max_cycles=50_000)

    cycles = benchmark(run)
    assert cycles < 1000
    benchmark.extra_info["simulated_cycles"] = cycles


def test_idle_skip_speedup():
    """Naive vs fast vs vectorized kernel across the bench workloads +
    JSON artifact.

    ``run_benchmarks`` itself asserts cycle-count equality between all
    three modes, so this doubles as an equivalence smoke test.  The
    wall-clock bars are deliberately below what the workloads actually
    get (stall_heavy ~400x naive->fast, jpeg_idct/dft >=5x fast->hot
    in the committed artifact), to stay robust on loaded CI hosts.
    """
    results = run_benchmarks()
    write_report(
        results, os.environ.get("REPRO_BENCH_OUT", "BENCH_simulator.json")
    )
    by_name = {r.workload: r for r in results}
    stall = by_name["stall_heavy"]
    assert stall.skip_ratio > 0.9
    assert stall.speedup >= 3.0
    assert by_name["idle_timeout"].skip_ratio == 1.0
    # the vectorized lane earns its keep on the transfer-heavy
    # workloads: hot (trace-free dispatch) vs the idle-skip baseline.
    # Only these two run long enough (>0.1s) for the ratio to be
    # stable on shared CI hosts.
    assert by_name["jpeg_idct"].hot_speedup >= 4.0
    assert by_name["dft"].hot_speedup >= 4.0
