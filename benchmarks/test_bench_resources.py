"""[R1/C3] Section V resource footprint + device fit.

Paper claims: the OCP (interface + controller + FIFO control) consumes
"less than 1000 LUT and 750 FF"; FIFO memory is inferred as BRAM;
the IDCT and DFT systems "give similar results except for the FIFO
size and the RAC"; everything fits an Artix7 LX100T at 50 MHz.
"""

from conftest import once

from repro.rac.dft import DFTRac
from repro.rac.fir import FIRRac
from repro.rac.idct import IDCTRac
from repro.synth import (
    ARTIX7_100T,
    SPARTAN6_LX45,
    ZYNQ_7020,
    estimate_ocp,
    utilization_report,
)
from repro.system import SoC


def _estimate_all():
    return {
        "IDCT": estimate_ocp(SoC(racs=[IDCTRac()]).ocp),
        "DFT": estimate_ocp(SoC(racs=[DFTRac(256)]).ocp),
        "FIR": estimate_ocp(SoC(racs=[FIRRac()]).ocp),
    }


def test_ocp_footprint_envelope(benchmark):
    estimates = once(benchmark, _estimate_all)
    print()
    for name, estimate in estimates.items():
        overhead = estimate.ocp_overhead
        print(f"{name:>5}: OCP overhead {overhead} | "
              f"FIFO mem {estimate.fifo_memory.bram18} BRAM | "
              f"RAC alone {estimate.rac}")
        # the paper's envelope
        assert overhead.luts < 1000
        assert overhead.ffs < 750
        # FIFO storage is BRAM, not logic
        assert estimate.fifo_memory.bram18 >= 1
        assert estimate.fifo_memory.luts == 0
        benchmark.extra_info[name] = {
            "ocp_luts": overhead.luts, "ocp_ffs": overhead.ffs,
            "fifo_bram": estimate.fifo_memory.bram18,
        }


def test_accelerator_alone_vs_with_ocp(benchmark):
    """The with/without-OCP synthesis comparison of Section V-B."""
    estimates = once(benchmark, _estimate_all)
    for name, estimate in estimates.items():
        alone = estimate.accelerator_alone
        with_ocp = estimate.total
        delta = with_ocp.luts - alone.luts
        print(f"{name:>5}: alone {alone.luts} LUT -> with OCP "
              f"{with_ocp.luts} LUT (delta {delta})")
        assert delta < 1000  # the added logic is the OCP envelope


def test_idct_dft_similar_except_rac(benchmark):
    estimates = once(benchmark, _estimate_all)
    idct, dft = estimates["IDCT"], estimates["DFT"]
    assert idct.parts["interface"] == dft.parts["interface"]
    assert idct.parts["controller"] == dft.parts["controller"]
    assert idct.rac != dft.rac


def test_timing_closure_at_50mhz(benchmark):
    """§V-A: "50 MHz ... no timing errors were left"."""
    from repro.synth.timing import SPARTAN6_TECH, timing_report

    def measure():
        out = {}
        for name, rac in (("IDCT", IDCTRac()), ("DFT", DFTRac(256))):
            out[name] = timing_report(SoC(racs=[rac]).ocp, clock_mhz=50.0)
        return out

    reports = once(benchmark, measure)
    print()
    print(reports["DFT"].render())
    for name, report in reports.items():
        assert report.closes, f"{name}: {report.render()}"
        assert report.fmax_mhz > 100  # ample headroom over 50 MHz
        benchmark.extra_info[name] = report.fmax_mhz
    # Spartan-6 closes too (the "different FPGA resources" claim)
    slow = timing_report(SoC(racs=[IDCTRac()]).ocp, clock_mhz=50.0,
                         technology=SPARTAN6_TECH)
    assert slow.closes


def test_device_fit_report(benchmark):
    estimate = once(benchmark, lambda: estimate_ocp(SoC(racs=[DFTRac(256)]).ocp))
    print()
    print(utilization_report(estimate.parts, ARTIX7_100T))
    for device in (ARTIX7_100T, SPARTAN6_LX45, ZYNQ_7020):
        assert device.fits(estimate.total)
        util = device.utilization(estimate.total)
        assert util["luts"] < 0.15  # "very low footprint"
        benchmark.extra_info[device.name] = round(util["luts"], 4)
