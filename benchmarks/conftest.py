"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's reported artifacts
(Table I, the Section V resource discussion, the in-text cycle
analyses) or an ablation around it.  Wall-clock time measured by
pytest-benchmark is the *simulator's* speed; the reproduced quantity is
always simulated cycles, attached to ``benchmark.extra_info`` and
printed so a plain ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated rows.
"""

from __future__ import annotations

import random

import pytest

from repro.utils import fixedpoint as fp


@pytest.fixture
def q15_signal():
    rng = random.Random(2016)

    def make(n: int):
        re = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
        im = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
        return re, im

    return make


def once(benchmark, fn):
    """Run a deterministic measurement exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
