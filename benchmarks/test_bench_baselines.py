"""[A2] Integration design space (Section II): Ouessant vs the rest.

The same accelerator datapath (DFT-256-equivalent: 512 words in/out,
2485-cycle latency) integrated four ways:

* PIO bus slave (the "typical way" of Section II-A),
* bus slave + DMA peripheral (GPP still schedules everything),
* Molen-style tight coupling (analytic: fast but CPU-blocking,
  one accelerator per core, soft-core only),
* Ouessant OCP.
"""

from conftest import once

from repro.baselines.dma_slave import (
    BurstSlaveAccelerator,
    DMAHarness,
    SLAVE_WINDOW_BYTES,
)
from repro.baselines.molen import molen_run_estimate
from repro.baselines.pio_slave import PIOHarness, SlaveAccelerator
from repro.bus.bus import SystemBus
from repro.core.program import OuProgram
from repro.mem.dma import DMAEngine
from repro.mem.memory import Memory
from repro.rac.scale import PassthroughRac
from repro.sim.kernel import Simulator
from repro.sw.baremetal import BaremetalRuntime
from repro.system import RAM_BASE, SoC

WORDS = 512
LATENCY = 2485
ACCEL_BASE = 0x9000_0000
DMA_BASE = 0x9100_0000


def _pio_cycles() -> int:
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    accel = SlaveAccelerator("accel", compute_fn=lambda ws: list(ws),
                             items_in=WORDS, items_out=WORDS,
                             compute_latency=LATENCY)
    bus.attach_slave("accel", ACCEL_BASE, 64, accel)
    sim.add(accel)
    _, cycles = PIOHarness(sim, bus, ACCEL_BASE).run(
        list(range(WORDS)), WORDS)
    return cycles


def _dma_cycles() -> int:
    sim = Simulator()
    bus = SystemBus()
    sim.add(bus)
    mem = Memory("ram", 1 << 16, access_latency=1)
    bus.attach_slave("ram", 0x0, 1 << 16, mem)
    accel = BurstSlaveAccelerator("accel", compute_fn=lambda ws: list(ws),
                                  items_in=WORDS, items_out=WORDS,
                                  compute_latency=LATENCY)
    bus.attach_slave("accel", ACCEL_BASE, SLAVE_WINDOW_BYTES, accel)
    sim.add(accel)
    dma = DMAEngine("dma", bus=bus, buffer_words=64)
    bus.attach_slave("dma", DMA_BASE, 64, dma)
    sim.add(dma)
    mem.load_words(0x100, list(range(WORDS)))
    return DMAHarness(sim, bus, dma, DMA_BASE, ACCEL_BASE).run(
        0x100, 0x4000, WORDS, WORDS)


def _ouessant_cycles() -> int:
    rac = PassthroughRac(block_size=WORDS, fifo_depth=128,
                         compute_latency=LATENCY)
    soc = SoC(racs=[rac])
    runtime = BaremetalRuntime(soc)
    soc.write_ram(RAM_BASE + 0x2000, list(range(WORDS)))
    program = (OuProgram().stream_to(1, WORDS, chunk=64).execs()
               .stream_from(2, WORDS, chunk=64).eop())
    result = runtime.run(program.words(), {
        0: RAM_BASE + 0x1000,
        1: RAM_BASE + 0x2000,
        2: RAM_BASE + 0x8000,
    })
    return result.total_cycles


def test_integration_design_space(benchmark):
    def measure():
        return {
            "PIO slave": _pio_cycles(),
            "DMA peripheral": _dma_cycles(),
            "Ouessant": _ouessant_cycles(),
            "Molen (model)": molen_run_estimate(WORDS, WORDS, LATENCY).total_cycles,
        }

    results = once(benchmark, measure)
    print()
    for name, cycles in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<16} {cycles:>8} cycles")
        benchmark.extra_info[name] = cycles

    # ordering claims from Section II:
    assert results["PIO slave"] > results["DMA peripheral"]
    assert results["DMA peripheral"] > results["Ouessant"]
    # Molen is the latency floor, but blocks the CPU and cannot be
    # used on hardcore (Zynq-style) systems -- Ouessant trades a small
    # overhead for that flexibility.
    assert results["Molen (model)"] <= results["Ouessant"]
    overhead = (results["Ouessant"] - results["Molen (model)"])
    assert overhead / results["Molen (model)"] < 0.35


def test_gpp_freed_during_ouessant_run(benchmark):
    """With Ouessant the GPP's involvement is just config+ack."""
    def measure():
        rac = PassthroughRac(block_size=WORDS, fifo_depth=128,
                             compute_latency=LATENCY)
        soc = SoC(racs=[rac])
        runtime = BaremetalRuntime(soc)
        soc.write_ram(RAM_BASE + 0x2000, list(range(WORDS)))
        program = (OuProgram().stream_to(1, WORDS, chunk=64).execs()
                   .stream_from(2, WORDS, chunk=64).eop())
        result = runtime.run(program.words(), {
            0: RAM_BASE + 0x1000, 1: RAM_BASE + 0x2000,
            2: RAM_BASE + 0x8000,
        })
        return result

    result = once(benchmark, measure)
    busy = result.config_cycles + result.ack_cycles
    free = result.total_cycles - busy
    print(f"\nGPP busy {busy} cycles, free {free} cycles "
          f"({100 * free / result.total_cycles:.1f}% of the operation)")
    assert free > 0.9 * result.total_cycles
    benchmark.extra_info.update({"gpp_busy": busy, "gpp_free": free})
