"""[A3] DFT size sweep: where the acceleration crosses over.

The paper evaluates one size (256 points).  "It can be configured to
accept different DFT size" -- this ablation sweeps N and shows how the
gain grows with problem size (the fixed Linux overhead dominates small
transforms, the O(N^2) software cost dominates large ones).
"""

from conftest import once

from repro.analysis import measure_dft_hw, measure_dft_sw
from repro.rac.dft import dft_latency


def test_gain_vs_size_sweep(benchmark, q15_signal):
    sizes = (16, 64, 256)

    def sweep():
        rows = {}
        for n in sizes:
            hw, ok = measure_dft_hw(n, environment="linux")
            assert ok
            sw = measure_dft_sw(n, algorithm="direct")
            rows[n] = (dft_latency(n), hw.total_cycles, sw.cycles)
        return rows

    rows = once(benchmark, sweep)
    print()
    print(f"  {'N':>5} {'Lat.':>7} {'HW':>8} {'SW':>10} {'Gain':>8}")
    gains = {}
    for n, (lat, hw, sw) in rows.items():
        gains[n] = sw / hw
        print(f"  {n:>5} {lat:>7} {hw:>8} {sw:>10} {gains[n]:>8.2f}")
        benchmark.extra_info[str(n)] = {
            "lat": lat, "hw": hw, "sw": sw, "gain": round(gains[n], 2)
        }

    # gain grows with N (O(N^2) software vs ~O(N log N + const) HW path)
    assert gains[16] < gains[64] < gains[256]
    # at 256 the win is two orders of magnitude (paper: 85x)
    assert gains[256] > 50
    # small transforms are dominated by the fixed overhead
    assert gains[16] < 15


def test_hw_time_dominated_by_overhead_at_small_n(benchmark, q15_signal):
    def measure():
        hw16, _ = measure_dft_hw(16, environment="linux")
        hw256, _ = measure_dft_hw(256, environment="linux")
        return hw16.total_cycles, hw256.total_cycles

    small, large = once(benchmark, measure)
    # 16x the data costs < 2.2x the time: fixed overheads dominate
    assert large < 2.2 * small
    print(f"\nHW cycles: N=16 -> {small}, N=256 -> {large}")
