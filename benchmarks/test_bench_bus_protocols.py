"""[A1] Bus-protocol ablation: the per-bus adapter of Figure 3.

The paper's system runs on AMBA2 AHB; Figure 3 names "AHB, AXI, PLB,
..." as interchangeable adapters, and Section VI announces the Zynq
(AXI4) port.  This bench runs the identical Figure 4 workload over
every catalogued protocol and shows (a) behaviour is unchanged and (b)
only timing shifts -- with burst-less AXI4-Lite as the cautionary tale.
"""

from conftest import once

from repro.bus.protocol import ALL_PROTOCOLS, protocol_by_name
from repro.core.program import figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x4000


def _run(protocol, q15_signal, n=256):
    soc = SoC(racs=[DFTRac(n_points=n)], protocol=protocol)
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    soc.write_ram(PROG, figure4_program(n).words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(figure4_program(n)))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    cycles = soc.run_until(lambda: ocp.done, max_cycles=500_000)
    out = fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
    return cycles, out == fp.fft_q15(re, im)


def test_protocol_sweep_same_results_different_timing(benchmark, q15_signal):
    def sweep():
        return {p.name: _run(p, q15_signal) for p in ALL_PROTOCOLS}

    results = once(benchmark, sweep)
    print()
    for name, (cycles, correct) in sorted(results.items(),
                                          key=lambda kv: kv[1][0]):
        print(f"  {name:<12} {cycles:>7} cycles")
        assert correct, f"{name} corrupted data"
        benchmark.extra_info[name] = cycles

    ahb = results["AHB"][0]
    axi4 = results["AXI4"][0]
    lite = results["AXI4-Lite"][0]
    wishbone = results["Wishbone"][0]
    # AXI4 with 256-beat bursts matches/beats AHB's 16-beat bursts
    assert axi4 <= ahb * 1.05
    # burst-less AXI4-Lite pays heavily: the Zynq port needs real AXI4
    assert lite > ahb * 1.3
    # Wishbone classic's 2-cycle beats sit in between
    assert ahb < wishbone < lite


def test_protocol_lookup_used_by_config(benchmark):
    protocol = once(benchmark, lambda: protocol_by_name("axi4"))
    assert protocol.max_burst_beats == 256
