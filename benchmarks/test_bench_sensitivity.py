"""Sensitivity ablations around the paper's design constants.

None of these appear as numbers in the paper, but each probes one of
its design decisions: the SRAM wait state (Nexys4 memory), the FIFO
depth (BRAM budget vs stall cycles), and bus contention from a polling
CPU (why interrupt mode is the measured configuration).
"""

from conftest import once

from repro.core.program import OuProgram, figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.cpu.assembler import assemble
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.sw.baremetal import BaremetalRuntime
from repro.system import OCP_BASE, RAM_BASE, SoC
from repro.utils import fixedpoint as fp

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x8000


def _dft_run(soc, q15_signal, n=256):
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    soc.write_ram(PROG, figure4_program(n).words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(figure4_program(n)))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    cycles = soc.run_until(lambda: ocp.done, max_cycles=500_000)
    assert (fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
            == fp.fft_q15(re, im))
    return cycles


def test_memory_latency_sweep(benchmark, q15_signal):
    """Burst DMA hides wait states: even 8-cycle memory costs < 35%."""
    def sweep():
        results = {}
        for latency in (0, 1, 2, 4, 8):
            soc = SoC(racs=[DFTRac(n_points=256)])
            soc.memory.access_latency = latency
            results[latency] = _dft_run(soc, q15_signal)
        return results

    results = once(benchmark, sweep)
    print()
    for latency, cycles in sorted(results.items()):
        print(f"  memory latency {latency}: {cycles} cycles")
        benchmark.extra_info[f"lat{latency}"] = cycles
    assert results[8] < results[1] * 1.35
    assert results[0] <= results[8]


def test_fifo_depth_sweep(benchmark):
    """Deeper FIFOs trade BRAM for fewer transfer-engine stalls."""
    def sweep():
        results = {}
        for depth in (16, 32, 64, 128):
            rac = PassthroughRac(block_size=256, fifo_depth=depth)
            soc = SoC(racs=[rac])
            runtime = BaremetalRuntime(soc)
            soc.write_ram(IN, list(range(256)))
            program = (OuProgram().stream_to(1, 256, chunk=64).execs()
                       .stream_from(2, 256, chunk=64).eop())
            result = runtime.run(program.words(),
                                 {0: PROG, 1: IN, 2: OUT})
            stalls = soc.ocp.controller.stats["cycles.fifo_stall"]
            results[depth] = (result.total_cycles, stalls)
        return results

    results = once(benchmark, sweep)
    print()
    for depth, (cycles, stalls) in sorted(results.items()):
        print(f"  depth {depth:>4}: {cycles} cycles, {stalls} stall cycles")
        benchmark.extra_info[f"depth{depth}"] = cycles
    assert results[128][0] <= results[16][0]


def test_memory_technology_sram_vs_sdram(benchmark, q15_signal):
    """Open-row DRAM barely hurts Ouessant: its long sequential bursts
    are row-friendly (another reason integrated DMA beats PIO)."""
    from repro.mem.sdram import SDRAM

    def measure():
        out = {}
        soc = SoC(racs=[DFTRac(n_points=256)])
        out["SRAM"] = (_dft_run(soc, q15_signal), None)
        sdram = SDRAM("sdram", 16 << 20, cas_latency=3, row_miss_penalty=9)
        soc = SoC(racs=[DFTRac(n_points=256)], memory=sdram)
        out["SDRAM"] = (_dft_run(soc, q15_signal), sdram.row_hit_rate)
        return out

    results = once(benchmark, measure)
    print()
    for name, (cycles, hit_rate) in results.items():
        extra = f", row hit rate {hit_rate:.2f}" if hit_rate is not None else ""
        print(f"  {name:<6} {cycles} cycles{extra}")
        benchmark.extra_info[name] = cycles
    sram_cycles = results["SRAM"][0]
    sdram_cycles, hit_rate = results["SDRAM"]
    assert sdram_cycles < sram_cycles * 1.25
    assert hit_rate > 0.5


def test_cpu_cost_model_sensitivity(benchmark):
    """Table I's SW column under different Leon3 configurations: the
    gain conclusion survives any plausible in-order timing."""
    from repro.analysis import measure_dft_sw, measure_idct_sw
    from repro.baselines.software import software_idct
    from repro.cpu.isa import CostModel

    configs = {
        "mac+cache (default)": CostModel(),
        "no MAC (mul=4)": CostModel(mul=4),
        "slow loads (load=2)": CostModel(load=2),
        "pessimistic": CostModel(mul=5, load=2, branch=2),
    }

    def measure():
        block = [[100] * 8 for _ in range(8)]
        return {
            name: software_idct(block, cost_model=cost)[1].cycles
            for name, cost in configs.items()
        }

    results = once(benchmark, measure)
    print()
    for name, cycles in results.items():
        print(f"  {name:<22} IDCT SW = {cycles} cycles "
              f"(gain vs HW-3293: {cycles / 3293:.2f}x)")
        benchmark.extra_info[name] = cycles
    # the default lands on the paper's 5000; every variant still loses
    # to the 3293-cycle hardware path
    assert 4000 <= results["mac+cache (default)"] <= 7000
    assert all(cycles > 3293 for cycles in results.values())


def test_bus_contention_from_polling_cpu(benchmark, q15_signal):
    """A CPU spinning on CTRL steals bus slots from the OCP's DMA."""
    n = 256

    def build(polling: bool):
        soc = SoC(racs=[DFTRac(n_points=n)])
        re, im = q15_signal(n)
        soc.write_ram(IN, fp.interleave_complex(re, im))
        soc.write_ram(PROG, figure4_program(n).words())
        wait = "spin: lw r4, 0(r1)\n andi r5, r4, 4\n beq r5, r0, spin" \
            if polling else "spin: wfi\n lw r4, 0(r1)\n andi r5, r4, 4\n beq r5, r0, spin"
        source = f"""
            li   r1, {OCP_BASE}
            li   r2, {PROG}
            sw   r2, 8(r1)
            li   r2, {IN}
            sw   r2, 12(r1)
            li   r2, {OUT}
            sw   r2, 16(r1)
            addi r3, r0, 18
            sw   r3, 4(r1)
            addi r3, r0, {CTRL_S | CTRL_IE}
            sw   r3, 0(r1)
        {wait}
            sw   r0, 0(r1)
            halt
        """
        program = assemble(source, text_base=RAM_BASE,
                           data_base=RAM_BASE + 0x10_0000)
        soc.cpu.load(program)
        soc.run_until(lambda: soc.cpu.halted, max_cycles=500_000)
        out = fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
        assert out == fp.fft_q15(re, im)
        return soc.sim.cycle

    def measure():
        return build(polling=False), build(polling=True)

    wfi_cycles, polling_cycles = once(benchmark, measure)
    print(f"\nwfi wait: {wfi_cycles} cycles, busy polling: "
          f"{polling_cycles} cycles")
    # polling contends with the OCP's bursts on the shared bus
    assert polling_cycles >= wfi_cycles
    benchmark.extra_info.update(
        {"wfi": wfi_cycles, "polling": polling_cycles}
    )
