"""[T1] Table I: Lat. / HW / SW / Gain for the IDCT and DFT.

Paper values (cycles, Linux, interrupt mode):

====== ===== ===== ======== =====
        Lat.   HW       SW   Gain
IDCT      18  3000     5000  1.67
DFT     2485  7000  600.10^3   85
====== ===== ===== ======== =====

We assert the reproduced *shape*: latencies exact (they are calibrated
architecture constants), HW cycle counts within a band of the paper's,
hardware winning on both rows, and the DFT gain two orders of magnitude
above the IDCT gain.  The absolute SW-DFT count lands ~2.5x above the
paper's (see EXPERIMENTS.md for the bracket discussion), so the gain is
asserted as a bracket, not an exact 85.
"""

from conftest import once

from repro.analysis import render_table_one, table_one


def test_table_one_reproduction(benchmark):
    rows = once(benchmark, lambda: table_one(dft_points=256,
                                             environment="linux"))
    idct, dft = rows
    print()
    print(render_table_one(rows))

    # Lat. column: exact (calibrated constants from the paper)
    assert idct.lat == 18
    assert dft.lat == 2485

    # HW column: paper 3000 / 7000
    assert 2500 <= idct.hw <= 4000
    assert 6000 <= dft.hw <= 8000

    # SW column: paper 5000 / 600k (direct DFT lands 1-2M on our ISS)
    assert 4000 <= idct.sw <= 7000
    assert 400_000 <= dft.sw <= 2_500_000

    # Gain column: paper 1.67 / 85
    assert 1.2 <= idct.gain <= 2.3
    assert 50 <= dft.gain <= 350
    assert dft.gain / idct.gain > 30  # two-orders-of-magnitude split

    benchmark.extra_info["idct"] = {
        "lat": idct.lat, "hw": idct.hw, "sw": idct.sw,
        "gain": round(idct.gain, 2),
    }
    benchmark.extra_info["dft"] = {
        "lat": dft.lat, "hw": dft.hw, "sw": dft.sw,
        "gain": round(dft.gain, 2),
    }


def test_table_one_fft_software_ablation(benchmark):
    """Even against the best software (radix-2 FFT), hardware wins."""
    rows = once(benchmark, lambda: table_one(
        dft_points=256, environment="linux", sw_dft_algorithm="fft"))
    dft = rows[1]
    print(f"\nDFT vs software FFT: HW {dft.hw}, SW {dft.sw}, "
          f"gain {dft.gain:.1f}")
    assert dft.gain > 3.0
    benchmark.extra_info["gain_vs_fft"] = round(dft.gain, 2)
