"""[A7] MPSoC scaling and the Zynq port.

Section II-A on Molen: "it requires one accelerator per processor,
making it inefficient in MultiProcessor System on Chips (MPSoC)".
Ouessant OCPs are ordinary bus peripherals, so a single-CPU system can
host several and run them concurrently.  This bench scales the number
of OCPs sharing one AHB and measures aggregate throughput; the Zynq
comparison quantifies the future-work AXI4 port.
"""

from conftest import once

from repro.core.program import OuProgram
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.rac.scale import PassthroughRac
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp
from repro.zynq import ZynqSoC

WORDS = 256


def _boot(soc, ocp, prog_addr, in_addr, out_addr, program):
    soc.write_ram(prog_addr, program.words())
    for bank, base in {0: prog_addr, 1: in_addr, 2: out_addr}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)


def _concurrent_run(n_ocps: int) -> float:
    """Cycles until all OCPs finish one 256-word loopback each."""
    racs = [PassthroughRac(name=f"loop{i}", block_size=WORDS,
                           fifo_depth=128, compute_latency=100)
            for i in range(n_ocps)]
    soc = SoC(racs=racs)
    program = (OuProgram().stream_to(1, WORDS, chunk=64).execs()
               .stream_from(2, WORDS, chunk=64).eop())
    for index, ocp in enumerate(soc.ocps):
        base = RAM_BASE + 0x10_0000 * (index + 1)
        soc.write_ram(base + 0x1000, list(range(WORDS)))
        _boot(soc, ocp, base, base + 0x1000, base + 0x4000, program)
    soc.run_until(lambda: all(o.done for o in soc.ocps),
                  max_cycles=1_000_000)
    for index, ocp in enumerate(soc.ocps):
        base = RAM_BASE + 0x10_0000 * (index + 1)
        assert soc.read_ram(base + 0x4000, WORDS) == list(range(WORDS))
    return soc.sim.cycle


def test_multiple_ocps_share_one_bus(benchmark):
    def sweep():
        return {n: _concurrent_run(n) for n in (1, 2, 4)}

    results = once(benchmark, sweep)
    print()
    for n, cycles in sorted(results.items()):
        throughput = n * 2 * WORDS / cycles
        print(f"  {n} OCP(s): {cycles:>6.0f} cycles "
              f"({throughput:.2f} words/cycle aggregate)")
        benchmark.extra_info[f"ocps{n}"] = cycles

    # running 4 operations concurrently beats 4x serial: compute
    # latencies overlap, and the shared bus becomes the limit (~0.85
    # words/cycle aggregate, approaching the 1 word/cycle AHB ceiling)
    assert results[4] < 3.3 * results[1]
    throughputs = {n: n * 2 * WORDS / cycles
                   for n, cycles in results.items()}
    assert throughputs[1] < throughputs[2] < throughputs[4]


def test_zynq_port_comparison(benchmark, q15_signal):
    """The announced Zynq/AXI4 port vs the Leon3/AHB original."""
    from repro.core.program import figure4_program

    def measure():
        n = 256
        out = {}
        for name, soc in (
            ("Leon3/AHB", SoC(racs=[DFTRac(n_points=n)])),
            ("Zynq/AXI4", ZynqSoC(racs=[DFTRac(n_points=n)])),
        ):
            re, im = q15_signal(n)
            in_addr = RAM_BASE + 0x2000
            out_addr = RAM_BASE + 0x8000
            soc.write_ram(in_addr, fp.interleave_complex(re, im))
            _boot(soc, soc.ocp, RAM_BASE + 0x1000, in_addr, out_addr,
                  figure4_program(n))
            cycles = soc.run_until(lambda: soc.ocp.done,
                                   max_cycles=500_000)
            spectrum = fp.deinterleave_complex(
                soc.read_ram(out_addr, 2 * n))
            assert spectrum == fp.fft_q15(re, im)
            out[name] = cycles
        return out

    results = once(benchmark, measure)
    print()
    for name, cycles in results.items():
        print(f"  {name:<11} {cycles} cycles")
        benchmark.extra_info[name] = cycles
    # identical results; comparable performance despite DDR latency and
    # the PS/PL bridge -- the port is viable, as the paper anticipated
    assert results["Zynq/AXI4"] < results["Leon3/AHB"] * 1.25


def test_throughput_scheduler_scaling(benchmark):
    """Aggregate ops/sec of the job scheduler from 1 to 8 OCPs.

    The scale-out claim the scheduler subsystem commits to: with
    compute-bound jobs, aggregate throughput at 8 coprocessors behind
    one arbiter is at least 5x the single-OCP baseline.  The sweep is
    merged into the ``BENCH_simulator.json`` artifact (path overridable
    via ``REPRO_BENCH_OUT``) for the CI schema gate.
    """
    import os

    from repro.bench import merge_mpsoc_into_report, run_mpsoc_sweep

    def sweep():
        return run_mpsoc_sweep(n_jobs=64, ocp_counts=(1, 2, 4, 8))

    result = once(benchmark, sweep)
    print()
    for point in result.points:
        print(f"  {point.ocps} OCP(s): {point.cycles:>7} cycles, "
              f"{point.ops_per_sec:>12.0f} ops/s, "
              f"{point.speedup_vs_1:.2f}x, "
              f"util {100 * point.utilization:.0f}%")
        benchmark.extra_info[f"sched_ocps{point.ocps}"] = point.cycles

    by_ocps = {point.ocps: point for point in result.points}
    assert by_ocps[1].speedup_vs_1 == 1.0
    # monotone scaling, and the committed 5x floor at 8 OCPs
    assert (by_ocps[1].ops_per_sec < by_ocps[2].ops_per_sec
            < by_ocps[4].ops_per_sec < by_ocps[8].ops_per_sec)
    assert by_ocps[8].speedup_vs_1 >= 5.0

    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_simulator.json")
    if os.path.exists(out):
        merge_mpsoc_into_report(out, result)
