"""[F4] Figure 4: the published DFT microcode, assembled and executed.

The paper's only listed program: eight ``mvtc BANK1,k*64,DMA64,FIFO0``,
``execs``, eight ``mvfc BANK2,k*64,DMA64,FIFO0``, ``eop``.  We assemble
the literal text, run it against the DFT RAC, and verify both the
results and the controller's instruction accounting.
"""

from conftest import once

from repro.core.assembler import assemble_microcode
from repro.core.program import figure4_program
from repro.core.registers import CTRL_IE, CTRL_S, REG_BANK_BASE, REG_CTRL, REG_PROG_SIZE
from repro.rac.dft import DFTRac
from repro.system import RAM_BASE, SoC
from repro.utils import fixedpoint as fp

FIGURE4_TEXT = "\n".join(
    [f"mvtc BANK1,{64 * k},DMA64,FIFO0" for k in range(8)]
    + ["execs"]
    + [f"mvfc BANK2,{64 * k},DMA64,FIFO0" for k in range(8)]
    + ["eop"]
)

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x4000


def _run_figure4(q15_signal):
    n = 256
    words = assemble_microcode(FIGURE4_TEXT)
    soc = SoC(racs=[DFTRac(n_points=n)])
    re, im = q15_signal(n)
    soc.write_ram(IN, fp.interleave_complex(re, im))
    soc.write_ram(PROG, words)
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(words))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    cycles = soc.run_until(lambda: ocp.done, max_cycles=100_000)
    out = fp.deinterleave_complex(soc.read_ram(OUT, 2 * n))
    return soc, cycles, (re, im), out


def test_figure4_microcode_runs_verbatim(benchmark, q15_signal):
    soc, cycles, (re, im), out = once(
        benchmark, lambda: _run_figure4(q15_signal))
    assert out == fp.fft_q15(re, im)
    stats = soc.ocp.controller.stats
    print(f"\nFigure 4 program: {stats['instructions']} instructions, "
          f"{cycles} cycles")
    assert stats["instructions"] == 18
    assert stats["instr.mvtc"] == 8
    assert stats["instr.mvfc"] == 8
    assert stats["instr.execs"] == 1
    assert stats["instr.eop"] == 1
    assert stats["words_to_rac"] == 512
    assert stats["words_from_rac"] == 512
    # the in-text baremetal figure: ~4000 cycles start-to-done
    assert 3000 <= cycles <= 5000
    benchmark.extra_info["cycles"] = cycles


def test_figure4_text_equals_builder(benchmark):
    words = once(benchmark, lambda: assemble_microcode(FIGURE4_TEXT))
    assert words == figure4_program(256).words()
    assert len(words) == 18
