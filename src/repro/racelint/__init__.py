"""racelint -- static cross-OCP concurrency-hazard analysis.

Takes a planned job stream plus a multi-OCP SoC (live scheduler or
pre-elaboration plan) and reports, before a single simulated cycle,
which jobs can race: may-happen-in-parallel footprint overlaps
(``OU200``/``OU201``), DMA aliasing (``OU202``), unboundable
footprints (``OU203``), arenas outside RAM (``OU204``) and hazards
introduced purely by batch concatenation (``OU205``).

Entry points:

* :func:`check_stream` -- one-shot analysis of a whole stream,
  mirroring :func:`repro.soclint.lint_soc`'s report/JSON/suppression
  shape;
* :class:`RaceChecker` -- the incremental core, driven per submission
  by :class:`~repro.sched.scheduler.ThroughputScheduler` when
  ``racecheck=`` is enabled;
* :class:`StreamModel` / :class:`SlotPlan` -- the placement model.
"""

from .engine import ProgramFactory, RaceChecker, check_stream
from .model import ARENA_REGION_BYTES, SlotPlan, StreamModel

__all__ = [
    "ARENA_REGION_BYTES",
    "ProgramFactory",
    "RaceChecker",
    "SlotPlan",
    "StreamModel",
    "check_stream",
]
