"""Cross-OCP concurrency-hazard analysis for scheduled job streams.

Per job, the engine derives an absolute byte-range *footprint* for
every OCP the job can be resident on, by resolving the microcode
footprint hulls (:func:`repro.verify.footprint.program_footprint`)
against that slot's arena bases -- plus the ranges the *dispatcher*
touches on the job's behalf: the staged program and input images and
the slot's CTRL/perf register window.

Two jobs **may happen in parallel** (MHP) iff they can be resident on
*different* OCPs with no order edge between them: jobs of the same
chain are pinned to one slot (ordered), and two jobs whose only
candidate is the same single slot are serialized by that slot's queue.
Neither fairness policy (round-robin, shortest-queue) restricts the
relation -- under back-pressure either can pick any serving slot.

For every MHP pair the engine intersects the placements' footprints:

* write/write overlap  -> ``OU200`` (last writer wins),
* read/write overlap   -> ``OU201`` (the read races the write),
* an armed DMA window aliasing a footprint -> ``OU202``,
* an unboundable footprint -> ``OU203`` (refuse to certify),
* an arena range outside every RAM region -> ``OU204``.

With ``batch_jobs > 1`` footprints are *widened*: batching slides a
job to a cumulative offset inside the shared arenas, so its ranges
grow by the worst-case batch prefix.  A hazard that only exists under
the widened footprint additionally carries the ``OU205`` warning --
the batch concatenation, not the solo job, created the overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.program import OuProgram
from ..sched.batch import IN_BANK, OUT_BANK, PROG_BANK, job_program
from ..sched.capability import CapabilityTable
from ..sched.job import Job
from ..sched.scheduler import ARENA_WORDS
from ..verify.diagnostics import Finding, VerifyReport, make_finding
from ..verify.footprint import ByteRange, program_footprint
from .model import SlotPlan, StreamModel

#: builds the microcode racelint analyzes for one job (offset 0: the
#: widening below accounts for batch-relative placement)
ProgramFactory = Callable[[Job, int], OuProgram]


def _default_program(job: Job, chunk: int) -> OuProgram:
    return job_program(job, 0, 0, chunk=chunk)


@dataclass(frozen=True)
class _Range:
    """One footprint byte range with its access roles.

    ``device`` marks ranges that legitimately live outside RAM (the
    OCP register window) and are exempt from arena containment.
    """

    span: ByteRange
    reads: bool
    writes: bool
    device: bool = False


@dataclass(frozen=True)
class _Placement:
    """A job's resolved footprint on one candidate slot."""

    job_id: str
    slot: int
    ranges: Tuple[_Range, ...]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // max(1, b))


class RaceChecker:
    """Incremental hazard checker over one :class:`StreamModel`.

    The scheduler's ``racecheck=`` mode drives :meth:`check_submit`
    per submission; :func:`check_stream` drives the same machinery
    over every pair of a whole planned stream.
    """

    def __init__(
        self,
        model: StreamModel,
        program_factory: Optional[ProgramFactory] = None,
    ) -> None:
        self.model = model
        self._factory: ProgramFactory = (
            program_factory or _default_program
        )
        self._placements: Dict[
            Tuple[str, int, bool], Optional[_Placement]
        ] = {}
        self._unresolved: Dict[str, str] = {}
        self._candidates: Dict[str, Tuple[int, ...]] = {}
        self._chain_first: Dict[str, Tuple[int, ...]] = {}
        self._solo_checked: Set[str] = set()

    # -- placement construction -------------------------------------------
    def candidates(self, job: Job) -> Tuple[int, ...]:
        """Feasible slots, narrowed by chain pinning when known."""
        cached = self._candidates.get(job.job_id)
        if cached is not None:
            return cached
        feasible = self.model.candidate_slots(job)
        if job.chain is not None:
            first = self._chain_first.get(job.chain)
            if first is None:
                # this job opens the chain: later members are pinned
                # to whichever of these slots the scheduler picks
                self._chain_first[job.chain] = feasible
            else:
                narrowed = tuple(s for s in feasible if s in first)
                if narrowed:
                    feasible = narrowed
        self._candidates[job.job_id] = feasible
        return feasible

    def _widen_words(self, job: Job, slot: SlotPlan) -> int:
        if self.model.batch_jobs <= 1:
            return 0
        by_arena = ARENA_WORDS - job.size
        by_batch = (self.model.batch_jobs - 1) * slot.max_job_words
        return max(0, min(by_arena, by_batch))

    def _prog_words(self, program: OuProgram, slot: SlotPlan,
                    widened: bool) -> int:
        solo = len(program.instructions)
        if not widened or self.model.batch_jobs <= 1:
            return solo
        per_job = 2 * _ceil_div(slot.max_job_words,
                                self.model.chunk) + 1
        return min(ARENA_WORDS,
                   self.model.batch_jobs * per_job + 1)

    def placement(self, job: Job, slot_index: int,
                  widened: bool) -> Optional[_Placement]:
        """Resolve ``job``'s footprint on ``slot_index`` (cached).

        Returns ``None`` when the footprint cannot be bounded or a
        bank cannot be resolved; the reason is reported once per job
        through :meth:`_check_solo` (OU203).
        """
        key = (job.job_id, slot_index, widened)
        if key in self._placements:
            return self._placements[key]
        slot = self.model.slots[slot_index]
        program = self._factory(job, self.model.chunk)
        footprint = program_footprint(program.instructions)
        placement: Optional[_Placement] = None
        if not footprint.bounded:
            self._unresolved.setdefault(
                job.job_id,
                "the interval interpreter cannot bound the job "
                "program's footprint (unstructured control flow)",
            )
        else:
            bases = {PROG_BANK: slot.prog_base, IN_BANK: slot.in_base,
                     OUT_BANK: slot.out_base}
            unresolved = [b for b in footprint.banks()
                          if b not in bases]
            if unresolved:
                self._unresolved.setdefault(
                    job.job_id,
                    f"the job program transfers through bank "
                    f"{unresolved[0]}, which the scheduler does not "
                    "configure",
                )
            else:
                placement = self._build_placement(
                    job, slot, program, footprint, widened, bases)
        self._placements[key] = placement
        return placement

    def _build_placement(
        self,
        job: Job,
        slot: SlotPlan,
        program: OuProgram,
        footprint: Any,
        widened: bool,
        bases: Dict[int, int],
    ) -> _Placement:
        widen = self._widen_words(job, slot) if widened else 0
        ranges: List[_Range] = []

        def data_span(bank: int, lo: int, hi: int,
                      label: str) -> ByteRange:
            base = bases[bank]
            return ByteRange(base + 4 * lo,
                             base + 4 * (hi + widen) + 4, label)

        for bank in footprint.banks():
            hull = footprint.reads.get(bank)
            if hull is not None:
                ranges.append(_Range(
                    data_span(bank, int(hull.lo), int(hull.hi),
                              f"job {job.job_id} bank{bank} read"),
                    reads=True, writes=False,
                ))
            hull = footprint.writes.get(bank)
            if hull is not None:
                ranges.append(_Range(
                    data_span(bank, int(hull.lo), int(hull.hi),
                              f"job {job.job_id} bank{bank} write"),
                    reads=False, writes=True,
                ))
        # dispatcher-side ranges: the staged program image (written at
        # dispatch, fetched by the controller), the staged input words
        # and the slot's CTRL/perf register window
        prog_bytes = 4 * self._prog_words(program, slot, widened)
        ranges.append(_Range(
            ByteRange(slot.prog_base, slot.prog_base + prog_bytes,
                      f"job {job.job_id} staged program"),
            reads=True, writes=True,
        ))
        ranges.append(_Range(
            ByteRange(slot.in_base,
                      slot.in_base + 4 * (job.size + widen),
                      f"job {job.job_id} staged inputs"),
            reads=False, writes=True,
        ))
        ranges.append(_Range(
            ByteRange(slot.reg_base, slot.reg_base + slot.reg_bytes,
                      f"ocp{slot.index} registers"),
            reads=True, writes=True, device=True,
        ))
        return _Placement(job.job_id, slot.index, tuple(ranges))

    # -- per-job (solo) checks --------------------------------------------
    def _check_solo(self, job: Job,
                    findings: List[Finding]) -> None:
        if job.job_id in self._solo_checked:
            return
        self._solo_checked.add(job.job_id)
        slots = self.candidates(job)
        resolved = False
        for index in slots:
            placed = self.placement(job, index, widened=True)
            if placed is None:
                continue
            resolved = True
            self._check_arena(job, placed, findings)
            self._check_dma(job, placed, findings)
        if not resolved:
            reason = self._unresolved.get(
                job.job_id, "the job footprint could not be resolved")
            findings.append(make_finding(
                "OU203", None, reason, where=f"job {job.job_id}"))

    def _check_arena(self, job: Job, placed: _Placement,
                     findings: List[Finding]) -> None:
        for entry in placed.ranges:
            if entry.device:
                continue
            if not self.model.in_ram(entry.span):
                findings.append(make_finding(
                    "OU204", None,
                    f"arena range {entry.span} is not contained in "
                    "any RAM region of the memory map",
                    where=f"job {job.job_id}@ocp{placed.slot}",
                ))
                return

    def _check_dma(self, job: Job, placed: _Placement,
                   findings: List[Finding]) -> None:
        for window in self.model.dma_writes:
            for entry in placed.ranges:
                if window.overlaps(entry.span):
                    findings.append(make_finding(
                        "OU202", None,
                        f"armed DMA window {window} overlaps "
                        f"{entry.span}",
                        where=f"job {job.job_id}@ocp{placed.slot}",
                    ))
                    return
        for window in self.model.dma_reads:
            for entry in placed.ranges:
                if entry.writes and window.overlaps(entry.span):
                    findings.append(make_finding(
                        "OU202", None,
                        f"armed DMA window {window} reads bytes "
                        f"written by {entry.span}",
                        where=f"job {job.job_id}@ocp{placed.slot}",
                    ))
                    return

    # -- pairwise MHP checks ----------------------------------------------
    @staticmethod
    def _overlap(
        pa: _Placement, pb: _Placement,
    ) -> Tuple[Optional[Tuple[_Range, _Range]],
               Optional[Tuple[_Range, _Range]]]:
        """First write/write and read/write overlapping range pairs."""
        ww: Optional[Tuple[_Range, _Range]] = None
        rw: Optional[Tuple[_Range, _Range]] = None
        for ra in pa.ranges:
            for rb in pb.ranges:
                if not ra.span.overlaps(rb.span):
                    continue
                if ra.writes and rb.writes:
                    ww = ww or (ra, rb)
                elif ra.writes or rb.writes:
                    rw = rw or (ra, rb)
        return ww, rw

    def check_pair(self, a: Job, b: Job,
                   findings: List[Finding]) -> None:
        """Flag hazards between two jobs if they may run in parallel."""
        if a.job_id == b.job_id:
            return
        if a.chain is not None and a.chain == b.chain:
            return  # chain pinning serializes the pair on one slot
        where = f"jobs {a.job_id}/{b.job_id}"
        hit_ww: Optional[str] = None
        hit_rw: Optional[str] = None
        widened_only = False
        for sa in self.candidates(a):
            for sb in self.candidates(b):
                if sa == sb:
                    continue  # same slot: the queue serializes them
                pa = self.placement(a, sa, widened=True)
                pb = self.placement(b, sb, widened=True)
                if pa is None or pb is None:
                    continue  # OU203 is reported by the solo check
                ww, rw = self._overlap(pa, pb)
                if ww is not None and hit_ww is None:
                    hit_ww = (
                        f"may run concurrently on ocp{sa}/ocp{sb}: "
                        f"{ww[0].span} overlaps {ww[1].span}"
                    )
                    widened_only = widened_only or self._widened_only(
                        a, b, sa, sb)
                if rw is not None and hit_rw is None:
                    hit_rw = (
                        f"may run concurrently on ocp{sa}/ocp{sb}: "
                        f"{rw[0].span} overlaps {rw[1].span}"
                    )
                    widened_only = widened_only or self._widened_only(
                        a, b, sa, sb)
            if hit_ww and hit_rw:
                break
        if hit_ww:
            findings.append(
                make_finding("OU200", None, hit_ww, where=where))
        if hit_rw:
            findings.append(
                make_finding("OU201", None, hit_rw, where=where))
        if (hit_ww or hit_rw) and widened_only:
            findings.append(make_finding(
                "OU205", None,
                "the overlap only arises under batch concatenation "
                f"(batch_jobs={self.model.batch_jobs} widens the "
                "jobs' arena offsets); the solo footprints are "
                "disjoint",
                where=where,
            ))

    def _widened_only(self, a: Job, b: Job, sa: int,
                      sb: int) -> bool:
        if self.model.batch_jobs <= 1:
            return False
        pa = self.placement(a, sa, widened=False)
        pb = self.placement(b, sb, widened=False)
        if pa is None or pb is None:
            return False
        ww, rw = self._overlap(pa, pb)
        return ww is None and rw is None

    # -- entry points -----------------------------------------------------
    def check_submit(self, job: Job,
                     pending: Iterable[Job]) -> List[Finding]:
        """Hazards introduced by submitting ``job`` now.

        ``pending`` is every job already submitted but not yet
        completed (queued or in flight); completed jobs' outputs are
        harvested, so later overlaps with their arenas are harmless.
        """
        findings: List[Finding] = []
        self._check_solo(job, findings)
        for other in pending:
            self.check_pair(job, other, findings)
        return findings

    def check_all(self, jobs: Sequence[Job],
                  report: VerifyReport) -> None:
        """Check a whole planned stream, every unordered pair once."""
        for job in jobs:
            self._check_solo(job, report.findings)
        for i, a in enumerate(jobs):
            for b in jobs[i + 1:]:
                self.check_pair(a, b, report.findings)


def check_stream(
    jobs: Sequence[Job],
    scheduler: Optional[Any] = None,
    racs: Optional[Sequence[Any]] = None,
    capability: Optional[CapabilityTable] = None,
    batch_jobs: int = 1,
    chunk: int = 64,
    arena_base: Optional[int] = None,
    arena_stride: Optional[int] = None,
    model: Optional[StreamModel] = None,
    program_factory: Optional[ProgramFactory] = None,
    suppress: Iterable[str] = (),
) -> VerifyReport:
    """Statically check a planned job stream for concurrency hazards.

    The target system is given either as a live ``scheduler`` (model
    extracted, arena/batching parameters inherited), a planned ``racs``
    list (pre-elaboration geometry, see
    :meth:`StreamModel.from_plan`), or an explicit ``model``.
    Returns a :class:`~repro.verify.diagnostics.VerifyReport` whose
    OU200--OU219 findings carry ``where`` labels naming the involved
    jobs; exit semantics, suppression and JSON match soclint.
    """
    if model is None:
        if scheduler is not None:
            model = StreamModel.from_scheduler(scheduler)
        elif racs is not None:
            model = StreamModel.from_plan(
                racs, capability=capability, batch_jobs=batch_jobs,
                chunk=chunk, arena_base=arena_base,
                arena_stride=arena_stride,
            )
        else:
            raise ValueError(
                "check_stream needs a scheduler, a racs list or a "
                "StreamModel")
    checker = RaceChecker(model, program_factory=program_factory)
    report = VerifyReport()
    checker.check_all(list(jobs), report)
    report.sort()
    report.apply_suppressions(suppress)
    return report
