"""Static model of a scheduled job stream's placement possibilities.

:class:`StreamModel` captures everything the concurrency analyzer
needs to know about *where* a job's bytes can land, without running a
single cycle:

* one :class:`SlotPlan` per OCP the capability table can route to --
  its arena bases (the scheduler's program/input/output staging
  regions), its register window and its feasibility limits (RAC
  appetite, output-FIFO depth);
* the capability table itself (kind -> serving OCP indices);
* the batching degree (``batch_jobs``) that widens per-job arena
  offsets;
* the RAM regions arenas must live in, and any armed DMA windows.

A model is extracted either from a live
:class:`~repro.sched.scheduler.ThroughputScheduler`
(:meth:`StreamModel.from_scheduler`) or from a *planned* SoC -- a RAC
list plus the default memory-map layout, before any elaboration
(:meth:`StreamModel.from_plan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.coprocessor import OuessantCoprocessor
from ..sched.capability import CapabilityTable
from ..sched.job import Job
from ..sched.scheduler import (
    ARENA_WORDS,
    SCHED_ARENA_BASE_OFFSET,
    SCHED_ARENA_STRIDE,
)
from ..sim.errors import ConfigurationError
from ..verify.footprint import ByteRange

#: byte size of each per-slot arena region (program, input, output)
ARENA_REGION_BYTES = 4 * ARENA_WORDS


@dataclass(frozen=True)
class SlotPlan:
    """Placement facts for one OCP the scheduler can dispatch to."""

    index: int
    kind: str
    appetite: int
    max_job_words: int
    prog_base: int
    in_base: int
    out_base: int
    reg_base: int
    reg_bytes: int

    def feasible(self, job: Job) -> bool:
        """Mirror of the scheduler's physical-fit test for ``job``."""
        return (job.size % max(1, self.appetite) == 0
                and job.size <= self.max_job_words)


def _rac_appetite(rac: Any) -> int:
    items_in = getattr(rac, "items_in", None)
    return int(items_in[0]) if items_in else 1


class StreamModel:
    """Slots, routing and memory geometry for one scheduled stream."""

    def __init__(
        self,
        slots: Mapping[int, SlotPlan],
        capability: CapabilityTable,
        batch_jobs: int = 1,
        chunk: int = 64,
        ram_ranges: Sequence[ByteRange] = (),
        dma_reads: Sequence[ByteRange] = (),
        dma_writes: Sequence[ByteRange] = (),
    ) -> None:
        if batch_jobs < 1:
            raise ConfigurationError("batch_jobs must be >= 1")
        self.slots: Dict[int, SlotPlan] = dict(slots)
        self.capability = capability
        self.batch_jobs = batch_jobs
        self.chunk = chunk
        self.ram_ranges: Tuple[ByteRange, ...] = tuple(ram_ranges)
        self.dma_reads: Tuple[ByteRange, ...] = tuple(dma_reads)
        self.dma_writes: Tuple[ByteRange, ...] = tuple(dma_writes)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_scheduler(cls, scheduler: Any) -> "StreamModel":
        """Extract the model from a live :class:`ThroughputScheduler`."""
        slots: Dict[int, SlotPlan] = {}
        for slot in scheduler.slots:
            rac = slot.ocp.rac
            slots[slot.index] = SlotPlan(
                index=slot.index,
                kind=str(rac.kind),
                appetite=_rac_appetite(rac),
                max_job_words=int(slot.max_job_words),
                prog_base=int(slot.prog_base),
                in_base=int(slot.in_base),
                out_base=int(slot.out_base),
                reg_base=int(slot.reg_base),
                reg_bytes=OuessantCoprocessor.WINDOW_BYTES,
            )
        soc = scheduler.soc
        from ..system import RAM_BASE
        ram = ByteRange(RAM_BASE, RAM_BASE + int(soc.memory.size_bytes),
                        "ram")
        dma_reads: List[ByteRange] = []
        dma_writes: List[ByteRange] = []
        if getattr(soc, "dma", None) is not None:
            from ..mem.dma import REG_COUNT, REG_DST, REG_SRC
            dma = soc.dma
            count = int(dma.read_word(REG_COUNT))
            if count > 0:
                src = int(dma.read_word(REG_SRC))
                dst = int(dma.read_word(REG_DST))
                dma_reads.append(
                    ByteRange(src, src + 4 * count, "dma source"))
                dma_writes.append(
                    ByteRange(dst, dst + 4 * count, "dma destination"))
        return cls(
            slots,
            scheduler.capability,
            batch_jobs=int(scheduler.batch_jobs),
            chunk=int(scheduler.chunk),
            ram_ranges=(ram,),
            dma_reads=dma_reads,
            dma_writes=dma_writes,
        )

    @classmethod
    def from_plan(
        cls,
        racs: Sequence[Any],
        capability: Optional[CapabilityTable] = None,
        batch_jobs: int = 1,
        chunk: int = 64,
        arena_base: Optional[int] = None,
        arena_stride: Optional[int] = None,
        ram_size: Optional[int] = None,
    ) -> "StreamModel":
        """Model a *planned* (unelaborated) SoC: a RAC list plus the
        default memory-map layout.

        Mirrors the geometry :func:`repro.system.build_mpsoc` and the
        scheduler would produce, so hazards are caught before spending
        any elaboration or simulation time.
        """
        from ..system import OCP_BASE, RAM_BASE, RAM_SIZE
        if not racs:
            raise ConfigurationError(
                "cannot model a stream with no planned RACs")
        base = (RAM_BASE + SCHED_ARENA_BASE_OFFSET
                if arena_base is None else arena_base)
        stride = (SCHED_ARENA_STRIDE if arena_stride is None
                  else arena_stride)
        kinds = [str(rac.kind) for rac in racs]
        if capability is None:
            table: Dict[str, List[int]] = {}
            for index, kind in enumerate(kinds):
                table.setdefault(kind, []).append(index)
            capability = CapabilityTable(table)
        slots: Dict[int, SlotPlan] = {}
        for index in capability.indices():
            if not 0 <= index < len(racs):
                raise ConfigurationError(
                    f"capability table routes to OCP {index}, but only "
                    f"{len(racs)} RAC(s) are planned"
                )
            rac = racs[index]
            arena = base + index * stride
            depth = int(rac.ports.fifo_depth)
            slots[index] = SlotPlan(
                index=index,
                kind=kinds[index],
                appetite=_rac_appetite(rac),
                max_job_words=min(depth, ARENA_WORDS),
                prog_base=arena,
                in_base=arena + ARENA_REGION_BYTES,
                out_base=arena + 2 * ARENA_REGION_BYTES,
                reg_base=(OCP_BASE
                          + index * OuessantCoprocessor.WINDOW_BYTES),
                reg_bytes=OuessantCoprocessor.WINDOW_BYTES,
            )
        size = RAM_SIZE if ram_size is None else ram_size
        ram = ByteRange(RAM_BASE, RAM_BASE + size, "ram")
        return cls(slots, capability, batch_jobs=batch_jobs,
                   chunk=chunk, ram_ranges=(ram,))

    # -- queries ----------------------------------------------------------
    def candidate_slots(self, job: Job) -> Tuple[int, ...]:
        """Slots ``job`` can be resident on (routing + physical fit).

        Neither scheduling policy (round-robin, shortest-queue)
        restricts this set: under back-pressure either policy can pick
        any serving slot with queue space, so the may-happen-in-
        parallel relation must consider them all.
        """
        out: List[int] = []
        for index in self.capability.serving(job.kind):
            slot = self.slots.get(index)
            if slot is not None and slot.feasible(job):
                out.append(index)
        if not out:
            raise ConfigurationError(
                f"job {job.job_id} ({job.kind}, {job.size} words) fits "
                "no serving OCP (size must be a multiple of the RAC "
                "block size and fit its output FIFO)"
            )
        return tuple(out)

    def in_ram(self, span: ByteRange) -> bool:
        return any(region.contains(span) for region in self.ram_ranges)
