"""perfbound: static cycle-cost & WCET analysis for Ouessant microcode.

Predicts what :mod:`repro.obs.attribution` measures: a sound
``[lo, hi]`` interval on total cycles and on the Fig.-4
transfer/compute/control decomposition, computed by running the
verifier's interval interpreter with a cost semantics.  Diagnostics
use the shared OU3xx catalog range.  See ``docs/ANALYSIS.md``.
"""

from .engine import CostBound, bound_cycles_hi, bound_program
from .model import BUCKETS, COMPUTE, CONTROL, CostModel, RacTiming, TRANSFER

__all__ = [
    "BUCKETS",
    "COMPUTE",
    "CONTROL",
    "CostBound",
    "CostModel",
    "RacTiming",
    "TRANSFER",
    "bound_cycles_hi",
    "bound_program",
]
