"""Cycle-cost model: per-instruction ``[lo, hi]`` cycle intervals.

The model mirrors the simulator's timing sources exactly:

* **Bus transactions.**  The bus grants one cycle after submit and the
  controller consumes the data on the finish cycle, so a transaction of
  ``c`` beats against a slave of latency ``L`` occupies the requesting
  FSM state for ``protocol.transfer_cycles(c, L) + 2`` cycles
  (submit tick + occupancy + consume tick), with back-to-back chunks.
* **Controller FSM.**  Every executed instruction costs one FETCH and
  one DECODE cycle (the execute action runs inside the decode tick);
  instructions past the prefetched instruction buffer pay a 1-beat bus
  fetch instead of the FETCH tick.
* **Transfer chunking.**  ``mvfc`` chunks deterministically
  (``min(remaining, max_burst_beats, fifo_depth)``); ``mvtc`` chunks by
  free FIFO space, so its best case is depth-sized chunks and its worst
  case is one word per transaction.
* **RAC contract.**  A :class:`~repro.rac.base.StreamingRAC` op spans at
  most ``collect + compute + emit`` progress ticks; the per-program
  stall ceiling multiplies that by the op-count upper bound.

Memory latency is a *contract interval*: bounds hold for any slave
latency within ``[mem_latency.lo, mem_latency.hi]``, which is how the
soundness suite exercises "stall-faulted" runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from ..bus.protocol import AHB, BusProtocol
from ..core.isa import (
    FROM_COPROCESSOR_OPS,
    OuInstruction,
    OuOp,
    TO_COPROCESSOR_OPS,
)
from ..rac.base import StreamingRAC
from ..verify.domain import INF, Interval

#: cost buckets, matching Fig. 4 / ``repro.obs.attribution``
TRANSFER = "transfer"
COMPUTE = "compute"
CONTROL = "control"
BUCKETS = (TRANSFER, COMPUTE, CONTROL)

#: submit tick + consume tick around every bus transaction's occupancy
TX_EDGE_CYCLES = 2

#: slack on one RAC operation's progress-tick ceiling (phase
#: transitions: collect->compute, compute fire, done->collect restart)
OP_SLACK_CYCLES = 4

#: run-level control slack: START dispatch + DONE edge + ibuf handoff
RUN_SLACK_CYCLES = 6


def tx_cycles(protocol: BusProtocol, beats: int, latency: int) -> int:
    """FSM cycles one bus transaction holds its requester."""
    return protocol.transfer_cycles(beats, latency) + TX_EDGE_CYCLES


def mvfc_chunks(count: int, protocol: BusProtocol, depth: int) -> List[int]:
    """The deterministic drain chunk sequence the controller issues."""
    chunks: List[int] = []
    remaining = count
    while remaining > 0:
        take = min(remaining, protocol.max_burst_beats, depth)
        chunks.append(take)
        remaining -= take
    return chunks


def mvtc_best_chunks(count: int, depth: int) -> List[int]:
    """Fill chunking when the FIFO is always maximally free."""
    chunks: List[int] = []
    remaining = count
    while remaining > 0:
        take = min(remaining, depth)
        chunks.append(take)
        remaining -= take
    return chunks


@dataclass(frozen=True)
class RacTiming:
    """Static timing contract of one streaming accelerator."""

    items_in: Sequence[int]
    items_out: Sequence[int]
    compute_latency: int
    input_rate: int
    output_rate: int
    fifo_depth: int

    @staticmethod
    def of(rac: StreamingRAC) -> "RacTiming":
        return RacTiming(
            items_in=tuple(rac.items_in),
            items_out=tuple(rac.items_out),
            compute_latency=rac.compute_latency,
            input_rate=rac.input_rate,
            output_rate=rac.output_rate,
            fifo_depth=rac.ports.fifo_depth,
        )

    @property
    def op_ticks(self) -> int:
        """Ceiling on one op's RAC progress ticks (collect..emit)."""
        collect = max(
            (ceil(n / self.input_rate) for n in self.items_in if n > 0),
            default=0,
        )
        emit = max(
            (ceil(n / self.output_rate) for n in self.items_out if n > 0),
            default=0,
        )
        return (collect + self.compute_latency + 1 + emit
                + OP_SLACK_CYCLES)


@dataclass(frozen=True)
class CostModel:
    """Everything the per-instruction cost function needs.

    ``mem_latency`` is the declared slave-latency contract; the
    produced bounds are sound for every latency inside it.
    """

    protocol: BusProtocol = field(default_factory=lambda: AHB)
    mem_latency: Interval = field(
        default_factory=lambda: Interval.point(1))
    rac: Optional[RacTiming] = None
    ibuf_size: int = 128
    prefetch: bool = True
    masters: int = 1

    def __post_init__(self) -> None:
        if self.mem_latency.lo < 0 or self.mem_latency.hi == INF:
            raise ValueError(
                "mem_latency must be a bounded non-negative interval")

    # -- per-site costs ---------------------------------------------------
    def _lat(self) -> Tuple[int, int]:
        return int(self.mem_latency.lo), int(self.mem_latency.hi)

    def fetch_decode_cost(self, index: int) -> Interval:
        """FETCH + DECODE cycles for the instruction at ``index``."""
        if self.prefetch and index < self.ibuf_size:
            return Interval.point(2)
        lo, hi = self._lat()
        # slow path: a 1-beat bus fetch replaces the FETCH tick
        return Interval(tx_cycles(self.protocol, 1, lo) + 1,
                        tx_cycles(self.protocol, 1, hi) + 1)

    def mvtc_cost(self, count: int) -> Interval:
        """XFER_TO cycles excluding FIFO-stall waits (pooled)."""
        depth = self.rac.fifo_depth if self.rac is not None else count
        lo_lat, hi_lat = self._lat()
        best = sum(tx_cycles(self.protocol, c, lo_lat)
                   for c in mvtc_best_chunks(count, depth))
        # worst chunking: one word of FIFO space per transaction
        worst = count * tx_cycles(self.protocol, 1, hi_lat)
        return Interval(best, max(best, worst))

    def mvfc_cost(self, count: int) -> Interval:
        """XFER_FROM cycles excluding FIFO-stall waits (pooled)."""
        depth = self.rac.fifo_depth if self.rac is not None else count
        lo_lat, hi_lat = self._lat()
        chunks = mvfc_chunks(count, self.protocol, depth)
        return Interval(
            sum(tx_cycles(self.protocol, c, lo_lat) for c in chunks),
            sum(tx_cycles(self.protocol, c, hi_lat) for c in chunks),
        )

    def exec_cost(self) -> Interval:
        """EXEC_WAIT cycles for a blocking ``exec``."""
        if self.rac is None:
            return Interval.point(1)
        return Interval(1, self.rac.op_ticks + TX_EDGE_CYCLES)

    def prefetch_cost(self, prog_size: int) -> Interval:
        """PREFETCH-state cycles for the initial microcode burst."""
        if not self.prefetch:
            return Interval.point(0)
        beats = min(prog_size, self.ibuf_size)
        lo, hi = self._lat()
        return Interval(tx_cycles(self.protocol, beats, lo),
                        tx_cycles(self.protocol, beats, hi))

    def instruction_cost(
        self, index: int, instr: OuInstruction
    ) -> Dict[str, Interval]:
        """Per-bucket cycle intervals charged when ``instr`` executes.

        Constant per program site, as :data:`repro.verify.absint.
        CostModelFn` requires, so loop acceleration stays exact.
        """
        control = self.fetch_decode_cost(index)
        cost = {CONTROL: control}
        op = instr.op
        if op in TO_COPROCESSOR_OPS:
            cost[TRANSFER] = self.mvtc_cost(instr.count)
        elif op in FROM_COPROCESSOR_OPS:
            cost[TRANSFER] = self.mvfc_cost(instr.count)
        elif op is OuOp.EXEC:
            cost[COMPUTE] = self.exec_cost()
        elif op is OuOp.WAIT:
            cost[CONTROL] = control.add_const(instr.imm)
        return cost

    # -- run-level costs --------------------------------------------------
    def stall_ceiling(self, ops_hi: Interval) -> Interval:
        """Upper bound on FIFO-stall cycles over the whole run.

        Every cycle the transfer engine stalls on a FIFO, the (single)
        streaming RAC is making progress on some operation; total RAC
        progress is at most ``ops * op_ticks``.
        """
        if self.rac is None:
            return Interval.point(0)
        if ops_hi.hi == INF:
            return Interval(0, INF)
        return Interval(0, int(ops_hi.hi) * self.rac.op_ticks)
