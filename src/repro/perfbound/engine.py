"""The cost analyzer: sound per-program cycle bounds (OU3xx).

:func:`bound_program` is the entry point.  It reuses the microcode
verifier's CFG builder and interval interpreter, attaching the
:class:`~repro.perfbound.model.CostModel` as the analyzer's cost hook,
so loop acceleration applies to cycle costs exactly as it does to FIFO
volumes.  The result is a :class:`CostBound`: a total-cycle interval
plus a Fig.-4-style transfer/compute/control decomposition, each a
``[lo, hi]`` interval the measured attribution must fall inside.

Soundness contract (enforced by ``tests/test_perfbound_soundness.py``):
for a program the microcode verifier reports clean, running to
completion on an exclusive bus whose memory latency lies inside the
declared ``mem_latency`` contract, the simulator-measured total cycles
and per-bucket attribution land inside the predicted intervals.
Programs the analyzer cannot bound soundly (``waitf`` on external
state, unstructured flow, unbounded volumes, a RAC without a streaming
timing contract) are *refused* with OU300 rather than mis-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Iterable, Optional, Sequence

from ..core.isa import (
    FROM_COPROCESSOR_OPS,
    OuInstruction,
    OuOp,
    TO_COPROCESSOR_OPS,
    TRANSFER_OPS,
)
from ..rac.base import RAC, StreamingRAC
from ..verify.absint import Analyzer
from ..verify.cfg import build_cfg
from ..verify.diagnostics import VerifyReport
from ..verify.domain import INF, Interval
from .model import (
    BUCKETS,
    COMPUTE,
    CONTROL,
    CostModel,
    RacTiming,
    RUN_SLACK_CYCLES,
    TRANSFER,
)

_UNBOUNDED = Interval(0, INF)


def _interval_json(value: Interval) -> Dict[str, object]:
    return {
        "lo": int(value.lo),
        "hi": None if value.hi == INF else int(value.hi),
    }


@dataclass(frozen=True)
class CostBound:
    """A sound cycle-cost certificate for one program.

    Every field is a closed interval: the simulator-measured quantity
    is guaranteed to fall inside it (see the module docstring for the
    exact contract).  ``bounded`` is False when the analyzer refused
    (OU300): the upper bounds are then infinite.
    """

    total: Interval
    transfer: Interval
    compute: Interval
    control: Interval
    ops: Interval
    report: VerifyReport

    @property
    def bounded(self) -> bool:
        return self.total.hi != INF

    @property
    def clean(self) -> bool:
        return self.report.clean

    def bucket(self, name: str) -> Interval:
        if name not in BUCKETS:
            raise KeyError(name)
        return getattr(self, name)

    def tightness(self) -> Optional[float]:
        """``hi / lo`` of the total bound (1.0 = exact), None if open."""
        if not self.bounded:
            return None
        if self.total.lo <= 0:
            return float(self.total.hi) if self.total.hi > 0 else 1.0
        return float(self.total.hi) / float(self.total.lo)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "bounded": self.bounded,
            "total": _interval_json(self.total),
            "attribution": {
                name: _interval_json(self.bucket(name))
                for name in BUCKETS
            },
            "ops": _interval_json(self.ops),
            "tightness": self.tightness(),
        }
        payload.update(self.report.to_json())
        return payload

    def render(self) -> str:
        def row(label: str, value: Interval) -> str:
            hi = "inf" if value.hi == INF else str(int(value.hi))
            return f"  {label:<10} [{int(value.lo)}, {hi}] cycles"

        status = "bounded" if self.bounded else "UNBOUNDED"
        lines = [f"cost bound [{status}]", row("total", self.total)]
        lines.extend(row(name, self.bucket(name)) for name in BUCKETS)
        ops_hi = ("inf" if self.ops.hi == INF else str(int(self.ops.hi)))
        lines.append(f"  ops        [{int(self.ops.lo)}, {ops_hi}]")
        tightness = self.tightness()
        if tightness is not None:
            lines.append(f"  tightness  {tightness:.2f}x (hi/lo)")
        findings = self.report.render()
        if findings:
            lines.append(findings)
        return "\n".join(lines)


def _refusal(report: VerifyReport) -> CostBound:
    return CostBound(
        total=_UNBOUNDED, transfer=_UNBOUNDED, compute=_UNBOUNDED,
        control=_UNBOUNDED, ops=_UNBOUNDED, report=report,
    )


def _needs_rac(program: Sequence[OuInstruction]) -> bool:
    return any(
        i.op in TRANSFER_OPS or i.op in (OuOp.EXEC, OuOp.EXECS)
        for i in program
    )


def _ops_interval(
    exit_pushed: Dict[int, Interval], timing: RacTiming
) -> Interval:
    """Bound the number of RAC operations the pushed volumes drive."""
    los = []
    his = []
    for port, need in enumerate(timing.items_in):
        if need <= 0:
            continue
        volume = exit_pushed.get(port, Interval.point(0))
        los.append(int(volume.lo) // need)
        if volume.hi == INF:
            his.append(INF)
        else:
            his.append(ceil(int(volume.hi) / need))
    if not his:
        return Interval.point(0)
    # completed ops are gated by the slowest port; started ops by the
    # fastest-filled one
    return Interval(min(los), max(his))


def bound_program(
    program: Sequence[OuInstruction],
    rac: Optional[RAC] = None,
    *,
    model: Optional[CostModel] = None,
    sla_cycles: Optional[int] = None,
    suppress: Optional[Iterable[str]] = None,
) -> CostBound:
    """Compute a sound cycle-cost bound for ``program``.

    Parameters
    ----------
    rac:
        The accelerator the program drives.  Required (and required to
        be a :class:`StreamingRAC`) when the program touches FIFOs or
        issues ``exec``/``execs``; its timing contract feeds the model
        unless ``model`` already carries one.
    model:
        Bus/latency/ibuf configuration; defaults to the simulator's
        defaults (AHB, memory latency 1, 128-word prefetched ibuf).
        ``model.rac`` is filled in from ``rac`` when absent.
    sla_cycles:
        When given, emit OU304 (error) if the worst-case total exceeds
        this budget -- the admission-time WCET rejection the scheduler
        uses.
    """
    report = VerifyReport()
    program = list(program)
    suppress = tuple(suppress or ())

    def done(bound: CostBound) -> CostBound:
        bound.report.sort()
        bound.report.apply_suppressions(suppress)
        return bound

    if not program:
        report.add("OU300", None, "empty program: nothing to bound")
        return done(_refusal(report))

    for index, instr in enumerate(program):
        if instr.op is OuOp.WAITF:
            report.add(
                "OU300", index,
                "waitf waits on runtime FIFO state; its duration has "
                "no static bound",
            )
            return done(_refusal(report))

    timing: Optional[RacTiming] = None
    if model is not None and model.rac is not None:
        timing = model.rac
    elif isinstance(rac, StreamingRAC):
        timing = RacTiming.of(rac)
    if _needs_rac(program) and timing is None:
        report.add(
            "OU300", None,
            "the program moves data or starts operations but no "
            "streaming timing contract is available for the RAC",
        )
        return done(_refusal(report))

    if model is None:
        model = CostModel(rac=timing)
    elif model.rac is None and timing is not None:
        model = CostModel(
            protocol=model.protocol, mem_latency=model.mem_latency,
            rac=timing, ibuf_size=model.ibuf_size,
            prefetch=model.prefetch, masters=model.masters,
        )

    if timing is not None:
        for index, instr in enumerate(program):
            if instr.op is OuOp.EXEC:
                blocked = [
                    port for port, out in enumerate(timing.items_out)
                    if out > timing.fifo_depth
                ]
                if blocked:
                    report.add(
                        "OU300", index,
                        f"exec waits for an op emitting "
                        f"{max(timing.items_out)} words through a "
                        f"{timing.fifo_depth}-deep FIFO no one drains "
                        "meanwhile: the wait has no static bound",
                    )
                    return done(_refusal(report))

    cfg = build_cfg(program)
    if not cfg.structured or cfg.acyclic_order() is None:
        report.add(
            "OU300", None,
            "control flow is not reducible to loop regions with "
            "static trip counts; cycle costs cannot be accelerated",
        )
        return done(_refusal(report))

    exit_state = Analyzer(cfg, model.instruction_cost).run()
    if exit_state is None:
        report.add("OU300", None,
                   "no terminator is abstractly reachable")
        return done(_refusal(report))

    transfer = exit_state.get_cost(TRANSFER)
    compute = exit_state.get_cost(COMPUTE)
    control = exit_state.get_cost(CONTROL)
    if INF in (transfer.hi, compute.hi, control.hi):
        report.add("OU300", None,
                   "a loop's cost could not be bounded")
        return done(_refusal(report))

    # run-level charges: microcode prefetch + start/done edges
    control = (control + model.prefetch_cost(len(program))
               + Interval(0, RUN_SLACK_CYCLES))

    ops = Interval.point(0)
    if timing is not None:
        ops = _ops_interval(exit_state.pushed, timing)
        if ops.hi == INF:
            report.add(
                "OU300", None,
                "pushed FIFO volumes are unbounded; the stall "
                "ceiling diverges",
            )
            return done(_refusal(report))
        transfer = transfer + model.stall_ceiling(ops)

    total = transfer + compute + control

    # -- advisory diagnostics --------------------------------------------
    if timing is not None:
        depth = timing.fifo_depth
        burst = model.protocol.max_burst_beats
        for index, instr in enumerate(program):
            if (instr.op in TO_COPROCESSOR_OPS
                    and instr.count > depth):
                report.add(
                    "OU301", index,
                    f"fill of {instr.count} words round-trips a "
                    f"{depth}-deep FIFO: at least "
                    f"{ceil(instr.count / depth)} transactions",
                )
            elif (instr.op in FROM_COPROCESSOR_OPS
                    and depth < min(instr.count, burst)):
                report.add(
                    "OU301", index,
                    f"drain of {instr.count} words is capped at "
                    f"{depth}-word chunks by the FIFO "
                    f"(bus bursts allow {burst})",
                )
    if control.lo > transfer.hi + compute.hi:
        report.add(
            "OU302", None,
            f"guaranteed control overhead ({int(control.lo)} cycles) "
            f"exceeds worst-case transfer + compute "
            f"({int(transfer.hi + compute.hi)} cycles)",
        )
    if model.masters > 1:
        report.add(
            "OU303", None,
            f"{model.masters} bus masters elaborated: the bound "
            "assumes exclusive bus ownership and does not cover "
            "contention",
        )
    if sla_cycles is not None and total.hi > sla_cycles:
        report.add(
            "OU304", None,
            f"worst-case total {int(total.hi)} cycles exceeds the "
            f"SLA budget of {sla_cycles}",
        )

    return done(CostBound(
        total=total, transfer=transfer, compute=compute,
        control=control, ops=ops, report=report,
    ))


def bound_cycles_hi(
    program: Sequence[OuInstruction],
    rac: Optional[RAC] = None,
    model: Optional[CostModel] = None,
) -> Optional[int]:
    """Worst-case cycle count, or None when the program is unbounded."""
    bound = bound_program(program, rac, model=model)
    return int(bound.total.hi) if bound.bounded else None
