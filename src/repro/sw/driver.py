"""Low-level Ouessant driver: register access and run sequencing.

This is the software side of Figure 3: the GPP "explicitly controls"
the OCP "with configuration and start/stop commands".  The driver
performs every register access as a real bus transaction (so
configuration overhead is measured, not assumed) and sequences:

1. write the bank base registers used by the microcode,
2. write PROG_SIZE,
3. set ``S`` (+ ``IE`` for interrupt mode),
4. wait for completion by polling ``D`` or sleeping until the IRQ,
5. acknowledge (clear ``S``).

The baremetal runtime uses it directly; the Linux model wraps each
driver entry point in syscall costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bus.types import AccessKind, BusRequest
from ..core.registers import (
    CTRL_D,
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from ..sim.errors import DriverError
from ..system import RAM_BASE, SoC

#: bus master name used for driver-originated accesses
DRIVER_MASTER = "cpu"


@dataclass
class RunResult:
    """Cycle accounting for one accelerated operation.

    All values are in system-clock cycles, measured on the simulator.
    """

    total_cycles: int
    config_cycles: int
    compute_cycles: int
    ack_cycles: int
    sw_overhead_cycles: int = 0
    notes: Dict[str, int] = field(default_factory=dict)

    @property
    def hardware_cycles(self) -> int:
        """Start-of-config to results-visible, excluding OS overhead."""
        return self.total_cycles - self.sw_overhead_cycles


class OuessantDriver:
    """Register-level driver for one OCP.

    Parameters
    ----------
    soc:
        The system; the driver issues bus transactions on its bus.
    ocp_index:
        Which coprocessor to drive.
    use_interrupt:
        Wait for the IRQ line instead of polling ``D`` (Table I was
        measured in "interrupt mode").
    """

    def __init__(
        self, soc: SoC, ocp_index: int = 0, use_interrupt: bool = True
    ) -> None:
        self.soc = soc
        self.ocp = soc.ocps[ocp_index]
        self.base = soc.ocp_base(ocp_index)
        self.use_interrupt = use_interrupt
        self.poll_count = 0

    # -- raw register access (cycle-accurate) -------------------------------
    def write_register(self, offset: int, value: int) -> int:
        """One register write over the bus; returns cycles consumed."""
        start = self.soc.sim.cycle
        transfer = self.soc.bus.submit(
            BusRequest(
                master=DRIVER_MASTER,
                kind=AccessKind.WRITE,
                address=self.base + offset,
                burst=1,
                data=[value & 0xFFFFFFFF],
                priority=0,
            )
        )
        self.soc.run_until(lambda: transfer.done, what="register write")
        return self.soc.sim.cycle - start

    def read_register(self, offset: int) -> "tuple[int, int]":
        """One register read; returns ``(value, cycles)``."""
        start = self.soc.sim.cycle
        transfer = self.soc.bus.submit(
            BusRequest(
                master=DRIVER_MASTER,
                kind=AccessKind.READ,
                address=self.base + offset,
                burst=1,
                priority=0,
            )
        )
        self.soc.run_until(lambda: transfer.done, what="register read")
        return transfer.data[0], self.soc.sim.cycle - start

    # -- program/data placement (application-owned memory) ------------------
    def place_program(self, words: List[int], address: int) -> None:
        """Store microcode at ``address`` in RAM (bank 0 target).

        The application owns this memory; placement happens before the
        measured window (microcode is written once and reused), so it
        uses the backdoor.
        """
        if address < RAM_BASE:
            raise DriverError(f"microcode address {address:#x} not in RAM")
        self.soc.write_ram(address, words)

    # -- run sequencing ---------------------------------------------------
    def configure(self, banks: Dict[int, int], prog_size: int) -> int:
        """Write bank bases + PROG_SIZE; returns cycles consumed."""
        if prog_size < 1:
            raise DriverError("empty program")
        cycles = 0
        for bank, addr in sorted(banks.items()):
            cycles += self.write_register(REG_BANK_BASE + 4 * bank, addr)
        cycles += self.write_register(REG_PROG_SIZE, prog_size)
        return cycles

    def start(self) -> int:
        """Set S (and IE in interrupt mode); returns cycles consumed."""
        ctrl = CTRL_S | (CTRL_IE if self.use_interrupt else 0)
        return self.write_register(REG_CTRL, ctrl)

    def wait_done(self, max_cycles: int = 5_000_000) -> int:
        """Block until the program signals completion; returns cycles.

        Interrupt mode sleeps until the IRQ line asserts; polling mode
        repeatedly reads CTRL until ``D`` is set (each poll is a real
        bus read, stealing bus bandwidth exactly like the classical
        integration style does).
        """
        start = self.soc.sim.cycle
        if self.use_interrupt:
            self.soc.run_until(
                lambda: self.ocp.irq.pending,
                max_cycles=max_cycles,
                what="OCP interrupt",
            )
            self.ocp.irq.clear()
        else:
            self.poll_count = 0
            while True:
                value, _ = self.read_register(REG_CTRL)
                self.poll_count += 1
                if value & CTRL_D:
                    break
                if self.soc.sim.cycle - start > max_cycles:
                    raise DriverError("poll timeout waiting for D")
        return self.soc.sim.cycle - start

    def acknowledge(self) -> int:
        """Clear S, releasing the controller back to idle."""
        return self.write_register(REG_CTRL, 0)

    def run_image(
        self, image_bytes: bytes, banks: Dict[int, int]
    ) -> RunResult:
        """Run a packed OUFW firmware image.

        The image is validated (magic, checksum, instruction stream)
        and its bank bitmap checked against ``banks`` before anything
        touches the hardware -- the loader discipline a shipped
        firmware format exists for.
        """
        from ..core.binary import unpack

        image = unpack(image_bytes)
        missing = [
            bank for bank in image.banks_referenced if bank not in banks
        ]
        if missing:
            raise DriverError(
                f"firmware references unconfigured banks {missing}"
            )
        return self.run(image.words, banks)

    def run(
        self,
        program_words: List[int],
        banks: Dict[int, int],
        program_address: Optional[int] = None,
    ) -> RunResult:
        """Full sequence: place microcode, configure, start, wait, ack.

        ``banks`` maps bank numbers to byte addresses; bank 0 is the
        microcode bank (defaulting to ``program_address``).
        """
        if program_address is None:
            program_address = banks.get(0)
        if program_address is None:
            raise DriverError("bank 0 (microcode) address required")
        all_banks = dict(banks)
        all_banks[0] = program_address
        self.place_program(program_words, program_address)

        begin = self.soc.sim.cycle
        config = self.configure(all_banks, len(program_words))
        config += self.start()
        compute = self.wait_done()
        ack = self.acknowledge()
        total = self.soc.sim.cycle - begin
        return RunResult(
            total_cycles=total,
            config_cycles=config,
            compute_cycles=compute,
            ack_cycles=ack,
        )
