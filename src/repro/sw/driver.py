"""Low-level Ouessant driver: register access and run sequencing.

This is the software side of Figure 3: the GPP "explicitly controls"
the OCP "with configuration and start/stop commands".  The driver
performs every register access as a real bus transaction (so
configuration overhead is measured, not assumed) and sequences:

1. write the bank base registers used by the microcode,
2. write PROG_SIZE,
3. set ``S`` (+ ``IE`` for interrupt mode),
4. wait for completion by polling ``D`` or sleeping until the IRQ,
5. acknowledge (clear ``S``).

The baremetal runtime uses it directly; the Linux model wraps each
driver entry point in syscall costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..bus.types import AccessKind, BusRequest
from ..core.registers import (
    CTRL_D,
    CTRL_E,
    CTRL_IE,
    CTRL_S,
    ERR_MASK,
    ERR_SHIFT,
    ERROR_NAMES,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from ..sim.errors import (
    DeadlockError,
    DriverError,
    DriverTimeout,
    OcpRunError,
)
from ..system import RAM_BASE, SoC

#: bus master name used for driver-originated accesses
DRIVER_MASTER = "cpu"


@dataclass
class RunResult:
    """Cycle accounting for one accelerated operation.

    All values are in system-clock cycles, measured on the simulator.
    """

    total_cycles: int
    config_cycles: int
    compute_cycles: int
    ack_cycles: int
    sw_overhead_cycles: int = 0
    notes: Dict[str, int] = field(default_factory=dict)

    @property
    def hardware_cycles(self) -> int:
        """Start-of-config to results-visible, excluding OS overhead."""
        return self.total_cycles - self.sw_overhead_cycles


@dataclass
class RecoveryResult:
    """Outcome of :meth:`OuessantDriver.run_with_recovery`.

    Either ``result`` holds the accounting of the attempt that finally
    succeeded on hardware, or ``degraded`` is True and
    ``fallback_value`` holds whatever the software fallback returned.
    """

    attempts: int
    degraded: bool
    result: Optional[RunResult] = None
    fallback_value: object = None
    faults: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when hardware succeeded after at least one retry."""
        return self.result is not None and self.attempts > 1


class OuessantDriver:
    """Register-level driver for one OCP.

    Parameters
    ----------
    soc:
        The system; the driver issues bus transactions on its bus.
    ocp_index:
        Which coprocessor to drive.
    use_interrupt:
        Wait for the IRQ line instead of polling ``D`` (Table I was
        measured in "interrupt mode").
    """

    def __init__(
        self, soc: SoC, ocp_index: int = 0, use_interrupt: bool = True
    ) -> None:
        self.soc = soc
        self.ocp = soc.ocps[ocp_index]
        self.base = soc.ocp_base(ocp_index)
        self.use_interrupt = use_interrupt
        self.poll_count = 0

    # -- raw register access (cycle-accurate) -------------------------------
    def write_register(self, offset: int, value: int) -> int:
        """One register write over the bus; returns cycles consumed."""
        start = self.soc.sim.cycle
        transfer = self.soc.bus.submit(
            BusRequest(
                master=DRIVER_MASTER,
                kind=AccessKind.WRITE,
                address=self.base + offset,
                burst=1,
                data=[value & 0xFFFFFFFF],
                priority=0,
            )
        )
        self.soc.run_until(lambda: transfer.done, what="register write")
        return self.soc.sim.cycle - start

    def read_register(self, offset: int) -> "tuple[int, int]":
        """One register read; returns ``(value, cycles)``."""
        start = self.soc.sim.cycle
        transfer = self.soc.bus.submit(
            BusRequest(
                master=DRIVER_MASTER,
                kind=AccessKind.READ,
                address=self.base + offset,
                burst=1,
                priority=0,
            )
        )
        self.soc.run_until(lambda: transfer.done, what="register read")
        return transfer.data[0], self.soc.sim.cycle - start

    # -- program/data placement (application-owned memory) ------------------
    def place_program(self, words: List[int], address: int) -> None:
        """Store microcode at ``address`` in RAM (bank 0 target).

        The application owns this memory; placement happens before the
        measured window (microcode is written once and reused), so it
        uses the backdoor.
        """
        if address < RAM_BASE:
            raise DriverError(f"microcode address {address:#x} not in RAM")
        self.soc.write_ram(address, words)

    # -- run sequencing ---------------------------------------------------
    def configure(self, banks: Dict[int, int], prog_size: int) -> int:
        """Write bank bases + PROG_SIZE; returns cycles consumed."""
        if prog_size < 1:
            raise DriverError("empty program")
        cycles = 0
        for bank, addr in sorted(banks.items()):
            cycles += self.write_register(REG_BANK_BASE + 4 * bank, addr)
        cycles += self.write_register(REG_PROG_SIZE, prog_size)
        return cycles

    def start(self) -> int:
        """Set S (and IE in interrupt mode); returns cycles consumed."""
        ctrl = CTRL_S | (CTRL_IE if self.use_interrupt else 0)
        return self.write_register(REG_CTRL, ctrl)

    def wait_done(self, max_cycles: int = 5_000_000) -> int:
        """Block until the program signals completion; returns cycles.

        Interrupt mode sleeps until the IRQ line asserts; polling mode
        repeatedly reads CTRL until ``D`` is set (each poll is a real
        bus read, stealing bus bandwidth exactly like the classical
        integration style does).

        Raises :class:`~repro.sim.errors.DriverTimeout` when the OCP
        does not complete within ``max_cycles``.
        """
        start = self.soc.sim.cycle
        if self.use_interrupt:
            try:
                self.soc.run_until(
                    lambda: self.ocp.irq.pending,
                    max_cycles=max_cycles,
                    what="OCP interrupt",
                )
            except DeadlockError as exc:
                raise DriverTimeout(str(exc)) from exc
            self.ocp.irq.clear()
        else:
            self.poll_count = 0
            while True:
                value, _ = self.read_register(REG_CTRL)
                self.poll_count += 1
                if value & CTRL_D:
                    break
                if self.soc.sim.cycle - start > max_cycles:
                    raise DriverTimeout(
                        f"poll timeout waiting for D after "
                        f"{max_cycles} cycles"
                    )
        return self.soc.sim.cycle - start

    def check_status(self) -> int:
        """Read CTRL and raise :class:`OcpRunError` if E is latched.

        Returns the cycles spent on the status read.  Called by
        :meth:`run` when ``check_status=True`` (the recovery path).
        """
        value, cycles = self.read_register(REG_CTRL)
        if value & CTRL_E:
            code = (value & ERR_MASK) >> ERR_SHIFT
            name = ERROR_NAMES.get(code, f"code{code}")
            raise OcpRunError(
                f"OCP run trapped with error {code} ({name})", code=code
            )
        return cycles

    def acknowledge(self) -> int:
        """Clear S, releasing the controller back to idle."""
        return self.write_register(REG_CTRL, 0)

    def abort(self) -> int:
        """Force a hung or trapped OCP back to idle; returns cycles.

        A real bus write clears S (the controller abort path); the
        coprocessor-level soft reset then drains the FIFO fabric and
        clears the RAC handshake, exactly what a dedicated reset line
        would do in hardware.
        """
        cycles = self.write_register(REG_CTRL, 0)
        self.ocp.soft_reset()
        self.ocp.irq.clear()
        self._trace("abort")
        return cycles

    def run_image(
        self, image_bytes: bytes, banks: Dict[int, int]
    ) -> RunResult:
        """Run a packed OUFW firmware image.

        The image is validated (magic, checksum, instruction stream)
        and its bank bitmap checked against ``banks`` before anything
        touches the hardware -- the loader discipline a shipped
        firmware format exists for.
        """
        from ..core.binary import unpack

        image = unpack(image_bytes)
        missing = [
            bank for bank in image.banks_referenced if bank not in banks
        ]
        if missing:
            raise DriverError(
                f"firmware references unconfigured banks {missing}"
            )
        return self.run(image.words, banks)

    def verify_microcode(
        self, program_words: List[int], banks: Dict[int, int]
    ):
        """Statically verify microcode against this system's layout.

        Decodes the instruction words and runs the full analyzer with
        the cross-layer contracts: the RAC actually hosted by this
        OCP, the configured bank set, and per-bank windows derived
        from the bus memory map.  Returns the
        :class:`~repro.verify.diagnostics.VerifyReport` (zero
        simulated cycles are consumed).
        """
        from ..core.encoding import decode
        from ..verify.contracts import bank_windows_from_map
        from ..verify.engine import verify_program

        program = [decode(word) for word in program_words]
        windows, findings = bank_windows_from_map(banks, self.soc.bus.memmap)
        report = verify_program(
            program,
            rac=self.ocp.rac,
            configured_banks=set(banks),
            bank_windows=windows,
        )
        report.findings.extend(findings)
        report.sort()
        return report

    def run(
        self,
        program_words: List[int],
        banks: Dict[int, int],
        program_address: Optional[int] = None,
        check_status: bool = False,
        max_wait_cycles: int = 5_000_000,
        verify: bool = False,
    ) -> RunResult:
        """Full sequence: place microcode, configure, start, wait, ack.

        ``banks`` maps bank numbers to byte addresses; bank 0 is the
        microcode bank (defaulting to ``program_address``).

        With ``check_status=True`` the driver reads CTRL back after
        completion and raises :class:`OcpRunError` if the controller
        trapped (an extra bus read, so it is off by default to keep
        the paper's measured sequence unchanged).

        With ``verify=True`` the microcode is first run through the
        static verifier (:meth:`verify_microcode`) and a
        :class:`DriverError` raised on any error finding -- a buggy
        program is rejected before it can hang the hardware.
        """
        if program_address is None:
            program_address = banks.get(0)
        if program_address is None:
            raise DriverError("bank 0 (microcode) address required")
        all_banks = dict(banks)
        all_banks[0] = program_address
        if verify:
            report = self.verify_microcode(program_words, all_banks)
            if not report.clean:
                raise DriverError(
                    "microcode failed static verification:\n"
                    + report.render()
                )
        self.place_program(program_words, program_address)

        begin = self.soc.sim.cycle
        self._trace("op.begin", op="run", words=len(program_words))
        config = self.configure(all_banks, len(program_words))
        config += self.start()
        compute = self.wait_done(max_cycles=max_wait_cycles)
        if check_status:
            compute += self.check_status()
        ack = self.acknowledge()
        total = self.soc.sim.cycle - begin
        self._trace("op.end", op="run", cycles=total)
        return RunResult(
            total_cycles=total,
            config_cycles=config,
            compute_cycles=compute,
            ack_cycles=ack,
        )

    # -- fault recovery ---------------------------------------------------
    def _trace(self, event: str, **data: object) -> None:
        """Record a driver-level event in the simulator trace."""
        sim = self.soc.sim
        sim.last_active = "driver"
        if sim.trace is not None:
            sim.trace.record(sim.cycle, "driver", event, data)

    def run_with_recovery(
        self,
        program_words: List[int],
        banks: Dict[int, int],
        program_address: Optional[int] = None,
        max_attempts: int = 3,
        timeout_cycles: int = 100_000,
        backoff_cycles: int = 64,
        max_backoff_cycles: int = 4096,
        fallback: "Optional[Callable[[], object]]" = None,
    ) -> RecoveryResult:
        """Run with timeout, bounded-backoff retry and degradation.

        Each attempt is a full :meth:`run` with ``check_status=True``
        and a ``timeout_cycles`` watchdog on completion.  A timed-out
        or trapped attempt is aborted (:meth:`abort`) and retried after
        an exponentially growing idle window (``backoff_cycles``,
        doubling, capped at ``max_backoff_cycles``).  When all attempts
        fail the OCP is declared dead: if ``fallback`` is given it is
        invoked (graceful degradation to the software path) and its
        return value stored in :attr:`RecoveryResult.fallback_value`;
        otherwise the last error is re-raised.
        """
        if max_attempts < 1:
            raise DriverError("max_attempts must be >= 1")
        faults: List[str] = []
        backoff = backoff_cycles
        last_error: Optional[Exception] = None
        for attempt in range(1, max_attempts + 1):
            try:
                result = self.run(
                    program_words,
                    banks,
                    program_address=program_address,
                    check_status=True,
                    max_wait_cycles=timeout_cycles,
                )
            except (DriverTimeout, OcpRunError) as exc:
                last_error = exc
                faults.append(f"attempt {attempt}: {exc}")
                self._trace(
                    "fault",
                    attempt=attempt,
                    kind=type(exc).__name__,
                    detail=str(exc),
                )
                self.abort()
                if attempt < max_attempts:
                    self._trace("retry", attempt=attempt, backoff=backoff)
                    self.soc.sim.step(backoff)
                    backoff = min(backoff * 2, max_backoff_cycles)
                continue
            if attempt > 1:
                self._trace("recovered", attempt=attempt)
            return RecoveryResult(
                attempts=attempt,
                degraded=False,
                result=result,
                faults=faults,
            )
        self._trace("degraded", attempts=max_attempts,
                    fallback=fallback is not None)
        if fallback is None:
            assert last_error is not None
            raise last_error
        value = fallback()
        return RecoveryResult(
            attempts=max_attempts,
            degraded=True,
            fallback_value=value,
            faults=faults,
        )
