"""Driver-level job submission facade over the throughput scheduler.

:class:`JobClient` is to the scheduler what
:class:`~repro.sw.driver.OuessantDriver` is to a single OCP: the
software-side entry point.  It owns job-id allocation, blocks on
back-pressure by advancing the simulated clock, and hands results back
in submission order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sched.job import Job, JobResult
from ..sched.scheduler import ThroughputScheduler
from ..verify.diagnostics import Finding, VerifyReport


class JobClient:
    """Submit kernels by kind; collect results in submission order."""

    def __init__(self, scheduler: ThroughputScheduler) -> None:
        self.scheduler = scheduler
        self._order: List[str] = []
        self._serial = 0

    def submit(
        self,
        kind: str,
        words: Sequence[int],
        chain: Optional[str] = None,
        max_cycles: int = 5_000_000,
    ) -> Job:
        """Submit one job, blocking on back-pressure; returns the Job."""
        self._serial += 1
        job = Job(f"job{self._serial}", kind, list(words), chain=chain)
        self.scheduler.submit_blocking(job, max_cycles=max_cycles)
        self._order.append(job.job_id)
        return job

    def drain(self, max_cycles: int = 5_000_000) -> List[JobResult]:
        """Run the stream to completion; results in submission order."""
        self.scheduler.drain(max_cycles=max_cycles)
        completed = self.scheduler.completed
        return [completed[job_id] for job_id in self._order]

    def results(self) -> Dict[str, JobResult]:
        """Results completed so far, keyed by job id."""
        return dict(self.scheduler.completed)

    def precheck(
        self,
        kind: str,
        words: Sequence[int],
        chain: Optional[str] = None,
    ) -> List[Finding]:
        """Dry-run the racelint submit check without submitting.

        Builds the job the next :meth:`submit` call would build (same
        id, which stays unallocated) and returns the concurrency
        hazards :mod:`repro.racelint` would flag against the jobs
        currently pending -- regardless of the scheduler's
        ``racecheck`` mode.
        """
        job = Job(f"job{self._serial + 1}", kind, list(words),
                  chain=chain)
        return self.scheduler.racecheck_job(job)

    @property
    def racecheck_report(self) -> VerifyReport:
        """The scheduler's accumulated OU2xx findings."""
        return self.scheduler.racecheck_report
