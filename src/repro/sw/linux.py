"""Linux environment model.

Section IV: "Efficiently integrating Ouessant in a virtual-memory based
environment such as Linux kernel is much more difficult. ... data
copies are required each time the user/kernel layer is crossed. ...
In the Ouessant Linux driver, the mmap solution is used."

We model the Linux driver's cost structure rather than booting a
kernel: every kernel crossing charges calibrated cycle constants, and
the data path is selectable between

* ``mmap`` -- kernel DMA buffer mapped into user space, zero copies
  (the paper's choice), and
* ``copy`` -- classic ``read``/``write`` driver with
  ``copy_{to,from}_user`` per word (the rejected design, kept for the
  ablation).

With the default constants the additive overhead of an
interrupt-mode run is 3000 cycles -- the paper's in-text decomposition
(DFT: 7000 under Linux vs 4000 baremetal, "this comes from system
calls").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.errors import DriverError
from ..system import SoC
from .driver import OuessantDriver, RunResult


@dataclass(frozen=True)
class LinuxCosts:
    """Cycle constants of the kernel crossings (50 MHz Leon3 scale).

    The defaults decompose the paper's ~3000-cycle Linux overhead:
    ioctl entry + exit, interrupt entry, wakeup/reschedule of the
    blocked process, and driver bookkeeping.
    """

    syscall_entry: int = 600
    syscall_exit: int = 400
    irq_entry: int = 500
    irq_to_wakeup: int = 1100
    driver_bookkeeping: int = 400
    copy_per_word: int = 4
    mmap_setup: int = 1500
    poll_syscall: int = 250

    @property
    def blocking_run_overhead(self) -> int:
        """Additive overhead of one interrupt-mode run."""
        return (
            self.syscall_entry
            + self.syscall_exit
            + self.irq_entry
            + self.irq_to_wakeup
            + self.driver_bookkeeping
        )


class LinuxRuntime:
    """User-space view of the Ouessant Linux driver.

    Parameters
    ----------
    data_path:
        ``"mmap"`` (zero copy, the paper's driver) or ``"copy"``
        (``copy_{to,from}_user`` word costs are charged).
    use_interrupt:
        Blocking ioctl + IRQ (Table I's "interrupt mode") or a
        userspace poll loop (each poll is a syscall!).
    """

    def __init__(
        self,
        soc: SoC,
        ocp_index: int = 0,
        data_path: str = "mmap",
        use_interrupt: bool = True,
        costs: Optional[LinuxCosts] = None,
    ) -> None:
        if data_path not in ("mmap", "copy"):
            raise DriverError(f"unknown data path {data_path!r}")
        self.soc = soc
        self.data_path = data_path
        self.use_interrupt = use_interrupt
        self.costs = costs or LinuxCosts()
        self.driver = OuessantDriver(
            soc, ocp_index=ocp_index, use_interrupt=use_interrupt
        )
        self._mmap_ready = False
        self.last_result: Optional[RunResult] = None

    # -- session setup -----------------------------------------------------
    def open_device(self) -> int:
        """``open()`` + (for mmap path) ``mmap()`` of the DMA buffer.

        Returns cycles spent; happens once per session and is *not*
        part of the per-run measurement (the paper measures steady
        state).
        """
        cycles = self.costs.syscall_entry + self.costs.syscall_exit
        if self.data_path == "mmap":
            cycles += self.costs.mmap_setup
            self._mmap_ready = True
        self.soc.sim.step(cycles)
        return cycles

    # -- data movement -------------------------------------------------------
    def stage_input(self, address: int, words: List[int]) -> int:
        """Make input data visible to the OCP; returns CPU cycles.

        mmap path: the application wrote straight into the shared
        buffer -- zero cost.  copy path: one ``write()`` syscall with a
        per-word ``copy_from_user``.
        """
        self.soc.write_ram(address, words)
        if self.data_path == "mmap":
            return 0
        cycles = (
            self.costs.syscall_entry
            + self.costs.syscall_exit
            + self.costs.copy_per_word * len(words)
        )
        self.soc.sim.step(cycles)
        return cycles

    def fetch_output(self, address: int, count: int) -> "tuple[List[int], int]":
        """Read results back to the application; returns (words, cycles)."""
        words = self.soc.read_ram(address, count)
        if self.data_path == "mmap":
            return words, 0
        cycles = (
            self.costs.syscall_entry
            + self.costs.syscall_exit
            + self.costs.copy_per_word * count
        )
        self.soc.sim.step(cycles)
        return words, cycles

    # -- the measured run ---------------------------------------------------
    def run(
        self,
        program_words: List[int],
        banks: Dict[int, int],
        program_address: Optional[int] = None,
    ) -> RunResult:
        """One accelerated call as user space experiences it.

        The blocking-ioctl path: enter the kernel, program the OCP,
        sleep; the completion IRQ wakes the process, which returns to
        user space.  All kernel-crossing constants are charged as
        simulated time so the RunResult's total matches what the
        paper's user-space time markers would show.
        """
        if self.data_path == "mmap" and not self._mmap_ready:
            self.open_device()
        begin = self.soc.sim.cycle
        overhead = 0

        # ioctl(OUESSANT_RUN): enter the kernel ...
        self.soc.sim.step(self.costs.syscall_entry)
        overhead += self.costs.syscall_entry

        result = self.driver.run(program_words, banks, program_address)

        if self.use_interrupt:
            # IRQ handler + wakeup of the sleeping process
            tail = (
                self.costs.irq_entry
                + self.costs.irq_to_wakeup
                + self.costs.driver_bookkeeping
                + self.costs.syscall_exit
            )
        else:
            # userspace poll loop: each D-bit poll was a syscall
            tail = (
                self.costs.driver_bookkeeping
                + self.costs.syscall_exit
                + self.costs.poll_syscall * self.driver.poll_count
            )
        self.soc.sim.step(tail)
        overhead += tail

        total = self.soc.sim.cycle - begin
        outcome = RunResult(
            total_cycles=total,
            config_cycles=result.config_cycles,
            compute_cycles=result.compute_cycles,
            ack_cycles=result.ack_cycles,
            sw_overhead_cycles=overhead,
            notes={"data_path": 0 if self.data_path == "mmap" else 1},
        )
        self.last_result = outcome
        return outcome
