"""Run profiling: where did the cycles go?

The paper's evaluation narrates its numbers ("given the computing
time, we have roughly 1500 cycles needed for data transfer...");
:func:`profile_run` automates that narration for any run: it combines
the driver's :class:`~repro.sw.driver.RunResult` with the controller,
bus and FIFO statistics into one structured breakdown.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..system import SoC
from .driver import RunResult


@dataclass
class RunProfile:
    """Structured cycle/traffic breakdown of one accelerated run."""

    total_cycles: int
    config_cycles: int
    ack_cycles: int
    os_overhead_cycles: int
    controller_states: Dict[str, int] = field(default_factory=dict)
    instructions: int = 0
    words_to_rac: int = 0
    words_from_rac: int = 0
    fifo_stall_cycles: int = 0
    bus_utilization: float = 0.0
    max_fifo_in_atoms: int = 0
    max_fifo_out_atoms: int = 0
    kernel_ticked: int = 0
    kernel_skipped: int = 0
    kernel_skip_windows: int = 0
    trace_dropped: int = 0

    @property
    def kernel_skip_ratio(self) -> float:
        """Fraction of simulated cycles the kernel fast-forwarded."""
        total = self.kernel_ticked + self.kernel_skipped
        return self.kernel_skipped / total if total else 0.0

    @property
    def words_total(self) -> int:
        return self.words_to_rac + self.words_from_rac

    @property
    def transfer_cycles(self) -> int:
        """Cycles the controller spent in the transfer states.

        Includes FIFO-stall cycles (waiting for the accelerator);
        subtract :attr:`fifo_stall_cycles` for pure bus time.
        """
        return (self.controller_states.get("xfer_to", 0)
                + self.controller_states.get("xfer_from", 0))

    @property
    def cycles_per_word(self) -> float:
        """Pure data-movement cost (stall cycles excluded)."""
        if not self.words_total:
            return 0.0
        busy = max(0, self.transfer_cycles - self.fifo_stall_cycles)
        return busy / self.words_total

    @property
    def exec_wait_cycles(self) -> int:
        return self.controller_states.get("exec_wait", 0)

    def render(self) -> str:
        lines = [
            f"total           {self.total_cycles:>8} cycles",
            f"  GPP config    {self.config_cycles:>8}",
            f"  GPP ack       {self.ack_cycles:>8}",
        ]
        if self.os_overhead_cycles:
            lines.append(f"  OS overhead   {self.os_overhead_cycles:>8}")
        for state, cycles in sorted(self.controller_states.items()):
            lines.append(f"  ctrl {state:<9}{cycles:>8}")
        lines.extend([
            f"instructions    {self.instructions:>8}",
            f"words moved     {self.words_total:>8} "
            f"({self.words_to_rac} in / {self.words_from_rac} out)",
            f"cycles/word     {self.cycles_per_word:>8.2f}",
            f"fifo stalls     {self.fifo_stall_cycles:>8} cycles",
            f"bus utilization {100 * self.bus_utilization:>7.1f} %",
        ])
        if self.kernel_skipped:
            lines.append(
                f"kernel skipped  {self.kernel_skipped:>8} cycles "
                f"({100 * self.kernel_skip_ratio:.1f} % of "
                f"{self.kernel_ticked + self.kernel_skipped}, "
                f"{self.kernel_skip_windows} windows)"
            )
        if self.trace_dropped:
            lines.append(
                f"TRACE TRUNCATED {self.trace_dropped:>8} events dropped"
            )
        return "\n".join(lines)


def profile_run(
    soc: SoC, result: RunResult, ocp_index: int = 0
) -> RunProfile:
    """Build a :class:`RunProfile` from a finished run.

    Call right after the driver/runtime returned; reads the cumulative
    statistics of the OCP and bus (so profile one run per system, or
    diff the counters yourself for repeated runs).
    """
    trace = soc.sim.trace
    dropped = trace.dropped if trace is not None else 0
    if dropped:
        warnings.warn(
            f"profiling a run whose trace dropped {dropped} events at "
            f"capacity {trace.capacity}; event-derived figures are "
            f"incomplete",
            RuntimeWarning,
            stacklevel=2,
        )
    kernel = soc.sim.profile()
    ocp = soc.ocps[ocp_index]
    stats = ocp.controller.stats
    states = {
        key.split(".", 1)[1]: value
        for key, value in stats.items()
        if key.startswith("cycles.") and not key.endswith("fifo_stall")
    }
    max_in = max(
        (f.stats.get("max_occupancy_atoms") for f in ocp.fifos_in),
        default=0,
    )
    max_out = max(
        (f.stats.get("max_occupancy_atoms") for f in ocp.fifos_out),
        default=0,
    )
    return RunProfile(
        total_cycles=result.total_cycles,
        config_cycles=result.config_cycles,
        ack_cycles=result.ack_cycles,
        os_overhead_cycles=result.sw_overhead_cycles,
        controller_states=states,
        instructions=stats.get("instructions"),
        words_to_rac=stats.get("words_to_rac"),
        words_from_rac=stats.get("words_from_rac"),
        fifo_stall_cycles=stats.get("cycles.fifo_stall"),
        bus_utilization=soc.bus.utilization(),
        max_fifo_in_atoms=max_in,
        max_fifo_out_atoms=max_out,
        kernel_ticked=kernel.ticked,
        kernel_skipped=kernel.skipped,
        kernel_skip_windows=kernel.skip_windows,
        trace_dropped=dropped,
    )
