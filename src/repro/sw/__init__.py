"""Software integration: driver, baremetal runtime, Linux model, library."""

from .baremetal import BaremetalRuntime
from .driver import DRIVER_MASTER, OuessantDriver, RunResult
from .jobs import JobClient
from .library import OuessantLibrary
from .linux import LinuxCosts, LinuxRuntime
from .profiler import RunProfile, profile_run

__all__ = [
    "BaremetalRuntime",
    "DRIVER_MASTER",
    "JobClient",
    "LinuxCosts",
    "LinuxRuntime",
    "OuessantDriver",
    "OuessantLibrary",
    "RunProfile",
    "RunResult",
    "profile_run",
]
