"""Baremetal runtime.

"When no virtual memory is used, integration is quite easy."  The
baremetal runtime is a thin veneer over the register driver: physical
addresses are used directly, and the only cost beyond the OCP's own
work is the handful of register accesses plus (optionally) flushing a
non-snooping cache.

The paper's in-text analysis ("when running it without Linux, the DFT
took 4000 cycles") is measured through this path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mem.cache import Cache
from ..sim.errors import DriverError
from ..system import SoC
from .driver import OuessantDriver, RunResult


class BaremetalRuntime:
    """Runs microcode programs on an OCP with no OS in the way.

    Parameters
    ----------
    use_interrupt:
        Wait with the IRQ line (a baremetal idle loop / ``wfi``)
        instead of polling the D bit.
    cache:
        Optional non-snooping CPU cache; when given, the runtime
        flushes it after every run (the software fallback the paper
        mentions) and reports the cost.  With snooping hardware (the
        default assumption) pass ``None``.
    """

    def __init__(
        self,
        soc: SoC,
        ocp_index: int = 0,
        use_interrupt: bool = True,
        cache: Optional[Cache] = None,
    ) -> None:
        self.soc = soc
        self.driver = OuessantDriver(
            soc, ocp_index=ocp_index, use_interrupt=use_interrupt
        )
        self.cache = cache
        self.last_result: Optional[RunResult] = None

    def run(
        self,
        program_words: List[int],
        banks: Dict[int, int],
        program_address: Optional[int] = None,
    ) -> RunResult:
        """Execute one microcode program; returns cycle accounting."""
        result = self.driver.run(program_words, banks, program_address)
        if self.cache is not None:
            self.cache.flush()
            result.notes["cache_flush"] = 1
        self.last_result = result
        return result

    # -- data helpers --------------------------------------------------------
    def write_words(self, address: int, words: List[int]) -> None:
        """Application-side data placement (the input arrays)."""
        self.soc.write_ram(address, words)

    def read_words(self, address: int, count: int) -> List[int]:
        """Application-side result readout (the output arrays)."""
        return self.soc.read_ram(address, count)
