"""End-user acceleration library.

Section II-B: "Transparency for end user can be achieved through
software libraries."  This module is that library: the application
calls :meth:`OuessantLibrary.dft` / :meth:`idct` / :meth:`fir` like
normal functions; bank allocation, microcode generation, driver
sequencing and result unpacking all happen behind the call, on top of
either the baremetal or the Linux runtime.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.firmware import plan_streaming_run
from ..core.program import OuProgram
from ..rac.dft import DFTRac
from ..rac.fir import FIRRac
from ..rac.idct import IDCTRac
from ..rac.matmul import MatMulRac
from ..sim.errors import DriverError
from ..system import RAM_BASE, SoC
from ..utils import fixedpoint as fp
from .baremetal import BaremetalRuntime
from .driver import RunResult
from .linux import LinuxRuntime

#: where library-managed buffers start in RAM (leaves the low megabyte
#: to application code/data)
HEAP_BASE_OFFSET = 1 << 20
HEAP_ALIGN = 256


class _BankAllocator:
    """Bump allocator for bank-sized buffers in RAM."""

    def __init__(self, soc: SoC) -> None:
        self._next = RAM_BASE + HEAP_BASE_OFFSET
        self._limit = RAM_BASE + soc.memory.size_bytes

    def alloc(self, words: int) -> int:
        size = 4 * words
        address = self._next
        aligned = (address + HEAP_ALIGN - 1) // HEAP_ALIGN * HEAP_ALIGN
        if aligned + size > self._limit:
            raise DriverError("library heap exhausted")
        self._next = aligned + size
        return aligned

    def reset(self) -> None:
        self._next = RAM_BASE + HEAP_BASE_OFFSET


class OuessantLibrary:
    """Transparent accelerator calls over a SoC.

    Parameters
    ----------
    environment:
        ``"baremetal"`` or ``"linux"``; selects the runtime the calls
        go through (and therefore the overhead they pay).
    """

    def __init__(
        self,
        soc: SoC,
        environment: str = "baremetal",
        use_interrupt: bool = True,
        data_path: str = "mmap",
    ) -> None:
        self.soc = soc
        self.allocator = _BankAllocator(soc)
        self.last_result: Optional[RunResult] = None
        if environment == "baremetal":
            self._runtimes = {
                i: BaremetalRuntime(soc, ocp_index=i, use_interrupt=use_interrupt)
                for i in range(len(soc.ocps))
            }
        elif environment == "linux":
            self._runtimes = {
                i: LinuxRuntime(
                    soc, ocp_index=i, data_path=data_path,
                    use_interrupt=use_interrupt,
                )
                for i in range(len(soc.ocps))
            }
        else:
            raise DriverError(f"unknown environment {environment!r}")
        self.environment = environment

    # -- OCP lookup -----------------------------------------------------
    def _find_ocp(self, rac_type: type) -> int:
        for index, ocp in enumerate(self.soc.ocps):
            if isinstance(ocp.rac, rac_type):
                return index
        raise DriverError(f"no OCP hosts a {rac_type.__name__}")

    def _run(self, index: int, program: OuProgram, banks: dict) -> RunResult:
        runtime = self._runtimes[index]
        result = runtime.run(program.words(), banks)
        self.last_result = result
        return result

    def _run_plan(
        self, index: int, plan, inputs: List[List[int]]
    ) -> List[List[int]]:
        """Execute a firmware plan: allocate, load, run, read back.

        ``inputs`` holds the unsigned words for each RAC input port
        (lengths must match ``plan.words_in``); returns the unsigned
        word lists of each output port.
        """
        for port, (words, expected) in enumerate(zip(inputs, plan.words_in)):
            if len(words) != expected:
                raise DriverError(
                    f"input port {port}: expected {expected} words, "
                    f"got {len(words)}"
                )
        addresses = {0: self.allocator.alloc(len(plan.program) + 4)}
        for bank, words in zip(plan.input_banks, plan.words_in):
            addresses[bank] = self.allocator.alloc(words)
        for bank, words in zip(plan.output_banks, plan.words_out):
            addresses[bank] = self.allocator.alloc(words)
        for bank, words in zip(plan.input_banks, inputs):
            self.soc.write_ram(addresses[bank], list(words))
        self._run(index, plan.program, addresses)
        return [
            self.soc.read_ram(addresses[bank], count)
            for bank, count in zip(plan.output_banks, plan.words_out)
        ]

    # -- accelerated calls --------------------------------------------------
    def dft(
        self, re: Sequence[int], im: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """1/N-scaled DFT of a Q15 complex signal on the DFT RAC.

        Looks exactly like a software FFT call; under the hood it is
        the paper's Figure 4 microcode.
        """
        index = self._find_ocp(DFTRac)
        rac: DFTRac = self.soc.ocps[index].rac  # type: ignore[assignment]
        n = rac.n_points
        if len(re) != n or len(im) != n:
            raise DriverError(
                f"this DFT RAC is configured for {n} points, got {len(re)}"
            )
        plan = plan_streaming_run(rac)
        words = fp.interleave_complex(list(re), list(im))
        outputs = self._run_plan(index, plan, [words])
        return fp.deinterleave_complex(outputs[0])

    def idct(self, block: Sequence[Sequence[int]]) -> List[List[int]]:
        """2-D 8x8 IDCT of a coefficient block on the IDCT RAC."""
        index = self._find_ocp(IDCTRac)
        rac: IDCTRac = self.soc.ocps[index].rac  # type: ignore[assignment]
        plan = plan_streaming_run(rac)
        outputs = self._run_plan(index, plan, [fp.block_to_words(block)])
        return fp.words_to_block(outputs[0])

    def idct_batch(
        self, blocks: Sequence[Sequence[Sequence[int]]]
    ) -> List[List[List[int]]]:
        """Decode many 8x8 blocks with ONE microcode program.

        The per-call overhead (register configuration, start, interrupt,
        acknowledge -- and under Linux the ~3000-cycle syscall tax) is
        paid once for the whole batch instead of once per block: the
        microcode loops block-by-block on the coprocessor while the GPP
        sleeps.  This is how a production JPEG decoder would drive the
        OCP.
        """
        index = self._find_ocp(IDCTRac)
        rac: IDCTRac = self.soc.ocps[index].rac  # type: ignore[assignment]
        n_blocks = len(blocks)
        if n_blocks < 1:
            raise DriverError("empty batch")
        plan = plan_streaming_run(rac, operations=n_blocks)
        words: List[int] = []
        for block in blocks:
            words.extend(fp.block_to_words(block))
        outputs = self._run_plan(index, plan, [words])
        return [
            fp.words_to_block(outputs[0][64 * i : 64 * (i + 1)])
            for i in range(n_blocks)
        ]

    def fir(
        self, samples: Sequence[int], taps: Sequence[int]
    ) -> List[int]:
        """Q15 FIR filtering on the FIR RAC (taps via config FIFO 1)."""
        index = self._find_ocp(FIRRac)
        rac: FIRRac = self.soc.ocps[index].rac  # type: ignore[assignment]
        if len(samples) != rac.block_size:
            raise DriverError(
                f"FIR RAC block size is {rac.block_size}, got {len(samples)}"
            )
        if len(taps) != rac.n_taps:
            raise DriverError(
                f"FIR RAC expects {rac.n_taps} taps, got {len(taps)}"
            )
        plan = plan_streaming_run(rac)
        outputs = self._run_plan(index, plan, [
            [int(v) & 0xFFFFFFFF for v in samples],
            [int(v) & 0xFFFFFFFF for v in taps],
        ])
        return [w - (1 << 32) if w & (1 << 31) else w for w in outputs[0]]

    def matmul(
        self, a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Q15 matrix product on the MatMul RAC (B via config FIFO 1)."""
        index = self._find_ocp(MatMulRac)
        rac: MatMulRac = self.soc.ocps[index].rac  # type: ignore[assignment]
        n = rac.n
        if len(a) != n or len(b) != n:
            raise DriverError(f"this MatMul RAC is configured for {n}x{n}")
        flat_a = [int(v) & 0xFFFFFFFF for row in a for v in row]
        flat_b = [int(v) & 0xFFFFFFFF for row in b for v in row]
        plan = plan_streaming_run(rac)
        outputs = self._run_plan(index, plan, [flat_a, flat_b])
        signed = [w - (1 << 32) if w & (1 << 31) else w for w in outputs[0]]
        return [signed[i * n : (i + 1) * n] for i in range(n)]
