"""FIR filter RAC with a dedicated configuration FIFO.

Section III-B: "The number of input and output interfaces can be
adapted according to the accelerator requirements.  For example, a
dedicated configuration FIFO can be added if the accelerator requires
additional configuration."

This accelerator demonstrates exactly that: port 0 streams the signal
block, port 1 receives the filter taps (the configuration), and one
output port streams the filtered block.  It is the third integrated
accelerator of the reproduction (beyond the paper's IDCT and DFT),
showing that adding a new RAC requires no change anywhere else.
"""

from __future__ import annotations

from typing import List

from ..sim.errors import ConfigurationError
from ..utils.fixedpoint import saturate
from .base import RACPortSpec, StreamingRAC


def fir_q15(samples: List[int], taps: List[int]) -> List[int]:
    """Bit-exact Q15 FIR: ``y[n] = sat(sum_t h[t] * x[n-t] >> 15)``.

    Samples before the block are taken as zero (block-boundary
    convention of the hardware, which starts from a flushed delay
    line).
    """
    out: List[int] = []
    for n in range(len(samples)):
        acc = 0
        for t, tap in enumerate(taps):
            if n - t < 0:
                break
            acc += tap * samples[n - t]
        out.append(saturate(acc >> 15))
    return out


def _resign16(word: int) -> int:
    word &= 0xFFFFFFFF
    return word - (1 << 32) if word & (1 << 31) else word


class FIRRac(StreamingRAC):
    """Block FIR filter: data on port 0, taps on config port 1.

    Parameters
    ----------
    block_size:
        Samples consumed/produced per operation.
    n_taps:
        Filter length (taps loaded through the configuration FIFO on
        every operation, so the filter can be retuned per block).
    """

    kind = "fir"

    def __init__(
        self,
        name: str = "fir",
        block_size: int = 128,
        n_taps: int = 16,
        fifo_depth: int = 64,
    ) -> None:
        if block_size < 1 or n_taps < 1:
            raise ConfigurationError("block_size and n_taps must be >= 1")
        self.block_size = block_size
        self.n_taps = n_taps

        def compute(collected: List[List[int]]) -> List[List[int]]:
            samples = [_resign16(w) for w in collected[0]]
            taps = [_resign16(w) for w in collected[1]]
            filtered = fir_q15(samples, taps)
            return [[v & 0xFFFFFFFF for v in filtered]]

        super().__init__(
            name,
            items_in=[block_size, n_taps],
            items_out=[block_size],
            compute_fn=compute,
            # one MAC per tap per sample, `n_taps` parallel MACs assumed:
            # a new sample every cycle plus a short drain.
            compute_latency=block_size + n_taps,
            ports=RACPortSpec([32, 32], [32], fifo_depth=fifo_depth),
        )
