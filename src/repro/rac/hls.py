"""HLS-style RAC wrapper generation.

The paper's future work: "automatic generation of Ouessant interfaces
for High-Level Synthesis of accelerators is under study."  This module
realizes that idea at the behavioural level: give it a pure Python
function over integer blocks plus a latency/interface specification,
and it produces a ready-to-integrate :class:`~repro.rac.base.RAC` --
the same contract an HLS flow would emit RTL against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..sim.errors import ConfigurationError
from .base import RACPortSpec, StreamingRAC


@dataclass(frozen=True)
class HLSInterfaceSpec:
    """Interface contract for a generated accelerator.

    Attributes
    ----------
    items_in / items_out:
        Words per operation on each input/output port.
    input_widths / output_widths:
        Accelerator-side port widths in bits (default: all 32).
    initiation_interval:
        Cycles between accepted input words (1 = fully pipelined).
    pipeline_depth:
        Latency from last input to first output, in cycles.
    """

    items_in: Sequence[int]
    items_out: Sequence[int]
    input_widths: Sequence[int] = field(default=())
    output_widths: Sequence[int] = field(default=())
    initiation_interval: int = 1
    pipeline_depth: int = 4

    def resolved_input_widths(self) -> List[int]:
        return list(self.input_widths) or [32] * len(self.items_in)

    def resolved_output_widths(self) -> List[int]:
        return list(self.output_widths) or [32] * len(self.items_out)


def wrap_function(
    name: str,
    fn: Callable[[List[List[int]]], List[List[int]]],
    spec: HLSInterfaceSpec,
    fifo_depth: int = 64,
) -> StreamingRAC:
    """Generate a RAC from a block function and an interface spec.

    ``fn`` receives one word list per input port and must return one
    word list per output port (unsigned 32-bit word values).  The
    generated accelerator obeys ``spec``'s timing: it accepts one word
    every ``initiation_interval`` cycles and produces its first output
    ``pipeline_depth`` cycles after the last input.

    Raises
    ------
    ConfigurationError
        If the spec is inconsistent (empty ports, bad timing values).
    """
    if spec.initiation_interval < 1:
        raise ConfigurationError("initiation_interval must be >= 1")
    if spec.pipeline_depth < 0:
        raise ConfigurationError("pipeline_depth must be >= 0")
    if not spec.items_in or not spec.items_out:
        raise ConfigurationError("spec needs at least one port per side")
    if any(i < 1 for i in list(spec.items_in) + list(spec.items_out)):
        raise ConfigurationError("items per operation must be >= 1")

    ports = RACPortSpec(
        spec.resolved_input_widths(),
        spec.resolved_output_widths(),
        fifo_depth=fifo_depth,
    )
    # II > 1 is modelled by slowing the input side down: a core that
    # accepts a word every II cycles is equivalent (at block granularity)
    # to consuming 1 word per cycle but waiting (II-1) extra cycles per
    # word in the compute phase.
    extra = (spec.initiation_interval - 1) * sum(spec.items_in)
    rac = StreamingRAC(
        name,
        items_in=list(spec.items_in),
        items_out=list(spec.items_out),
        compute_fn=fn,
        compute_latency=spec.pipeline_depth + extra,
        ports=ports,
    )
    rac.kind = f"hls:{name}"
    return rac
