"""Spiral-style iterative DFT RAC -- the paper's second accelerator.

"The second one is the Spiral iterative DFT.  It can be configured to
accept different DFT size ... the previously described 256 points DFT
was used."  Table I reports a 2485-cycle compute latency for the
256-point configuration.

Latency model
-------------
Spiral's iterative reuse datapath passes all N points through one
butterfly stage per pass, log2(N) times::

    lat(N) = log2(N) * (N + STAGE_OVERHEAD) + PIPELINE_FILL

``STAGE_OVERHEAD = 54`` and ``PIPELINE_FILL = 5`` calibrate the model
to the paper's measured ``lat(256) = 2485``.

Data format: two 32-bit words per complex point (re then im, Q15
sign-extended), so a 256-point transform moves 512 words in and 512
words out -- the 1024 total words of the paper's in-text transfer
analysis.  Arithmetic is the bit-exact scaled radix-2 FFT
(:func:`repro.utils.fixedpoint.fft_q15`, output = DFT/N).
"""

from __future__ import annotations

from typing import List

from ..sim.errors import ConfigurationError
from ..utils import bits
from ..utils.fixedpoint import deinterleave_complex, fft_q15, interleave_complex
from .base import RACPortSpec, StreamingRAC

#: calibration constants (see module docstring)
STAGE_OVERHEAD = 54
PIPELINE_FILL = 5


def dft_latency(n_points: int) -> int:
    """Compute-cycle latency of the iterative DFT core for ``n_points``."""
    stages = bits.log2_exact(n_points)
    return stages * (n_points + STAGE_OVERHEAD) + PIPELINE_FILL


class DFTRac(StreamingRAC):
    """Iterative streaming radix-2 DFT accelerator.

    Parameters
    ----------
    n_points:
        Transform size (power of two, 8..4096).
    """

    kind = "dft"

    def __init__(
        self, n_points: int = 256, name: str = "dft", fifo_depth: int = 64
    ) -> None:
        if not isinstance(n_points, int):
            raise ConfigurationError(
                f"n_points must be an int, got {n_points!r}"
            )
        if not bits.is_power_of_two(n_points) or not 8 <= n_points <= 4096:
            raise ConfigurationError(
                f"DFT size must be a power of two in [8, 4096], got {n_points}"
            )
        self.n_points = n_points

        def compute(collected: List[List[int]]) -> List[List[int]]:
            re, im = deinterleave_complex(collected[0])
            out_re, out_im = fft_q15(re, im)
            return [interleave_complex(out_re, out_im)]

        super().__init__(
            name,
            items_in=[2 * n_points],
            items_out=[2 * n_points],
            compute_fn=compute,
            compute_latency=dft_latency(n_points),
            ports=RACPortSpec([32], [32], fifo_depth=fifo_depth),
        )
