"""Trivial accelerators for tests, bring-up and the quickstart example.

On the real platform "the OCP integration on the bus had already been
validated" with simple cores before the DFT was dropped in; these play
that role here.
"""

from __future__ import annotations

from typing import List

from ..sim.errors import ConfigurationError
from .base import RACPortSpec, StreamingRAC


def _resign(word: int) -> int:
    word &= 0xFFFFFFFF
    return word - (1 << 32) if word & (1 << 31) else word


class PassthroughRac(StreamingRAC):
    """Loopback: emits its input block unchanged (latency configurable)."""

    kind = "passthrough"

    def __init__(
        self,
        name: str = "loopback",
        block_size: int = 16,
        compute_latency: int = 1,
        fifo_depth: int = 64,
        autostart: bool = True,
    ) -> None:
        super().__init__(
            name,
            items_in=[block_size],
            items_out=[block_size],
            compute_fn=lambda collected: [list(collected[0])],
            compute_latency=compute_latency,
            ports=RACPortSpec([32], [32], fifo_depth=fifo_depth),
            autostart=autostart,
        )
        self.block_size = block_size


class ScaleRac(StreamingRAC):
    """Fixed-point scaler: ``y = (x * factor) >> shift`` per word.

    The quickstart accelerator: simple enough to follow every word
    through the OCP, real enough to show signed datapath behaviour.
    """

    kind = "scale"

    def __init__(
        self,
        name: str = "scale",
        block_size: int = 16,
        factor: int = 3,
        shift: int = 1,
        fifo_depth: int = 64,
    ) -> None:
        if shift < 0 or shift > 31:
            raise ConfigurationError("shift must be in [0, 31]")
        self.block_size = block_size
        self.factor = factor
        self.shift = shift

        def compute(collected: List[List[int]]) -> List[List[int]]:
            out = [
                ((_resign(word) * factor) >> shift) & 0xFFFFFFFF
                for word in collected[0]
            ]
            return [out]

        super().__init__(
            name,
            items_in=[block_size],
            items_out=[block_size],
            compute_fn=compute,
            compute_latency=2,
            ports=RACPortSpec([32], [32], fifo_depth=fifo_depth),
        )
