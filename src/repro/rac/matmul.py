"""Fixed-point matrix-multiply RAC.

A fourth accelerator demonstrating that "adding new accelerators is
also made easier": a systolic-array-style N x N matrix multiplier with
the weight matrix loaded through the dedicated configuration FIFO
(port 1) and activations streamed through port 0 -- the structure of
every neural-network / linear-algebra offload engine.

Data format: row-major, one sign-extended Q15 element per 32-bit word.
Result: ``C = sat((A @ B) >> 15)`` element-wise in Q15 (activations A
on port 0, weights B on the config port).
"""

from __future__ import annotations

from typing import List

from ..sim.errors import ConfigurationError
from ..utils.fixedpoint import saturate
from .base import RACPortSpec, StreamingRAC


def matmul_q15(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    """Bit-exact golden model: Q15 matrix product with wide accumulate."""
    n = len(a)
    if any(len(row) != n for row in a) or len(b) != n or any(
        len(row) != n for row in b
    ):
        raise ValueError("matrices must be square and equal-sized")
    out: List[List[int]] = []
    for i in range(n):
        row: List[int] = []
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i][k] * b[k][j]
            row.append(saturate(acc >> 15))
        out.append(row)
    return out


def _resign16(word: int) -> int:
    word &= 0xFFFFFFFF
    return word - (1 << 32) if word & (1 << 31) else word


def _to_matrix(words: List[int], n: int) -> List[List[int]]:
    return [[_resign16(words[i * n + j]) for j in range(n)] for i in range(n)]


class MatMulRac(StreamingRAC):
    """N x N Q15 matrix multiplier behind FIFO ports.

    Latency model: an N-wide systolic row pipeline computes one output
    row per N cycles after an N-cycle fill -- ``N*N + 2N`` cycles per
    operation.
    """

    kind = "matmul"

    def __init__(
        self, n: int = 8, name: str = "matmul", fifo_depth: int = 64
    ) -> None:
        if not 2 <= n <= 64:
            raise ConfigurationError(f"matrix size {n} out of range [2, 64]")
        self.n = n
        words = n * n

        def compute(collected: List[List[int]]) -> List[List[int]]:
            a = _to_matrix(collected[0], n)
            b = _to_matrix(collected[1], n)
            product = matmul_q15(a, b)
            return [[v & 0xFFFFFFFF for row in product for v in row]]

        super().__init__(
            name,
            items_in=[words, words],
            items_out=[words],
            compute_fn=compute,
            compute_latency=n * n + 2 * n,
            ports=RACPortSpec([32, 32], [32], fifo_depth=fifo_depth),
        )
