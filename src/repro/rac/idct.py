"""2-D IDCT RAC -- the paper's first accelerator.

"The first accelerator is a locally developed 2D Inverse Discrete
Cosine Transform (IDCT) for JPEG decoding."  Table I reports a compute
latency (``Lat.``) of 18 cycles for one 8x8 block, i.e. a deeply
pipelined row/column datapath.

The behavioural model consumes 64 coefficient words (one sign-extended
16-bit coefficient per 32-bit word, row major), waits the 18-cycle
pipeline latency after the last input, then streams 64 sample words.
The arithmetic is bit-exact :func:`repro.utils.fixedpoint.idct2_q15`.
"""

from __future__ import annotations

from typing import List

from ..utils.fixedpoint import IDCT_SIZE, idct2_q15, words_to_block
from .base import RACPortSpec, StreamingRAC

#: Table I, IDCT row, "Lat." column.
IDCT_PIPELINE_LATENCY = 18

BLOCK_WORDS = IDCT_SIZE * IDCT_SIZE


def _idct_compute(collected: List[List[int]]) -> List[List[int]]:
    block = words_to_block(collected[0])
    result = idct2_q15(block)
    return [[value & 0xFFFFFFFF for row in result for value in row]]


class IDCTRac(StreamingRAC):
    """Pipelined 8x8 2-D IDCT accelerator (one block per operation)."""

    kind = "idct2d"

    def __init__(self, name: str = "idct", fifo_depth: int = 64) -> None:
        super().__init__(
            name,
            items_in=[BLOCK_WORDS],
            items_out=[BLOCK_WORDS],
            compute_fn=_idct_compute,
            compute_latency=IDCT_PIPELINE_LATENCY,
            ports=RACPortSpec([32], [32], fifo_depth=fifo_depth),
        )
