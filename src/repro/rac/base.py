"""RAC (Reconfigurable Acceleration Coprocessor) framework.

A RAC is the user-defined accelerator of Figure 1: it sees only FIFO
interfaces plus the ``start_op``/``end_op`` handshake of Figure 2, and
"can be changed independently from other components of the OCP".

:class:`RAC` defines that contract.  :class:`StreamingRAC` implements
the ubiquitous collect/compute/emit behaviour (consume N input words,
compute after a pipeline latency, stream M output words) that covers
both accelerators evaluated in the paper and is the target of the
HLS-wrapper generator (:mod:`repro.rac.hls`).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Sequence

from ..sim.errors import ConfigurationError, RACError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from .fifo import FIFO


class RACPortSpec:
    """Static description of a RAC's FIFO ports.

    ``input_widths`` / ``output_widths`` are the accelerator-side widths
    in bits (the bus side of every FIFO is always 32, the system word).
    """

    def __init__(
        self,
        input_widths: Sequence[int] = (32,),
        output_widths: Sequence[int] = (32,),
        fifo_depth: int = 64,
    ) -> None:
        if not input_widths or not output_widths:
            raise ConfigurationError("a RAC needs >= 1 input and output port")
        self.input_widths = list(input_widths)
        self.output_widths = list(output_widths)
        self.fifo_depth = fifo_depth


class RAC(Component):
    """Accelerator base class: FIFO ports + start/end handshake.

    Subclasses implement :meth:`tick` to consume from ``self.inputs``
    and produce into ``self.outputs``, and must raise :attr:`end_op`
    when an operation's results have been fully emitted.
    """

    #: human-readable accelerator kind (used in reports)
    kind = "generic"

    def __init__(self, name: str, ports: Optional[RACPortSpec] = None) -> None:
        super().__init__(name)
        self.ports = ports or RACPortSpec()
        self.inputs: List[FIFO] = []
        self.outputs: List[FIFO] = []
        self.end_op = False
        self.busy = False
        self.ops_completed = 0
        self.stats = Stats()

    # -- wiring -----------------------------------------------------------
    def bind(self, inputs: List[FIFO], outputs: List[FIFO]) -> None:
        """Attach the FIFO fabric (done by the OCP assembly)."""
        if len(inputs) != len(self.ports.input_widths):
            raise ConfigurationError(
                f"{self.name}: expected {len(self.ports.input_widths)} "
                f"input FIFOs, got {len(inputs)}"
            )
        if len(outputs) != len(self.ports.output_widths):
            raise ConfigurationError(
                f"{self.name}: expected {len(self.ports.output_widths)} "
                f"output FIFOs, got {len(outputs)}"
            )
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        # the RAC's quiescence claims (starved collect, blocked emit,
        # autostart) are conditioned on FIFO state: re-poll on changes
        for fifo in self.inputs:
            fifo.watch(self)
        for fifo in self.outputs:
            fifo.watch(self)

    # -- handshake -----------------------------------------------------------
    def start_op(self) -> None:
        """Pulse from the controller's ``exec``/``execs`` instruction."""
        self.end_op = False
        self.busy = True
        self.stats.incr("start_ops")
        self.trace_event("start_op", op=self.ops_completed + 1)
        # the handshake gates both our own wake and the controller's
        # EXEC_WAIT claim
        self.wake_watchers()

    def _finish_op(self) -> None:
        self.busy = False
        self.end_op = True
        self.ops_completed += 1
        self.trace_event("end_op", completed=self.ops_completed)
        self.wake_watchers()

    def reset(self) -> None:
        self.end_op = False
        self.busy = False
        self.ops_completed = 0


class _Phase(enum.Enum):
    COLLECT = "collect"
    COMPUTE = "compute"
    EMIT = "emit"
    DONE = "done"


#: computes output word lists from input word lists (one list per port)
ComputeFn = Callable[[List[List[int]]], List[List[int]]]


class StreamingRAC(RAC):
    """Collect / compute / emit accelerator behaviour.

    Parameters
    ----------
    items_in:
        Words consumed per operation on each input port.
    items_out:
        Words produced per operation on each output port.
    compute_fn:
        Pure function mapping collected input words to output words
        (bit-exact datapath model).
    compute_latency:
        Cycles between the last input word and the first output word
        (the paper's ``Lat.`` column).
    input_rate / output_rate:
        Port words moved per cycle while streaming.
    autostart:
        When True (default) the accelerator consumes input as soon as
        it appears in the FIFOs -- the behaviour Figure 4's microcode
        relies on (eight ``mvtc`` fill transfers before ``execs``).
        When False, collection begins only at ``start_op``.
    """

    kind = "streaming"

    def __init__(
        self,
        name: str,
        items_in: Sequence[int],
        items_out: Sequence[int],
        compute_fn: ComputeFn,
        compute_latency: int = 1,
        input_rate: int = 1,
        output_rate: int = 1,
        autostart: bool = True,
        ports: Optional[RACPortSpec] = None,
    ) -> None:
        n_in = len(items_in)
        n_out = len(items_out)
        if ports is None:
            ports = RACPortSpec([32] * n_in, [32] * n_out)
        if len(ports.input_widths) != n_in or len(ports.output_widths) != n_out:
            raise ConfigurationError(f"{name}: port/item count mismatch")
        if compute_latency < 0:
            raise ConfigurationError("compute_latency must be >= 0")
        if input_rate < 1 or output_rate < 1:
            raise ConfigurationError("streaming rates must be >= 1")
        super().__init__(name, ports)
        self.items_in = list(items_in)
        self.items_out = list(items_out)
        self.compute_fn = compute_fn
        self.compute_latency = compute_latency
        self.input_rate = input_rate
        self.output_rate = output_rate
        self.autostart = autostart
        self._phase = _Phase.DONE
        self._collected: List[List[int]] = []
        self._to_emit: List[List[int]] = []
        self._emitted: List[int] = []
        self._compute_timer = 0

    # -- handshake ---------------------------------------------------------
    def start_op(self) -> None:
        super().start_op()
        if self._phase is _Phase.DONE:
            self._begin_collect()

    def _begin_collect(self) -> None:
        self._phase = _Phase.COLLECT
        self._collected = [[] for _ in self.items_in]
        self._to_emit = []
        self._emitted = []

    # -- quiescence protocol -------------------------------------------------
    def next_activity(self):
        if self._phase is _Phase.DONE:
            if self.autostart and any(not f.empty for f in self.inputs):
                return self.now
            return None  # woken by data arriving or by start_op
        if self._phase is _Phase.COLLECT:
            complete = True
            for port, fifo in enumerate(self.inputs):
                if len(self._collected[port]) < self.items_in[port]:
                    complete = False
                    if fifo.occupancy > 0:
                        return self.now  # words to take this cycle
            # complete: the transition to COMPUTE is due this cycle;
            # otherwise starved until a FIFO fills
            return self.now if complete else None
        if self._phase is _Phase.COMPUTE:
            # pure pipeline-latency burn-down; compute fires at expiry
            return self.now + self._compute_timer
        # EMIT: progress whenever any unfinished port has FIFO space
        for port, fifo in enumerate(self.outputs):
            if self._emitted[port] < self.items_out[port] and fifo.can_push():
                return self.now
        return None  # all remaining output FIFOs are full

    def on_skip(self, cycles: int) -> None:
        if self._phase is _Phase.COMPUTE:
            self._compute_timer -= cycles

    # -- per-cycle behaviour -----------------------------------------------
    def tick(self) -> None:
        if self._phase is _Phase.DONE:
            if self.autostart and any(not f.empty for f in self.inputs):
                self._begin_collect()
            else:
                return
        if self._phase is _Phase.COLLECT:
            self._tick_collect()
        elif self._phase is _Phase.COMPUTE:
            self._tick_compute()
        if self._phase is _Phase.EMIT:
            self._tick_emit()

    def _tick_collect(self) -> None:
        done = True
        for port, fifo in enumerate(self.inputs):
            need = self.items_in[port] - len(self._collected[port])
            take = min(need, self.input_rate, fifo.occupancy)
            if take:
                self._collected[port].extend(fifo.pop_many(take))
                self.stats.incr("words_in", take)
            if len(self._collected[port]) < self.items_in[port]:
                done = False
        if done:
            self._phase = _Phase.COMPUTE
            self._compute_timer = self.compute_latency
            self.trace_event("collect_done")

    def _tick_compute(self) -> None:
        if self._compute_timer > 0:
            self._compute_timer -= 1
            return
        outputs = self.compute_fn(self._collected)
        if len(outputs) != len(self.items_out):
            raise RACError(
                f"{self.name}: compute_fn returned {len(outputs)} ports, "
                f"expected {len(self.items_out)}"
            )
        for port, words in enumerate(outputs):
            if len(words) != self.items_out[port]:
                raise RACError(
                    f"{self.name}: compute_fn port {port} produced "
                    f"{len(words)} words, expected {self.items_out[port]}"
                )
        self._to_emit = [list(w) for w in outputs]
        self._emitted = [0] * len(outputs)
        self._phase = _Phase.EMIT
        self.trace_event("compute_done")

    def _tick_emit(self) -> None:
        all_done = True
        for port, fifo in enumerate(self.outputs):
            sent = self._emitted[port]
            total = self.items_out[port]
            budget = self.output_rate
            while sent < total and budget and fifo.can_push():
                fifo.push(self._to_emit[port][sent])
                sent += 1
                budget -= 1
                self.stats.incr("words_out")
            self._emitted[port] = sent
            if sent < total:
                all_done = False
        if all_done:
            self._phase = _Phase.DONE
            self._finish_op()

    # -- hot-mode batch lane -------------------------------------------------
    #: the kernel may grant this RAC whole runs of cycles when it is
    #: the only component due (see :meth:`tick_batch`)
    can_batch = True

    def tick_batch(self, budget: int) -> int:
        """Fast-forward up to ``budget`` consecutive streaming ticks.

        Granted only in hot mode (no trace) with this RAC the sole due
        component, so nothing can observe the intermediate per-cycle
        FIFO states; the aggregate state after ``consumed`` cycles is
        bit-identical to ``consumed`` naive ticks.  Batches are bounded
        by the armed FIFO stall watches (:meth:`FIFO.pop_crossing` /
        :meth:`FIFO.push_crossing`) so a stalled controller resumes on
        exactly the naive cycle.  Anything non-streaming (multi-port
        RACs, overridden ``tick``) falls back to a single tick.
        """
        if (len(self.inputs) != 1 or len(self.outputs) != 1
                or type(self).tick is not StreamingRAC.tick):
            self.tick()
            return 1
        if self._phase is _Phase.COLLECT:
            return self._batch_collect(budget)
        if self._phase is _Phase.EMIT:
            return self._batch_emit(budget)
        # DONE (autostart pickup) and COMPUTE (timer expiry) are
        # single-tick transitions
        self.tick()
        return 1

    def _batch_collect(self, budget: int) -> int:
        fifo = self.inputs[0]
        need = self.items_in[0] - len(self._collected[0])
        avail = min(need, fifo.occupancy)
        if avail < 1:  # pragma: no cover - due implies words or done
            self.tick()
            return 1
        rate = self.input_rate
        cycles = -(-avail // rate)
        crossing = fifo.pop_crossing()
        if crossing is not None:
            cycles = min(cycles, -(-crossing // rate))
        cycles = min(cycles, budget)
        words = min(avail, cycles * rate)
        self._collected[0].extend(fifo.slab_pop_now(words))
        self.stats.incr("words_in", words)
        if len(self._collected[0]) >= self.items_in[0]:
            # the tick that takes the last word also transitions
            self._phase = _Phase.COMPUTE
            self._compute_timer = self.compute_latency
            self.trace_event("collect_done")
        return cycles

    def _batch_emit(self, budget: int) -> int:
        fifo = self.outputs[0]
        remaining = self.items_out[0] - self._emitted[0]
        room = min(remaining, fifo.free_push_words)
        if room < 1:  # pragma: no cover - due implies space or done
            self.tick()
            return 1
        rate = self.output_rate
        cycles = -(-room // rate)
        crossing = fifo.push_crossing()
        if crossing is not None:
            cycles = min(cycles, -(-crossing // rate))
        cycles = min(cycles, budget)
        words = min(room, cycles * rate)
        sent = self._emitted[0]
        fifo.slab_push_now(self._to_emit[0][sent:sent + words])
        fifo.note_high_water()
        self._emitted[0] = sent + words
        self.stats.incr("words_out", words)
        if self._emitted[0] >= self.items_out[0]:
            # finish on the same tick as the last push, like the
            # naive emit loop
            self._phase = _Phase.DONE
            self._finish_op()
        return cycles

    def reset(self) -> None:
        super().reset()
        self._phase = _Phase.DONE
        self._collected = []
        self._to_emit = []
        self._emitted = []
        self._compute_timer = 0
