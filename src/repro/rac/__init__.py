"""Accelerator substrate: FIFOs, RAC framework, and concrete RACs."""

from .base import RAC, RACPortSpec, StreamingRAC
from .dft import DFTRac, dft_latency
from .fifo import FIFO
from .fir import FIRRac, fir_q15
from .hls import HLSInterfaceSpec, wrap_function
from .idct import IDCT_PIPELINE_LATENCY, IDCTRac
from .matmul import MatMulRac, matmul_q15
from .scale import PassthroughRac, ScaleRac

__all__ = [
    "DFTRac",
    "FIFO",
    "FIRRac",
    "HLSInterfaceSpec",
    "IDCTRac",
    "IDCT_PIPELINE_LATENCY",
    "MatMulRac",
    "matmul_q15",
    "PassthroughRac",
    "RAC",
    "RACPortSpec",
    "ScaleRac",
    "StreamingRAC",
    "dft_latency",
    "fir_q15",
    "wrap_function",
]
