"""Variable-width FIFOs with (de)serialization.

Figure 2 of the paper shows the RAC integration pattern: the Ouessant
project "provides variable width FIFOs, which can be used to interface
with many accelerators.  They provide serializing and deserializing
functionalities, and can thus serve as simple data formatting entities"
-- e.g. a 32-bit bus side feeding a 96-bit accelerator port.

:class:`FIFO` implements exactly that: the push side and pop side may
have different widths (any pair with an integer bit ratio through their
GCD), and words are re-chunked little-endian-first.  Pushes performed
during a cycle become visible to the pop side on the *next* cycle
(registered full/empty flags), matching synchronous FIFO behaviour.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.errors import ConfigurationError, FIFOError
from ..sim.kernel import Component
from ..sim.tracing import Stats


class FIFO(Component):
    """Synchronous FIFO with independent push/pop widths.

    Parameters
    ----------
    width_push / width_pop:
        Bit widths of the two ports.  Both must be multiples of their
        GCD such that each port word maps to a whole number of internal
        atoms (always true by GCD construction); widths of 8..1024 bits
        are accepted.
    depth:
        Capacity in *pop-side* words.

    Data is re-chunked least-significant-atom first: pushing 32-bit
    words ``w0, w1, w2`` into a 96-bit pop port yields the single word
    ``w2 << 64 | w1 << 32 | w0``.
    """

    def __init__(
        self,
        name: str,
        width_push: int = 32,
        width_pop: int = 32,
        depth: int = 64,
    ) -> None:
        super().__init__(name)
        for width in (width_push, width_pop):
            if not 8 <= width <= 1024:
                raise ConfigurationError(f"FIFO width {width} out of range")
        if depth < 1:
            raise ConfigurationError(f"FIFO depth {depth} must be >= 1")
        self.width_push = width_push
        self.width_pop = width_pop
        self.depth = depth
        self._atom_bits = math.gcd(width_push, width_pop)
        self._push_ratio = width_push // self._atom_bits
        self._pop_ratio = width_pop // self._atom_bits
        self._capacity_atoms = depth * self._pop_ratio
        self._atoms: List[int] = []
        self._staged: List[int] = []
        self._pops_pending = 0
        #: windowed occupancy maximum, resettable by the perf-counter
        #: block at run start (the cumulative gauge lives in ``stats``)
        self.high_water_atoms = 0
        self.stats = Stats()

    # -- capacity ----------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Complete pop-side words currently available."""
        return len(self._atoms) // self._pop_ratio

    @property
    def occupancy_atoms(self) -> int:
        return len(self._atoms)

    @property
    def free_push_words(self) -> int:
        """How many push-side words fit right now (staged included)."""
        used = len(self._atoms) + len(self._staged)
        return (self._capacity_atoms - used) // self._push_ratio

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    @property
    def full(self) -> bool:
        return self.free_push_words == 0

    def can_push(self, count: int = 1) -> bool:
        return self.free_push_words >= count

    def can_pop(self, count: int = 1) -> bool:
        return self.occupancy >= count

    # -- data --------------------------------------------------------------
    def push(self, value: int) -> None:
        """Stage one push-side word (visible to pop side next cycle)."""
        if not self.can_push():
            raise FIFOError(f"push to full FIFO {self.name}")
        if value < 0 or value >> self.width_push:
            raise FIFOError(
                f"value {value:#x} does not fit {self.width_push} bits"
            )
        atom_mask = (1 << self._atom_bits) - 1
        for i in range(self._push_ratio):
            self._staged.append((value >> (i * self._atom_bits)) & atom_mask)
        self.stats.incr("pushes")

    def push_many(self, values: List[int]) -> None:
        for value in values:
            self.push(value)

    def pop(self) -> int:
        """Remove and return one pop-side word."""
        if not self.can_pop():
            raise FIFOError(f"pop from empty FIFO {self.name}")
        value = 0
        for i in range(self._pop_ratio):
            value |= self._atoms.pop(0) << (i * self._atom_bits)
        self.stats.incr("pops")
        self._pops_pending += 1
        return value

    def pop_many(self, count: int) -> List[int]:
        return [self.pop() for _ in range(count)]

    def peek(self) -> int:
        """Next pop-side word without removing it."""
        if not self.can_pop():
            raise FIFOError(f"peek on empty FIFO {self.name}")
        value = 0
        for i in range(self._pop_ratio):
            value |= self._atoms[i] << (i * self._atom_bits)
        return value

    def drain(self) -> List[int]:
        """Pop everything currently visible (testing convenience)."""
        return self.pop_many(self.occupancy)

    # -- clocked behaviour ------------------------------------------------
    def next_activity(self):
        # a FIFO acts only in commit, and only when a push staged data
        # or a pop awaits its trace flush this cycle; otherwise it is
        # idle until some other component pushes or pops (which makes
        # that component active anyway)
        return self.now if (self._staged or self._pops_pending) else None

    def commit(self) -> None:
        if self._pops_pending:
            # pops only happen inside an *active* consumer's tick, so
            # flushing here never records during a declared-idle window
            self._record("pop", words=self._pops_pending,
                         occupancy_atoms=len(self._atoms))
            self._pops_pending = 0
        if self._staged:
            staged = len(self._staged)
            self._atoms.extend(self._staged)
            self._staged.clear()
            occupancy = len(self._atoms)
            self.stats.maximize("max_occupancy_atoms", occupancy)
            if occupancy > self.high_water_atoms:
                self.high_water_atoms = occupancy
            self._record("commit", atoms=staged,
                         occupancy_atoms=occupancy)

    def _record(self, event: str, **data: object) -> None:
        """Trace without claiming activity.

        Unlike :meth:`Component.trace_event` this leaves
        ``sim.last_active`` alone: FIFO plumbing events should not
        displace the component a deadlock diagnostic would name.
        """
        if self.sim is not None and self.sim.trace is not None:
            self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def clear_high_water(self) -> None:
        """Restart the windowed occupancy maximum (perf-counter clear)."""
        self.high_water_atoms = len(self._atoms)

    def reset(self) -> None:
        self._atoms.clear()
        self._staged.clear()
        self._pops_pending = 0
        self.high_water_atoms = 0
        self.stats = Stats()

    # -- sizing (for the synthesis estimator) -------------------------------
    @property
    def storage_bits(self) -> int:
        return self._capacity_atoms * self._atom_bits
