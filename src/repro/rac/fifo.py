"""Variable-width FIFOs with (de)serialization.

Figure 2 of the paper shows the RAC integration pattern: the Ouessant
project "provides variable width FIFOs, which can be used to interface
with many accelerators.  They provide serializing and deserializing
functionalities, and can thus serve as simple data formatting entities"
-- e.g. a 32-bit bus side feeding a 96-bit accelerator port.

:class:`FIFO` implements exactly that: the push side and pop side may
have different widths (any pair with an integer bit ratio through their
GCD), and words are re-chunked little-endian-first.  Pushes performed
during a cycle become visible to the pop side on the *next* cycle
(registered full/empty flags), matching synchronous FIFO behaviour.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.errors import ConfigurationError, FIFOError
from ..sim.kernel import Component
from ..sim.tracing import Stats


class FIFO(Component):
    """Synchronous FIFO with independent push/pop widths.

    Parameters
    ----------
    width_push / width_pop:
        Bit widths of the two ports.  Both must be multiples of their
        GCD such that each port word maps to a whole number of internal
        atoms (always true by GCD construction); widths of 8..1024 bits
        are accepted.
    depth:
        Capacity in *pop-side* words.

    Data is re-chunked least-significant-atom first: pushing 32-bit
    words ``w0, w1, w2`` into a 96-bit pop port yields the single word
    ``w2 << 64 | w1 << 32 | w0``.
    """

    def __init__(
        self,
        name: str,
        width_push: int = 32,
        width_pop: int = 32,
        depth: int = 64,
    ) -> None:
        super().__init__(name)
        for width in (width_push, width_pop):
            if not 8 <= width <= 1024:
                raise ConfigurationError(f"FIFO width {width} out of range")
        if depth < 1:
            raise ConfigurationError(f"FIFO depth {depth} must be >= 1")
        self.width_push = width_push
        self.width_pop = width_pop
        self.depth = depth
        self._atom_bits = math.gcd(width_push, width_pop)
        self._push_ratio = width_push // self._atom_bits
        self._pop_ratio = width_pop // self._atom_bits
        self._capacity_atoms = depth * self._pop_ratio
        # ``_atoms[_head:]`` is the live contents; pops advance ``_head``
        # (O(1)) and the dead prefix is compacted away periodically
        self._atoms: List[int] = []
        self._head = 0
        self._staged: List[int] = []
        self._pops_pending = 0
        # stall watches: a producer stalled until ``free_push_words >=
        # _min_free_watch`` / a consumer stalled until ``occupancy >=
        # _min_occ_watch``.  They bound the hot-mode batch lane (the
        # batch must end on the exact cycle the threshold crosses so the
        # watcher resumes on the same cycle as the naive schedule).
        self._min_free_watch: Optional[int] = None
        self._min_occ_watch: Optional[int] = None
        #: windowed occupancy maximum, resettable by the perf-counter
        #: block at run start (the cumulative gauge lives in ``stats``)
        self.high_water_atoms = 0
        self.stats = Stats()

    # -- capacity ----------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Complete pop-side words currently available."""
        return (len(self._atoms) - self._head) // self._pop_ratio

    @property
    def occupancy_atoms(self) -> int:
        return len(self._atoms) - self._head

    @property
    def free_push_words(self) -> int:
        """How many push-side words fit right now (staged included)."""
        used = len(self._atoms) - self._head + len(self._staged)
        return (self._capacity_atoms - used) // self._push_ratio

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    @property
    def full(self) -> bool:
        return self.free_push_words == 0

    def can_push(self, count: int = 1) -> bool:
        return self.free_push_words >= count

    def can_pop(self, count: int = 1) -> bool:
        return self.occupancy >= count

    # -- data --------------------------------------------------------------
    def push(self, value: int) -> None:
        """Stage one push-side word (visible to pop side next cycle)."""
        if not self.can_push():
            raise FIFOError(f"push to full FIFO {self.name}")
        if value < 0 or value >> self.width_push:
            raise FIFOError(
                f"value {value:#x} does not fit {self.width_push} bits"
            )
        atom_mask = (1 << self._atom_bits) - 1
        for i in range(self._push_ratio):
            self._staged.append((value >> (i * self._atom_bits)) & atom_mask)
        self.stats.incr("pushes")
        self.poke()

    def push_many(self, values: List[int]) -> None:
        """Stage a slab of push-side words in one array operation.

        Semantics are identical to pushing the words one at a time: the
        accepted prefix stays staged when a later word fails, and the
        exception raised is the one the per-word loop would raise for
        the first offending word.
        """
        if type(self).push is not FIFO.push:
            # a subclass interposes on push (fault injection) -- keep
            # the per-word path so it sees every word
            for value in values:
                self.push(value)
            return
        n = len(values)
        if n == 0:
            return
        fit = min(n, self.free_push_words)
        accepted = values if fit == n else values[:fit]
        if accepted and (
            min(accepted) < 0 or max(accepted) >> self.width_push
        ):
            # rare slow path: stage the valid prefix and raise at the
            # first offender, exactly like the per-word loop
            for value in accepted:
                self.push(value)  # raises at the offender
            raise AssertionError("unreachable")  # pragma: no cover
        if self._push_ratio == 1:
            self._staged.extend(accepted)
        else:
            atom_mask = (1 << self._atom_bits) - 1
            staged = self._staged
            for value in accepted:
                for i in range(self._push_ratio):
                    staged.append((value >> (i * self._atom_bits)) & atom_mask)
        self.stats.incr("pushes", fit)
        self.poke()
        if fit < n:
            raise FIFOError(f"push to full FIFO {self.name}")

    def pop(self) -> int:
        """Remove and return one pop-side word."""
        if not self.can_pop():
            raise FIFOError(f"pop from empty FIFO {self.name}")
        head = self._head
        if self._pop_ratio == 1:
            value = self._atoms[head]
        else:
            value = 0
            for i in range(self._pop_ratio):
                value |= self._atoms[head + i] << (i * self._atom_bits)
        self._head = head + self._pop_ratio
        self._maybe_compact()
        self.stats.incr("pops")
        self._pops_pending += 1
        self.wake_watchers()
        return value

    def pop_many(self, count: int) -> List[int]:
        """Remove a slab of pop-side words in one array operation.

        Identical to popping one at a time: if fewer than ``count``
        words are available the available ones are consumed, then the
        per-word empty-FIFO error is raised.
        """
        if type(self).pop is not FIFO.pop:
            return [self.pop() for _ in range(count)]
        if count <= 0:
            return []
        avail = self.occupancy
        take = min(count, avail)
        values = self._take_words(take)
        if take < count:
            raise FIFOError(f"pop from empty FIFO {self.name}")
        return values

    def _take_words(self, count: int) -> List[int]:
        """Slab-remove ``count`` available pop-side words (no checks)."""
        if count <= 0:
            return []
        head = self._head
        ratio = self._pop_ratio
        end = head + count * ratio
        if ratio == 1:
            values = self._atoms[head:end]
        else:
            bits = self._atom_bits
            atoms = self._atoms
            values = []
            for base in range(head, end, ratio):
                value = 0
                for i in range(ratio):
                    value |= atoms[base + i] << (i * bits)
                values.append(value)
        self._head = end
        self._maybe_compact()
        self.stats.incr("pops", count)
        self._pops_pending += count
        self.wake_watchers()
        return values

    def _maybe_compact(self) -> None:
        head = self._head
        if head > 512 and head * 2 > len(self._atoms):
            del self._atoms[:head]
            self._head = 0

    def peek(self) -> int:
        """Next pop-side word without removing it."""
        if not self.can_pop():
            raise FIFOError(f"peek on empty FIFO {self.name}")
        head = self._head
        value = 0
        for i in range(self._pop_ratio):
            value |= self._atoms[head + i] << (i * self._atom_bits)
        return value

    def drain(self) -> List[int]:
        """Pop everything currently visible (testing convenience)."""
        return self.pop_many(self.occupancy)

    # -- stall watches (vectorized batch bounds) ---------------------------
    def set_free_watch(self, words: Optional[int]) -> None:
        """Arm (or clear) a stalled producer's free-space threshold."""
        self._min_free_watch = words

    def set_occ_watch(self, words: Optional[int]) -> None:
        """Arm (or clear) a stalled consumer's occupancy threshold."""
        self._min_occ_watch = words

    def pop_crossing(self) -> Optional[int]:
        """Pops after which an armed free-space watch first crosses.

        Returns the smallest ``k >= 1`` such that popping ``k`` words
        makes ``free_push_words >= _min_free_watch``, or ``None`` when
        no producer watch is armed.  A batching consumer must not pop
        more than ``k`` words past this cycle boundary in one host
        call, so the stalled producer resumes on the naive cycle.
        """
        watch = self._min_free_watch
        if watch is None:
            return None
        have = self._capacity_atoms - self.occupancy_atoms - len(self._staged)
        need = watch * self._push_ratio - have
        if need <= 0:
            return 1
        return max(1, -(-need // self._pop_ratio))

    def push_crossing(self) -> Optional[int]:
        """Pushes after which an armed occupancy watch first crosses.

        Smallest ``k >= 1`` such that ``k`` more committed push-side
        words make ``occupancy >= _min_occ_watch`` (``None`` when no
        consumer watch is armed).
        """
        watch = self._min_occ_watch
        if watch is None:
            return None
        need = watch * self._pop_ratio - self.occupancy_atoms
        if need <= 0:
            return 1
        return max(1, -(-need // self._push_ratio))

    # -- hot-mode slab transfers -------------------------------------------
    def slab_push_now(self, values: List[int]) -> None:
        """Publish a slab directly (hot batch lane only; no staging).

        Only legal while the pushing component is the sole component
        executing (the kernel's batch grant): nothing else can observe
        the intermediate states, so skipping the stage/commit round
        trip is unobservable.  High-water marks are reconciled by the
        caller via :meth:`note_high_water` at batch end (occupancy is
        monotone within one batch direction).
        """
        atoms = self._atoms
        if self._push_ratio == 1:
            atoms.extend(values)
        else:
            atom_mask = (1 << self._atom_bits) - 1
            for value in values:
                for i in range(self._push_ratio):
                    atoms.append((value >> (i * self._atom_bits)) & atom_mask)
        self.stats.incr("pushes", len(values))
        self.wake_watchers()

    def slab_pop_now(self, count: int) -> List[int]:
        """Slab-remove without the trace round trip (hot batch lane)."""
        values = self._take_words(count)
        self._pops_pending = 0  # hot mode: no trace flush to schedule
        return values

    def note_high_water(self) -> None:
        """Fold the current occupancy into the high-water gauges."""
        occupancy = self.occupancy_atoms
        self.stats.maximize("max_occupancy_atoms", occupancy)
        if occupancy > self.high_water_atoms:
            self.high_water_atoms = occupancy

    # -- clocked behaviour ------------------------------------------------
    def next_activity(self):
        # a FIFO acts only in commit, and only when a push staged data
        # or a pop awaits its trace flush this cycle; otherwise it is
        # idle until some other component pushes or pops (which makes
        # that component active anyway)
        return self.now if (self._staged or self._pops_pending) else None

    def commit(self) -> None:
        if self._pops_pending:
            # pops only happen inside an *active* consumer's tick, so
            # flushing here never records during a declared-idle window
            self._record("pop", words=self._pops_pending,
                         occupancy_atoms=self.occupancy_atoms)
            self._pops_pending = 0
        if self._staged:
            staged = len(self._staged)
            self._atoms.extend(self._staged)
            self._staged.clear()
            occupancy = self.occupancy_atoms
            self.stats.maximize("max_occupancy_atoms", occupancy)
            if occupancy > self.high_water_atoms:
                self.high_water_atoms = occupancy
            self._record("commit", atoms=staged,
                         occupancy_atoms=occupancy)
            # newly published words may unstall a watching consumer
            self.wake_watchers()

    def _record(self, event: str, **data: object) -> None:
        """Trace without claiming activity.

        Unlike :meth:`Component.trace_event` this leaves
        ``sim.last_active`` alone: FIFO plumbing events should not
        displace the component a deadlock diagnostic would name.
        """
        if self.sim is not None and self.sim.trace is not None:
            self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def clear_high_water(self) -> None:
        """Restart the windowed occupancy maximum (perf-counter clear)."""
        self.high_water_atoms = self.occupancy_atoms

    def reset(self) -> None:
        self._atoms.clear()
        self._head = 0
        self._staged.clear()
        self._pops_pending = 0
        self._min_free_watch = None
        self._min_occ_watch = None
        self.high_water_atoms = 0
        self.stats = Stats()

    # -- sizing (for the synthesis estimator) -------------------------------
    @property
    def storage_bits(self) -> int:
        return self._capacity_atoms * self._atom_bits
