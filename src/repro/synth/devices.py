"""FPGA device capacity models and utilization reports.

"Implementation of the architecture on different FPGA resources show
very low footprint" -- this module provides the device side of that
claim: capacity tables for the paper's Artix-7 (Nexys4) plus the other
families Ouessant targets (Spartan-6 Leon3 boards, the future-work
Zynq, and an Altera part to show vendor portability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.errors import ConfigurationError
from .resources import ResourceEstimate


@dataclass(frozen=True)
class Device:
    """Capacity of one FPGA."""

    name: str
    luts: int
    ffs: int
    bram18: int
    dsps: int

    def utilization(self, estimate: ResourceEstimate) -> Dict[str, float]:
        """Fraction of each resource the estimate consumes."""
        return {
            "luts": estimate.luts / self.luts,
            "ffs": estimate.ffs / self.ffs,
            "bram18": estimate.bram18 / self.bram18 if self.bram18 else 0.0,
            "dsps": estimate.dsps / self.dsps if self.dsps else 0.0,
        }

    def fits(self, estimate: ResourceEstimate) -> bool:
        return all(value <= 1.0 for value in self.utilization(estimate).values())


#: the paper's board: Digilent Nexys4, Artix-7 100T
ARTIX7_100T = Device("xc7a100t", luts=63_400, ffs=126_800, bram18=270, dsps=240)
#: common Leon3 target of the era
SPARTAN6_LX45 = Device("xc6slx45", luts=27_288, ffs=54_576, bram18=116, dsps=58)
#: the future-work Zynq part (PL side of a Zedboard)
ZYNQ_7020 = Device("xc7z020", luts=53_200, ffs=106_400, bram18=280, dsps=220)
#: Altera/Intel part, LE-based (LEs mapped 1 LE ~ 1 LUT4 ~ 0.8 LUT6)
CYCLONE_IV_75 = Device("ep4ce75", luts=60_000, ffs=60_000, bram18=137, dsps=200)

ALL_DEVICES: List[Device] = [
    ARTIX7_100T,
    SPARTAN6_LX45,
    ZYNQ_7020,
    CYCLONE_IV_75,
]


def device_by_name(name: str) -> Device:
    for device in ALL_DEVICES:
        if device.name == name:
            return device
    known = ", ".join(d.name for d in ALL_DEVICES)
    raise ConfigurationError(f"unknown device {name!r} (known: {known})")


def utilization_report(
    estimates: Dict[str, ResourceEstimate], device: Device = ARTIX7_100T
) -> str:
    """Text table of component estimates + utilization on a device."""
    lines = [
        f"resource report on {device.name}",
        f"{'component':<24} {'LUT':>7} {'FF':>7} {'BRAM18':>7} {'DSP':>5}",
    ]
    total = ResourceEstimate()
    for name, estimate in estimates.items():
        total = total + estimate
        lines.append(
            f"{name:<24} {estimate.luts:>7} {estimate.ffs:>7} "
            f"{estimate.bram18:>7} {estimate.dsps:>5}"
        )
    lines.append(
        f"{'TOTAL':<24} {total.luts:>7} {total.ffs:>7} "
        f"{total.bram18:>7} {total.dsps:>5}"
    )
    util = device.utilization(total)
    lines.append(
        "utilization: "
        + ", ".join(f"{key} {100 * value:.1f}%" for key, value in util.items())
    )
    return "\n".join(lines)
