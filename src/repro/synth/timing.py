"""Static timing model: can the OCP close at 50 MHz?

Section V-A: "System clock frequency has been set to 50 MHz for all
configurations, and no timing errors were left according to Xilinx
tools."  This module reproduces that check structurally: each OCP
component declares its worst logic depth (levels of LUT logic between
flip-flops), the device technology supplies per-level delays, and
:func:`timing_report` verifies the achievable Fmax against a clock
constraint.

Like the area estimator, these are engineering estimates -- the
reproduced claim is the *comparison* (every part comfortably clears
50 MHz; the critical path is the interface's translation adder + bank
mux, not the controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.coprocessor import OuessantCoprocessor
from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class Technology:
    """Per-device timing parameters (ns)."""

    name: str
    lut_delay: float        # one LUT6 level
    net_delay: float        # average routing per level
    clk_to_q: float
    setup: float

    def path_ns(self, levels: int) -> float:
        if levels < 0:
            raise ConfigurationError("negative logic depth")
        return (self.clk_to_q + self.setup
                + levels * (self.lut_delay + self.net_delay))

    def fmax_mhz(self, levels: int) -> float:
        return 1000.0 / self.path_ns(levels)


#: 7-series (Artix-7, -1 speed grade) and Spartan-6 figures
ARTIX7_TECH = Technology("artix7-1", lut_delay=0.45, net_delay=0.60,
                         clk_to_q=0.45, setup=0.25)
SPARTAN6_TECH = Technology("spartan6-2", lut_delay=0.60, net_delay=0.80,
                           clk_to_q=0.50, setup=0.35)


@dataclass(frozen=True)
class PathEstimate:
    """One component's critical path."""

    component: str
    levels: int
    path_ns: float
    fmax_mhz: float

    def meets(self, clock_mhz: float) -> bool:
        return self.fmax_mhz >= clock_mhz


#: worst logic depth per OCP hierarchy level (LUT levels between FFs)
_COMPONENT_DEPTHS: Dict[str, int] = {
    # 32-bit translation adder (carry chain counts ~1 level per 8 bits)
    # feeding the 8:1 bank mux: the documented critical path
    "interface.translate": 6,
    "interface.slave_fsm": 3,
    "controller.decode": 4,
    "controller.next_state": 4,
    "controller.loop_ofr": 5,
    "fifo.pointers": 3,
    "fifo.serdes": 2,
}


def component_paths(technology: Technology = ARTIX7_TECH) -> List[PathEstimate]:
    """Critical-path estimate of every OCP hierarchy level."""
    return [
        PathEstimate(
            component=name,
            levels=levels,
            path_ns=round(technology.path_ns(levels), 3),
            fmax_mhz=round(technology.fmax_mhz(levels), 1),
        )
        for name, levels in _COMPONENT_DEPTHS.items()
    ]


@dataclass
class TimingReport:
    """Whole-OCP timing closure summary."""

    technology: str
    clock_mhz: float
    paths: List[PathEstimate]

    @property
    def critical(self) -> PathEstimate:
        return min(self.paths, key=lambda p: p.fmax_mhz)

    @property
    def fmax_mhz(self) -> float:
        return self.critical.fmax_mhz

    @property
    def closes(self) -> bool:
        """True when "no timing errors were left"."""
        return all(path.meets(self.clock_mhz) for path in self.paths)

    @property
    def slack_ns(self) -> float:
        period = 1000.0 / self.clock_mhz
        return round(period - self.critical.path_ns, 3)

    def render(self) -> str:
        lines = [
            f"timing on {self.technology} at {self.clock_mhz:.0f} MHz "
            f"(period {1000.0 / self.clock_mhz:.1f} ns)",
            f"{'path':<26} {'levels':>6} {'ns':>7} {'Fmax':>8}",
        ]
        for path in sorted(self.paths, key=lambda p: -p.path_ns):
            lines.append(
                f"{path.component:<26} {path.levels:>6} "
                f"{path.path_ns:>7.3f} {path.fmax_mhz:>7.1f}M"
            )
        verdict = "MET" if self.closes else "VIOLATED"
        lines.append(
            f"constraint {verdict}: worst slack {self.slack_ns} ns "
            f"({self.critical.component})"
        )
        return "\n".join(lines)


def timing_report(
    ocp: OuessantCoprocessor,
    clock_mhz: float = 50.0,
    technology: Technology = ARTIX7_TECH,
) -> TimingReport:
    """Timing closure check for one OCP (RAC excluded -- user logic)."""
    if clock_mhz <= 0:
        raise ConfigurationError("clock must be positive")
    paths = component_paths(technology)
    if any(f.width_push != f.width_pop for f in ocp.fifos_in + ocp.fifos_out):
        # width conversion adds a shift/select level to the serdes path
        paths = [
            PathEstimate(
                component=p.component,
                levels=p.levels + 1,
                path_ns=round(technology.path_ns(p.levels + 1), 3),
                fmax_mhz=round(technology.fmax_mhz(p.levels + 1), 1),
            ) if p.component == "fifo.serdes" else p
            for p in paths
        ]
    return TimingReport(
        technology=technology.name, clock_mhz=clock_mhz, paths=paths
    )
