"""Structural FPGA resource algebra.

The paper evaluates footprint with Xilinx synthesis + "Keep Hierarchy",
reporting LUT/FF/BRAM per component.  We reproduce the *methodology*
structurally: every simulated component declares the RTL primitives it
would synthesize to (registers, adders, muxes, FSMs, RAMs) and the
formulas here convert primitives to 7-series-style LUT/FF/BRAM/DSP
counts.  Absolute numbers are estimates; the comparisons (OCP small vs
accelerator, which OCP part dominates) are the reproduced result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT/FF/BRAM/DSP usage of one component (or a sum of them)."""

    luts: int = 0
    ffs: int = 0
    bram18: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.bram18 + other.bram18,
            self.dsps + other.dsps,
        )

    def __mul__(self, factor: int) -> "ResourceEstimate":
        return ResourceEstimate(
            self.luts * factor,
            self.ffs * factor,
            self.bram18 * factor,
            self.dsps * factor,
        )

    __rmul__ = __mul__

    def __str__(self) -> str:
        return (
            f"{self.luts} LUT, {self.ffs} FF, "
            f"{self.bram18} BRAM18, {self.dsps} DSP"
        )


ZERO = ResourceEstimate()


def register(bits: int) -> ResourceEstimate:
    """A plain register: one FF per bit."""
    return ResourceEstimate(ffs=bits)


def adder(bits: int) -> ResourceEstimate:
    """Ripple-carry adder in carry chains: ~1 LUT per bit."""
    return ResourceEstimate(luts=bits)


def counter(bits: int) -> ResourceEstimate:
    """Loadable counter: register + increment logic."""
    return ResourceEstimate(luts=bits, ffs=bits)


def comparator(bits: int) -> ResourceEstimate:
    """Equality/magnitude comparator: ~1 LUT per 2 bits + combine."""
    return ResourceEstimate(luts=max(1, bits // 2 + 1))


def mux(ways: int, bits: int) -> ResourceEstimate:
    """N:1 multiplexer: a LUT6 covers a 4:1 slice per bit."""
    if ways <= 1:
        return ZERO
    levels = math.ceil((ways - 1) / 3)  # 4:1 per LUT, tree combine
    return ResourceEstimate(luts=bits * max(1, levels))


def decoder(outputs: int) -> ResourceEstimate:
    """Address/one-hot decoder."""
    return ResourceEstimate(luts=max(1, outputs))


def fsm(states: int, outputs: int = 4) -> ResourceEstimate:
    """Small Moore FSM: state register + next-state/output logic."""
    state_bits = max(1, math.ceil(math.log2(max(2, states))))
    return ResourceEstimate(
        luts=3 * states + outputs, ffs=state_bits + outputs
    )


def shift_register(bits: int) -> ResourceEstimate:
    """Serializer/deserializer staging register."""
    return ResourceEstimate(luts=bits // 2, ffs=bits)


BRAM18_BITS = 18 * 1024


def ram(bits: int, force_bram: bool = True) -> ResourceEstimate:
    """Data storage: BRAM18 blocks (LUTRAM below 1 kbit).

    "FIFO memory is inferred as BRAM" (Section V-B) -- storage above
    1 kbit maps to block RAM, tiny buffers to distributed LUTRAM.
    """
    if bits <= 0:
        return ZERO
    if bits < 1024 and not force_bram:
        return ResourceEstimate(luts=math.ceil(bits / 32))
    return ResourceEstimate(bram18=max(1, math.ceil(bits / BRAM18_BITS)))


def multiplier(width_a: int = 16, width_b: int = 16) -> ResourceEstimate:
    """Hard multiplier: one DSP48 up to 18x25."""
    if width_a <= 18 and width_b <= 25:
        return ResourceEstimate(dsps=1)
    return ResourceEstimate(dsps=math.ceil(width_a / 18) * math.ceil(width_b / 25))
