"""Hierarchical ("Keep Hierarchy") resource estimation of an OCP.

Section V-B: "the actual OCP implementation consumes a reasonable
amount of hardware resources (less than 1000 LUT and 750 FF).  This is
for all OCP related parts: interface, controller and FIFO control.
FIFO memory is inferred as BRAM, and strongly dependent on the
accelerator."

:func:`estimate_ocp` reproduces that accounting: one estimate per
hierarchy level (interface, controller, FIFO control, FIFO memory,
RAC), so both the paper's envelope claim and its with/without-OCP
comparison can be regenerated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..core.coprocessor import OuessantCoprocessor
from ..core.isa import N_BANKS
from ..rac.base import RAC, StreamingRAC
from ..rac.dft import DFTRac
from ..rac.fifo import FIFO
from ..rac.fir import FIRRac
from ..rac.idct import IDCTRac
from ..rac.scale import PassthroughRac, ScaleRac
from .resources import (
    ResourceEstimate,
    ZERO,
    adder,
    comparator,
    counter,
    decoder,
    fsm,
    multiplier,
    mux,
    ram,
    register,
    shift_register,
)


def estimate_interface() -> ResourceEstimate:
    """The Figure 3 interface: registers + translation + bus FSMs."""
    estimate = register(32) * (2 + N_BANKS)          # the 10 config registers
    estimate += mux(2 + N_BANKS, 32)                 # register read mux
    estimate += decoder(2 + N_BANKS)                 # register write decode
    estimate += adder(32)                            # bank base + offset
    estimate += mux(N_BANKS, 32)                     # bank select
    estimate += fsm(4, outputs=6)                    # bus slave FSM
    estimate += fsm(6, outputs=8)                    # bus master FSM
    estimate += counter(7)                           # burst beat counter
    estimate += register(32)                         # address holding register
    estimate += comparator(7)                        # burst-done compare
    return estimate


def estimate_controller(ibuf_size: int = 128, prefetch: bool = True) -> ResourceEstimate:
    """The fetch/decode/execute FSM with its architectural registers."""
    estimate = register(32)                          # instruction register
    estimate += counter(14)                          # PC
    estimate += fsm(10, outputs=8)                   # main control FSM
    estimate += counter(12) + register(14)           # loop count + loop body
    estimate += adder(14) + register(14)             # OFR
    estimate += counter(7)                           # transfer remaining
    estimate += adder(14)                            # transfer offset stepper
    estimate += register(3) * 2                      # bank / fifo selectors
    estimate += decoder(18)                          # opcode decode
    estimate += comparator(14) + comparator(7) * 2   # pc/prog, fifo levels
    estimate += counter(20)                          # wait timer
    if prefetch:
        estimate += ram(ibuf_size * 32)              # instruction buffer
        estimate += counter(int(math.log2(max(2, ibuf_size))) + 1)
    return estimate


def estimate_fifo_control(fifo: FIFO) -> ResourceEstimate:
    """Pointers, level counter and (de)serializer of one FIFO."""
    atoms = fifo.depth * (fifo.width_pop // math.gcd(fifo.width_push, fifo.width_pop))
    ptr_bits = max(1, math.ceil(math.log2(max(2, atoms))))
    estimate = counter(ptr_bits) * 2                 # read/write pointers
    estimate += counter(ptr_bits + 1)                # occupancy counter
    estimate += comparator(ptr_bits + 1) * 2         # full / empty
    if fifo.width_push != fifo.width_pop:
        estimate += shift_register(max(fifo.width_push, fifo.width_pop))
    return estimate


def estimate_fifo_memory(fifo: FIFO) -> ResourceEstimate:
    """The storage array: "FIFO memory is inferred as BRAM"."""
    return ram(fifo.storage_bits)


# ---------------------------------------------------------------------------
# accelerator estimates (order-of-magnitude models, labelled as such)
# ---------------------------------------------------------------------------

def _estimate_dft(rac: DFTRac) -> ResourceEstimate:
    """Spiral iterative radix-2 core: 1 butterfly + ping-pong RAMs."""
    n = rac.n_points
    estimate = multiplier() * 4                      # complex multiplier
    estimate += adder(18) * 6                        # butterfly adders + scaling
    estimate += register(18) * 12                    # pipeline registers
    estimate += fsm(8, outputs=8)                    # stage sequencer
    estimate += counter(int(math.log2(n)) + 1) * 3   # stage/index counters
    estimate += ram(2 * n * 32)                      # ping-pong data RAM
    estimate += ram(n * 32)                          # twiddle ROM
    estimate += ResourceEstimate(luts=400, ffs=500)  # routing/control glue
    return estimate


def _estimate_idct(_rac: IDCTRac) -> ResourceEstimate:
    """Row/column 2-D IDCT: 8 MACs + transpose memory."""
    estimate = multiplier() * 8
    estimate += adder(24) * 8
    estimate += register(24) * 16
    estimate += fsm(6, outputs=6)
    estimate += ram(64 * 16)                         # transpose buffer
    estimate += ResourceEstimate(luts=600, ffs=400)  # coefficient ROM + glue
    return estimate


def _estimate_fir(rac: FIRRac) -> ResourceEstimate:
    estimate = multiplier() * rac.n_taps
    estimate += register(16) * rac.n_taps            # delay line
    estimate += register(16) * rac.n_taps            # coefficient registers
    estimate += adder(32) * max(1, rac.n_taps - 1)   # adder tree
    estimate += fsm(4, outputs=4)
    estimate += ResourceEstimate(luts=120)
    return estimate


def _estimate_simple(_rac: RAC) -> ResourceEstimate:
    """Passthrough/scale cores: a multiplier and a register or two."""
    return multiplier() + register(32) * 2 + fsm(3) + ResourceEstimate(luts=40)


def _estimate_generic(rac: RAC) -> ResourceEstimate:
    """Fallback for HLS-wrapped or user RACs: scale with port count."""
    n_ports = len(rac.ports.input_widths) + len(rac.ports.output_widths)
    estimate = fsm(6, outputs=6) + ResourceEstimate(luts=200 * n_ports,
                                                    ffs=150 * n_ports)
    if isinstance(rac, StreamingRAC):
        buffer_bits = 32 * (sum(rac.items_in) + sum(rac.items_out))
        estimate += ram(buffer_bits)
    return estimate


def estimate_rac(rac: RAC) -> ResourceEstimate:
    """Dispatch to the per-accelerator area model."""
    if isinstance(rac, DFTRac):
        return _estimate_dft(rac)
    if isinstance(rac, IDCTRac):
        return _estimate_idct(rac)
    if isinstance(rac, FIRRac):
        return _estimate_fir(rac)
    if isinstance(rac, (PassthroughRac, ScaleRac)):
        return _estimate_simple(rac)
    return _estimate_generic(rac)


# ---------------------------------------------------------------------------
# whole-OCP report
# ---------------------------------------------------------------------------

@dataclass
class OCPEstimate:
    """Per-hierarchy estimates of one OCP ("Keep Hierarchy" view)."""

    parts: Dict[str, ResourceEstimate] = field(default_factory=dict)

    @property
    def ocp_overhead(self) -> ResourceEstimate:
        """Interface + controller + FIFO control: the paper's envelope.

        This is the Section V-B quantity claimed to stay below
        1000 LUT / 750 FF.
        """
        total = ZERO
        for name, estimate in self.parts.items():
            if name in ("interface", "controller") or name.startswith("fifo_ctrl"):
                total = total + estimate
        return total

    @property
    def fifo_memory(self) -> ResourceEstimate:
        total = ZERO
        for name, estimate in self.parts.items():
            if name.startswith("fifo_mem"):
                total = total + estimate
        return total

    @property
    def rac(self) -> ResourceEstimate:
        return self.parts.get("rac", ZERO)

    @property
    def total(self) -> ResourceEstimate:
        total = ZERO
        for estimate in self.parts.values():
            total = total + estimate
        return total

    @property
    def accelerator_alone(self) -> ResourceEstimate:
        """What synthesizing the accelerator without the OCP reports."""
        return self.rac


def estimate_ocp(ocp: OuessantCoprocessor) -> OCPEstimate:
    """Structural estimate of a built coprocessor, per hierarchy level."""
    parts: Dict[str, ResourceEstimate] = {
        "interface": estimate_interface(),
        "controller": estimate_controller(
            ibuf_size=ocp.controller.ibuf_size,
            prefetch=ocp.controller.prefetch,
        ),
    }
    for fifo in ocp.fifos_in + ocp.fifos_out:
        parts[f"fifo_ctrl.{fifo.name}"] = estimate_fifo_control(fifo)
        parts[f"fifo_mem.{fifo.name}"] = estimate_fifo_memory(fifo)
    if ocp.rac is not None:
        parts["rac"] = estimate_rac(ocp.rac)
    return OCPEstimate(parts=parts)
