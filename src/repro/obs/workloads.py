"""Example workloads for ``repro profile``.

The two accelerators the paper evaluates, driven end-to-end through
the software stack (library -> driver -> register writes -> microcode)
with tracing on, so the full observability pipeline has something real
to attribute:

* ``jpeg-idct`` -- a four-block 8x8 IDCT batch (one microcode program
  looping on the coprocessor, the JPEG decoder's shape);
* ``dft`` -- one 64-point Q15 DFT (Figure 4's workload, scaled down
  so profiling stays interactive).

Each workload returns a :class:`ProfileRun` bundling the SoC (with its
trace), the verified outputs and the end-of-run cycle, which
``attribute_run`` / ``reconstruct_spans`` / ``derive_counters`` then
consume.  Output words are checked against the RAC's own bit-exact
datapath model, so a profile of a *wrong* run cannot be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..rac.dft import DFTRac
from ..rac.idct import IDCTRac
from ..sim.errors import SimulationError
from ..sim.tracing import Trace
from ..sw.library import OuessantLibrary
from ..system import SoC


@dataclass
class ProfileRun:
    """One finished, output-verified workload run."""

    name: str
    soc: SoC
    ocp_index: int
    total_cycles: int


def _verify(name: str, ok: bool) -> None:
    if not ok:
        raise SimulationError(
            f"profile workload {name!r} produced wrong output; "
            "refusing to attribute a broken run"
        )


def _jpeg_idct(idle_skip: bool = True) -> ProfileRun:
    rac = IDCTRac()
    soc = SoC(racs=[rac], trace=Trace(), idle_skip=idle_skip)
    lib = OuessantLibrary(soc)
    blocks = [
        [[(u * 8 + v + 17 * b) % 64 - 32 for v in range(8)]
         for u in range(8)]
        for b in range(4)
    ]
    out = lib.idct_batch(blocks)
    total = soc.sim.cycle
    # the datapath model is bit-exact: re-running it checks the whole
    # transfer path moved every coefficient where it belongs
    from ..utils.fixedpoint import idct2_q15

    expected = [idct2_q15(block) for block in blocks]
    _verify("jpeg-idct", out == expected)
    return ProfileRun("jpeg-idct", soc, 0, total)


def _dft(idle_skip: bool = True) -> ProfileRun:
    rac = DFTRac(n_points=64)
    soc = SoC(racs=[rac], trace=Trace(), idle_skip=idle_skip)
    lib = OuessantLibrary(soc)
    n = rac.n_points
    re = [((3 * i) % 31 - 15) * 256 for i in range(n)]
    im = [((5 * i) % 29 - 14) * 256 for i in range(n)]
    out_re, out_im = lib.dft(re, im)
    total = soc.sim.cycle
    from ..utils.fixedpoint import fft_q15

    exp_re, exp_im = fft_q15(re, im)
    _verify("dft", out_re == exp_re and out_im == exp_im)
    return ProfileRun("dft", soc, 0, total)


#: name -> workload constructor (idle_skip keyword)
PROFILE_WORKLOADS: Dict[str, Callable[..., ProfileRun]] = {
    "jpeg-idct": _jpeg_idct,
    "dft": _dft,
}
