"""Trace-derived shadow of the OCP performance counters.

:class:`~repro.core.perf.PerfCounterBlock` computes its six registers
from the controller's live statistics.  This module recomputes the
same six values *purely from the event trace* (span durations and FIFO
occupancy samples), so a differential test can check that what software
reads back over the bus matches what actually happened, bit-exactly --
with and without idle skipping.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.perf import PERF_NAMES
from ..sim.tracing import Trace
from .spans import reconstruct_spans


def derive_counters(
    trace: Trace,
    ocp,
    end_cycle: Optional[int] = None,
) -> Dict[str, int]:
    """Recompute the perf-counter registers of ``ocp`` from ``trace``.

    ``ocp`` is an :class:`~repro.core.coprocessor.OuessantCoprocessor`
    (only component *names* are read from it).  The window starts at
    the controller's most recent ``start`` event -- the counters are
    cleared on start -- and the returned dict maps
    :data:`~repro.core.perf.PERF_NAMES` to values.
    """
    ctrl_name = ocp.controller.name
    starts = trace.events(component=ctrl_name, event="start")
    window = starts[-1].cycle if starts else 0

    spans = reconstruct_spans(trace, end_cycle=end_cycle)
    states = spans.query(category="state", component=ctrl_name,
                         since=window)
    busy = sum(s.cycles for s in states)
    xfer = sum(s.cycles for s in states
               if s.name in ("xfer_to", "xfer_from"))
    execw = sum(s.cycles for s in states if s.name == "exec_wait")
    stall = sum(
        s.cycles
        for s in spans.query(category="stall", component=ctrl_name,
                             since=window)
    )

    def high_water(fifos) -> int:
        hw = 0
        for fifo in fifos:
            for event in trace.events(component=fifo.name,
                                      event="commit"):
                if event.cycle >= window:
                    hw = max(hw, int(event.data["occupancy_atoms"]))
        return hw

    values = (
        busy, xfer, execw, stall,
        high_water(ocp.fifos_in), high_water(ocp.fifos_out),
    )
    return dict(zip(PERF_NAMES, values))
