"""Transfer / compute / control attribution (the paper's Fig. 4).

"Given the computing time, we have roughly 1500 cycles needed for data
transfer": the evaluation's core argument is a three-way split of a
run's cycles.  :func:`attribute_run` reproduces it for any workload:

* **transfer** -- cycles the controller spent in ``xfer_to`` /
  ``xfer_from`` (FIFO stalls included: the bus may be idle, but the
  cycle is still owned by data movement);
* **compute** -- cycles parked in ``exec_wait`` (blocking on the RAC);
* **control** -- everything else: fetch/decode, GPP register accesses,
  interrupt latency, idle gaps.

``transfer + compute + control == total`` holds *exactly* -- control
is defined as the remainder, so nothing is ever double-counted or
dropped.  ``overlap_cycles`` additionally measures how many transfer
cycles ran while the RAC was busy (``execs``-style pipelining), which
is the paper's overlap argument for why the three buckets may sum to
more than the wall clock on a per-activity reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.perf import (
    PERF_EXECW,
    PERF_FIFO_IN_HW,
    PERF_FIFO_OUT_HW,
    PERF_STALL,
    PERF_XFER,
)
from .spans import SpanTrace

#: JSON schema (informal) of :meth:`AttributionReport.as_dict`; the CI
#: schema check in ``scripts/check_profile_schema.py`` enforces it
REPORT_FIELDS = (
    "workload", "total_cycles", "transfer_cycles", "compute_cycles",
    "control_cycles", "stall_cycles", "overlap_cycles", "words_moved",
    "instructions", "fifo_in_high_water", "fifo_out_high_water",
    "breakdown",
)


@dataclass
class AttributionReport:
    """Where one run's cycles went, by activity."""

    workload: str
    total_cycles: int
    transfer_cycles: int
    compute_cycles: int
    control_cycles: int
    stall_cycles: int = 0
    overlap_cycles: int = 0
    words_moved: int = 0
    instructions: int = 0
    fifo_in_high_water: int = 0
    fifo_out_high_water: int = 0
    #: finer-grained controller-state split inside the three buckets
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """The defining invariant: the three buckets tile the run."""
        return (
            self.transfer_cycles + self.compute_cycles
            + self.control_cycles == self.total_cycles
            and self.transfer_cycles >= 0
            and self.compute_cycles >= 0
            and self.control_cycles >= 0
        )

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in REPORT_FIELDS}

    def render(self) -> str:
        def row(label: str, cycles: int) -> str:
            share = cycles / self.total_cycles if self.total_cycles else 0
            return f"  {label:<10} {cycles:>10} cycles ({100 * share:5.1f}%)"

        lines = [
            f"{self.workload}: {self.total_cycles} cycles",
            row("transfer", self.transfer_cycles),
            row("compute", self.compute_cycles),
            row("control", self.control_cycles),
            f"  stalls     {self.stall_cycles:>10} cycles "
            f"(inside transfer)",
            f"  overlap    {self.overlap_cycles:>10} cycles "
            f"(transfer while RAC busy)",
            f"  moved      {self.words_moved:>10} words in "
            f"{self.instructions} instructions",
        ]
        return "\n".join(lines)


def attribute_run(
    soc,
    workload: str = "",
    ocp_index: int = 0,
    total_cycles: Optional[int] = None,
    spans: Optional[SpanTrace] = None,
) -> AttributionReport:
    """Build the attribution of the most recent run on ``soc``.

    Reads the OCP's performance-counter block (cleared at run start,
    hence windowed to the last run); ``total_cycles`` defaults to the
    simulator's current cycle.  Passing the reconstructed ``spans``
    additionally fills :attr:`AttributionReport.overlap_cycles`.
    """
    ocp = soc.ocps[ocp_index]
    perf = ocp.controller.perf
    stats = ocp.controller.stats
    total = soc.sim.cycle if total_cycles is None else total_cycles
    transfer = perf.value(PERF_XFER)
    compute = perf.value(PERF_EXECW)

    overlap = 0
    if spans is not None:
        ctrl = ocp.controller.name
        xfer_spans = [
            s for s in spans.query(category="state", component=ctrl)
            if s.name in ("xfer_to", "xfer_from")
        ]
        rac_spans = spans.query(category="rac",
                                component=ocp.rac.name if ocp.rac else None)
        overlap = spans.overlap_cycles(xfer_spans, rac_spans)

    breakdown = {
        key.split(".", 1)[1]: value
        for key, value in stats.items()
        if key.startswith("cycles.")
    }
    return AttributionReport(
        workload=workload,
        total_cycles=total,
        transfer_cycles=transfer,
        compute_cycles=compute,
        control_cycles=total - transfer - compute,
        stall_cycles=perf.value(PERF_STALL),
        overlap_cycles=overlap,
        words_moved=stats.get("words_to_rac")
        + stats.get("words_from_rac"),
        instructions=stats.get("instructions"),
        fifo_in_high_water=perf.value(PERF_FIFO_IN_HW),
        fifo_out_high_water=perf.value(PERF_FIFO_OUT_HW),
        breakdown=breakdown,
    )


@dataclass(frozen=True)
class PredictionCheck:
    """Measured attribution vs a :mod:`repro.perfbound` prediction.

    The soundness gate in one object: every measured bucket (and the
    total) must land inside the statically predicted ``[lo, hi]``
    interval.  ``violations`` names the buckets that escaped --
    non-empty means either the cost model or the simulator timing
    drifted, which is exactly the regression this check exists to
    catch.
    """

    workload: str
    sound: bool
    violations: Dict[str, str]
    #: measured value per bucket name (incl. "total")
    measured: Dict[str, int]
    #: predicted (lo, hi) per bucket name; hi is None when unbounded
    predicted: Dict[str, object]
    #: total-bound tightness hi/lo (1.0 = exact), None when unbounded
    tightness: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "sound": self.sound,
            "violations": dict(self.violations),
            "measured": dict(self.measured),
            "predicted": dict(self.predicted),
            "tightness": self.tightness,
        }

    def render(self) -> str:
        status = "sound" if self.sound else "VIOLATED"
        lines = [f"prediction check [{status}] {self.workload}"]
        for name, value in self.measured.items():
            lo, hi = self.predicted[name]  # type: ignore[misc]
            hi_text = "inf" if hi is None else str(hi)
            mark = "" if name not in self.violations else "  <-- out"
            lines.append(
                f"  {name:9s} measured {value:>8} in "
                f"[{lo}, {hi_text}]{mark}"
            )
        return "\n".join(lines)


def compare_attribution(report: AttributionReport, bound) -> PredictionCheck:
    """Check a measured run against its predicted cost bound.

    ``bound`` is a :class:`repro.perfbound.CostBound`; measured total
    and per-bucket cycles must fall inside its intervals.
    """
    pairs = {
        "transfer": (report.transfer_cycles, bound.transfer),
        "compute": (report.compute_cycles, bound.compute),
        "control": (report.control_cycles, bound.control),
        "total": (report.total_cycles, bound.total),
    }
    measured: Dict[str, int] = {}
    predicted: Dict[str, object] = {}
    violations: Dict[str, str] = {}
    for name, (value, interval) in pairs.items():
        measured[name] = value
        hi = None if interval.hi == float("inf") else int(interval.hi)
        predicted[name] = (int(interval.lo), hi)
        if value < interval.lo:
            violations[name] = (
                f"measured {value} under predicted lower bound "
                f"{int(interval.lo)}"
            )
        elif value > interval.hi:
            violations[name] = (
                f"measured {value} over predicted upper bound "
                f"{int(interval.hi)}"
            )
    return PredictionCheck(
        workload=report.workload,
        sound=not violations,
        violations=violations,
        measured=measured,
        predicted=predicted,
        tightness=bound.tightness(),
    )
