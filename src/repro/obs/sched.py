"""Per-OCP scheduling attribution: queue depth, utilization, waits.

The MPSoC scale-out argument needs the same attribution discipline as
the single-OCP Figure-4 breakdown: *where did the cycles of a
scheduled run go, per coprocessor?*  This module condenses a
:class:`~repro.sched.scheduler.ThroughputScheduler`'s accounting into
a report whose invariants are testable (completed jobs across OCPs sum
to the scheduler's total; utilization is busy cycles over wall-clock
cycles; queue high-water never exceeds the configured bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class OcpSchedStats:
    """One coprocessor's share of a scheduled run."""

    index: int
    name: str
    kind: str
    jobs: int
    batches: int
    retries: int
    busy_cycles: int
    utilization: float
    queue_high_water: int
    queue_bound: int
    max_wait: int
    mean_wait: float
    #: jobs currently queued or in flight (0 after a drain)
    pending_jobs: int = 0
    #: predicted cycles of the pending jobs (repro.perfbound midpoints)
    est_pending_cycles: int = 0
    #: predicted cycles of the jobs this OCP completed -- the *work*
    #: routed here, so count-based and cost-based policies are
    #: comparable in one report
    predicted_done_cycles: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "kind": self.kind,
            "jobs": self.jobs,
            "batches": self.batches,
            "retries": self.retries,
            "busy_cycles": self.busy_cycles,
            "utilization": round(self.utilization, 6),
            "queue_high_water": self.queue_high_water,
            "queue_bound": self.queue_bound,
            "max_wait": self.max_wait,
            "mean_wait": round(self.mean_wait, 3),
            "pending_jobs": self.pending_jobs,
            "est_pending_cycles": self.est_pending_cycles,
            "predicted_done_cycles": self.predicted_done_cycles,
        }


@dataclass(frozen=True)
class ScheduleReport:
    """Whole-run scheduling attribution."""

    total_cycles: int
    total_jobs: int
    total_batches: int
    total_retries: int
    per_ocp: List[OcpSchedStats]

    @property
    def consistent(self) -> bool:
        """Per-OCP job counts must account for every completed job."""
        return sum(stats.jobs for stats in self.per_ocp) == self.total_jobs

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_cycles": self.total_cycles,
            "total_jobs": self.total_jobs,
            "total_batches": self.total_batches,
            "total_retries": self.total_retries,
            "per_ocp": [stats.as_dict() for stats in self.per_ocp],
        }

    def render(self) -> str:
        lines = [
            f"scheduled run: {self.total_jobs} jobs in "
            f"{self.total_cycles} cycles "
            f"({self.total_batches} batches, {self.total_retries} retries)",
            "  ocp kind          jobs batches util   queue(hw/bound) "
            "wait(max/mean) work(pred)",
        ]
        for stats in self.per_ocp:
            lines.append(
                f"  {stats.index:<3} {stats.kind:<13} {stats.jobs:>4} "
                f"{stats.batches:>7} {stats.utilization:>5.1%}  "
                f"{stats.queue_high_water:>2}/{stats.queue_bound:<12} "
                f"{stats.max_wait}/{stats.mean_wait:.1f} "
                f"{stats.predicted_done_cycles:>10}"
            )
        return "\n".join(lines)


def attribute_schedule(scheduler) -> ScheduleReport:
    """Condense a drained (or mid-flight) scheduler into a report."""
    total_cycles = scheduler.soc.sim.cycle
    per_ocp: List[OcpSchedStats] = []
    waits: Dict[int, List[int]] = {}
    for result in scheduler.completed.values():
        waits.setdefault(result.ocp_index, []).append(result.wait_cycles)
    predict = getattr(scheduler, "predicted_job_cycles", None)
    pending = getattr(scheduler, "pending_cycles", None)
    done_cycles: Dict[int, int] = {}
    if predict is not None:
        slot_by_index = {slot.index: slot for slot in scheduler.slots}
        for result in scheduler.completed.values():
            done_cycles[result.ocp_index] = (
                done_cycles.get(result.ocp_index, 0)
                + predict(result.job, slot_by_index[result.ocp_index])
            )
    for slot in scheduler.slots:
        slot_waits = waits.get(slot.index, [])
        in_flight = len(slot.batch.jobs) if slot.batch else 0
        per_ocp.append(OcpSchedStats(
            index=slot.index,
            name=slot.ocp.name,
            kind=slot.ocp.rac.kind,
            jobs=slot.jobs_done,
            batches=slot.batches_done,
            retries=slot.retries,
            busy_cycles=slot.busy_cycles,
            utilization=(slot.busy_cycles / total_cycles
                         if total_cycles else 0.0),
            queue_high_water=slot.queue_high_water,
            queue_bound=scheduler.queue_bound,
            max_wait=max(slot_waits, default=0),
            mean_wait=(sum(slot_waits) / len(slot_waits)
                       if slot_waits else 0.0),
            pending_jobs=len(slot.queue) + in_flight,
            est_pending_cycles=(pending(slot.index)
                                if pending is not None else 0),
            predicted_done_cycles=done_cycles.get(slot.index, 0),
        ))
    return ScheduleReport(
        total_cycles=total_cycles,
        total_jobs=len(scheduler.completed),
        total_batches=sum(s.batches for s in per_ocp),
        total_retries=sum(s.retries for s in per_ocp),
        per_ocp=per_ocp,
    )
