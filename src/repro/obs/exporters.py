"""Span exporters: Chrome/Perfetto trace-event JSON and VCD lanes.

*Perfetto* -- :func:`to_perfetto` emits the Chrome trace-event format
(``ph: "X"`` complete events) that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Every span root claims a
thread lane; children share their parent's lane, so slices nest by
containment exactly like the span tree.  Bus transactions are the
exception -- they get one track per master, because a driver poll can
straddle instruction slices -- and FIFO occupancy samples ride along
as ``ph: "C"`` counter tracks.

*VCD* -- :func:`to_vcd` renders the same lanes as waveform signals for
GTKWave, next to the signals the RTL debug flow would show: one
``state`` signal per controller (value = FSM state code), one ``busy``
bit per RAC, per-master bus activity, and FIFO occupancy in atoms.
State codes follow :data:`STATE_CODES`; timescale matches the
system-clock convention of :class:`~repro.sim.tracing.VCDWriter`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.tracing import Trace, VCDWriter
from .spans import ACTIVE_STATES, Span, SpanTrace

#: numeric VCD encoding of the controller FSM states (0 = parked)
STATE_CODES: Dict[str, int] = {
    state: index + 1 for index, state in enumerate(ACTIVE_STATES)
}

#: microseconds per cycle used for the Perfetto ``ts`` axis; one unit
#: per cycle keeps durations readable (the UI labels them "us")
_TS_PER_CYCLE = 1


def fifo_occupancy_series(trace: Trace) -> Dict[str, List[Tuple[int, int]]]:
    """Per-FIFO ``(cycle, occupancy_atoms)`` samples from the trace."""
    series: Dict[str, List[Tuple[int, int]]] = {}
    for event in trace:
        if (event.event in ("commit", "pop")
                and "occupancy_atoms" in event.data):
            series.setdefault(event.component, []).append(
                (event.cycle, int(event.data["occupancy_atoms"]))
            )
    return series


def to_perfetto(
    spans: SpanTrace,
    trace: Optional[Trace] = None,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Chrome trace-event JSON (a dict ready for ``json.dump``)."""
    events: List[Dict[str, object]] = []
    lanes: Dict[str, int] = {}

    def lane_of(span: Span) -> int:
        key = f"{span.category}:{span.component}"
        if span.category == "bus":
            # bus transactions of different masters overlap freely and
            # may straddle the slices of their adoptive parent's lane;
            # per-master tracks keep every lane properly nested
            key = f"bus:{span.data.get('master', span.component)}"
        if key not in lanes:
            lanes[key] = len(lanes) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1,
                "tid": lanes[key], "args": {"name": key},
            })
        return lanes[key]

    def emit(span: Span, tid: Optional[int]) -> None:
        if span.category == "bus" or tid is None:
            tid = lane_of(span)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.begin * _TS_PER_CYCLE,
            "dur": span.cycles * _TS_PER_CYCLE,
            "pid": 1,
            "tid": tid,
            "args": {"component": span.component, **span.data},
        })
        for child in span.children:
            emit(child, tid)

    for root in spans.roots:
        emit(root, None)

    if trace is not None:
        for fifo, samples in fifo_occupancy_series(trace).items():
            for cycle, occupancy in samples:
                events.append({
                    "name": f"fifo {fifo}",
                    "ph": "C",
                    "ts": cycle * _TS_PER_CYCLE,
                    "pid": 1,
                    "args": {"occupancy_atoms": occupancy},
                })

    return {
        "displayTimeUnit": "ms",
        "otherData": {"process_name": process_name},
        "traceEvents": events,
    }


def to_vcd(
    spans: SpanTrace,
    trace: Optional[Trace] = None,
    timescale: str = "20ns",
) -> str:
    """Render span lanes as a VCD document (GTKWave-ready text)."""
    vcd = VCDWriter(timescale=timescale)

    def lane(signal: str, width: int,
             intervals: List[Tuple[int, int, int]]) -> None:
        """One signal from (begin, end, code) intervals; a span
        starting at another's end wins over the return-to-zero."""
        vcd.register(signal, width=width)
        changes: Dict[int, int] = {0: 0}
        for _, end, _ in intervals:
            changes.setdefault(end, 0)
        for begin, _, code in intervals:
            changes[begin] = code
        for cycle in sorted(changes):
            vcd.change(cycle, signal, changes[cycle])

    controllers = sorted({
        s.component for s in spans.query(category="state")
    })
    for ctrl in controllers:
        lane(f"{ctrl}.state", 4, [
            (s.begin, s.end, STATE_CODES[s.name])
            for s in spans.query(category="state", component=ctrl)
        ])

    for category, label in (("driver", "op"), ("rac", "busy"),
                            ("dma", "copy"), ("stall", "stall")):
        by_component: Dict[str, List[Tuple[int, int, int]]] = {}
        for span in spans.query(category=category):
            by_component.setdefault(span.component, []).append(
                (span.begin, span.end, 1)
            )
        for component, intervals in sorted(by_component.items()):
            lane(f"{component}.{label}", 1, intervals)

    if trace is not None:
        for fifo, samples in fifo_occupancy_series(trace).items():
            signal = f"{fifo}.atoms"
            vcd.register(signal, width=8)
            vcd.change(0, signal, 0)
            for cycle, occupancy in samples:
                vcd.change(cycle, signal, occupancy)

    return vcd.render()
