"""Span reconstruction: from a flat event log to a hierarchy.

The simulator's :class:`~repro.sim.tracing.Trace` is an append-only
list of point events.  The components emit just enough structure to
rebuild *intervals* from it:

* the controller records a ``phase`` event at every FSM transition,
  carrying the explicit boundary cycle ``at`` (first cycle charged to
  the new state), so state spans match the ``cycles.<state>`` counters
  bit-exactly;
* ``instr`` events mark each decoded instruction; an instruction span
  stretches from its decode boundary to the next fetch (or terminal)
  boundary;
* aggregated ``stall`` events close a run of FIFO-stall cycles;
* the bus emits ``grant``/``complete`` pairs, the driver ``op.begin``/
  ``op.end``, the DMA ``start``/``done``, the RAC ``start_op``/
  ``end_op``.

:func:`reconstruct_spans` pairs all of those into :class:`Span` trees:
driver op -> microcode instruction -> FSM state -> bus transaction /
stall, with RAC-busy and DMA lanes alongside.  A truncated trace is
refused loudly -- missing events would silently fabricate wrong spans,
the same rule :func:`repro.faults.harness.fault_history` applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.errors import SimulationError
from ..sim.tracing import Trace, TraceEvent

#: controller FSM states that are charged to ``cycles.<state>`` (spans
#: are built for these; idle/halted/error are uncharged parking states)
ACTIVE_STATES = (
    "prefetch", "fetch", "decode", "xfer_to", "xfer_from",
    "exec_wait", "waiting", "waitf",
)

#: states that end an instruction span when entered
_INSTR_END_STATES = ("fetch", "prefetch", "idle", "halted", "error")


@dataclass
class Span:
    """One reconstructed interval: ``[begin, end)`` in cycles."""

    name: str
    category: str       # driver | instr | state | stall | bus | rac | dma
    component: str
    begin: int
    end: int
    data: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.end - self.begin

    def contains(self, other: "Span") -> bool:
        return self.begin <= other.begin and other.end <= self.end

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __str__(self) -> str:
        return (
            f"{self.category}:{self.name} "
            f"[{self.begin}, {self.end}) {self.cycles}c"
        )


class SpanTrace:
    """Query API over the reconstructed span forest."""

    def __init__(self, roots: List[Span], end_cycle: int) -> None:
        self.roots = roots
        self.end_cycle = end_cycle

    def __iter__(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def query(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
        since: Optional[int] = None,
    ) -> List[Span]:
        """Spans filtered by category / component / name / begin cycle."""
        out = []
        for span in self:
            if category is not None and span.category != category:
                continue
            if component is not None and span.component != component:
                continue
            if name is not None and span.name != name:
                continue
            if since is not None and span.begin < since:
                continue
            out.append(span)
        return out

    def total_cycles(self, category: str, **kwargs) -> int:
        """Summed duration of every span in a category."""
        return sum(s.cycles for s in self.query(category=category, **kwargs))

    def overlap_cycles(
        self, spans_a: List[Span], spans_b: List[Span]
    ) -> int:
        """Cycles covered by both span sets (union-of-intersections)."""
        covered = set()
        intervals_b = [(s.begin, s.end) for s in spans_b]
        for a in spans_a:
            for b_begin, b_end in intervals_b:
                lo = max(a.begin, b_begin)
                hi = min(a.end, b_end)
                if lo < hi:
                    covered.update(range(lo, hi))
        return len(covered)


def _pair_driver_ops(events: List[TraceEvent], end_cycle: int) -> List[Span]:
    """``op.begin``/``op.end`` pairs; an unmatched begin (failed run)
    closes at the next begin or at the end of the trace."""
    spans: List[Span] = []
    open_span: Optional[Span] = None
    for event in events:
        if event.event == "op.begin":
            if open_span is not None:
                open_span.end = event.cycle
                spans.append(open_span)
            open_span = Span(
                name=str(event.data.get("op", "op")),
                category="driver",
                component=event.component,
                begin=event.cycle,
                end=end_cycle,
                data=dict(event.data),
            )
        elif event.event == "op.end" and open_span is not None:
            open_span.end = event.cycle
            spans.append(open_span)
            open_span = None
    if open_span is not None:
        spans.append(open_span)
    return [s for s in spans if s.cycles > 0]


def _controller_spans(
    events: List[TraceEvent], component: str, end_cycle: int
) -> Tuple[List[Span], List[Span], List[Span]]:
    """(state spans, instruction spans, stall spans) of one controller."""
    boundaries: List[Tuple[int, str]] = [
        (int(e.data["at"]), str(e.data["state"]))
        for e in events
        if e.event == "phase"
    ]
    state_spans: List[Span] = []
    for index, (at, state) in enumerate(boundaries):
        if state not in ACTIVE_STATES:
            continue
        end = (
            boundaries[index + 1][0]
            if index + 1 < len(boundaries)
            else end_cycle
        )
        if end > at:
            state_spans.append(Span(
                name=state, category="state", component=component,
                begin=at, end=end,
            ))

    instr_spans: List[Span] = []
    for event in events:
        if event.event != "instr":
            continue
        decode = next(
            (s for s in state_spans
             if s.name == "decode" and s.begin <= event.cycle < s.end),
            None,
        )
        if decode is None:
            continue
        end = end_cycle
        for at, state in boundaries:
            if at > decode.begin and state in _INSTR_END_STATES:
                end = at
                break
        instr_spans.append(Span(
            name=str(event.data.get("mnemonic", "?")),
            category="instr",
            component=component,
            begin=decode.begin,
            end=end,
            data=dict(event.data),
        ))

    stall_spans = [
        Span(
            name="fifo_stall", category="stall", component=component,
            begin=int(e.data["at"]) - int(e.data["cycles"]),
            end=int(e.data["at"]),
            data=dict(e.data),
        )
        for e in events
        if e.event == "stall" and int(e.data["cycles"]) > 0
    ]
    return state_spans, instr_spans, stall_spans


def _pair_bus(events: List[TraceEvent]) -> List[Span]:
    """FIFO-pair ``grant``/``complete`` per master into bus spans."""
    outstanding: Dict[str, List[TraceEvent]] = {}
    spans: List[Span] = []
    for event in events:
        master = str(event.data.get("master", "?"))
        if event.event == "grant":
            outstanding.setdefault(master, []).append(event)
        elif event.event == "complete":
            queue = outstanding.get(master)
            if not queue:
                continue
            grant = queue.pop(0)
            kind = str(grant.data.get("kind", "?"))
            spans.append(Span(
                name=f"{kind} {grant.data.get('address', '?')}",
                category="bus",
                component=event.component,
                begin=grant.cycle,
                end=event.cycle + 1,
                data={
                    "master": master,
                    "kind": kind,
                    "address": grant.data.get("address"),
                    "burst": grant.data.get("burst"),
                    "latency": event.data.get("latency"),
                },
            ))
    return spans


def _pair_simple(
    events: List[TraceEvent],
    begin_event: str,
    end_event: str,
    category: str,
    name: str,
    end_cycle: int,
    end_inclusive: bool = False,
) -> List[Span]:
    spans: List[Span] = []
    open_event: Optional[TraceEvent] = None
    for event in events:
        if event.event == begin_event:
            open_event = event
        elif event.event == end_event and open_event is not None:
            end = event.cycle + (1 if end_inclusive else 0)
            if end > open_event.cycle:
                spans.append(Span(
                    name=name, category=category,
                    component=event.component,
                    begin=open_event.cycle, end=end,
                    data=dict(open_event.data),
                ))
            open_event = None
    if open_event is not None and end_cycle > open_event.cycle:
        spans.append(Span(
            name=name, category=category, component=open_event.component,
            begin=open_event.cycle, end=end_cycle,
            data=dict(open_event.data),
        ))
    return spans


def _adopt(parents: List[Span], orphans: List[Span]) -> List[Span]:
    """Attach each orphan to the smallest containing parent; return
    the orphans left without one."""
    rest: List[Span] = []
    for orphan in orphans:
        best: Optional[Span] = None
        for parent in parents:
            if parent is orphan or not parent.contains(orphan):
                continue
            if best is None or best.contains(parent):
                best = parent
        if best is not None:
            best.children.append(orphan)
        else:
            rest.append(orphan)
    return rest


def reconstruct_spans(
    trace: Trace, end_cycle: Optional[int] = None
) -> SpanTrace:
    """Build the span forest of a finished (or aborted) run.

    ``end_cycle`` closes any span still open when the trace ends;
    it defaults to one past the last recorded event.

    Raises
    ------
    SimulationError
        If no trace exists (a hot-mode run records none) or the trace
        is truncated: dropped events would silently turn into wrong
        span durations, so -- like the fault history -- the
        reconstruction refuses to guess.
    """
    if trace is None:
        raise SimulationError(
            "span reconstruction requested but no trace was recorded: "
            "the run executed in hot mode (vectorized dispatch with "
            "trace=None compiles spans down to plain counters). "
            "Attach a Trace to the Simulator to reconstruct spans."
        )
    if trace.truncated:
        raise SimulationError(
            f"span reconstruction requested from a truncated trace "
            f"({trace.dropped} events dropped at capacity "
            f"{trace.capacity}); raise the capacity or use an "
            f"unbounded Trace()"
        )
    events = list(trace)
    if end_cycle is None:
        end_cycle = max((e.cycle for e in events), default=0) + 1

    by_component: Dict[str, List[TraceEvent]] = {}
    for event in events:
        by_component.setdefault(event.component, []).append(event)

    driver_ops: List[Span] = []
    state_spans: List[Span] = []
    instr_spans: List[Span] = []
    stall_spans: List[Span] = []
    bus_spans: List[Span] = []
    rac_spans: List[Span] = []
    dma_spans: List[Span] = []

    for component, comp_events in by_component.items():
        kinds = {e.event for e in comp_events}
        if "op.begin" in kinds:
            driver_ops.extend(_pair_driver_ops(comp_events, end_cycle))
        if "phase" in kinds:
            states, instrs, stalls = _controller_spans(
                comp_events, component, end_cycle
            )
            state_spans.extend(states)
            instr_spans.extend(instrs)
            stall_spans.extend(stalls)
        if "grant" in kinds:
            bus_spans.extend(_pair_bus(comp_events))
        if "start_op" in kinds:
            rac_spans.extend(_pair_simple(
                comp_events, "start_op", "end_op", "rac", "busy",
                end_cycle, end_inclusive=True,
            ))
        if "start" in kinds and "done" in kinds and "phase" not in kinds:
            dma_spans.extend(_pair_simple(
                comp_events, "start", "done", "dma", "copy",
                end_cycle, end_inclusive=True,
            ))

    # nest: stall and OCP-master bus transactions under FSM states,
    # states under instructions, DMA-master bus bursts under DMA copies
    def _ocp_prefix(name: str) -> str:
        return name.rsplit(".", 1)[0]

    ctrl_prefixes = {_ocp_prefix(s.component) for s in state_spans}
    ocp_bus, dma_bus, cpu_bus = [], [], []
    dma_components = {s.component for s in dma_spans}
    for span in bus_spans:
        master = str(span.data.get("master", ""))
        if _ocp_prefix(master) in ctrl_prefixes:
            ocp_bus.append(span)
        elif master in dma_components:
            dma_bus.append(span)
        else:
            cpu_bus.append(span)

    unplaced = _adopt(state_spans, stall_spans + ocp_bus)
    unplaced += _adopt(instr_spans, state_spans)
    unplaced += _adopt(dma_spans, dma_bus)
    # instructions, pre-instruction states (prefetch), cpu-side bus
    # transactions and anything still unadopted nest under a driver op
    unplaced = _adopt(driver_ops, instr_spans + cpu_bus + unplaced)
    roots = driver_ops + unplaced + rac_spans + dma_spans
    roots.sort(key=lambda s: (s.begin, s.end))
    return SpanTrace(roots, end_cycle)
