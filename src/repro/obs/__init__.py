"""Unified observability layer over the simulator's Trace/Stats plumbing.

The paper's evaluation is an attribution argument: Figure 4 narrates
*which* cycles of a run go to data transfer, which to computation and
which to control.  This package turns the raw event log into that
narration, in four steps:

* :mod:`repro.obs.spans` -- reconstruct hierarchical spans (driver op
  -> microcode instruction -> FSM state -> bus transaction / stall)
  from the trace, with per-span cycle cost and a query API;
* :mod:`repro.obs.counters` -- derive the OCP's hardware performance
  counters (:mod:`repro.core.perf`) independently from the trace, for
  differential testing of the register readback path;
* :mod:`repro.obs.attribution` -- the Fig.-4-style
  transfer/compute/control breakdown whose three buckets sum to the
  simulator's cycle count exactly;
* :mod:`repro.obs.exporters` -- Chrome/Perfetto trace-event JSON and
  VCD lanes for visual inspection.

``python -m repro.cli profile`` wires it all together over the example
workloads in :mod:`repro.obs.workloads`.
"""

from .attribution import (
    AttributionReport,
    PredictionCheck,
    attribute_run,
    compare_attribution,
)
from .counters import derive_counters
from .exporters import to_perfetto, to_vcd
from .sched import OcpSchedStats, ScheduleReport, attribute_schedule
from .spans import Span, SpanTrace, reconstruct_spans

__all__ = [
    "AttributionReport",
    "PredictionCheck",
    "OcpSchedStats",
    "ScheduleReport",
    "Span",
    "SpanTrace",
    "attribute_run",
    "attribute_schedule",
    "compare_attribution",
    "derive_counters",
    "reconstruct_spans",
    "to_perfetto",
    "to_vcd",
]
