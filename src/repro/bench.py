"""Kernel wall-clock benchmarks: naive ticking vs idle skipping.

The paper's workloads spend most of their simulated time *waiting* --
the controller parked in ``exec_wait`` while a deep datapath crunches,
a driver backing off on a busy device, a timeout running to its
deadline.  The idle-skip fast path (see ``docs/SIMULATION.md``) turns
those waits into O(1) jumps; this module measures how much that is
actually worth, per workload, on the host at hand.

Each workload is run twice -- ``idle_skip=False`` then ``True`` -- and
the two runs are required to land on the *same simulated cycle count*
(anything else is a kernel equivalence bug, and the bench refuses to
report numbers for it).  Results carry wall-clock seconds, simulated
cycles per host second for both modes, the speedup ratio and the
fraction of cycles the fast path skipped.

Each ``BenchResult`` also carries the run's cycle attribution
(transfer / compute / control, from ``repro.obs``); naive and fast
runs must agree on it exactly, extending the equivalence check from
"same final cycle" to "same cycle-by-cycle story".

Entry points:

* :func:`run_benchmarks` -- programmatic, returns ``BenchResult`` rows;
* ``python -m repro.cli bench`` -- human-readable table plus the
  ``BENCH_simulator.json`` machine-readable artifact (``--output``
  overrides the path);
* ``benchmarks/test_bench_simulator.py`` -- CI smoke run emitting the
  same JSON artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .core.program import OuProgram
from .core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from .rac.scale import PassthroughRac
from .sim.errors import DeadlockError, SimulationError
from .system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000

#: (simulated cycles, skip ratio, attribution dict or None) of one run
#: in one kernel mode
WorkloadFn = Callable[[bool], Tuple[int, float, Optional[Dict[str, object]]]]


@dataclass
class BenchResult:
    """Naive-vs-fast measurement of one workload."""

    workload: str
    cycles: int
    naive_seconds: float
    fast_seconds: float
    skip_ratio: float
    #: cycle attribution of the run (``AttributionReport.as_dict``),
    #: ``None`` for workloads that never start a coprocessor
    attribution: Optional[Dict[str, object]] = None

    @property
    def speedup(self) -> float:
        return self.naive_seconds / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def naive_cycles_per_sec(self) -> float:
        return self.cycles / self.naive_seconds if self.naive_seconds else 0.0

    @property
    def fast_cycles_per_sec(self) -> float:
        return self.cycles / self.fast_seconds if self.fast_seconds else 0.0

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["speedup"] = self.speedup
        out["naive_cycles_per_sec"] = self.naive_cycles_per_sec
        out["fast_cycles_per_sec"] = self.fast_cycles_per_sec
        return out


def _run_ocp(
    idle_skip: bool,
    compute_latency: int,
    block: int,
    repeats: int,
    max_cycles: int,
) -> Tuple[int, float]:
    """One OCP program: ``repeats`` x (stream in, exec, stream out)."""
    soc = SoC(
        racs=[PassthroughRac(
            block_size=block, fifo_depth=2 * block,
            compute_latency=compute_latency,
        )],
        idle_skip=idle_skip,
    )
    program = OuProgram()
    for _ in range(repeats):
        program.stream_to(1, block).execs().stream_from(2, block)
    program.eop()
    soc.write_ram(IN, list(range(block)))
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    soc.run_until(lambda: ocp.done, max_cycles=max_cycles)
    if soc.read_ram(OUT, block) != list(range(block)):
        raise SimulationError("bench workload produced wrong data")
    from .obs import attribute_run

    attribution = attribute_run(soc).as_dict()
    return soc.sim.cycle, soc.sim.profile().skip_ratio, attribution


def _stall_heavy(idle_skip: bool) -> Tuple[int, float]:
    """Exec-wait dominated: a deep datapath, tiny data movement."""
    return _run_ocp(
        idle_skip,
        compute_latency=50_000, block=16, repeats=4, max_cycles=400_000,
    )


def _loopback(idle_skip: bool) -> Tuple[int, float]:
    """Transfer dominated: almost nothing to skip (overhead check)."""
    return _run_ocp(
        idle_skip,
        compute_latency=1, block=64, repeats=8, max_cycles=100_000,
    )


def _idle_timeout(idle_skip: bool) -> Tuple[int, float]:
    """A timeout running to its deadline on a quiescent system.

    This is the driver-backoff / watchdog shape: nothing will ever
    happen, and the naive kernel still ticks every component for every
    one of the ``max_cycles`` cycles before raising.
    """
    soc = SoC(racs=[PassthroughRac(block_size=16)], idle_skip=idle_skip)
    try:
        soc.run_until(lambda: False, max_cycles=200_000, what="bench timeout")
    except DeadlockError:
        pass
    else:  # pragma: no cover - the predicate above is constant
        raise SimulationError("bench timeout unexpectedly satisfied")
    # the coprocessor never starts, so there is no run to attribute
    return soc.sim.cycle, soc.sim.profile().skip_ratio, None


WORKLOADS: Dict[str, WorkloadFn] = {
    "stall_heavy": _stall_heavy,
    "loopback": _loopback,
    "idle_timeout": _idle_timeout,
}


def _measure(fn: WorkloadFn, idle_skip: bool):
    begin = time.perf_counter()
    cycles, skip_ratio, attribution = fn(idle_skip)
    return cycles, skip_ratio, attribution, time.perf_counter() - begin


def run_benchmarks(
    names: Optional[List[str]] = None,
) -> List[BenchResult]:
    """Run each named workload naive then fast; verify cycle equality."""
    results: List[BenchResult] = []
    for name in names or list(WORKLOADS):
        fn = WORKLOADS[name]
        naive_cycles, naive_ratio, naive_att, naive_s = _measure(
            fn, idle_skip=False
        )
        fast_cycles, fast_ratio, fast_att, fast_s = _measure(
            fn, idle_skip=True
        )
        if naive_cycles != fast_cycles:
            raise SimulationError(
                f"bench {name!r}: naive finished at cycle {naive_cycles} "
                f"but idle-skip at {fast_cycles} -- kernel equivalence "
                f"violated"
            )
        if naive_ratio:
            raise SimulationError(
                f"bench {name!r}: naive run reported skip ratio "
                f"{naive_ratio} (must be 0)"
            )
        if naive_att != fast_att:
            raise SimulationError(
                f"bench {name!r}: naive and idle-skip runs disagree on "
                f"cycle attribution -- kernel equivalence violated "
                f"(naive={naive_att} fast={fast_att})"
            )
        results.append(BenchResult(
            workload=name,
            cycles=fast_cycles,
            naive_seconds=naive_s,
            fast_seconds=fast_s,
            skip_ratio=fast_ratio,
            attribution=fast_att,
        ))
    return results


def render_results(results: List[BenchResult]) -> str:
    header = (
        f"{'workload':<14} {'cycles':>9} {'naive s':>9} {'fast s':>9} "
        f"{'speedup':>8} {'skip %':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.workload:<14} {r.cycles:>9} {r.naive_seconds:>9.3f} "
            f"{r.fast_seconds:>9.3f} {r.speedup:>7.1f}x "
            f"{100 * r.skip_ratio:>6.1f}"
        )
    return "\n".join(lines)


def write_report(results: List[BenchResult], path: str) -> None:
    """Emit the machine-readable artifact (``BENCH_simulator.json``)."""
    payload = {
        "bench": "simulator",
        "workloads": [r.as_dict() for r in results],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
