"""Kernel wall-clock benchmarks: naive vs idle-skip vs vectorized.

The paper's workloads spend most of their simulated time *waiting* --
the controller parked in ``exec_wait`` while a deep datapath crunches,
a driver backing off on a busy device, a timeout running to its
deadline.  The idle-skip fast path (see ``docs/SIMULATION.md``) turns
those waits into O(1) jumps, and the vectorized dispatch table on top
of it batches transfer-heavy streaming (FIFO slabs, whole bus bursts)
into single array operations; this module measures how much each layer
is actually worth, per workload, on the host at hand.

Each workload is run three times -- ``naive`` (every component, every
cycle), ``fast`` (idle skipping, per-cycle dispatch) and
``vectorized`` (idle skipping plus the dispatch table and the
trace-free hot batch lane) -- and all three runs are required to land
on the *same simulated cycle count* (anything else is a kernel
equivalence bug, and the bench refuses to report numbers for it).
Results carry wall-clock seconds, simulated cycles per host second for
each mode, the speedup ratios and the fraction of cycles the fast path
skipped.

Each ``BenchResult`` also carries the run's cycle attribution
(transfer / compute / control, from ``repro.obs``); naive and fast
runs must agree on it exactly, extending the equivalence check from
"same final cycle" to "same cycle-by-cycle story".  Workloads that run
a coprocessor program additionally carry the ``repro.perfbound``
static cost-bound check: the measured cycles must land inside the
predicted ``[lo, hi]`` interval (the bench *fails* on a violation --
it doubles as the cost model's soundness gate on real workloads).

Entry points:

* :func:`run_benchmarks` -- programmatic, returns ``BenchResult`` rows;
* ``python -m repro.cli bench`` -- human-readable table plus the
  ``BENCH_simulator.json`` machine-readable artifact (``--output``
  overrides the path);
* ``benchmarks/test_bench_simulator.py`` -- CI smoke run emitting the
  same JSON artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from .bus.protocol import AHB, AXI4, BusProtocol
from .core.program import OuProgram
from .core.registers import (
    CTRL_IE,
    CTRL_S,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from .rac.dft import DFTRac
from .rac.idct import IDCTRac
from .rac.scale import PassthroughRac
from .sim.errors import DeadlockError, SimulationError
from .system import RAM_BASE, SoC

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000

#: kernel configurations each workload runs under, in report order
MODES = ("naive", "fast", "vectorized")
_MODE_KW: Dict[str, Dict[str, bool]] = {
    "naive": {"idle_skip": False, "vectorized": False},
    "fast": {"idle_skip": True, "vectorized": False},
    "vectorized": {"idle_skip": True, "vectorized": True},
}

#: (simulated cycles, skip ratio, attribution dict or None, perfbound
#: check dict or None) of one run in one kernel mode
WorkloadFn = Callable[
    [str],
    Tuple[int, float, Optional[Dict[str, object]],
          Optional[Dict[str, object]]],
]


@dataclass
class BenchResult:
    """Naive / fast / vectorized measurement of one workload."""

    workload: str
    cycles: int
    naive_seconds: float
    fast_seconds: float
    #: wall-clock of the vectorized (dispatch table + hot batch) run
    vectorized_seconds: float
    skip_ratio: float
    #: cycle attribution of the run (``AttributionReport.as_dict``),
    #: ``None`` for workloads that never start a coprocessor
    attribution: Optional[Dict[str, object]] = None
    #: static cost-bound check (``repro.perfbound`` predicted interval
    #: vs the measured total), ``None`` when no program ran
    perfbound: Optional[Dict[str, object]] = None

    @property
    def speedup(self) -> float:
        return self.naive_seconds / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def hot_speedup(self) -> float:
        """Vectorized gain over the idle-skip baseline."""
        if not self.vectorized_seconds:
            return 0.0
        return self.fast_seconds / self.vectorized_seconds

    @property
    def naive_cycles_per_sec(self) -> float:
        return self.cycles / self.naive_seconds if self.naive_seconds else 0.0

    @property
    def fast_cycles_per_sec(self) -> float:
        return self.cycles / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def vectorized_cycles_per_sec(self) -> float:
        if not self.vectorized_seconds:
            return 0.0
        return self.cycles / self.vectorized_seconds

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["speedup"] = self.speedup
        out["hot_speedup"] = self.hot_speedup
        out["naive_cycles_per_sec"] = self.naive_cycles_per_sec
        out["fast_cycles_per_sec"] = self.fast_cycles_per_sec
        out["vectorized_cycles_per_sec"] = self.vectorized_cycles_per_sec
        return out


#: bench systems only touch the first few KiB of RAM -- a small memory
#: keeps mode-independent construction cost out of the workload numbers
BENCH_RAM_SIZE = 1 << 17


@lru_cache(maxsize=None)
def _stream_program(words: int, repeats: int, chunk: int) -> OuProgram:
    """``repeats`` x (stream in, exec, stream out); built once, reused
    by all three mode runs (the program is immutable after ``eop``)."""
    program = OuProgram()
    for _ in range(repeats):
        (program.stream_to(1, words, chunk=chunk).execs()
                .stream_from(2, words, chunk=chunk))
    program.eop()
    return program


def _run_ocp(
    mode: str,
    rac_factory: Callable[[], object],
    words: int,
    repeats: int,
    max_cycles: int,
    data: Optional[List[int]] = None,
    expected: Optional[List[int]] = None,
    chunk: int = 64,
    protocol: BusProtocol = AHB,
) -> Tuple[int, float, Dict[str, object], Dict[str, object], float]:
    """One OCP program: ``repeats`` x (stream in, exec, stream out).

    Only the simulation itself (``run_until``) is timed: system
    construction, program building and the post-run attribution /
    cost-bound bookkeeping are identical across modes and would only
    dilute the kernel comparison.
    """
    soc = SoC(racs=[rac_factory()], ram_size=BENCH_RAM_SIZE,
              protocol=protocol, **_MODE_KW[mode])
    program = _stream_program(words, repeats, chunk)
    if data is None:
        data = list(range(words))
    if expected is None:
        expected = list(data)
    soc.write_ram(IN, data)
    soc.write_ram(PROG, program.words())
    ocp = soc.ocp
    for bank, base in {0: PROG, 1: IN, 2: OUT}.items():
        ocp.interface.write_word(REG_BANK_BASE + 4 * bank, base)
    ocp.interface.write_word(REG_PROG_SIZE, len(program))
    ocp.interface.write_word(REG_CTRL, CTRL_S | CTRL_IE)
    begin = time.perf_counter()
    soc.run_until(lambda: ocp.done, max_cycles=max_cycles)
    elapsed = time.perf_counter() - begin
    if soc.read_ram(OUT, words) != expected:
        raise SimulationError("bench workload produced wrong data")
    from .obs import attribute_run, compare_attribution
    from .perfbound import bound_program
    from .perfbound.model import CostModel

    report = attribute_run(soc)
    bound = bound_program(list(program.instructions), ocp.rac,
                          model=CostModel(protocol=protocol))
    check = compare_attribution(report, bound)
    perfbound = {
        "predicted_lo": int(bound.total.lo),
        "predicted_hi": (int(bound.total.hi) if bound.bounded else None),
        "measured": report.total_cycles,
        "tightness": bound.tightness(),
        "sound": check.sound,
    }
    return (soc.sim.cycle, soc.sim.profile().skip_ratio,
            report.as_dict(), perfbound, elapsed)


def _stall_heavy(mode: str):
    """Exec-wait dominated: a deep datapath, tiny data movement."""
    return _run_ocp(
        mode,
        lambda: PassthroughRac(block_size=16, fifo_depth=32,
                               compute_latency=50_000),
        words=16, repeats=4, max_cycles=400_000,
    )


def _loopback(mode: str):
    """Transfer dominated: almost nothing to skip (overhead check)."""
    return _run_ocp(
        mode,
        lambda: PassthroughRac(block_size=64, fifo_depth=128,
                               compute_latency=1),
        words=64, repeats=8, max_cycles=100_000,
    )


#: deterministic 8x8 coefficient block (sign-extended 16-bit words)
_IDCT_INPUT = [(index * 37 + 11) % 256 for index in range(64)]
#: deterministic interleaved Q15 complex input for the 256-point DFT
_DFT_INPUT = [(index * 97 + 5) % 1024 for index in range(512)]


@lru_cache(maxsize=None)
def _idct_expected() -> Tuple[int, ...]:
    return tuple(IDCTRac().compute_fn([list(_IDCT_INPUT)])[0])


@lru_cache(maxsize=None)
def _dft_expected() -> Tuple[int, ...]:
    return tuple(DFTRac(n_points=256).compute_fn([list(_DFT_INPUT)])[0])


def _jpeg_idct(mode: str):
    """Transfer heavy: the paper's 8x8 IDCT streaming many blocks.

    64 words in + 64 words out per block against an 18-cycle pipeline
    latency -- data movement dominates, which is exactly what the
    vectorized burst/slab lane accelerates.  Runs on the AXI4 system
    (the paper's Zynq integration target): whole-block bursts keep the
    stream dense, making this the densest-transfer configuration the
    kernel faces.
    """
    return _run_ocp(
        mode,
        lambda: IDCTRac(fifo_depth=64),
        words=64, repeats=48, max_cycles=400_000,
        data=list(_IDCT_INPUT), expected=list(_idct_expected()),
        protocol=AXI4,
    )


def _dft(mode: str):
    """Transfer heavy: the paper's 256-point Spiral DFT.

    1024 words moved per transform (512 in, 512 out) through FIFOs deep
    enough to hold a whole transform: long mvtc/mvfc chunk trains whose
    producer/consumer runs are exactly the slab shapes the hot batch
    lane targets.  Like :func:`_jpeg_idct` this runs on the AXI4
    long-burst system so the transfer stream stays dense.
    """
    return _run_ocp(
        mode,
        lambda: DFTRac(n_points=256, fifo_depth=512),
        words=512, repeats=6, max_cycles=400_000,
        data=list(_DFT_INPUT), expected=list(_dft_expected()), chunk=128,
        protocol=AXI4,
    )


def _idle_timeout(mode: str):
    """A timeout running to its deadline on a quiescent system.

    This is the driver-backoff / watchdog shape: nothing will ever
    happen, and the naive kernel still ticks every component for every
    one of the ``max_cycles`` cycles before raising.
    """
    soc = SoC(racs=[PassthroughRac(block_size=16)], ram_size=BENCH_RAM_SIZE,
              **_MODE_KW[mode])
    begin = time.perf_counter()
    try:
        soc.run_until(lambda: False, max_cycles=200_000, what="bench timeout")
    except DeadlockError:
        pass
    else:  # pragma: no cover - the predicate above is constant
        raise SimulationError("bench timeout unexpectedly satisfied")
    elapsed = time.perf_counter() - begin
    # the coprocessor never starts: nothing to attribute or to bound
    return soc.sim.cycle, soc.sim.profile().skip_ratio, None, None, elapsed


WORKLOADS: Dict[str, WorkloadFn] = {
    "stall_heavy": _stall_heavy,
    "loopback": _loopback,
    "jpeg_idct": _jpeg_idct,
    "dft": _dft,
    "idle_timeout": _idle_timeout,
}


def _measure(fn: WorkloadFn, mode: str):
    # workloads time their own simulation region (setup and post-run
    # bookkeeping are mode-independent and excluded)
    return fn(mode)


#: fast/vectorized rounds per workload; the best (minimum) wall-clock
#: is reported, which keeps the speedup ratios stable on noisy CI hosts
BEST_OF = 3


def run_benchmarks(
    names: Optional[List[str]] = None,
) -> List[BenchResult]:
    """Run each workload in all three modes; verify cycle equality."""
    results: List[BenchResult] = []
    for name in names or list(WORKLOADS):
        fn = WORKLOADS[name]
        runs = {"naive": _measure(fn, "naive")}
        for mode in ("fast", "vectorized"):
            rounds = [_measure(fn, mode) for _ in range(BEST_OF)]
            for other in rounds[1:]:
                if other[:4] != rounds[0][:4]:
                    raise SimulationError(
                        f"bench {name!r}: two identical {mode} runs "
                        f"disagree -- the simulator is not deterministic"
                    )
            runs[mode] = min(rounds, key=lambda r: r[4])
        naive_cycles, naive_ratio, naive_att, naive_pb, naive_s = runs["naive"]
        fast_cycles, fast_ratio, fast_att, fast_pb, fast_s = runs["fast"]
        vec_cycles, _, vec_att, vec_pb, vec_s = runs["vectorized"]
        for mode, cycles in (("idle-skip", fast_cycles),
                             ("vectorized", vec_cycles)):
            if cycles != naive_cycles:
                raise SimulationError(
                    f"bench {name!r}: naive finished at cycle "
                    f"{naive_cycles} but {mode} at {cycles} -- kernel "
                    f"equivalence violated"
                )
        if naive_ratio:
            raise SimulationError(
                f"bench {name!r}: naive run reported skip ratio "
                f"{naive_ratio} (must be 0)"
            )
        for mode, att in (("idle-skip", fast_att), ("vectorized", vec_att)):
            if att != naive_att:
                raise SimulationError(
                    f"bench {name!r}: naive and {mode} runs disagree on "
                    f"cycle attribution -- kernel equivalence violated "
                    f"(naive={naive_att} {mode}={att})"
                )
        for mode, pb in (("idle-skip", fast_pb), ("vectorized", vec_pb)):
            if pb != naive_pb:
                raise SimulationError(
                    f"bench {name!r}: naive and {mode} runs disagree on "
                    f"the cost-bound check (naive={naive_pb} {mode}={pb})"
                )
        if fast_pb is not None and not fast_pb["sound"]:
            raise SimulationError(
                f"bench {name!r}: measured attribution escaped the "
                f"static cost bound ({fast_pb}) -- the cost model or "
                f"the simulator timing drifted"
            )
        results.append(BenchResult(
            workload=name,
            cycles=fast_cycles,
            naive_seconds=naive_s,
            fast_seconds=fast_s,
            vectorized_seconds=vec_s,
            skip_ratio=fast_ratio,
            attribution=fast_att,
            perfbound=fast_pb,
        ))
    return results


def render_results(results: List[BenchResult]) -> str:
    header = (
        f"{'workload':<14} {'cycles':>9} {'wcet':>9} {'naive s':>9} "
        f"{'fast s':>9} {'vec s':>9} {'speedup':>8} {'hot x':>7} "
        f"{'skip %':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        wcet = "-"
        if r.perfbound is not None and r.perfbound["predicted_hi"]:
            wcet = str(r.perfbound["predicted_hi"])
        lines.append(
            f"{r.workload:<14} {r.cycles:>9} {wcet:>9} "
            f"{r.naive_seconds:>9.3f} {r.fast_seconds:>9.3f} "
            f"{r.vectorized_seconds:>9.3f} {r.speedup:>7.1f}x "
            f"{r.hot_speedup:>6.1f}x {100 * r.skip_ratio:>6.1f}"
        )
    return "\n".join(lines)


def write_report(
    results: List[BenchResult],
    path: str,
    mpsoc: Optional["MpsocSweep"] = None,
) -> None:
    """Emit the machine-readable artifact (``BENCH_simulator.json``)."""
    payload: Dict[str, object] = {
        "bench": "simulator",
        "workloads": [r.as_dict() for r in results],
    }
    if mpsoc is not None:
        payload["mpsoc"] = mpsoc.as_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def merge_mpsoc_into_report(path: str, mpsoc: "MpsocSweep") -> None:
    """Add/replace the ``mpsoc`` section of an existing report file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["mpsoc"] = mpsoc.as_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# MPSoC scale-out sweep (throughput scheduler across N OCPs)
# ---------------------------------------------------------------------------

@dataclass
class MpsocPoint:
    """One point of the 1..N OCP scaling curve."""

    ocps: int
    jobs: int
    cycles: int
    #: aggregate throughput at the modelled clock (jobs per second)
    ops_per_sec: float
    #: processed payload words per simulated cycle
    words_per_cycle: float
    #: aggregate throughput relative to the 1-OCP point
    speedup_vs_1: float
    #: mean per-OCP busy fraction over the run
    utilization: float
    host_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class MpsocSweep:
    """The whole scaling curve plus its workload parameters."""

    workload: str
    jobs: int
    job_words: int
    compute_latency: int
    batch_jobs: int
    clock_mhz: float
    points: List[MpsocPoint]

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["points"] = [p.as_dict() for p in self.points]
        return out


def run_mpsoc_sweep(
    n_jobs: int = 192,
    ocp_counts: Tuple[int, ...] = (1, 2, 4, 8),
    job_words: int = 16,
    compute_latency: int = 400,
    batch_jobs: int = 4,
    queue_bound: int = 8,
    clock_mhz: float = 50.0,
    verify_naive: bool = True,
) -> MpsocSweep:
    """Throughput-scheduler scaling curve on the passthrough workload.

    The same ``n_jobs``-job stream is dispatched across 1, 2, 4, 8
    identical passthrough OCPs behind one AHB arbiter; each point
    verifies every output word (passthrough is the identity), and the
    smallest point is additionally re-run under the naive kernel to
    re-assert cycle equivalence before any throughput is reported.
    """
    from .obs import attribute_schedule
    from .sched import Job, ThroughputScheduler

    def job_stream() -> List[Job]:
        # deterministic payload, no RNG: job index mixed with a Weyl
        # constant so neighbouring jobs do not share words
        return [
            Job(
                f"job{index}", "passthrough",
                [(index * 2654435761 + word) & 0xFFFFFFFF
                 for word in range(job_words)],
            )
            for index in range(n_jobs)
        ]

    def run_one(count: int, idle_skip: bool) -> Tuple[int, float]:
        soc = SoC(
            racs=[
                PassthroughRac(
                    name=f"pt{index}", block_size=job_words,
                    fifo_depth=2 * job_words,
                    compute_latency=compute_latency,
                )
                for index in range(count)
            ],
            idle_skip=idle_skip, clock_mhz=clock_mhz,
        )
        scheduler = ThroughputScheduler(
            soc, batch_jobs=batch_jobs, queue_bound=queue_bound,
        )
        results = scheduler.run_stream(job_stream(), max_cycles=20_000_000)
        for result in results:
            if result.outputs != result.job.words:
                raise SimulationError(
                    f"mpsoc sweep: job {result.job.job_id} corrupted on "
                    f"the {count}-OCP point"
                )
        report = attribute_schedule(scheduler)
        if not report.consistent:
            raise SimulationError(
                "mpsoc sweep: per-OCP job attribution does not sum to "
                "the completed total"
            )
        mean_util = (
            sum(s.utilization for s in report.per_ocp) / len(report.per_ocp)
        )
        return soc.sim.cycle, mean_util

    points: List[MpsocPoint] = []
    base_cycles: Optional[int] = None
    for count in ocp_counts:
        begin = time.perf_counter()
        cycles, utilization = run_one(count, idle_skip=True)
        host_seconds = time.perf_counter() - begin
        if count == min(ocp_counts) and verify_naive:
            naive_cycles, _ = run_one(count, idle_skip=False)
            if naive_cycles != cycles:
                raise SimulationError(
                    f"mpsoc sweep: naive kernel finished at cycle "
                    f"{naive_cycles} but idle-skip at {cycles} -- "
                    f"kernel equivalence violated"
                )
        if base_cycles is None:
            base_cycles = cycles
        seconds = cycles / (clock_mhz * 1e6)
        points.append(MpsocPoint(
            ocps=count,
            jobs=n_jobs,
            cycles=cycles,
            ops_per_sec=n_jobs / seconds if seconds else 0.0,
            words_per_cycle=n_jobs * job_words / cycles if cycles else 0.0,
            speedup_vs_1=base_cycles / cycles if cycles else 0.0,
            utilization=utilization,
            host_seconds=host_seconds,
        ))
    return MpsocSweep(
        workload="mpsoc_passthrough",
        jobs=n_jobs,
        job_words=job_words,
        compute_latency=compute_latency,
        batch_jobs=batch_jobs,
        clock_mhz=clock_mhz,
        points=points,
    )


def render_mpsoc(sweep: MpsocSweep) -> str:
    header = (
        f"{'ocps':>4} {'cycles':>10} {'ops/s':>12} {'words/cyc':>10} "
        f"{'speedup':>8} {'util %':>7}"
    )
    lines = [
        f"mpsoc scale-out: {sweep.jobs} x {sweep.job_words}-word "
        f"{sweep.workload} jobs, batch={sweep.batch_jobs}, "
        f"{sweep.clock_mhz:g} MHz",
        header,
        "-" * len(header),
    ]
    for p in sweep.points:
        lines.append(
            f"{p.ocps:>4} {p.cycles:>10} {p.ops_per_sec:>12.0f} "
            f"{p.words_per_cycle:>10.3f} {p.speedup_vs_1:>7.2f}x "
            f"{100 * p.utilization:>6.1f}"
        )
    return "\n".join(lines)
