"""Control-flow graph construction for Ouessant microcode.

The extension ISA has exactly three control-transfer instructions --
unconditional ``jmp``, the single-level hardware ``loop``/``endl`` pair
-- plus the terminators ``eop``/``halt``.  That makes the CFG small and
very analyzable:

* every branch except ``endl`` is *unconditional*, so a reachable
  cycle that does not go through an ``endl`` back-edge can never be
  left: it is a guaranteed infinite loop;
* ``endl`` back-edges are bounded by their ``loop``'s immediate trip
  count, so a structured program's CFG minus back-edges is a DAG --
  the property the abstract interpreter's single-pass propagation and
  loop acceleration rely on.

:func:`build_cfg` also performs the structural checks (loop balance,
jmp range, jmps crossing loop boundaries) and records them as
``(code, index, message)`` problems for the engine to report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.isa import CONTROL_FLOW_OPS, OuInstruction, OuOp, TERMINATOR_OPS

#: (diagnostic code, instruction index, message)
Problem = Tuple[str, Optional[int], str]


@dataclass
class LoopRegion:
    """One structurally matched ``loop`` ... ``endl`` pair."""

    loop_index: int
    endl_index: int
    trip: int  # iterations executed (hardware runs the body >= once)

    def covers(self, index: int) -> bool:
        """True when ``index`` executes under this loop's control.

        The body spans ``(loop_index, endl_index]`` -- the ``endl``
        itself needs the loop active, the ``loop`` instruction does
        not.
        """
        return self.loop_index < index <= self.endl_index


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end]``."""

    id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    #: successor reached by an ``endl`` back-edge (excluded from the
    #: DAG the interpreter propagates over)
    back_edge: Optional[int] = None
    #: control falls off the end of the program after this block
    falls_off_end: bool = False

    @property
    def size(self) -> int:
        return self.end - self.start + 1


class CFG:
    """Blocks, edges and derived facts for one program."""

    def __init__(self, program: Sequence[OuInstruction]) -> None:
        self.program = list(program)
        self.blocks: List[BasicBlock] = []
        self.block_of: Dict[int, int] = {}  # instruction index -> block id
        self.loops: List[LoopRegion] = []
        self.problems: List[Problem] = []
        self.reachable: Set[int] = set()  # block ids
        self._acyclic_order: Optional[List[int]] = None

    # -- queries ----------------------------------------------------------
    def block_at(self, index: int) -> BasicBlock:
        return self.blocks[self.block_of[index]]

    def reachable_instructions(self) -> Set[int]:
        out: Set[int] = set()
        for bid in self.reachable:
            block = self.blocks[bid]
            out.update(range(block.start, block.end + 1))
        return out

    def dead_ranges(self) -> List[Tuple[int, int]]:
        """Contiguous unreachable instruction ranges ``[lo, hi]``."""
        alive = self.reachable_instructions()
        ranges: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for index in range(len(self.program)):
            if index not in alive:
                if start is None:
                    start = index
            elif start is not None:
                ranges.append((start, index - 1))
                start = None
        if start is not None:
            ranges.append((start, len(self.program) - 1))
        return ranges

    def loop_for(self, index: int) -> Optional[LoopRegion]:
        for region in self.loops:
            if region.covers(index):
                return region
        return None

    @property
    def structured(self) -> bool:
        """True when no structural/control-flow problem was found."""
        return not self.problems

    def acyclic_order(self) -> Optional[List[int]]:
        """Reachable block ids, topologically sorted ignoring back-edges.

        Returns ``None`` when the back-edge-free subgraph still has a
        cycle (i.e. an infinite loop was detected).
        """
        return self._acyclic_order


def _match_loops(program: Sequence[OuInstruction], cfg: CFG) -> None:
    stack: List[int] = []
    for index, instr in enumerate(program):
        if instr.op is OuOp.LOOP:
            if stack:
                cfg.problems.append((
                    "OU004", index,
                    "nested loop: the controller supports a single level",
                ))
            stack.append(index)
        elif instr.op is OuOp.ENDL:
            if not stack:
                cfg.problems.append((
                    "OU005", index, "endl without a matching loop",
                ))
            else:
                loop_index = stack.pop()
                trip = max(1, program[loop_index].imm)
                cfg.loops.append(LoopRegion(loop_index, index, trip))
    for loop_index in stack:
        cfg.problems.append((
            "OU006", loop_index,
            "loop opened but never closed with endl",
        ))


def _leaders(program: Sequence[OuInstruction], cfg: CFG) -> List[int]:
    n = len(program)
    leaders = {0}
    for index, instr in enumerate(program):
        op = instr.op
        if op in CONTROL_FLOW_OPS or op in TERMINATOR_OPS:
            if index + 1 < n:
                leaders.add(index + 1)
        if op is OuOp.JMP and 0 <= instr.imm < n:
            leaders.add(instr.imm)
    for region in cfg.loops:
        if region.loop_index + 1 < n:
            leaders.add(region.loop_index + 1)  # back-edge target
    return sorted(leaders)


def _check_jmp_structure(cfg: CFG) -> None:
    """Flag jmps that cross a loop boundary (either direction)."""
    program = cfg.program
    for index, instr in enumerate(program):
        if instr.op is not OuOp.JMP or not 0 <= instr.imm < len(program):
            continue
        for region in cfg.loops:
            if region.covers(index) != region.covers(instr.imm):
                cfg.problems.append((
                    "OU007", index,
                    f"jmp from {index} to {instr.imm} crosses the "
                    f"loop at {region.loop_index}..{region.endl_index}: "
                    "the loop cannot be bounded",
                ))
                break


def _find_infinite_cycle(cfg: CFG) -> None:
    """Detect reachable cycles that avoid every endl back-edge.

    Such a cycle is made of unconditional edges only, so once entered
    it can never be left.  Also computes the topological order of the
    back-edge-free reachable subgraph when it is acyclic.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {bid: WHITE for bid in cfg.reachable}
    order: List[int] = []
    cycle_at: Optional[int] = None

    for root in sorted(cfg.reachable):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GREY
        while stack:
            bid, edge_index = stack[-1]
            successors = [
                s for s in cfg.blocks[bid].successors
                if s != cfg.blocks[bid].back_edge and s in cfg.reachable
            ]
            if edge_index < len(successors):
                stack[-1] = (bid, edge_index + 1)
                nxt = successors[edge_index]
                if color[nxt] == GREY:
                    if cycle_at is None:
                        cycle_at = cfg.blocks[bid].end
                elif color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, 0))
            else:
                color[bid] = BLACK
                order.append(bid)
                stack.pop()

    if cycle_at is not None:
        cfg.problems.append((
            "OU009", cycle_at,
            "infinite loop: this control-flow cycle is unconditional "
            "and can never reach eop/halt",
        ))
        cfg._acyclic_order = None
    else:
        cfg._acyclic_order = list(reversed(order))


def build_cfg(program: Sequence[OuInstruction]) -> CFG:
    """Build the CFG and run the structural checks.

    The returned graph always covers the whole program; problems
    (OU003..OU009 codes) are accumulated in :attr:`CFG.problems` for
    the engine to turn into findings.
    """
    cfg = CFG(program)
    n = len(program)
    if n == 0:
        return cfg

    _match_loops(program, cfg)
    back_target = {region.endl_index: region.loop_index + 1
                   for region in cfg.loops}

    leaders = _leaders(program, cfg)
    starts = set(leaders)
    for block_id, start in enumerate(leaders):
        end = start
        while (end + 1 < n and end + 1 not in starts
               and program[end].op not in CONTROL_FLOW_OPS
               and program[end].op not in TERMINATOR_OPS):
            end += 1
        block = BasicBlock(block_id, start, end)
        cfg.blocks.append(block)
        for index in range(start, end + 1):
            cfg.block_of[index] = block_id

    for block in cfg.blocks:
        last = program[block.end]
        op = last.op
        if op in TERMINATOR_OPS:
            continue
        if op is OuOp.JMP:
            if 0 <= last.imm < n:
                block.successors.append(cfg.block_of[last.imm])
            else:
                cfg.problems.append((
                    "OU003", block.end,
                    f"jmp target {last.imm} outside the "
                    f"{n}-instruction program",
                ))
            continue
        if op is OuOp.ENDL and block.end in back_target:
            target = back_target[block.end]
            if target < n:
                back_id = cfg.block_of[target]
                block.successors.append(back_id)
                block.back_edge = back_id
        # fallthrough (also the endl exit edge and the loop body entry)
        if block.end + 1 < n:
            block.successors.append(cfg.block_of[block.end + 1])
        else:
            block.falls_off_end = True

    # reachability over every edge, back-edges included
    worklist = [0]
    while worklist:
        bid = worklist.pop()
        if bid in cfg.reachable:
            continue
        cfg.reachable.add(bid)
        worklist.extend(cfg.blocks[bid].successors)

    _check_jmp_structure(cfg)
    _find_infinite_cycle(cfg)
    return cfg
