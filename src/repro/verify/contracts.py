"""Cross-layer contracts: driver bank configuration vs the memory map.

Microcode is written against *bank numbers*; the driver binds those
banks to absolute byte addresses at run time, and the system memory map
decides how much room each binding actually has.  These helpers close
the loop: given a ``bank -> address`` map and a
:class:`~repro.bus.memmap.MemoryMap`, they derive the per-bank window
(in words) that the verifier's OU022 check enforces, and flag bank
bases no bus slave decodes (OU025) -- the two failure modes a linear
scan over the program alone can never see.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..bus.memmap import MemoryMap
from .diagnostics import Finding, make_finding
from .engine import DEFAULT_STEP_BUDGET, verify_program


def bank_windows_from_map(
    banks: Mapping[int, int], memmap: MemoryMap
) -> Tuple[Dict[int, int], List[Finding]]:
    """Resolve each configured bank base against the memory map.

    Returns ``(windows, findings)`` where ``windows`` maps bank number
    to the number of *words* addressable from its base before the
    region ends, and ``findings`` holds one OU025 error per bank whose
    base address no slave decodes.
    """
    windows: Dict[int, int] = {}
    findings: List[Finding] = []
    for bank, address in sorted(banks.items()):
        span = memmap.span_from(address)
        if span is None:
            findings.append(make_finding(
                "OU025", None,
                f"bank {bank} base {address:#010x} is not decoded by "
                "any bus slave",
            ))
        else:
            windows[bank] = span // 4
    return windows, findings


def verify_on_soc(
    program,
    soc,
    banks: Mapping[int, int],
    ocp_index: int = 0,
    step_budget: Optional[int] = DEFAULT_STEP_BUDGET,
    suppress=None,
):
    """Run the full verifier against a concrete system configuration.

    Pulls the RAC from the SoC's coprocessor and the per-bank windows
    from its bus memory map, so every cross-layer check participates.
    Accepts an :class:`~repro.core.program.OuProgram` or a plain
    instruction sequence; returns a
    :class:`~repro.verify.diagnostics.VerifyReport`.
    """
    instructions = getattr(program, "instructions", program)
    windows, extra = bank_windows_from_map(banks, soc.bus.memmap)
    report = verify_program(
        instructions,
        rac=soc.ocps[ocp_index].rac,
        configured_banks=set(banks),
        bank_windows=windows,
        step_budget=step_budget,
    )
    report.findings.extend(extra)
    report.sort()
    report.apply_suppressions(suppress or ())
    return report
