"""Interval abstract domain for the microcode verifier.

The analyzer tracks non-negative counters (words pushed or drained per
FIFO, executed instructions) and the OFR offset register.  All of them
evolve by adding compile-time constants, so intervals with widening are
both precise on real microcode (single-path programs keep width-0
intervals) and guaranteed to terminate on adversarial control flow.

``INF`` stands in for +infinity; interval bounds are ``int`` or
``INF``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

#: +infinity sentinel for interval upper bounds
INF = float("inf")

Bound = Union[int, float]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (``hi`` may be INF)."""

    lo: Bound
    hi: Bound

    def __post_init__(self) -> None:
        if self.lo > self.hi:  # pragma: no cover - construction bug guard
            raise ValueError(f"bad interval [{self.lo}, {self.hi}]")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    # -- predicates ------------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return self.hi != INF

    def __str__(self) -> str:
        if self.is_point:
            return str(self.lo)
        hi = "inf" if self.hi == INF else str(self.hi)
        return f"[{self.lo}, {hi}]"

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def add_const(self, value: int) -> "Interval":
        return Interval(self.lo + value, self.hi + value)

    def scale(self, factor: "Interval") -> "Interval":
        """Multiply by a non-negative interval factor."""
        candidates = [
            self.lo * factor.lo, self.lo * factor.hi,
            self.hi * factor.lo, self.hi * factor.hi,
        ]
        return Interval(min(candidates), max(candidates))

    def delta_to(self, later: "Interval") -> "Interval":
        """Per-iteration growth from this state to ``later``.

        Bounds move independently (``lo -> lo``, ``hi -> hi``); this is
        exact for the additive counters the verifier tracks (the set of
        paths through a loop body does not depend on the entry state).
        """
        lo = later.lo - self.lo
        hi = later.hi - self.hi
        return Interval(min(lo, hi), max(lo, hi))

    def clamp_nonneg(self) -> "Interval":
        return Interval(max(0, self.lo), max(0, self.hi))

    # -- lattice ---------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to +/-inf.

        The lower bound is clamped at 0 because every tracked quantity
        is non-negative (OFR included: addofr immediates are unsigned
        and clrofr resets to 0).
        """
        lo = self.lo if other.lo >= self.lo else 0
        hi = self.hi if other.hi <= self.hi else INF
        return Interval(lo, hi)


ZERO = Interval.point(0)


class AbsState:
    """Abstract machine state at one program point.

    * ``ofr`` -- the offset register,
    * ``pushed[f]`` -- cumulative words moved into input FIFO ``f``,
    * ``drained[f]`` -- cumulative words moved out of output FIFO ``f``,
    * ``steps`` -- executed instructions so far,
    * ``costs[k]`` -- accumulated cycle-cost intervals per bucket
      (used by :mod:`repro.perfbound`; empty unless a cost model runs).
    """

    __slots__ = ("ofr", "pushed", "drained", "steps", "costs")

    def __init__(
        self,
        ofr: Interval = ZERO,
        pushed: Optional[Dict[int, Interval]] = None,
        drained: Optional[Dict[int, Interval]] = None,
        steps: Interval = ZERO,
        costs: Optional[Dict[str, Interval]] = None,
    ) -> None:
        self.ofr = ofr
        self.pushed = dict(pushed or {})
        self.drained = dict(drained or {})
        self.steps = steps
        self.costs = dict(costs or {})

    def copy(self) -> "AbsState":
        return AbsState(self.ofr, self.pushed, self.drained, self.steps,
                        self.costs)

    # -- counter access ---------------------------------------------------
    def get_pushed(self, fifo: int) -> Interval:
        return self.pushed.get(fifo, ZERO)

    def get_drained(self, fifo: int) -> Interval:
        return self.drained.get(fifo, ZERO)

    def add_pushed(self, fifo: int, count: int) -> None:
        self.pushed[fifo] = self.get_pushed(fifo).add_const(count)

    def add_drained(self, fifo: int, count: int) -> None:
        self.drained[fifo] = self.get_drained(fifo).add_const(count)

    def get_cost(self, bucket: str) -> Interval:
        return self.costs.get(bucket, ZERO)

    def add_cost(self, bucket: str, amount: Interval) -> None:
        self.costs[bucket] = self.get_cost(bucket) + amount

    # -- lattice ---------------------------------------------------------
    def _merge(self, other: "AbsState", op: str) -> "AbsState":
        def merge_maps(a, b):
            out = {}
            for key in set(a) | set(b):
                out[key] = getattr(a.get(key, ZERO), op)(b.get(key, ZERO))
            return out

        return AbsState(
            ofr=getattr(self.ofr, op)(other.ofr),
            pushed=merge_maps(self.pushed, other.pushed),
            drained=merge_maps(self.drained, other.drained),
            steps=getattr(self.steps, op)(other.steps),
            costs=merge_maps(self.costs, other.costs),
        )

    def join(self, other: "AbsState") -> "AbsState":
        return self._merge(other, "join")

    def widen(self, other: "AbsState") -> "AbsState":
        return self._merge(other, "widen")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbsState):
            return NotImplemented
        return (
            self.ofr == other.ofr
            and self.steps == other.steps
            and self._normalized(self.pushed) == self._normalized(other.pushed)
            and self._normalized(self.drained)
            == self._normalized(other.drained)
            and self._normalized(self.costs) == self._normalized(other.costs)
        )

    @staticmethod
    def _normalized(counters: Dict) -> Dict:
        return {k: v for k, v in counters.items() if v != ZERO}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AbsState(ofr={self.ofr}, pushed={self.pushed}, "
                f"drained={self.drained}, steps={self.steps}, "
                f"costs={self.costs})")
