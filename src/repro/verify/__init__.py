"""Static-analysis framework for Ouessant microcode.

Public surface:

* :func:`~repro.verify.engine.verify_program` -- the verifier,
* :class:`~repro.verify.diagnostics.VerifyReport` /
  :class:`~repro.verify.diagnostics.Finding` / :data:`CATALOG` -- the
  diagnostics model,
* :func:`~repro.verify.contracts.verify_on_soc` /
  :func:`~repro.verify.contracts.bank_windows_from_map` -- cross-layer
  contract checks against a concrete system,
* :func:`~repro.verify.footprint.program_footprint` -- per-bank
  read/write footprint extraction over the interval interpreter,
  consumed by the :mod:`repro.racelint` concurrency analyzer,
* :func:`~repro.verify.cfg.build_cfg` -- the CFG builder, exported for
  tests and tooling.
"""

from .cfg import CFG, BasicBlock, LoopRegion, build_cfg
from .contracts import bank_windows_from_map, verify_on_soc
from .diagnostics import (
    CATALOG,
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    VerifyReport,
)
from .engine import DEFAULT_STEP_BUDGET, verify_program
from .footprint import ByteRange, ProgramFootprint, program_footprint

__all__ = [
    "CATALOG",
    "CFG",
    "BasicBlock",
    "ByteRange",
    "DEFAULT_STEP_BUDGET",
    "Finding",
    "LoopRegion",
    "ProgramFootprint",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "VerifyReport",
    "bank_windows_from_map",
    "build_cfg",
    "program_footprint",
    "verify_on_soc",
    "verify_program",
]
