"""Static-analysis framework for Ouessant microcode.

Public surface:

* :func:`~repro.verify.engine.verify_program` -- the verifier,
* :class:`~repro.verify.diagnostics.VerifyReport` /
  :class:`~repro.verify.diagnostics.Finding` / :data:`CATALOG` -- the
  diagnostics model,
* :func:`~repro.verify.contracts.verify_on_soc` /
  :func:`~repro.verify.contracts.bank_windows_from_map` -- cross-layer
  contract checks against a concrete system,
* :func:`~repro.verify.cfg.build_cfg` -- the CFG builder, exported for
  tests and tooling.
"""

from .cfg import CFG, BasicBlock, LoopRegion, build_cfg
from .contracts import bank_windows_from_map, verify_on_soc
from .diagnostics import (
    CATALOG,
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    VerifyReport,
)
from .engine import DEFAULT_STEP_BUDGET, verify_program

__all__ = [
    "CATALOG",
    "CFG",
    "BasicBlock",
    "DEFAULT_STEP_BUDGET",
    "Finding",
    "LoopRegion",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "VerifyReport",
    "bank_windows_from_map",
    "build_cfg",
    "verify_on_soc",
    "verify_program",
]
