"""Abstract interpretation of Ouessant microcode over the interval domain.

The :class:`Analyzer` propagates :class:`~repro.verify.domain.AbsState`
abstract states over a *structured* CFG (no structural problems, see
:mod:`repro.verify.cfg`).  Two ISA facts make the analysis both exact on
real firmware and guaranteed to terminate on anything decodable:

* minus ``endl`` back-edges, the reachable CFG is a DAG, so one pass in
  topological order computes every in-state with plain joins -- no
  fixpoint iteration;
* ``loop``/``endl`` regions have compile-time trip counts, so instead of
  widening a loop body we *accelerate* it: run the body transfer twice,
  measure the per-iteration delta ``D`` (exact, because the counters are
  additive and the body's path set does not depend on the entry state),
  and extrapolate ``out[trip] = out[2] + D * (trip - 2)``.

Per-instruction checks run through a callback so the engine owns the
diagnostics.  Inside a loop body, checks are evaluated against every
iteration's entry state when the unrolling is cheap (``trip`` and the
total work are small), which keeps pipelined push/drain loops exact;
beyond that budget the iteration entries' interval hull is used, which
stays sound (it can only over-approximate, i.e. flag more).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..core.isa import (
    FROM_COPROCESSOR_OPS,
    OuInstruction,
    OuOp,
    TERMINATOR_OPS,
    TO_COPROCESSOR_OPS,
)
from .cfg import CFG, LoopRegion
from .domain import AbsState, Interval

#: loops with at most this many iterations are checked per-iteration
CHECK_UNROLL_LIMIT = 64
#: ... as long as trip * body-size stays below this instruction budget
CHECK_WORK_LIMIT = 4096

#: check callback: (instruction index, instruction, state *before* it)
CheckFn = Callable[[int, OuInstruction, AbsState], None]

#: cost model: (instruction index, instruction) -> per-bucket cycle
#: intervals charged when the instruction executes.  The mapping must
#: depend only on the instruction (constant per site) so that loop
#: acceleration stays exact: cost counters are then additive, exactly
#: like the push/drain volumes.
CostModelFn = Callable[[int, OuInstruction], Mapping[str, Interval]]


def transfer_instruction(instr: OuInstruction, state: AbsState) -> None:
    """Apply one instruction's effect to ``state`` in place."""
    op = instr.op
    if op in TO_COPROCESSOR_OPS:
        state.add_pushed(instr.fifo, instr.count)
    elif op in FROM_COPROCESSOR_OPS:
        state.add_drained(instr.fifo, instr.count)
    elif op is OuOp.ADDOFR:
        state.ofr = state.ofr.add_const(instr.imm)
    elif op is OuOp.CLROFR:
        state.ofr = Interval.point(0)
    state.steps = state.steps.add_const(1)


def _state_delta(first: AbsState, second: AbsState) -> AbsState:
    """Per-iteration growth between two consecutive body exit states."""
    delta = AbsState(ofr=first.ofr.delta_to(second.ofr),
                     steps=first.steps.delta_to(second.steps))
    for key in set(first.pushed) | set(second.pushed):
        delta.pushed[key] = first.get_pushed(key).delta_to(
            second.get_pushed(key))
    for key in set(first.drained) | set(second.drained):
        delta.drained[key] = first.get_drained(key).delta_to(
            second.get_drained(key))
    for ckey in set(first.costs) | set(second.costs):
        delta.costs[ckey] = first.get_cost(ckey).delta_to(
            second.get_cost(ckey))
    return delta


def _extrapolate(base: AbsState, delta: AbsState, times: int) -> AbsState:
    """``base + delta * times`` with counters clamped non-negative."""
    factor = Interval.point(times)

    def extend(value: Interval, step: Interval) -> Interval:
        return (value + step.scale(factor)).clamp_nonneg()

    out = AbsState(ofr=extend(base.ofr, delta.ofr),
                   steps=extend(base.steps, delta.steps))
    for key in set(base.pushed) | set(delta.pushed):
        out.pushed[key] = extend(base.get_pushed(key),
                                 delta.pushed.get(key, Interval.point(0)))
    for key in set(base.drained) | set(delta.drained):
        out.drained[key] = extend(base.get_drained(key),
                                  delta.drained.get(key, Interval.point(0)))
    for ckey in set(base.costs) | set(delta.costs):
        out.costs[ckey] = extend(base.get_cost(ckey),
                                 delta.costs.get(ckey, Interval.point(0)))
    return out


def _join_all(states: List[AbsState]) -> Optional[AbsState]:
    if not states:
        return None
    acc = states[0]
    for state in states[1:]:
        acc = acc.join(state)
    return acc


class Analyzer:
    """Single-pass interval analysis over a structured CFG."""

    def __init__(self, cfg: CFG,
                 cost_model: Optional[CostModelFn] = None) -> None:
        if not cfg.structured or cfg.acyclic_order() is None:
            raise ValueError("Analyzer requires a structured, acyclic CFG")
        self.cfg = cfg
        self.cost_model = cost_model
        self.region_by_header: Dict[int, LoopRegion] = {
            cfg.block_of[region.loop_index]: region for region in cfg.loops
        }
        self.body_blocks: Set[int] = set()
        for region in cfg.loops:
            for index in range(region.loop_index + 1, region.endl_index + 1):
                self.body_blocks.add(cfg.block_of[index])

    # -- block/body execution ---------------------------------------------
    def _exec_block(self, block_id: int, state: AbsState,
                    check: Optional[CheckFn]) -> AbsState:
        out = state.copy()
        block = self.cfg.blocks[block_id]
        for index in range(block.start, block.end + 1):
            instr = self.cfg.program[index]
            if check is not None:
                check(index, instr, out)
            transfer_instruction(instr, out)
            if self.cost_model is not None:
                for bucket, amount in self.cost_model(index, instr).items():
                    out.add_cost(bucket, amount)
        return out

    def _propagate_body(
        self, region: LoopRegion, entry: AbsState,
        check: Optional[CheckFn],
    ) -> Tuple[Optional[AbsState], List[AbsState]]:
        """Run one abstract iteration of a loop body.

        Returns the out-state of the ``endl`` block (``None`` when the
        ``endl`` is not reached from the body entry, e.g. the body
        always hits a terminator first) plus the out-states of any
        terminator blocks inside the body.
        """
        cfg = self.cfg
        entry_block = cfg.block_of[region.loop_index + 1]
        endl_block = cfg.block_of[region.endl_index]
        in_states: Dict[int, AbsState] = {entry_block: entry}
        terminal: List[AbsState] = []
        endl_out: Optional[AbsState] = None
        for block_id in cfg.acyclic_order() or ():
            if block_id not in self.body_blocks or block_id not in in_states:
                continue
            out = self._exec_block(block_id, in_states[block_id], check)
            block = cfg.blocks[block_id]
            if block_id == endl_block:
                endl_out = out
                continue
            if (cfg.program[block.end].op in TERMINATOR_OPS
                    or block.falls_off_end):
                terminal.append(out)
                continue
            for succ in block.successors:
                if succ == block.back_edge or succ not in self.body_blocks:
                    continue
                prev = in_states.get(succ)
                in_states[succ] = out if prev is None else prev.join(out)
        return endl_out, terminal

    def _accelerate(
        self, region: LoopRegion, entry: AbsState, check: Optional[CheckFn],
    ) -> Tuple[Optional[AbsState], List[AbsState]]:
        """Summarize a whole ``loop``/``endl`` region.

        ``entry`` is the state just after the ``loop`` instruction.
        Returns the state on the region's exit edge (``None`` when the
        region never exits through ``endl``) and terminator out-states
        collected from the body check pass.
        """
        out1, _ = self._propagate_body(region, entry, None)
        if out1 is None or region.trip == 1:
            # the body runs (at most) once: a single pass both checks
            # and computes the exit state.
            exit_out, terminal = self._propagate_body(region, entry, check)
            return exit_out, terminal

        out2, _ = self._propagate_body(region, out1, None)
        delta = _state_delta(out1, out2)
        exit_state = (_extrapolate(out2, delta, region.trip - 2)
                      if region.trip > 2 else out2)

        terminal: List[AbsState] = []
        body_size = region.endl_index - region.loop_index
        if (region.trip <= CHECK_UNROLL_LIMIT
                and region.trip * body_size <= CHECK_WORK_LIMIT):
            # exact per-iteration checking: iteration k >= 2 enters the
            # body in state out1 + delta * (k - 2).
            for k in range(region.trip):
                entry_k = (entry if k == 0
                           else _extrapolate(out1, delta, k - 1))
                _, extra = self._propagate_body(region, entry_k, check)
                terminal.extend(extra)
        else:
            # hull of all iteration entries -- sound (bounds are affine
            # in the iteration number, so the hull of the first and
            # last entries covers every iteration), possibly imprecise.
            last_entry = _extrapolate(out1, delta, region.trip - 2)
            _, extra = self._propagate_body(
                region, entry.join(last_entry), check)
            terminal.extend(extra)
        return exit_state, terminal

    # -- whole-program run -------------------------------------------------
    def run(self, check: Optional[CheckFn] = None) -> Optional[AbsState]:
        """Propagate states over the program; return the exit state.

        The returned state is the join over every reachable terminator
        (and fall-off-the-end) point, or ``None`` when no such point is
        abstractly reachable.  ``check`` is invoked exactly once per
        (reachable) instruction with the in-state used for checking.
        """
        cfg = self.cfg
        in_states: Dict[int, AbsState] = {cfg.block_of[0]: AbsState()}
        finals: List[AbsState] = []

        def deliver(block_id: int, state: AbsState) -> None:
            prev = in_states.get(block_id)
            in_states[block_id] = state if prev is None else prev.join(state)

        for block_id in cfg.acyclic_order() or ():
            if block_id in self.body_blocks or block_id not in in_states:
                continue
            out = self._exec_block(block_id, in_states[block_id], check)
            block = cfg.blocks[block_id]
            region = self.region_by_header.get(block_id)
            if region is not None:
                exit_state, terminal = self._accelerate(region, out, check)
                finals.extend(terminal)
                if exit_state is not None:
                    endl_block = cfg.blocks[cfg.block_of[region.endl_index]]
                    if endl_block.falls_off_end:
                        finals.append(exit_state)
                    else:
                        deliver(cfg.block_of[region.endl_index + 1],
                                exit_state)
                continue
            if (cfg.program[block.end].op in TERMINATOR_OPS
                    or block.falls_off_end):
                finals.append(out)
                continue
            for succ in block.successors:
                deliver(succ, out)
        return _join_all(finals)
