"""Static memory-footprint extraction for Ouessant microcode.

The interval abstract interpreter (:mod:`repro.verify.absint`) already
computes, at every reachable instruction, a sound interval for the OFR
offset register.  Replaying a program through it with a recording
callback therefore yields, per bank, the exact *word-offset hull* the
program's transfers can touch -- including indexed (``mvtcx``/
``mvfcx``) accesses whose effective offsets depend on loop-carried
OFR state.

:func:`program_footprint` returns those hulls split by direction:

* ``reads``  -- banks the program moves *from* memory (``mvtc(x)``:
  memory is read into an input FIFO);
* ``writes`` -- banks the program moves *to* memory (``mvfc(x)``:
  an output FIFO is drained into memory).

Consumers (the :mod:`repro.racelint` concurrency analyzer) resolve
the hulls against concrete bank base addresses to obtain absolute
:class:`ByteRange` footprints and intersect them across jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.isa import (
    FROM_COPROCESSOR_OPS,
    INDEXED_OPS,
    OuInstruction,
    TRANSFER_OPS,
)
from .absint import Analyzer
from .cfg import build_cfg
from .domain import AbsState, Interval


@dataclass(frozen=True)
class ByteRange:
    """A half-open absolute byte range ``[lo, hi)`` with a label."""

    lo: int
    hi: int
    label: str = ""

    def overlaps(self, other: "ByteRange") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def contains(self, other: "ByteRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:
        span = f"[{self.lo:#010x}, {self.hi:#010x})"
        return f"{span} ({self.label})" if self.label else span


@dataclass
class ProgramFootprint:
    """Per-bank word-offset hulls of a program's memory transfers.

    ``reads[bank]`` / ``writes[bank]`` are *inclusive* interval hulls
    of the word offsets the program can access on that bank.
    ``bounded`` is ``False`` when the program's control flow is not
    structured (the analyzer cannot replay it) or an OFR hull is
    infinite; an unbounded footprint must be treated as
    "may touch anything".
    """

    reads: Dict[int, Interval] = field(default_factory=dict)
    writes: Dict[int, Interval] = field(default_factory=dict)
    bounded: bool = True

    def banks(self) -> List[int]:
        return sorted(set(self.reads) | set(self.writes))


def program_footprint(
    program: Sequence[OuInstruction],
) -> ProgramFootprint:
    """Extract the per-bank read/write footprint of ``program``.

    Runs the interval abstract interpreter over the program's CFG and
    records, for every reachable transfer instruction, the effective
    word-offset interval ``offset (+ OFR) .. + count - 1``.  Returns
    an unbounded footprint (``bounded=False``, empty hulls) when the
    CFG is unstructured -- the caller must refuse to certify such a
    program rather than assume disjointness.
    """
    cfg = build_cfg(list(program))
    if not cfg.structured or cfg.acyclic_order() is None:
        return ProgramFootprint(bounded=False)

    reads: Dict[int, Interval] = {}
    writes: Dict[int, Interval] = {}

    def record(table: Dict[int, Interval], bank: int,
               span: Interval) -> None:
        prev = table.get(bank)
        table[bank] = span if prev is None else prev.join(span)

    def check(index: int, instr: OuInstruction,
              state: AbsState) -> None:
        if instr.op not in TRANSFER_OPS:
            return
        span = Interval.point(instr.offset)
        if instr.op in INDEXED_OPS:
            span = span + state.ofr
        span = Interval(span.lo, span.hi + instr.count - 1)
        table = (writes if instr.op in FROM_COPROCESSOR_OPS else reads)
        record(table, instr.bank, span)

    Analyzer(cfg).run(check)
    hulls = list(reads.values()) + list(writes.values())
    bounded = all(hull.bounded for hull in hulls)
    return ProgramFootprint(reads=reads, writes=writes, bounded=bounded)
