"""The microcode verifier: orchestration of all analysis phases.

:func:`verify_program` is the single entry point.  It layers three
phases, each feeding the next:

* **Phase A -- local scan.**  Stateless per-instruction checks that
  need no control-flow knowledge: FIFO and bank operand ranges, static
  ``offset + count`` windows, unsatisfiable ``waitf`` levels, the
  OFR-setup warning.  These run on *every* program, however broken its
  control flow, so diagnostics stay useful on garbage input.
* **Phase B -- control flow.**  The CFG builder's structural problems
  (loop balance, jmp range/structure, infinite loops), plus
  reachability facts: dead code, paths falling off the end of the
  program.
* **Phase C -- abstract interpretation.**  Only when the control flow
  is structured (phase B found nothing): interval analysis of FIFO
  volumes, the OFR register and the step count, with loop
  acceleration.  Produces the effective-offset window checks, the
  RAC appetite/ordering checks, and the worst-case step bound.

The soundness contract (enforced by ``tests/test_verify_soundness.py``)
is one-directional: a program reported *clean* runs to completion on
:mod:`repro.core.refmodel` without trap or hang.  Imprecision is
therefore always resolved towards flagging more, never less.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..core.isa import (
    FIFODirection,
    FROM_COPROCESSOR_OPS,
    INDEXED_OPS,
    MAX_OFFSET,
    OuInstruction,
    OuOp,
    TERMINATOR_OPS,
    TO_COPROCESSOR_OPS,
)
from ..rac.base import RAC, StreamingRAC
from .absint import Analyzer
from .cfg import build_cfg
from .diagnostics import VerifyReport
from .domain import AbsState, Interval

#: default worst-case executed-instruction budget, matching the
#: reference model's ``max_steps`` so "clean" implies "completes there"
DEFAULT_STEP_BUDGET = 100_000


def verify_program(
    program: Sequence[OuInstruction],
    rac: Optional[RAC] = None,
    configured_banks: Optional[Set[int]] = None,
    bank_windows: Optional[Dict[int, int]] = None,
    step_budget: Optional[int] = DEFAULT_STEP_BUDGET,
    suppress: Optional[Iterable[str]] = None,
) -> VerifyReport:
    """Statically verify a microcode program.

    Parameters
    ----------
    rac:
        When given, FIFO operands and (for streaming RACs) data volumes
        are checked against the accelerator's port specification.
    configured_banks:
        When given, every referenced bank must be in the set (bank 0,
        the microcode bank, is implicitly configured).
    bank_windows:
        Bank number -> window size in words (derived from the memory
        map by :mod:`repro.verify.contracts`); transfers may not run
        past it.
    step_budget:
        Flag programs whose worst-case executed-instruction count
        exceeds this (``None`` disables the check).
    suppress:
        Diagnostic codes to move aside (see
        :meth:`VerifyReport.apply_suppressions`).
    """
    report = VerifyReport()
    program = list(program)
    if not program:
        report.add("OU001", 0, "empty program")
        report.apply_suppressions(suppress or ())
        return report

    n = len(program)
    n_in = len(rac.ports.input_widths) if rac is not None else None
    n_out = len(rac.ports.output_widths) if rac is not None else None
    depth = rac.ports.fifo_depth if rac is not None else None

    # -- phase A: local per-instruction checks ---------------------------
    has_terminator = any(i.op in TERMINATOR_OPS for i in program)
    if not has_terminator:
        report.add("OU002", n - 1,
                   "no eop/halt: the controller will run past the program")
    ofr_setup_seen = False
    for index, instr in enumerate(program):
        op = instr.op
        if op in (OuOp.ADDOFR, OuOp.CLROFR):
            ofr_setup_seen = True
        if instr.is_transfer():
            if configured_banks is not None:
                if instr.bank not in (set(configured_banks) | {0}):
                    report.add("OU020", index,
                               f"bank {instr.bank} is never configured")
            if instr.offset + instr.count - 1 > MAX_OFFSET:
                report.add(
                    "OU021", index,
                    f"transfer [{instr.offset}+{instr.count}] exceeds the "
                    f"{MAX_OFFSET + 1}-word bank window",
                )
            if (bank_windows is not None and instr.bank in bank_windows
                    and instr.offset + instr.count
                    > bank_windows[instr.bank]):
                report.add(
                    "OU022", index,
                    f"transfer [{instr.offset}+{instr.count}] on bank "
                    f"{instr.bank} runs past its mapped region "
                    f"({bank_windows[instr.bank]} words)",
                )
            if op in TO_COPROCESSOR_OPS and n_in is not None \
                    and instr.fifo >= n_in:
                report.add(
                    "OU030", index,
                    f"{instr.mnemonic()} addresses input FIFO{instr.fifo} "
                    f"but the RAC has {n_in}",
                )
            if op in FROM_COPROCESSOR_OPS and n_out is not None \
                    and instr.fifo >= n_out:
                report.add(
                    "OU031", index,
                    f"{instr.mnemonic()} addresses output FIFO{instr.fifo} "
                    f"but the RAC has {n_out}",
                )
            if op in INDEXED_OPS and not ofr_setup_seen:
                report.add(
                    "OU023", index,
                    "indexed transfer before any addofr/clrofr: OFR is 0 "
                    "at start, was that intended?",
                )
        elif op is OuOp.WAITF and rac is not None:
            is_input = instr.direction is FIFODirection.INPUT
            limit = n_in if is_input else n_out
            if limit is not None and instr.fifo >= limit:
                report.add(
                    "OU032", index,
                    f"waitf addresses FIFO{instr.fifo} beyond the RAC's "
                    "ports",
                )
            elif depth is not None and instr.count > depth:
                side = "free words in" if is_input else "words in"
                report.add(
                    "OU038", index,
                    f"waitf waits for {instr.count} {side} a FIFO of depth "
                    f"{depth}: the condition can never hold",
                )

    # -- phase B: control flow -------------------------------------------
    cfg = build_cfg(program)
    for code, index, message in cfg.problems:
        report.add(code, index, message)
    for lo, hi in cfg.dead_ranges():
        where = f"instruction {lo}" if lo == hi else f"instructions {lo}..{hi}"
        report.add("OU010", lo, f"{where} unreachable from the entry")
    if has_terminator:
        for block in cfg.blocks:
            if block.id in cfg.reachable and block.falls_off_end:
                report.add(
                    "OU008", block.end,
                    f"control flow falls off the end of the program after "
                    f"instr {block.end} without reaching eop/halt",
                )

    # -- phase C: abstract interpretation --------------------------------
    if cfg.structured and cfg.acyclic_order() is not None:
        _run_analysis(report, cfg, program, rac, bank_windows, step_budget)

    _dedup(report)
    report.sort()
    report.apply_suppressions(suppress or ())
    return report


def _min_ops_lo(state: AbsState, items_in: Sequence[int]) -> int:
    """Lower bound on completed RAC operations given pushed volumes."""
    ops = None
    for port, need in enumerate(items_in):
        if need <= 0:
            continue
        lo = state.get_pushed(port).lo // need
        ops = lo if ops is None else min(ops, lo)
    return ops or 0


def _run_analysis(
    report: VerifyReport,
    cfg,
    program: Sequence[OuInstruction],
    rac: Optional[RAC],
    bank_windows: Optional[Dict[int, int]],
    step_budget: Optional[int],
) -> None:
    streaming = rac if isinstance(rac, StreamingRAC) else None
    n_out = len(rac.ports.output_widths) if rac is not None else None

    def check(index: int, instr: OuInstruction, state: AbsState) -> None:
        if not instr.is_transfer():
            return
        if instr.op in INDEXED_OPS:
            eff_hi = instr.offset + state.ofr.hi
            if eff_hi + instr.count - 1 > MAX_OFFSET:
                report.add(
                    "OU021", index,
                    f"indexed transfer reaches offset "
                    f"{eff_hi + instr.count - 1} (OFR up to {state.ofr.hi}) "
                    f"beyond the {MAX_OFFSET + 1}-word bank window",
                )
            if (bank_windows is not None and instr.bank in bank_windows
                    and eff_hi + instr.count > bank_windows[instr.bank]):
                report.add(
                    "OU022", index,
                    f"indexed transfer reaches word "
                    f"{eff_hi + instr.count} on bank {instr.bank}, past "
                    f"its mapped region ({bank_windows[instr.bank]} words)",
                )
        if (streaming is not None and instr.op in FROM_COPROCESSOR_OPS
                and n_out is not None and instr.fifo < n_out):
            produce = streaming.items_out[instr.fifo]
            produced_lo = _min_ops_lo(state, streaming.items_in) * produce
            drained_hi = state.get_drained(instr.fifo).hi + instr.count
            if drained_hi > produced_lo:
                report.add(
                    "OU034", index,
                    f"output FIFO{instr.fifo} is drained of up to "
                    f"{drained_hi} words but only {produced_lo} are "
                    "produced by this point: mvfc will hang",
                )

    exit_state = Analyzer(cfg).run(check)
    if exit_state is None:
        return

    if exit_state.steps.bounded:
        report.max_steps = int(exit_state.steps.hi)
        if step_budget is not None and exit_state.steps.hi > step_budget:
            report.add(
                "OU011", None,
                f"worst-case instruction count {int(exit_state.steps.hi)} "
                f"exceeds the step budget {step_budget}",
            )
    else:  # pragma: no cover - acceleration always yields finite bounds
        report.add("OU039", None,
                   "could not bound the program's execution")

    if streaming is not None:
        _check_appetite(report, cfg, streaming, exit_state)


def _check_appetite(
    report: VerifyReport,
    cfg,
    rac: StreamingRAC,
    exit_state: AbsState,
) -> None:
    """Whole-program data-volume contracts against a streaming RAC."""
    unbounded = [
        v for v in list(exit_state.pushed.values())
        + list(exit_state.drained.values()) if not v.bounded
    ]
    if unbounded:  # pragma: no cover - defensive, see OU039 rationale
        report.add("OU039", None,
                   "could not bound the program's FIFO volumes")
        return

    for port, need in enumerate(rac.items_in):
        moved = exit_state.get_pushed(port)
        if moved.hi == 0 or need <= 0:
            continue
        if moved.is_point:
            if moved.lo % need:
                report.add(
                    "OU033", None,
                    f"input FIFO{port} receives {moved.lo} words but the "
                    f"RAC consumes multiples of {need}: the last operation "
                    "will starve",
                )
        elif need != 1:
            # a genuinely uncertain volume can only be a provable
            # multiple when every word count is (need == 1)
            report.add(
                "OU033", None,
                f"input FIFO{port} receives between {moved.lo} and "
                f"{moved.hi} words; cannot prove a multiple of {need}: "
                "the last operation may starve",
            )

    need0 = rac.items_in[0] if rac.items_in else 0
    pushed0 = exit_state.get_pushed(0)
    ops = (Interval(pushed0.lo // need0, pushed0.hi // need0)
           if need0 else Interval.point(0))
    for port, produce in enumerate(rac.items_out):
        drained = exit_state.get_drained(port)
        expected = ops.scale(Interval.point(produce))
        if drained.hi < expected.lo:
            report.add(
                "OU035", None,
                f"output FIFO{port} produces {expected.lo} words but only "
                f"{drained.hi} are drained: residue left in the FIFO",
            )

    alive = cfg.reachable_instructions()
    exec_seen = any(
        cfg.program[idx].op in (OuOp.EXEC, OuOp.EXECS) for idx in alive
    )
    any_pushed = any(v.hi > 0 for v in exit_state.pushed.values())
    if any_pushed and not exec_seen and not rac.autostart:
        report.add(
            "OU036", None,
            "data is pushed but the RAC is never started "
            "(no exec/execs and autostart is off)",
        )
    if not rac.autostart:
        depth = rac.ports.fifo_depth
        for port in sorted(exit_state.pushed):
            moved = exit_state.get_pushed(port)
            if moved.hi > depth:
                report.add(
                    "OU037", None,
                    f"{moved.hi} words pushed to input FIFO{port} before "
                    f"any consumption with depth {depth}: the transfer "
                    "engine will deadlock",
                )


def _dedup(report: VerifyReport) -> None:
    """Drop repeated (code, index, message) findings, keeping the first."""
    seen: Set[Tuple[str, Optional[int], str]] = set()
    kept = []
    for finding in report.findings:
        key = (finding.code, finding.index, finding.message)
        if key not in seen:
            seen.add(key)
            kept.append(finding)
    report.findings = kept
