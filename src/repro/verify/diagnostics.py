"""Diagnostics catalog for the static analyzers.

Every finding an analyzer can produce has a *stable code* (``OU001``,
``OU002``, ...): scripts can suppress or grep for a code without
depending on message wording, and the documentation
(``docs/ANALYSIS.md``) can describe each failure mode once.  Codes are
never reused; retired checks leave a hole.

Code ranges, by theme:

* ``OU00x``/``OU01x`` -- program structure and control flow,
* ``OU02x`` -- banks, offsets and address windows,
* ``OU03x`` -- FIFO fabric and accelerator (RAC) contracts,
* ``OU04x`` -- cross-layer (driver / memory map) contracts,
* ``OU1xx`` -- system-level (SoC elaboration) integrity, emitted by
  :mod:`repro.soclint`:

  * ``OU10x`` -- memory-map structure (overlap, alignment, shadowing),
  * ``OU11x`` -- slave windows and component reachability,
  * ``OU12x`` -- driver bank tables vs the memory map,
  * ``OU13x`` -- FIFO fabric sizing vs RAC port contracts,
  * ``OU14x`` -- timing closure,
  * ``OU15x`` -- coherence (cache snooping) hazards,
  * ``OU16x`` -- interrupt routing (``OU160``/``OU161``) and
    throughput closure against a cycle budget (``OU162``/``OU163``,
    backed by :mod:`repro.perfbound`),
  * ``OU17x`` -- scheduler capability tables;

* ``OU2xx`` -- cross-OCP concurrency hazards in scheduled job
  streams, emitted by :mod:`repro.racelint` (may-happen-in-parallel
  footprint overlaps, DMA aliasing, batch-widening effects);

* ``OU3xx`` -- static cycle-cost / WCET analysis, emitted by
  :mod:`repro.perfbound` (unbounded cost, FIFO-sizing stall floors,
  control-overhead domination, bus contention, SLA violations).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SEVERITY_ORDER = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1}


@dataclass(frozen=True)
class CatalogEntry:
    """Static description of one diagnostic code."""

    code: str
    severity: str
    title: str
    description: str


_ENTRIES: Sequence[CatalogEntry] = (
    # -- structure & control flow ---------------------------------------
    CatalogEntry(
        "OU001", SEVERITY_ERROR, "empty-program",
        "The program contains no instructions; S would hang the "
        "controller in its fetch state.",
    ),
    CatalogEntry(
        "OU002", SEVERITY_ERROR, "missing-terminator",
        "No eop/halt instruction anywhere: the controller runs past "
        "PROG_SIZE and traps.",
    ),
    CatalogEntry(
        "OU003", SEVERITY_ERROR, "jmp-out-of-range",
        "A jmp target lies outside the program.",
    ),
    CatalogEntry(
        "OU004", SEVERITY_ERROR, "nested-loop",
        "A loop opens while another is active; the controller supports "
        "a single hardware loop level.",
    ),
    CatalogEntry(
        "OU005", SEVERITY_ERROR, "endl-without-loop",
        "An endl executes with no loop active.",
    ),
    CatalogEntry(
        "OU006", SEVERITY_ERROR, "unclosed-loop",
        "A loop opens but no endl closes it before the program ends.",
    ),
    CatalogEntry(
        "OU007", SEVERITY_ERROR, "unstructured-loop",
        "A jmp crosses a loop boundary (into or out of a loop body); "
        "the analyzer cannot bound the loop, and the controller's "
        "loop registers may be left inconsistent.",
    ),
    CatalogEntry(
        "OU008", SEVERITY_ERROR, "run-past-end",
        "A reachable execution path falls off the end of the program "
        "without hitting eop/halt (the terminator exists but is "
        "jumped over).",
    ),
    CatalogEntry(
        "OU009", SEVERITY_ERROR, "infinite-loop",
        "A reachable control-flow cycle has no exit (jmp cycles are "
        "unconditional): the program can never reach eop/halt.",
    ),
    CatalogEntry(
        "OU010", SEVERITY_WARNING, "dead-code",
        "Instructions are unreachable from the program entry.",
    ),
    CatalogEntry(
        "OU011", SEVERITY_ERROR, "step-budget-exceeded",
        "The worst-case executed-instruction count exceeds the "
        "configured step budget (runaway loop trip counts).",
    ),
    # -- banks, offsets, windows ----------------------------------------
    CatalogEntry(
        "OU020", SEVERITY_ERROR, "unconfigured-bank",
        "A transfer references a bank the driver never configured "
        "(bank 0, the microcode bank, is implicitly configured).",
    ),
    CatalogEntry(
        "OU021", SEVERITY_ERROR, "bank-window-overflow",
        "offset + count (including any OFR contribution) exceeds the "
        "14-bit bank window; the interface faults mid-burst on real "
        "hardware.",
    ),
    CatalogEntry(
        "OU022", SEVERITY_ERROR, "mapped-size-overflow",
        "offset + count runs past the size of the memory region the "
        "bank's base address is mapped to.",
    ),
    CatalogEntry(
        "OU023", SEVERITY_WARNING, "ofr-unset",
        "An indexed transfer (mvtcx/mvfcx) executes before any "
        "addofr/clrofr; OFR is 0 at start, which is legal but often "
        "means a missing setup instruction.",
    ),
    CatalogEntry(
        "OU025", SEVERITY_ERROR, "bank-unmapped",
        "A bank's configured base address is not decoded by any slave "
        "on the system bus.",
    ),
    # -- FIFO / RAC contracts -------------------------------------------
    CatalogEntry(
        "OU030", SEVERITY_ERROR, "input-fifo-range",
        "A transfer addresses an input FIFO the RAC does not provide.",
    ),
    CatalogEntry(
        "OU031", SEVERITY_ERROR, "output-fifo-range",
        "A transfer addresses an output FIFO the RAC does not provide.",
    ),
    CatalogEntry(
        "OU032", SEVERITY_ERROR, "waitf-fifo-range",
        "A waitf condition observes a FIFO beyond the RAC's ports.",
    ),
    CatalogEntry(
        "OU033", SEVERITY_ERROR, "input-starve",
        "An input FIFO's total volume is not a multiple of the RAC's "
        "per-operation appetite: the last operation starves.",
    ),
    CatalogEntry(
        "OU034", SEVERITY_ERROR, "overdrain",
        "More words are drained from an output FIFO than the program's "
        "operations produce: mvfc hangs forever.",
    ),
    CatalogEntry(
        "OU035", SEVERITY_WARNING, "residue",
        "Fewer words are drained than produced: residue is left in the "
        "output FIFO after eop.",
    ),
    CatalogEntry(
        "OU036", SEVERITY_ERROR, "never-started",
        "Data is pushed but no exec/execs is reachable and the RAC "
        "does not autostart.",
    ),
    CatalogEntry(
        "OU037", SEVERITY_ERROR, "fifo-deadlock",
        "More words are pushed to an input FIFO than its depth before "
        "any consumption can begin: the transfer engine deadlocks.",
    ),
    CatalogEntry(
        "OU038", SEVERITY_ERROR, "waitf-unsatisfiable",
        "A waitf level exceeds the FIFO depth: the condition can never "
        "hold and the controller waits forever.",
    ),
    CatalogEntry(
        "OU039", SEVERITY_ERROR, "imprecise-volume",
        "The analyzer could not bound FIFO volumes for this program "
        "(control flow too irregular); it refuses to certify it.",
    ),
    # -- system level: memory-map structure -----------------------------
    CatalogEntry(
        "OU100", SEVERITY_ERROR, "region-overlap",
        "Two planned address regions overlap; the decoder cannot be "
        "built (MemoryMap.add raises at elaboration).",
    ),
    CatalogEntry(
        "OU101", SEVERITY_ERROR, "region-misaligned",
        "A planned region's base or size is not word aligned, or its "
        "size is not positive; elaboration rejects it.",
    ),
    CatalogEntry(
        "OU102", SEVERITY_WARNING, "duplicate-region-name",
        "Two regions share a name: by-name operations "
        "(replace_slave, fault interposition) silently bind to the "
        "first one, shadowing the other.",
    ),
    # -- system level: slave windows & reachability ---------------------
    CatalogEntry(
        "OU110", SEVERITY_ERROR, "register-window-truncated",
        "An OCP's mapped slave window is smaller than its register "
        "file: the driver faults writing the upper bank registers.",
    ),
    CatalogEntry(
        "OU111", SEVERITY_ERROR, "unreachable-component",
        "A bus-slave component is registered with the simulation "
        "kernel but no bus region decodes to it; no bus master can "
        "ever reach it.",
    ),
    CatalogEntry(
        "OU112", SEVERITY_ERROR, "window-misaligned",
        "An OCP slave window is not aligned to its window size; "
        "OuessantCoprocessor.attach refuses such a base.",
    ),
    CatalogEntry(
        "OU113", SEVERITY_WARNING, "perf-counters-truncated",
        "An OCP's mapped slave window holds the register file but "
        "cuts off the performance-counter block behind it: the "
        "coprocessor still runs, but profiling reads return garbage.",
    ),
    # -- system level: driver bank tables -------------------------------
    CatalogEntry(
        "OU120", SEVERITY_ERROR, "bank-base-unmapped",
        "A driver bank-table entry points at an address no bus slave "
        "decodes: the first transfer through that bank faults.",
    ),
    CatalogEntry(
        "OU121", SEVERITY_ERROR, "bank-base-misaligned",
        "A driver bank-table entry is not word aligned: the bank "
        "register write traps in the register file.",
    ),
    CatalogEntry(
        "OU122", SEVERITY_ERROR, "bank-targets-registers",
        "A driver bank-table entry lands in a peripheral register "
        "window instead of memory: transfers clobber control state "
        "and read back register contents instead of data.",
    ),
    CatalogEntry(
        "OU123", SEVERITY_WARNING, "bank-aliased",
        "Two banks of the same table share a base address; transfers "
        "through one silently overwrite the other's data.",
    ),
    # -- system level: FIFO fabric sizing --------------------------------
    CatalogEntry(
        "OU130", SEVERITY_ERROR, "fifo-underdepth",
        "A non-autostart accelerator needs more input words per "
        "operation than its FIFO holds: the canonical fill-then-start "
        "microcode pattern deadlocks on the full FIFO.",
    ),
    CatalogEntry(
        "OU131", SEVERITY_ERROR, "fabric-mismatch",
        "The built FIFO fabric does not match the RAC's port "
        "specification (count, width or depth): the datapath "
        "re-chunks words incorrectly or stalls.",
    ),
    # -- system level: timing closure ------------------------------------
    CatalogEntry(
        "OU140", SEVERITY_ERROR, "timing-violation",
        "The OCP cannot close timing at the requested system clock on "
        "the selected device; the bitstream would not pass "
        "implementation.",
    ),
    CatalogEntry(
        "OU141", SEVERITY_WARNING, "timing-marginal",
        "Timing closes but the worst slack is under 5% of the clock "
        "period; small netlist changes will break closure.",
    ),
    # -- system level: coherence -----------------------------------------
    CatalogEntry(
        "OU150", SEVERITY_WARNING, "cache-not-snooped",
        "A CPU-side cache is not snooped by a memory-writing bus "
        "master (OCP master engine, DMA): the CPU can read stale "
        "lines after an accelerated run.",
    ),
    # -- system level: interrupt routing ---------------------------------
    CatalogEntry(
        "OU160", SEVERITY_WARNING, "irq-unrouted",
        "An interrupt-raising component's line is not registered with "
        "the interrupt controller: interrupt-mode software sleeping "
        "in wfi never wakes.",
    ),
    CatalogEntry(
        "OU161", SEVERITY_WARNING, "irq-conflict",
        "The same interrupt line is registered more than once with "
        "the controller: the duplicate vector aliases the first and "
        "its handler never fires independently.",
    ),
    CatalogEntry(
        "OU162", SEVERITY_ERROR, "throughput-unclosed",
        "Even the best-case predicted cycle count of the firmware "
        "exceeds the cycle budget derived from the requested clock "
        "and deadline: the workload cannot meet its throughput "
        "target on this configuration.",
    ),
    CatalogEntry(
        "OU163", SEVERITY_WARNING, "throughput-marginal",
        "The worst-case predicted cycle count exceeds the cycle "
        "budget while the best case fits: throughput closure "
        "depends on runtime conditions (memory latency, FIFO "
        "stalls) the static bound cannot exclude.",
    ),
    # -- system level: scheduler capability tables ------------------------
    CatalogEntry(
        "OU170", SEVERITY_ERROR, "capability-kernel-unserved",
        "A scheduler capability table names a kernel kind that no "
        "elaborated RAC serves: every job of that kind is "
        "undispatchable and the stream can never drain.",
    ),
    CatalogEntry(
        "OU171", SEVERITY_ERROR, "capability-target-mismatch",
        "A capability table entry routes a kernel kind to an OCP index "
        "that is out of range or whose elaborated RAC is of a "
        "different kind: dispatch would run the wrong accelerator or "
        "crash.",
    ),
    # -- stream level: cross-OCP concurrency hazards ----------------------
    CatalogEntry(
        "OU200", SEVERITY_ERROR, "mhp-write-write",
        "Two jobs that may be resident on different OCPs at the same "
        "time write overlapping byte ranges (output arenas, staged "
        "program/input regions or register windows): the last writer "
        "wins and the harvested results depend on dispatch timing.",
    ),
    CatalogEntry(
        "OU201", SEVERITY_ERROR, "mhp-read-write",
        "A job may read bytes that a concurrently resident job (or "
        "its dispatch-time staging) writes: the value observed "
        "depends on dispatch timing.",
    ),
    CatalogEntry(
        "OU202", SEVERITY_ERROR, "dma-footprint-alias",
        "An armed DMA transfer window aliases a scheduled job's "
        "memory footprint: the DMA engine and the coprocessor race "
        "on the same bytes through the shared memory.",
    ),
    CatalogEntry(
        "OU203", SEVERITY_ERROR, "footprint-unbounded",
        "The interval interpreter could not bound a job program's "
        "memory footprint (unstructured control flow, or a transfer "
        "through a bank the scheduler does not configure): the race "
        "analysis refuses to certify the stream.",
    ),
    CatalogEntry(
        "OU204", SEVERITY_ERROR, "arena-unmapped",
        "A scheduler arena byte range used by a job falls outside "
        "every RAM region of the memory map: staging or harvest "
        "faults at dispatch time.",
    ),
    CatalogEntry(
        "OU205", SEVERITY_WARNING, "batch-widened-footprint",
        "A hazard only arises under batch concatenation: batching "
        "slides jobs to cumulative arena offsets, silently widening "
        "their read/write sets beyond the solo extent.",
    ),
    # -- program level: static cycle-cost / WCET analysis ------------------
    CatalogEntry(
        "OU300", SEVERITY_ERROR, "cost-unbounded",
        "The cost analyzer cannot bound this program's cycle count "
        "(unstructured control flow, a waitf on external state, an "
        "unbounded transfer volume, or a RAC without a static timing "
        "contract): the upper bound is infinite and no WCET "
        "certificate is issued.",
    ),
    CatalogEntry(
        "OU301", SEVERITY_WARNING, "fifo-stall-floor",
        "FIFO sizing forces extra bus transactions: a transfer moves "
        "more words than the FIFO holds, so the engine must round-trip "
        "in FIFO-depth chunks and the lower cost bound already "
        "includes the resulting stall floor. Deepening the FIFO would "
        "lower the bound.",
    ),
    CatalogEntry(
        "OU302", SEVERITY_WARNING, "control-dominated",
        "Guaranteed control overhead (fetch/decode, prefetch, waits) "
        "exceeds even the worst-case transfer plus compute cycles: "
        "the program spends most of its time sequencing, not moving "
        "or crunching data. Consider batched transfers or fewer, "
        "larger operations.",
    ),
    CatalogEntry(
        "OU303", SEVERITY_WARNING, "contention-unmodeled",
        "The cost bound assumes exclusive bus ownership, but the "
        "system elaborates more than one master: under contention "
        "the true worst case exceeds the reported upper bound, so "
        "the WCET certificate only holds for isolated runs.",
    ),
    CatalogEntry(
        "OU304", SEVERITY_ERROR, "sla-exceeded",
        "The worst-case predicted cycle count exceeds the requested "
        "SLA cycle budget: the program cannot be guaranteed to meet "
        "its deadline.",
    ),
)

#: the full catalog, keyed by code
CATALOG: Dict[str, CatalogEntry] = {e.code: e for e in _ENTRIES}


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to an instruction or a component.

    Microcode findings carry an instruction ``index`` (``None`` for
    whole-program findings; the renderer shows them against the last
    instruction, matching the legacy linter's convention).  System-level
    findings carry ``where``, the name of the component, region or bank
    the finding is about.
    """

    code: str
    severity: str
    index: Optional[int]
    message: str
    where: Optional[str] = None

    def _anchor(self) -> str:
        if self.where is not None:
            return self.where
        return "program" if self.index is None else f"instr {self.index}"

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self._anchor()}: " \
               f"{self.message}"

    def to_json(self) -> Dict[str, object]:
        entry = CATALOG.get(self.code)
        return {
            "code": self.code,
            "severity": self.severity,
            "index": self.index,
            "where": self.where,
            "message": self.message,
            "title": entry.title if entry is not None else None,
        }


def make_finding(
    code: str,
    index: Optional[int],
    message: str,
    where: Optional[str] = None,
) -> Finding:
    """Build a finding, pulling the severity from the catalog."""
    entry = CATALOG[code]
    return Finding(code=code, severity=entry.severity, index=index,
                   message=message, where=where)


@dataclass
class VerifyReport:
    """The verifier's output: findings plus helpers and renderers."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: worst-case executed-instruction count, when the analyzer could
    #: bound it (None for programs with control-flow errors)
    max_steps: Optional[int] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def clean(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def codes(self) -> List[str]:
        return [f.code for f in self.findings]

    def add(
        self,
        code: str,
        index: Optional[int],
        message: str,
        where: Optional[str] = None,
    ) -> None:
        self.findings.append(make_finding(code, index, message, where))

    def sort(self) -> None:
        """Order findings: by instruction index, errors first."""
        self.findings.sort(key=lambda f: (
            f.index if f.index is not None else 1 << 30,
            _SEVERITY_ORDER.get(f.severity, 2),
            f.code,
        ))

    def apply_suppressions(self, suppress: Iterable[str]) -> None:
        """Move findings whose code is in ``suppress`` aside.

        Suppressed findings do not count towards :attr:`clean` but stay
        observable (and appear in the JSON output) so a suppression is
        never silent.
        """
        codes = set(suppress)
        kept: List[Finding] = []
        for finding in self.findings:
            (self.suppressed if finding.code in codes else kept).append(
                finding
            )
        self.findings = kept

    def render(self) -> str:
        if not self.findings:
            if self.suppressed:
                return (f"clean: no findings "
                        f"({len(self.suppressed)} suppressed)")
            return "clean: no findings"
        return "\n".join(str(f) for f in self.findings)

    def to_json(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "max_steps": self.max_steps,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def has_error_findings(findings: Sequence[Finding]) -> bool:
    return any(f.severity == SEVERITY_ERROR for f in findings)
