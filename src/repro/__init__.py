"""Ouessant reproduction: flexible coprocessor integration in SoCs.

A full-system Python reproduction of *"Ouessant: Flexible Integration
of Dedicated Coprocessors in Systems On Chip"* (Horrein et al., DATE
2016): the Ouessant coprocessor architecture (microcode ISA,
controller, bank-translating bus interface, variable-width FIFO
fabric), the SoC substrate it is evaluated on (cycle-accounted bus,
memory, a Leon3-like instruction-set simulator), the accelerators
(2-D IDCT, Spiral-style iterative DFT, FIR), the software stack
(baremetal + Linux-model drivers, transparent library), the Section II
baselines, and a structural FPGA resource estimator.

Quick start::

    from repro import SoC, DFTRac, OuessantLibrary

    soc = SoC(racs=[DFTRac(n_points=256)])
    lib = OuessantLibrary(soc, environment="linux")
    spectrum_re, spectrum_im = lib.dft(signal_re, signal_im)
    print(lib.last_result.total_cycles)
"""

from .analysis import (
    TableOneRow,
    measure_transfer_efficiency,
    render_table_one,
    table_one,
)
from .core import (
    OuProgram,
    OuessantCoprocessor,
    figure4_looped_program,
    figure4_program,
    idct_program,
)
from .rac import (
    DFTRac,
    FIFO,
    FIRRac,
    IDCTRac,
    PassthroughRac,
    RAC,
    ScaleRac,
    StreamingRAC,
)
from .sw import BaremetalRuntime, LinuxRuntime, OuessantDriver, OuessantLibrary
from .system import SoC

__version__ = "1.0.0"

__all__ = [
    "BaremetalRuntime",
    "DFTRac",
    "FIFO",
    "FIRRac",
    "IDCTRac",
    "LinuxRuntime",
    "OuProgram",
    "OuessantCoprocessor",
    "OuessantDriver",
    "OuessantLibrary",
    "PassthroughRac",
    "RAC",
    "ScaleRac",
    "SoC",
    "StreamingRAC",
    "TableOneRow",
    "figure4_looped_program",
    "figure4_program",
    "idct_program",
    "measure_transfer_efficiency",
    "render_table_one",
    "table_one",
]
