"""Microcode assembler and disassembler for the Ouessant ISA.

The accepted syntax is exactly the paper's Figure 4 style::

    # 64 words from offset 0 of bank 1
    # to coprocessor FIFO 0
    mvtc BANK1,0,DMA64,FIFO0
    execs
    mvfc BANK2,0,DMA64,FIFO0
    eop

plus labels (``name:``) and the extension instructions
(``wait 100``, ``waitf out,FIFO0,64``, ``jmp name``, ``loop 8`` /
``endl``, ``mvtcx``/``mvfcx``/``addofr``/``clrofr``, ``irq``, ``sync``,
``halt``).  Operand keywords are case-insensitive; ``BANKn`` / ``DMAn``
/ ``FIFOn`` may be written as plain integers.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..sim.errors import AssemblerError
from .encoding import decode, encode
from .isa import FIFODirection, OuInstruction, OuOp, TRANSFER_OPS

_COMMENT_RE = re.compile(r"[#;].*$")
_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):")


def _parse_keyword_int(token: str, prefix: str, line: int) -> int:
    """Parse ``BANK3`` / ``DMA64`` / ``FIFO0`` (or a bare integer)."""
    token = token.strip()
    upper = token.upper()
    if upper.startswith(prefix):
        token = token[len(prefix):]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(
            f"expected {prefix}<n> or integer, got {token!r}", line
        ) from exc


def _parse_transfer(op: OuOp, operands: List[str], line: int) -> OuInstruction:
    if len(operands) != 4:
        raise AssemblerError(
            f"{op.name.lower()} expects BANK,OFFSET,DMA,FIFO", line
        )
    bank = _parse_keyword_int(operands[0], "BANK", line)
    try:
        offset = int(operands[1], 0)
    except ValueError as exc:
        raise AssemblerError(f"bad offset {operands[1]!r}", line) from exc
    count = _parse_keyword_int(operands[2], "DMA", line)
    fifo = _parse_keyword_int(operands[3], "FIFO", line)
    return OuInstruction(op, bank=bank, offset=offset, count=count, fifo=fifo)


def assemble_microcode(source: str) -> List[int]:
    """Assemble microcode text into 32-bit instruction words."""
    # pass 1: strip comments, collect labels and raw statements
    statements: List["tuple[int, str, List[str]]"] = []
    labels: Dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = _COMMENT_RE.sub("", raw).strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", lineno)
            labels[label] = len(statements)
            text = text[match.end():].strip()
        if not text:
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [tok.strip() for tok in parts[1].split(",")]
            if len(parts) > 1
            else []
        )
        statements.append((lineno, mnemonic, operands))

    # pass 2: encode
    words: List[int] = []
    for index, (lineno, mnemonic, operands) in enumerate(statements):
        try:
            op = OuOp[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno) from exc
        try:
            words.append(encode(_build(op, operands, lineno, labels)))
        except AssemblerError:
            raise
        except Exception as exc:
            raise AssemblerError(str(exc), lineno) from exc
    return words


def _build(
    op: OuOp, operands: List[str], line: int, labels: Dict[str, int]
) -> OuInstruction:
    if op in TRANSFER_OPS:
        return _parse_transfer(op, operands, line)
    if op is OuOp.WAIT:
        if len(operands) != 1:
            raise AssemblerError("wait expects one operand", line)
        return OuInstruction(op, imm=int(operands[0], 0))
    if op is OuOp.WAITF:
        if len(operands) != 3:
            raise AssemblerError("waitf expects DIR,FIFO,LEVEL", line)
        direction = operands[0].strip().lower()
        if direction not in ("in", "out"):
            raise AssemblerError(
                f"waitf direction must be 'in' or 'out', got {operands[0]!r}",
                line,
            )
        return OuInstruction(
            op,
            direction=(
                FIFODirection.INPUT if direction == "in"
                else FIFODirection.OUTPUT
            ),
            fifo=_parse_keyword_int(operands[1], "FIFO", line),
            count=int(operands[2], 0),
        )
    if op is OuOp.JMP:
        if len(operands) != 1:
            raise AssemblerError("jmp expects a label or index", line)
        target_token = operands[0]
        if target_token in labels:
            target = labels[target_token]
        else:
            try:
                target = int(target_token, 0)
            except ValueError as exc:
                raise AssemblerError(
                    f"unknown label {target_token!r}", line
                ) from exc
        return OuInstruction(op, imm=target)
    if op is OuOp.LOOP:
        if len(operands) != 1:
            raise AssemblerError("loop expects an iteration count", line)
        return OuInstruction(op, imm=int(operands[0], 0))
    if op is OuOp.ADDOFR:
        if len(operands) != 1:
            raise AssemblerError("addofr expects a word-offset delta", line)
        return OuInstruction(op, imm=int(operands[0], 0))
    if operands:
        raise AssemblerError(f"{op.name.lower()} takes no operands", line)
    return OuInstruction(op)


def disassemble(words: List[int]) -> str:
    """Render instruction words back into Figure 4 style text."""
    lines: List[str] = []
    for word in words:
        instr = decode(word)
        op = instr.op
        if op in TRANSFER_OPS:
            lines.append(
                f"{instr.mnemonic()} BANK{instr.bank},{instr.offset},"
                f"DMA{instr.count},FIFO{instr.fifo}"
            )
        elif op is OuOp.WAIT:
            lines.append(f"wait {instr.imm}")
        elif op is OuOp.WAITF:
            direction = "in" if instr.direction is FIFODirection.INPUT else "out"
            lines.append(f"waitf {direction},FIFO{instr.fifo},{instr.count}")
        elif op is OuOp.JMP:
            lines.append(f"jmp {instr.imm}")
        elif op is OuOp.LOOP:
            lines.append(f"loop {instr.imm}")
        elif op is OuOp.ADDOFR:
            lines.append(f"addofr {instr.imm}")
        else:
            lines.append(instr.mnemonic())
    return "\n".join(lines)
