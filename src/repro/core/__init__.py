"""The paper's contribution: the Ouessant coprocessor architecture."""

from .assembler import assemble_microcode, disassemble
from .binary import FirmwareImage, pack, unpack
from .codegen import (
    CycleEstimate,
    as_program,
    compress_program,
    estimate_program_cycles,
    expand_program,
)
from .controller import OuessantController
from .coprocessor import OuessantCoprocessor
from .dpr import DPRManager, PartialBitstream
from .encoding import decode, encode
from .firmware import FirmwarePlan, plan_streaming_run
from .interface import OuessantInterface
from .refmodel import (
    ReferenceMemory,
    ReferenceRAC,
    execute_reference,
)
from .isa import (
    BASE_SET,
    FIFODirection,
    MAX_TRANSFER_WORDS,
    N_BANKS,
    OuInstruction,
    OuOp,
)
from .program import (
    OuProgram,
    figure4_looped_program,
    figure4_program,
    idct_program,
)
from .registers import (
    CTRL_D,
    CTRL_IE,
    CTRL_S,
    OuessantRegisters,
    PROGRAM_BANK,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from .standalone import StandaloneSequencer

__all__ = [
    "BASE_SET",
    "CycleEstimate",
    "FirmwareImage",
    "FirmwarePlan",
    "pack",
    "plan_streaming_run",
    "unpack",
    "as_program",
    "compress_program",
    "estimate_program_cycles",
    "expand_program",
    "ReferenceMemory",
    "ReferenceRAC",
    "execute_reference",
    "CTRL_D",
    "CTRL_IE",
    "CTRL_S",
    "DPRManager",
    "FIFODirection",
    "MAX_TRANSFER_WORDS",
    "N_BANKS",
    "OuInstruction",
    "OuOp",
    "OuProgram",
    "OuessantController",
    "OuessantCoprocessor",
    "OuessantInterface",
    "OuessantRegisters",
    "PROGRAM_BANK",
    "PartialBitstream",
    "REG_BANK_BASE",
    "REG_CTRL",
    "REG_PROG_SIZE",
    "StandaloneSequencer",
    "assemble_microcode",
    "decode",
    "disassemble",
    "encode",
    "figure4_looped_program",
    "figure4_program",
    "idct_program",
]
