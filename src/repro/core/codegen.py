"""Microcode transformation and planning.

Three tools around the instruction set:

* :func:`compress_program` -- rewrite unrolled Figure-4-style transfer
  runs using the extension ISA's hardware loop (``loop``/``mvtcx``/
  ``addofr``/``endl``), shrinking microcode size independent of the
  data volume.  The rewrite is semantics-preserving (pinned by a
  differential test against the reference model).
* :func:`expand_program` -- the inverse direction: lower an
  extension-ISA program to the paper's base set (plus ``nop`` for
  waits), so firmware written for the extended controller still runs
  on a base-set-only build.
* :func:`estimate_program_cycles` -- a static cycle estimator for
  design exploration: predicts a program's run time from the bus
  protocol and accelerator parameters without simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..bus.protocol import AHB, BusProtocol
from ..rac.base import StreamingRAC
from ..sim.errors import ConfigurationError, ControllerError
from .isa import (
    FROM_COPROCESSOR_OPS,
    OuInstruction,
    OuOp,
    TO_COPROCESSOR_OPS,
    TRANSFER_OPS,
)
from .program import OuProgram

#: rewrite runs at least this long -- the loop form costs 5 words
#: (clrofr/loop/mvtcx/addofr/endl), so shorter runs would grow
MIN_RUN = 6


def _is_plain_transfer(instr: OuInstruction) -> bool:
    return instr.op in (OuOp.MVTC, OuOp.MVFC)


def _run_length(program: Sequence[OuInstruction], start: int) -> int:
    """Longest uniform-stride transfer run starting at ``start``."""
    first = program[start]
    if not _is_plain_transfer(first):
        return 1
    length = 1
    while start + length < len(program):
        nxt = program[start + length]
        if (
            nxt.op is first.op
            and nxt.bank == first.bank
            and nxt.count == first.count
            and nxt.fifo == first.fifo
            and nxt.offset == first.offset + length * first.count
        ):
            length += 1
        else:
            break
    return length


def _checked(instructions: List[OuInstruction]) -> List[OuInstruction]:
    """Gate a rewriter's output through the static verifier."""
    from ..verify.engine import verify_program

    report = verify_program(instructions)
    if not report.clean:
        raise ConfigurationError(
            "rewritten program failed verification:\n" + report.render()
        )
    return instructions


def compress_program(
    program: Sequence[OuInstruction], check: bool = False
) -> List[OuInstruction]:
    """Collapse unrolled transfer runs into hardware loops.

    Only programs made of the base set are rewritten (a program that
    already uses OFR or loops is returned unchanged -- the rewrite
    would have to reason about interleaved register state).  With
    ``check=True`` the result is gated through the static verifier
    and a :class:`ConfigurationError` raised on any error finding.
    """
    if any(instr.op not in (OuOp.MVTC, OuOp.MVFC, OuOp.EXEC, OuOp.EXECS,
                            OuOp.EOP, OuOp.NOP, OuOp.IRQ, OuOp.SYNC,
                            OuOp.HALT, OuOp.WAIT, OuOp.WAITF)
           for instr in program):
        out = list(program)
        return _checked(out) if check else out
    out: List[OuInstruction] = []
    index = 0
    while index < len(program):
        run = _run_length(program, index)
        first = program[index]
        if run >= MIN_RUN and _is_plain_transfer(first):
            indexed_op = (
                OuOp.MVTCX if first.op is OuOp.MVTC else OuOp.MVFCX
            )
            out.append(OuInstruction(OuOp.CLROFR))
            out.append(OuInstruction(OuOp.LOOP, imm=run))
            out.append(OuInstruction(
                indexed_op, bank=first.bank, offset=first.offset,
                count=first.count, fifo=first.fifo,
            ))
            out.append(OuInstruction(OuOp.ADDOFR, imm=first.count))
            out.append(OuInstruction(OuOp.ENDL))
            index += run
        else:
            out.append(first)
            index += 1
    return _checked(out) if check else out


def expand_program(
    program: Sequence[OuInstruction], max_instructions: int = 16_384,
    check: bool = False,
) -> List[OuInstruction]:
    """Lower extension-ISA microcode to the paper's base set.

    Loops are unrolled, indexed transfers resolved against the OFR,
    jumps followed, and wait instructions dropped (they have no
    functional effect).  The result contains only
    ``mvtc``/``mvfc``/``exec``/``execs``/``eop`` (and ``halt`` is
    mapped to ``eop``-less termination by truncation).  With
    ``check=True`` the lowered program is gated through the static
    verifier before being returned.
    """
    out: List[OuInstruction] = []
    pc = 0
    ofr = 0
    loop_count = 0
    loop_body = 0
    loop_active = False
    steps = 0
    while pc < len(program):
        steps += 1
        if steps > max_instructions * 4 or len(out) > max_instructions:
            raise ControllerError("expansion exceeds the instruction budget")
        instr = program[pc]
        pc += 1
        op = instr.op
        if op in (OuOp.MVTC, OuOp.MVFC, OuOp.EXEC, OuOp.EXECS):
            out.append(instr)
        elif op in (OuOp.MVTCX, OuOp.MVFCX):
            base_op = OuOp.MVTC if op is OuOp.MVTCX else OuOp.MVFC
            out.append(OuInstruction(
                base_op, bank=instr.bank, offset=instr.offset + ofr,
                count=instr.count, fifo=instr.fifo,
            ))
        elif op is OuOp.ADDOFR:
            ofr += instr.imm
        elif op is OuOp.CLROFR:
            ofr = 0
        elif op is OuOp.JMP:
            pc = instr.imm
        elif op is OuOp.LOOP:
            if loop_active:
                raise ControllerError("nested loop in expansion")
            loop_active = True
            loop_count = instr.imm
            loop_body = pc
        elif op is OuOp.ENDL:
            if not loop_active:
                raise ControllerError("endl without loop in expansion")
            loop_count -= 1
            if loop_count > 0:
                pc = loop_body
            else:
                loop_active = False
        elif op in (OuOp.NOP, OuOp.WAIT, OuOp.WAITF, OuOp.SYNC, OuOp.IRQ):
            pass  # timing-only / side-band: no base-set equivalent needed
        elif op in (OuOp.EOP, OuOp.HALT):
            out.append(OuInstruction(OuOp.EOP))
            return _checked(out) if check else out
        else:  # pragma: no cover
            raise ControllerError(f"cannot expand {op}")
    raise ControllerError("expansion ran past the program (missing eop)")


def as_program(instructions: Sequence[OuInstruction]) -> OuProgram:
    """Wrap raw instructions back into a builder object."""
    return OuProgram.from_instructions(list(instructions))


def concat_programs(
    programs: Sequence[OuProgram],
    terminate: bool = True,
    names: Optional[Sequence[str]] = None,
) -> OuProgram:
    """Concatenate terminated programs into one batched program.

    The scheduler uses this to fuse several small jobs into a single
    microcode image: each constituent's trailing terminators
    (``eop``/``halt``) are stripped, the bodies are appended in order,
    and a single ``eop`` is emitted at the end (one interrupt for the
    whole batch).

    Absolute control flow (``jmp``) is rejected -- its targets would be
    wrong after relocation.  ``loop``/``endl`` blocks are
    position-independent and pass through unchanged -- but only when
    the verifier can bound their execution: a constituent whose
    worst-case step count is unbounded (malformed loop nest,
    unstructured control flow) raises :class:`ValueError` naming the
    offending program (``names``, when given, labels each constituent,
    e.g. with its job id).  Concatenating such a program would hang
    the whole batch -- and every innocent job fused with it.
    """
    batched = OuProgram()
    for position, program in enumerate(programs):
        body = program.instructions
        if any(instr.op in (OuOp.LOOP, OuOp.ENDL, OuOp.JMP)
               for instr in body):
            # only looping/jumping constituents need the verifier; a
            # straight-line body is trivially bounded (hot path: the
            # scheduler concatenates per dispatch)
            from ..verify.engine import verify_program

            if verify_program(body).max_steps is None:
                label = (names[position]
                         if names is not None and position < len(names)
                         else f"program {position}")
                raise ValueError(
                    f"{label}: the verifier cannot bound this "
                    "program's execution; concatenating it would let "
                    "one runaway job hang the whole batch"
                )
        while body and body[-1].op in (OuOp.EOP, OuOp.HALT):
            body.pop()
        if not body:
            raise ConfigurationError(
                f"program {position} is empty after stripping terminators"
            )
        for instr in body:
            if instr.op is OuOp.JMP:
                raise ConfigurationError(
                    f"program {position} uses jmp: absolute targets "
                    "cannot be relocated by concatenation"
                )
            if instr.op in (OuOp.EOP, OuOp.HALT):
                raise ConfigurationError(
                    f"program {position} terminates mid-body; "
                    "only trailing terminators can be stripped"
                )
        batched.extend(OuProgram.from_instructions(body))
    if terminate:
        batched.eop()
    return batched


# ---------------------------------------------------------------------------
# static cycle estimation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CycleEstimate:
    """Output of :func:`estimate_program_cycles`."""

    total: int
    fetch_decode: int
    transfer: int
    compute_exposed: int

    def __str__(self) -> str:
        return (
            f"{self.total} cycles (fetch/decode {self.fetch_decode}, "
            f"transfer {self.transfer}, exposed compute "
            f"{self.compute_exposed})"
        )


def estimate_program_cycles(
    program: Sequence[OuInstruction],
    rac: Optional[StreamingRAC] = None,
    protocol: BusProtocol = AHB,
    memory_latency: int = 1,
    prefetch: bool = True,
) -> CycleEstimate:
    """Predict a program's run time without simulating.

    Model assumptions (documented, deliberately simple):

    * 2 cycles fetch+decode per executed instruction (buffered fetch),
      plus the prefetch burst when enabled;
    * each transfer instruction occupies the bus for the protocol's
      burst time plus ~2 cycles of engine turnaround per chunk;
    * with an autostart streaming RAC, input transfers overlap
      collection, so only the compute latency plus the output drain
      are exposed after the last input word (``exec`` wait time);
    * loops/jumps are resolved by expansion first.

    Accuracy against simulation is typically within ~15% (pinned by a
    test); the point is trend-correct design exploration.
    """
    flat = expand_program(program) if any(
        instr.op not in (OuOp.MVTC, OuOp.MVFC, OuOp.EXEC, OuOp.EXECS,
                         OuOp.EOP)
        for instr in program
    ) else list(program)

    executed = len(flat)
    fetch_decode = 2 * executed
    if prefetch:
        fetch_decode += protocol.transfer_cycles(
            max(1, len(program)), memory_latency
        )

    transfer = 0
    words_in = 0
    words_out = 0
    for instr in flat:
        if instr.op in TRANSFER_OPS:
            transfer += protocol.transfer_cycles(instr.count, memory_latency)
            transfer += 2  # engine turnaround
            if instr.op in TO_COPROCESSOR_OPS:
                words_in += instr.count
            else:
                words_out += instr.count

    compute_exposed = 0
    if rac is not None and words_in:
        ops = max(1, words_in // max(1, rac.items_in[0]))
        # per operation: the accelerator collects its input words at
        # input_rate (exposed, since burst completion is lumpy), then
        # the compute latency; output emission overlaps the mvfc bursts
        collect = rac.items_in[0] // max(1, rac.input_rate)
        compute_exposed = ops * (collect + rac.compute_latency)

    total = fetch_decode + transfer + compute_exposed
    return CycleEstimate(total, fetch_decode, transfer, compute_exposed)
