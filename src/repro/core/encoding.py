"""Binary encoding of the Ouessant instruction set.

See :mod:`repro.core.isa` for the field layout.  ``encode`` and
``decode`` are exact inverses over the set of valid instructions (a
property-based test pins this down).
"""

from __future__ import annotations

from ..sim.errors import EncodingError
from .isa import (
    FIFODirection,
    MAX_JUMP,
    MAX_LOOP,
    MAX_OFFSET,
    MAX_TRANSFER_WORDS,
    MAX_WAIT,
    N_BANKS,
    N_FIFO_SLOTS,
    OuInstruction,
    OuOp,
    TRANSFER_OPS,
)

_OPCODE_SHIFT = 27


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise EncodingError(message)


def encode(instr: OuInstruction) -> int:
    """Encode an instruction into its 32-bit word."""
    op = instr.op
    word = int(op) << _OPCODE_SHIFT
    if op in TRANSFER_OPS:
        _require(0 <= instr.bank < N_BANKS, f"bank {instr.bank} out of range")
        _require(
            0 <= instr.offset <= MAX_OFFSET,
            f"offset {instr.offset} exceeds {MAX_OFFSET}",
        )
        _require(
            1 <= instr.count <= MAX_TRANSFER_WORDS,
            f"count {instr.count} not in [1, {MAX_TRANSFER_WORDS}]",
        )
        _require(0 <= instr.fifo < N_FIFO_SLOTS, f"fifo {instr.fifo} out of range")
        return (
            word
            | (instr.bank << 24)
            | (instr.offset << 10)
            | ((instr.count - 1) << 3)
            | instr.fifo
        )
    if op is OuOp.WAIT:
        _require(0 <= instr.imm <= MAX_WAIT, f"wait {instr.imm} too long")
        return word | instr.imm
    if op is OuOp.WAITF:
        _require(0 <= instr.fifo < N_FIFO_SLOTS, f"fifo {instr.fifo} out of range")
        _require(0 <= instr.count <= 127, f"waitf level {instr.count} > 127")
        return (
            word
            | (instr.direction.value << 26)
            | (instr.fifo << 23)
            | (instr.count << 16)
        )
    if op is OuOp.JMP:
        _require(0 <= instr.imm <= MAX_JUMP, f"jmp target {instr.imm} out of range")
        return word | instr.imm
    if op is OuOp.LOOP:
        _require(1 <= instr.imm <= MAX_LOOP, f"loop count {instr.imm} invalid")
        return word | instr.imm
    if op is OuOp.ADDOFR:
        _require(0 <= instr.imm <= MAX_OFFSET, f"addofr {instr.imm} out of range")
        return word | instr.imm
    # no-field instructions
    return word


def decode(word: int) -> OuInstruction:
    """Decode a 32-bit word; raises :class:`EncodingError` if undefined."""
    opcode = (word >> _OPCODE_SHIFT) & 0x1F
    try:
        op = OuOp(opcode)
    except ValueError as exc:
        raise EncodingError(f"undefined Ouessant opcode {opcode:#x}") from exc
    if op in TRANSFER_OPS:
        return OuInstruction(
            op,
            bank=(word >> 24) & 0x7,
            offset=(word >> 10) & MAX_OFFSET,
            count=((word >> 3) & 0x7F) + 1,
            fifo=word & 0x7,
        )
    if op is OuOp.WAIT:
        return OuInstruction(op, imm=word & MAX_WAIT)
    if op is OuOp.WAITF:
        return OuInstruction(
            op,
            direction=FIFODirection((word >> 26) & 1),
            fifo=(word >> 23) & 0x7,
            count=(word >> 16) & 0x7F,
        )
    if op is OuOp.JMP:
        return OuInstruction(op, imm=word & MAX_JUMP)
    if op is OuOp.LOOP:
        return OuInstruction(op, imm=word & MAX_LOOP)
    if op is OuOp.ADDOFR:
        return OuInstruction(op, imm=word & MAX_OFFSET)
    return OuInstruction(op)
