"""The Ouessant controller.

"Ouessant controller is responsible for instruction decoding and actual
control of data transfer and coprocessor operations based on provided
microcode.  It is based on a classical unpipelined
Fetch/Decode/Execute microcontroller architecture.  It roughly consists
of a Finite State Machine to control execution, and of registers to
store the state it is in."  (Section III-D)

This class is that FSM, cycle by cycle:

* **fetch**: microcode is read from memory bank 0 over the bus.  By
  default the whole program is prefetched into an instruction buffer
  with one burst when ``S`` is set (the behaviour that yields the
  paper's ~1.5 cycles/word overall efficiency); per-instruction
  fetching is available for the ablation study.
* **decode**: one cycle.
* **execute**: transfer instructions drive the interface's master
  engine in FIFO-paced chunks; ``exec`` waits on the RAC's ``end_op``;
  the extension instructions manipulate the loop/offset registers.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..bus.types import BusTransfer
from ..rac.base import RAC
from ..rac.fifo import FIFO
from ..sim.errors import ControllerError, EncodingError, FIFOError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from .encoding import decode
from .interface import OuessantInterface
from .isa import FIFODirection, OuInstruction, OuOp
from .perf import PerfCounterBlock
from .registers import ERR_BUS, ERR_FIFO, ERR_ILLEGAL_OP, ERR_WATCHDOG
from .registers import PROGRAM_BANK


class _State(enum.Enum):
    IDLE = "idle"
    PREFETCH = "prefetch"
    FETCH = "fetch"
    DECODE = "decode"
    XFER_TO = "xfer_to"
    XFER_FROM = "xfer_from"
    EXEC_WAIT = "exec_wait"
    WAITING = "waiting"
    WAITF = "waitf"
    HALTED = "halted"
    ERROR = "error"


class OuessantController(Component):
    """Fetch/decode/execute FSM of the OCP.

    Parameters
    ----------
    interface:
        The :class:`OuessantInterface` providing registers, address
        translation and the bus master engine.
    prefetch:
        Fetch the whole program in one burst at start (default True).
    ibuf_size:
        Instruction-buffer capacity in instructions; programs longer
        than this fall back to per-instruction fetch past the buffer.
    watchdog_cycles:
        Abort a hung ``exec`` after this many consecutive cycles in
        EXEC_WAIT (0 disables the watchdog, the paper's behaviour).
        The trap latches ``ERR_WATCHDOG`` in the control register.
    """

    def __init__(
        self,
        name: str = "ocp.ctrl",
        interface: Optional[OuessantInterface] = None,
        prefetch: bool = True,
        ibuf_size: int = 128,
        watchdog_cycles: int = 0,
    ) -> None:
        super().__init__(name)
        if interface is None:
            raise ControllerError("controller needs an interface")
        if ibuf_size < 1:
            raise ControllerError("ibuf_size must be >= 1")
        if watchdog_cycles < 0:
            raise ControllerError("watchdog_cycles must be >= 0")
        self.interface = interface
        self.prefetch = prefetch
        self.ibuf_size = ibuf_size
        self.watchdog_cycles = watchdog_cycles
        self._watchdog = 0
        self.rac: Optional[RAC] = None
        self.fifos_in: List[FIFO] = []
        self.fifos_out: List[FIFO] = []
        self.stats = Stats()
        self._state = _State.IDLE
        self._pc = 0
        self._ibuf: List[int] = []
        self._pending: Optional[BusTransfer] = None
        self._instr: Optional[OuInstruction] = None
        # transfer engine state
        self._xfer_bank = 0
        self._xfer_offset = 0
        self._xfer_remaining = 0
        self._xfer_fifo = 0
        # extension registers
        self._wait_timer = 0
        self._loop_count = 0
        self._loop_body = 0
        self._loop_active = False
        self._ofr = 0
        #: consecutive FIFO-stall cycles not yet flushed as one event
        self._stall_run = 0
        #: hardware performance counters, readable through the slave
        #: window after the configuration registers
        self.perf = PerfCounterBlock(self)
        self.interface.perf = self.perf
        # hook into the register file's S bit
        self.interface.registers.on_start = self._on_start
        self.interface.registers.on_stop = self._on_stop

    # -- wiring ------------------------------------------------------------
    def bind_fabric(
        self, fifos_in: List[FIFO], fifos_out: List[FIFO], rac: RAC
    ) -> None:
        """Attach the FIFO fabric and accelerator (done by the OCP)."""
        self.fifos_in = list(fifos_in)
        self.fifos_out = list(fifos_out)
        self.rac = rac
        # the controller's quiescence claims are conditioned on FIFO
        # occupancy and the RAC's end_op: re-poll whenever they change
        for fifo in self.fifos_in:
            fifo.watch(self)
        for fifo in self.fifos_out:
            fifo.watch(self)
        rac.watch(self)

    def _clear_fifo_watches(self) -> None:
        for fifo in self.fifos_in:
            fifo.set_free_watch(None)
        for fifo in self.fifos_out:
            fifo.set_occ_watch(None)

    # -- control ------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state.value

    @property
    def running(self) -> bool:
        return self._state not in (_State.IDLE, _State.HALTED,
                                   _State.ERROR)

    @property
    def halted(self) -> bool:
        return self._state is _State.HALTED

    @property
    def errored(self) -> bool:
        return self._state is _State.ERROR

    @property
    def offset_register(self) -> int:
        return self._ofr

    def _record(self, event: str, **data: object) -> None:
        """Trace an observability event without claiming activity.

        Span-reconstruction events (``phase`` / ``instr`` / ``stall``)
        fire on cycles where the controller -- or the bus transaction
        poking its registers -- is active anyway; leaving
        ``sim.last_active`` untouched keeps deadlock diagnostics naming
        the component that actually *did* something.
        """
        if self.sim is not None and self.sim.trace is not None:
            self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def _phase(self, at: int) -> None:
        """Record a state-machine boundary for span reconstruction.

        ``at`` is the first cycle charged to the new state (the
        *boundary*): transitions taken inside :meth:`tick` at cycle C
        take effect at C+1 (the current tick already charged the old
        state), while external CTRL-write transitions take effect at C
        (the bus ticks before the controller, so the new state is
        charged from the very same cycle).
        """
        self._record("phase", state=self._state.value, at=at)

    def _flush_stall(self, at: int) -> None:
        """Emit the aggregated ``stall`` event ending a stall run.

        One event per run (not per cycle) keeps declared-idle windows
        event-free, as the strict idle-skip audit requires; the span
        covers ``[at - cycles, at)``.
        """
        if self._stall_run:
            self._record("stall", cycles=self._stall_run, at=at)
            self._stall_run = 0

    def _on_start(self) -> None:
        # settle deferred skip accounting *before* the state change so
        # the quiet cycles are charged to the state that sat through
        # them, then invalidate the cached quiescence claim
        self.sync_skips()
        if self.interface.registers.prog_size < 1:
            raise ControllerError("S set with PROG_SIZE == 0")
        self._pc = 0
        self._ibuf = []
        self._pending = None
        self._instr = None
        self._loop_active = False
        self._ofr = 0
        self._watchdog = 0
        self._stall_run = 0
        self._state = _State.PREFETCH if self.prefetch else _State.FETCH
        self.perf.clear()
        self.trace_event("start", prog_size=self.interface.registers.prog_size)
        self._phase(at=self.now)

    def _on_stop(self) -> None:
        # clearing S is also the recovery path: abort whatever run is
        # in flight (hung exec, trapped state, ...) back to IDLE so the
        # driver can retry.  An in-flight bus transfer simply completes
        # with nobody waiting on its handle.
        self.sync_skips()
        if self._state is _State.IDLE:
            return
        if self._state not in (_State.HALTED, _State.ERROR):
            self.trace_event("abort", state=self._state.value, pc=self._pc)
        self._flush_stall(at=self.now)
        self._clear_fifo_watches()
        self._state = _State.IDLE
        self._pending = None
        self._instr = None
        self._loop_active = False
        self._watchdog = 0
        self._phase(at=self.now)

    def reset(self) -> None:
        self._state = _State.IDLE
        self._pc = 0
        self._ibuf = []
        self._pending = None
        self._instr = None
        self._loop_active = False
        self._ofr = 0
        self._watchdog = 0
        self._stall_run = 0
        self.stats = Stats()
        self.perf.clear()

    # -- traps ---------------------------------------------------------------
    def _trap(self, code: int, reason: str) -> None:
        """Abort the run: latch the error in CTRL and park in ERROR.

        The ERROR state is left by writing CTRL (clearing S aborts,
        setting S starts a fresh run which clears E and the code).
        """
        self._flush_stall(at=self.now)
        self._clear_fifo_watches()
        self._state = _State.ERROR
        self._pending = None
        self._instr = None
        self._watchdog = 0
        self.stats.incr("traps")
        self.trace_event("trap", code=code, reason=reason, pc=self._pc)
        self.interface.signal_error(code)

    # -- per-cycle behaviour ----------------------------------------------
    def tick(self) -> None:
        state = self._state
        if state in (_State.IDLE, _State.HALTED, _State.ERROR):
            return
        self.stats.incr(f"cycles.{state.value}")
        if state is _State.PREFETCH:
            self._tick_prefetch()
        elif state is _State.FETCH:
            self._tick_fetch()
        elif state is _State.DECODE:
            self._tick_decode()
        elif state is _State.XFER_TO:
            self._tick_xfer_to()
        elif state is _State.XFER_FROM:
            self._tick_xfer_from()
        elif state is _State.EXEC_WAIT:
            if self.rac is not None and self.rac.end_op:
                self._watchdog = 0
                self._state = _State.FETCH
            elif self.watchdog_cycles > 0:
                self._watchdog += 1
                if self._watchdog >= self.watchdog_cycles:
                    self._trap(
                        ERR_WATCHDOG,
                        f"exec hung for {self._watchdog} cycles",
                    )
        elif state is _State.WAITING:
            self._wait_timer -= 1
            if self._wait_timer <= 0:
                self._state = _State.FETCH
        elif state is _State.WAITF:
            if self._waitf_satisfied():
                self._disarm_waitf_watch()
                self._state = _State.FETCH
        if self._state is not state:
            # internal transition: the new state is charged from the
            # next cycle (this tick already charged the old one)
            self._phase(at=self.now + 1)

    # -- quiescence protocol --------------------------------------------------
    def next_activity(self):
        """Declare idleness for the stall-shaped FSM states.

        The controller is data-driven in most states (waiting on a bus
        transfer, on FIFO occupancy, on the RAC's ``end_op``): those
        conditions only change when *another* component ticks, so the
        controller may declare indefinite idleness and rely on the
        global quiescence rule.  Self-timed waits (``wait`` imm, the
        exec watchdog) declare their expiry cycle instead.
        """
        state = self._state
        if state in (_State.IDLE, _State.HALTED, _State.ERROR):
            return None
        if state is _State.EXEC_WAIT:
            if self.rac is not None and self.rac.end_op:
                return self.now
            if self.watchdog_cycles > 0:
                # the trap fires on the tick that takes _watchdog to
                # the limit: remaining ticks - 1 cycles from now
                return self.now + (self.watchdog_cycles - self._watchdog) - 1
            return None
        if state is _State.WAITING:
            # the tick that decrements _wait_timer to zero resumes
            return self.now + self._wait_timer - 1
        if state is _State.WAITF:
            return self.now if self._waitf_satisfied() else None
        if state in (_State.XFER_TO, _State.XFER_FROM):
            if self._pending is not None:
                return self.now if self._pending.done else None
            if state is _State.XFER_TO:
                fifo = self.fifos_in[self._xfer_fifo]
                stalled = fifo.free_push_words < 1
                # under idle skipping the stalled tick branch (which
                # arms the watch on the naive path) never runs: declare
                # the resume threshold here so a hot-mode batch on the
                # other side of the FIFO stops at the crossing cycle
                fifo.set_free_watch(1 if stalled else None)
            else:
                fifo = self.fifos_out[self._xfer_fifo]
                chunk = min(self._xfer_remaining, self.bus_burst_threshold,
                            fifo.depth)
                stalled = fifo.occupancy < chunk
                fifo.set_occ_watch(chunk if stalled else None)
            return None if stalled else self.now
        if state in (_State.PREFETCH, _State.FETCH):
            if self._pending is not None and not self._pending.done:
                return None  # the bus completion wakes us
            return self.now
        return self.now  # DECODE and anything else: always active

    def on_skip(self, cycles: int) -> None:
        state = self._state
        if state in (_State.IDLE, _State.HALTED, _State.ERROR):
            return
        # every skipped tick would have charged the state counter
        self.stats.incr(f"cycles.{state.value}", cycles)
        if state is _State.EXEC_WAIT and self.watchdog_cycles > 0:
            self._watchdog += cycles
        elif state is _State.WAITING:
            self._wait_timer -= cycles
        elif (state in (_State.XFER_TO, _State.XFER_FROM)
              and self._pending is None):
            self.stats.incr("cycles.fifo_stall", cycles)
            self._stall_run += cycles

    # -- fetch path ---------------------------------------------------------
    def _tick_prefetch(self) -> None:
        if self._pending is None:
            words = min(self.interface.registers.prog_size, self.ibuf_size)
            self._pending = self.interface.submit_read(
                PROGRAM_BANK, 0, words, waiter=self
            )
            return
        if self._pending.done:
            if self._pending.error:
                self._trap(
                    ERR_BUS,
                    f"microcode prefetch: {self._pending.error_reason}",
                )
                return
            self._ibuf = list(self._pending.data)
            self._pending = None
            self._state = _State.FETCH

    def _decode_or_trap(self, word: int) -> Optional[OuInstruction]:
        """Decode one microcode word; undefined opcodes trap."""
        try:
            return decode(word)
        except EncodingError as exc:
            self._trap(ERR_ILLEGAL_OP, f"pc={self._pc}: {exc}")
            return None

    def _tick_fetch(self) -> None:
        prog_size = self.interface.registers.prog_size
        if self._pc >= prog_size:
            raise ControllerError(
                f"PC {self._pc} ran past PROG_SIZE {prog_size} "
                "(missing eop/halt?)"
            )
        if self._pc < len(self._ibuf):
            instr = self._decode_or_trap(self._ibuf[self._pc])
            if instr is None:
                return
            self._instr = instr
            self._pc += 1
            self._state = _State.DECODE
            return
        # slow path: fetch one instruction word over the bus
        if self._pending is None:
            self._pending = self.interface.submit_read(
                PROGRAM_BANK, self._pc, 1, waiter=self
            )
            return
        if self._pending.done:
            if self._pending.error:
                self._trap(
                    ERR_BUS,
                    f"fetch pc={self._pc}: {self._pending.error_reason}",
                )
                return
            word = self._pending.data[0]
            self._pending = None
            instr = self._decode_or_trap(word)
            if instr is None:
                return
            self._instr = instr
            self._pc += 1
            self._state = _State.DECODE

    def _tick_decode(self) -> None:
        instr = self._instr
        if instr is None:  # pragma: no cover - fetch always latches one
            raise ControllerError("decode without fetched instruction")
        self.stats.incr("instructions")
        self.stats.incr(f"instr.{instr.mnemonic()}")
        self._record("instr", pc=self._pc - 1, mnemonic=instr.mnemonic())
        self._execute(instr)

    # -- execute -------------------------------------------------------------
    def _execute(self, instr: OuInstruction) -> None:
        op = instr.op
        if op in (OuOp.MVTC, OuOp.MVTCX, OuOp.MVFC, OuOp.MVFCX):
            self._begin_transfer(instr)
        elif op is OuOp.EXEC:
            self._require_rac().start_op()
            self._state = _State.EXEC_WAIT
        elif op is OuOp.EXECS:
            self._require_rac().start_op()
            self._state = _State.FETCH
        elif op is OuOp.EOP:
            self.interface.signal_done()
            self._state = _State.HALTED
            self.trace_event("eop", pc=self._pc)
        elif op is OuOp.NOP:
            self._state = _State.FETCH
        elif op is OuOp.WAIT:
            if instr.imm == 0:
                self._state = _State.FETCH
            else:
                self._wait_timer = instr.imm
                self._state = _State.WAITING
        elif op is OuOp.WAITF:
            self._instr = instr
            self._state = _State.WAITF
            self._arm_waitf_watch(instr)
        elif op is OuOp.JMP:
            if instr.imm >= self.interface.registers.prog_size:
                raise ControllerError(
                    f"jmp target {instr.imm} outside program"
                )
            self._pc = instr.imm
            self._state = _State.FETCH
        elif op is OuOp.LOOP:
            if self._loop_active:
                raise ControllerError("nested loop: single-level only")
            self._loop_active = True
            self._loop_count = instr.imm
            self._loop_body = self._pc
            self._state = _State.FETCH
        elif op is OuOp.ENDL:
            if not self._loop_active:
                raise ControllerError("endl without loop")
            self._loop_count -= 1
            if self._loop_count > 0:
                self._pc = self._loop_body
            else:
                self._loop_active = False
            self._state = _State.FETCH
        elif op is OuOp.ADDOFR:
            self._ofr += instr.imm
            self._state = _State.FETCH
        elif op is OuOp.CLROFR:
            self._ofr = 0
            self._state = _State.FETCH
        elif op is OuOp.IRQ:
            self.interface.signal_irq()
            self._state = _State.FETCH
        elif op is OuOp.SYNC:
            # the transfer engine is synchronous per instruction, so a
            # sync barrier is already satisfied here; costs one cycle.
            self._state = _State.FETCH
        elif op is OuOp.HALT:
            self._state = _State.HALTED
        else:  # pragma: no cover - decode rejects undefined opcodes
            raise ControllerError(f"unimplemented opcode {op}")

    def _require_rac(self) -> RAC:
        if self.rac is None:
            raise ControllerError("exec with no RAC bound")
        return self.rac

    # -- transfer engine ------------------------------------------------------
    def _begin_transfer(self, instr: OuInstruction) -> None:
        offset = instr.offset
        if instr.op in (OuOp.MVTCX, OuOp.MVFCX):
            offset += self._ofr
        fifos = (
            self.fifos_in
            if instr.to_coprocessor()
            else self.fifos_out
        )
        if instr.fifo >= len(fifos):
            raise ControllerError(
                f"{instr.mnemonic()} addresses FIFO{instr.fifo} but the "
                f"RAC provides {len(fifos)}"
            )
        self._xfer_bank = instr.bank
        self._xfer_offset = offset
        self._xfer_remaining = instr.count
        self._xfer_fifo = instr.fifo
        # validate the whole window now (hardware would fault mid-burst)
        self.interface.translate(instr.bank, offset, instr.count)
        self._state = (
            _State.XFER_TO if instr.to_coprocessor() else _State.XFER_FROM
        )

    def _tick_xfer_to(self) -> None:
        fifo = self.fifos_in[self._xfer_fifo]
        if self._pending is not None:
            if not self._pending.done:
                return
            if self._pending.error:
                self._trap(
                    ERR_BUS,
                    f"mvtc read: {self._pending.error_reason}",
                )
                return
            data = self._pending.data
            self._pending = None
            try:
                fifo.push_many(data)
            except FIFOError as exc:
                self._trap(ERR_FIFO, f"mvtc push: {exc}")
                return
            self.stats.incr("words_to_rac", len(data))
            if self._xfer_remaining == 0:
                self._state = _State.FETCH
            return
        chunk = min(self._xfer_remaining, fifo.free_push_words)
        if chunk < 1:
            self.stats.incr("cycles.fifo_stall")
            self._stall_run += 1
            # bound any consumer-side batch at the cycle one word frees
            fifo.set_free_watch(1)
            return
        self._flush_stall(at=self.now)
        fifo.set_free_watch(None)
        self._pending = self.interface.submit_read(
            self._xfer_bank, self._xfer_offset, chunk, waiter=self
        )
        self._xfer_offset += chunk
        self._xfer_remaining -= chunk

    def _tick_xfer_from(self) -> None:
        fifo = self.fifos_out[self._xfer_fifo]
        if self._pending is not None:
            if not self._pending.done:
                return
            if self._pending.error:
                self._trap(
                    ERR_BUS,
                    f"mvfc write: {self._pending.error_reason}",
                )
                return
            self._pending = None
            if self._xfer_remaining == 0:
                self._state = _State.FETCH
            return
        if self.bus_burst_threshold < 1:
            raise ControllerError("bus burst threshold must be >= 1")
        # never wait for more words than the FIFO can physically hold
        chunk = min(self._xfer_remaining, self.bus_burst_threshold,
                    fifo.depth)
        if fifo.occupancy < chunk:
            self.stats.incr("cycles.fifo_stall")
            self._stall_run += 1
            # bound any producer-side batch at the cycle the chunk fills
            fifo.set_occ_watch(chunk)
            return
        self._flush_stall(at=self.now)
        fifo.set_occ_watch(None)
        try:
            data = fifo.pop_many(chunk)
        except FIFOError as exc:
            self._trap(ERR_FIFO, f"mvfc pop: {exc}")
            return
        self.stats.incr("words_from_rac", len(data))
        self._pending = self.interface.submit_write(
            self._xfer_bank, self._xfer_offset, data, waiter=self
        )
        self._xfer_offset += chunk
        self._xfer_remaining -= chunk

    @property
    def bus_burst_threshold(self) -> int:
        """Words to accumulate before issuing an outbound burst.

        Matching the bus protocol's maximum burst keeps outbound
        cycles/word near the paper's 1.5 while bounding FIFO latency.
        """
        bus = self.interface.bus
        if bus is None:
            return 16
        return bus.protocol.max_burst_beats

    # -- waitf ---------------------------------------------------------------
    def _arm_waitf_watch(self, instr: OuInstruction) -> None:
        """Bound batches at the cycle the waited-on threshold crosses."""
        if instr.direction is FIFODirection.INPUT:
            if instr.fifo < len(self.fifos_in):
                self.fifos_in[instr.fifo].set_free_watch(instr.count)
        elif instr.fifo < len(self.fifos_out):
            self.fifos_out[instr.fifo].set_occ_watch(instr.count)

    def _disarm_waitf_watch(self) -> None:
        instr = self._instr
        if instr is None:  # pragma: no cover
            return
        if instr.direction is FIFODirection.INPUT:
            if instr.fifo < len(self.fifos_in):
                self.fifos_in[instr.fifo].set_free_watch(None)
        elif instr.fifo < len(self.fifos_out):
            self.fifos_out[instr.fifo].set_occ_watch(None)

    def _waitf_satisfied(self) -> bool:
        instr = self._instr
        if instr is None:  # pragma: no cover
            return True
        if instr.direction is FIFODirection.INPUT:
            fifos = self.fifos_in
            if instr.fifo >= len(fifos):
                raise ControllerError(f"waitf: no input FIFO{instr.fifo}")
            return fifos[instr.fifo].free_push_words >= instr.count
        fifos = self.fifos_out
        if instr.fifo >= len(fifos):
            raise ControllerError(f"waitf: no output FIFO{instr.fifo}")
        return fifos[instr.fifo].occupancy >= instr.count
