"""Static microcode checker.

Firmware for the OCP is tiny, but the failure modes are classic
embedded ones: a transfer addressed to a FIFO the RAC does not have, a
bank the driver never configured, a word count that does not match the
accelerator's appetite (hanging the FIFO engine forever), an
unterminated program running off the end.  ``lint_program`` catches
all of these *before* the microcode is loaded, against the actual RAC
the OCP hosts.

Each finding is a :class:`Diagnostic` with a severity:

* ``error`` -- the program will fault or hang on real hardware;
* ``warning`` -- legal but suspicious (e.g. moving more words than the
  accelerator will consume per operation pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..rac.base import RAC, StreamingRAC
from .isa import (
    FIFODirection,
    FROM_COPROCESSOR_OPS,
    INDEXED_OPS,
    OuInstruction,
    OuOp,
    TO_COPROCESSOR_OPS,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to an instruction index."""

    index: int
    severity: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] instr {self.index}: {self.message}"


def _terminators(program: Sequence[OuInstruction]) -> Set[int]:
    return {
        i for i, instr in enumerate(program)
        if instr.op in (OuOp.EOP, OuOp.HALT)
    }


def lint_program(
    program: Sequence[OuInstruction],
    rac: Optional[RAC] = None,
    configured_banks: Optional[Set[int]] = None,
) -> List[Diagnostic]:
    """Check a microcode program; returns diagnostics (empty = clean).

    Parameters
    ----------
    rac:
        When given, FIFO indices and per-operation word counts are
        checked against the accelerator's port specification.
    configured_banks:
        When given, every referenced bank must be in the set (bank 0,
        the microcode bank, is implicitly configured).
    """
    diags: List[Diagnostic] = []
    n_in = len(rac.ports.input_widths) if rac is not None else None
    n_out = len(rac.ports.output_widths) if rac is not None else None

    if not program:
        return [Diagnostic(0, SEVERITY_ERROR, "empty program")]

    # -- termination & control flow -------------------------------------
    if not _terminators(program):
        diags.append(Diagnostic(
            len(program) - 1, SEVERITY_ERROR,
            "no eop/halt: the controller will run past the program",
        ))
    loop_depth = 0
    words_in: Dict[int, int] = {}
    words_out: Dict[int, int] = {}
    exec_seen = False
    in_loop_multiplier = 1

    for index, instr in enumerate(program):
        op = instr.op
        if op is OuOp.JMP and instr.imm >= len(program):
            diags.append(Diagnostic(
                index, SEVERITY_ERROR,
                f"jmp target {instr.imm} outside the {len(program)}-"
                "instruction program",
            ))
        if op is OuOp.LOOP:
            loop_depth += 1
            in_loop_multiplier = instr.imm
            if loop_depth > 1:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR,
                    "nested loop: the controller supports a single level",
                ))
        if op is OuOp.ENDL:
            if loop_depth == 0:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR, "endl without a matching loop",
                ))
            else:
                loop_depth -= 1
                in_loop_multiplier = 1
        if op in (OuOp.EXEC, OuOp.EXECS):
            exec_seen = True

        # -- banks --------------------------------------------------------
        if instr.is_transfer() and configured_banks is not None:
            allowed = set(configured_banks) | {0}
            if instr.bank not in allowed:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR,
                    f"bank {instr.bank} is never configured",
                ))

        # -- FIFOs & volumes ------------------------------------------------
        multiplier = in_loop_multiplier if loop_depth else 1
        if op in TO_COPROCESSOR_OPS:
            if n_in is not None and instr.fifo >= n_in:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR,
                    f"mvtc addresses input FIFO{instr.fifo} but the RAC "
                    f"has {n_in}",
                ))
            words_in[instr.fifo] = words_in.get(instr.fifo, 0) + (
                instr.count * multiplier
            )
        if op in FROM_COPROCESSOR_OPS:
            if n_out is not None and instr.fifo >= n_out:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR,
                    f"mvfc addresses output FIFO{instr.fifo} but the RAC "
                    f"has {n_out}",
                ))
            words_out[instr.fifo] = words_out.get(instr.fifo, 0) + (
                instr.count * multiplier
            )
        if op is OuOp.WAITF and rac is not None:
            limit = n_in if instr.direction is FIFODirection.INPUT else n_out
            if limit is not None and instr.fifo >= limit:
                diags.append(Diagnostic(
                    index, SEVERITY_ERROR,
                    f"waitf addresses FIFO{instr.fifo} beyond the RAC's ports",
                ))
        if op in INDEXED_OPS and not any(
            p.op in (OuOp.ADDOFR, OuOp.CLROFR) for p in program[:index]
        ):
            diags.append(Diagnostic(
                index, SEVERITY_WARNING,
                "indexed transfer before any addofr/clrofr: OFR is 0 "
                "at start, was that intended?",
            ))

    if loop_depth != 0:
        diags.append(Diagnostic(
            len(program) - 1, SEVERITY_ERROR,
            "loop opened but never closed with endl",
        ))

    # -- accelerator appetite ------------------------------------------
    if isinstance(rac, StreamingRAC):
        for port, need in enumerate(rac.items_in):
            moved = words_in.get(port, 0)
            if moved and moved % need:
                diags.append(Diagnostic(
                    len(program) - 1, SEVERITY_ERROR,
                    f"input FIFO{port} receives {moved} words but the RAC "
                    f"consumes multiples of {need}: the last operation "
                    "will starve",
                ))
        ops = (words_in.get(0, 0) // rac.items_in[0]) if rac.items_in[0] else 0
        for port, produce in enumerate(rac.items_out):
            drained = words_out.get(port, 0)
            expected = ops * produce
            if drained > expected:
                diags.append(Diagnostic(
                    len(program) - 1, SEVERITY_ERROR,
                    f"output FIFO{port} is drained of {drained} words but "
                    f"the program only produces {expected}: mvfc will hang",
                ))
            elif drained < expected:
                diags.append(Diagnostic(
                    len(program) - 1, SEVERITY_WARNING,
                    f"output FIFO{port} produces {expected} words but only "
                    f"{drained} are drained: residue left in the FIFO",
                ))
        if words_in and not exec_seen and not rac.autostart:
            diags.append(Diagnostic(
                len(program) - 1, SEVERITY_ERROR,
                "data is pushed but the RAC is never started "
                "(no exec/execs and autostart is off)",
            ))
        depth = rac.ports.fifo_depth
        if not rac.autostart:
            for port, moved in words_in.items():
                if moved > depth:
                    diags.append(Diagnostic(
                        len(program) - 1, SEVERITY_ERROR,
                        f"{moved} words pushed to input FIFO{port} before "
                        f"any consumption with depth {depth}: the transfer "
                        "engine will deadlock",
                    ))
    return diags


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    return any(d.severity == SEVERITY_ERROR for d in diagnostics)


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    if not diagnostics:
        return "clean: no findings"
    return "\n".join(str(d) for d in diagnostics)
