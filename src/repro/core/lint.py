"""Static microcode checker -- compatibility shim.

The linear scan that used to live here grew into a real static
analyzer: :mod:`repro.verify` builds a control-flow graph over the full
ISA and runs an interval abstract interpreter over it (see
``docs/ANALYSIS.md``).  This module keeps the original, widely-used API
-- :func:`lint_program` returning :class:`Diagnostic` records -- as a
thin adapter over :func:`repro.verify.engine.verify_program`.

New code should call the verifier directly: it exposes stable
diagnostic codes (``OU001`` ...), suppression, JSON rendering, bank
window contracts and the worst-case step bound, none of which fit this
legacy surface.  Calling :func:`lint_program` emits a
:class:`DeprecationWarning` pointing at the replacement.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..rac.base import RAC
from .isa import OuInstruction

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to an instruction index."""

    index: int
    severity: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] instr {self.index}: {self.message}"


def lint_program(
    program: Sequence[OuInstruction],
    rac: Optional[RAC] = None,
    configured_banks: Optional[Set[int]] = None,
) -> List[Diagnostic]:
    """Check a microcode program; returns diagnostics (empty = clean).

    Adapter over :func:`repro.verify.engine.verify_program`: findings
    are translated to the legacy :class:`Diagnostic` shape, with
    whole-program findings anchored to the last instruction (the old
    scan's convention).
    """
    from ..verify.engine import verify_program

    warnings.warn(
        "repro.core.lint.lint_program is deprecated; call "
        "repro.verify.verify_program for diagnostic codes, "
        "suppression and JSON output",
        DeprecationWarning,
        stacklevel=2,
    )
    report = verify_program(
        program, rac=rac, configured_banks=configured_banks
    )
    last = max(0, len(list(program)) - 1)
    return [
        Diagnostic(
            index=finding.index if finding.index is not None else last,
            severity=finding.severity,
            message=finding.message,
        )
        for finding in report.findings
    ]


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    return any(d.severity == SEVERITY_ERROR for d in diagnostics)


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    if not diagnostics:
        return "clean: no findings"
    return "\n".join(str(d) for d in diagnostics)
