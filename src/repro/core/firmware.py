"""Firmware planning: canonical microcode for any streaming RAC.

Every accelerated call follows the same shape — stream each input
port's words in, start, drain each output port — and getting the word
counts wrong is the main way to hang an OCP.  :func:`plan_streaming_run`
derives the whole program from the accelerator's own port
specification, assigns a canonical bank layout, and runs the static
verifier over the result before returning it, so drivers and the user
library never hand-count words.

Canonical bank layout:

* bank 0 — microcode (the controller's fetch convention),
* banks 1..k — input port 0..k-1 data,
* banks k+1..k+m — output port 0..m-1 data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..rac.base import StreamingRAC
from ..sim.errors import ConfigurationError
from ..verify.engine import verify_program
from .isa import MAX_OFFSET, N_BANKS
from .program import OuProgram


@dataclass
class FirmwarePlan:
    """A ready-to-run program plus its bank/buffer contract.

    Attributes
    ----------
    program:
        The microcode (ends with ``eop``).
    input_banks / output_banks:
        Bank number assigned to each RAC port.
    words_in / words_out:
        Total words the caller must place / will receive per port
        (= operations x items per operation).
    """

    program: OuProgram
    input_banks: List[int]
    output_banks: List[int]
    words_in: List[int]
    words_out: List[int]
    operations: int

    @property
    def banks_used(self) -> List[int]:
        return [0] + self.input_banks + self.output_banks

    def bank_map(self, addresses: Dict[int, int]) -> Dict[int, int]:
        """Validate a caller-supplied ``bank -> address`` map."""
        missing = [b for b in self.banks_used if b not in addresses]
        if missing:
            raise ConfigurationError(
                f"plan needs addresses for banks {missing}"
            )
        return {bank: addresses[bank] for bank in self.banks_used}


def plan_streaming_run(
    rac: StreamingRAC,
    operations: int = 1,
    chunk: int = 64,
    blocking_exec: bool = False,
) -> FirmwarePlan:
    """Generate the canonical program for ``operations`` back-to-back runs.

    Per operation: configuration ports (all input ports except 0) are
    streamed first, then the main data port, then ``execs`` (or a
    blocking ``exec``), then every output port is drained.  The result
    is statically checked against the RAC before being returned.

    Raises
    ------
    ConfigurationError
        If the plan cannot fit (too many ports for the bank file, data
        volume beyond the 14-bit bank window) or fails lint.
    """
    if operations < 1:
        raise ConfigurationError("need at least one operation")
    if blocking_exec and any(
        items > rac.ports.fifo_depth for items in rac.items_out
    ):
        raise ConfigurationError(
            "blocking exec would deadlock: an output block exceeds the "
            "FIFO depth, so end_op cannot assert before mvfc drains"
        )
    n_in = len(rac.items_in)
    n_out = len(rac.items_out)
    if 1 + n_in + n_out > N_BANKS:
        raise ConfigurationError(
            f"RAC needs {n_in}+{n_out} data banks; only {N_BANKS - 1} exist"
        )
    input_banks = list(range(1, 1 + n_in))
    output_banks = list(range(1 + n_in, 1 + n_in + n_out))
    for port, items in enumerate(rac.items_in):
        if operations * items - 1 > MAX_OFFSET:
            raise ConfigurationError(
                f"input port {port}: {operations} x {items} words exceed "
                f"the {MAX_OFFSET + 1}-word bank window"
            )
    for port, items in enumerate(rac.items_out):
        if operations * items - 1 > MAX_OFFSET:
            raise ConfigurationError(
                f"output port {port}: volume exceeds the bank window"
            )

    program = OuProgram()
    for op_index in range(operations):
        # configuration ports first (taps, weights, ...), data port last
        for port in range(n_in - 1, -1, -1):
            items = rac.items_in[port]
            program.stream_to(
                input_banks[port], items, fifo=port, chunk=chunk,
                base_offset=op_index * items,
            )
        if blocking_exec:
            program.exec_()
        else:
            program.execs()
        for port in range(n_out):
            items = rac.items_out[port]
            program.stream_from(
                output_banks[port], items, fifo=port, chunk=chunk,
                base_offset=op_index * items,
            )
    program.eop()

    report = verify_program(
        program.instructions, rac=rac,
        configured_banks=set(input_banks + output_banks),
    )
    if not report.clean:
        raise ConfigurationError(
            "generated firmware failed verification:\n" + report.render()
        )
    return FirmwarePlan(
        program=program,
        input_banks=input_banks,
        output_banks=output_banks,
        words_in=[operations * items for items in rac.items_in],
        words_out=[operations * items for items in rac.items_out],
        operations=operations,
    )
