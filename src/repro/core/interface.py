"""The Ouessant interface (Figure 3).

"OCP interface is designed to translate Ouessant internal addressing
mechanism to the SoC communication system."  It has two halves:

* the **bus-independent** part: the ten configuration registers, the
  ``(bank, offset) -> address`` translation (bank base + offset), and
  the done/interrupt signalling;
* the **bus-dependent** part: the slave FSM (register access) and the
  master FSM (burst data transfers), realized here by speaking the
  transaction protocol of :class:`repro.bus.bus.SystemBus`, whose
  pluggable :class:`~repro.bus.protocol.BusProtocol` plays the role of
  the per-bus adapter.

The interface is also where write snooping is reported (Section IV's
cache-coherency remark): any attached
:class:`~repro.mem.cache.Cache` is informed of master writes.
"""

from __future__ import annotations

from typing import List, Optional

from ..bus.bus import SystemBus
from ..bus.irq import IRQLine
from ..bus.types import AccessKind, BusRequest, BusSlave, BusTransfer
from ..mem.cache import Cache
from ..sim.errors import ControllerError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from .isa import MAX_OFFSET
from .perf import PERF_WINDOW_BYTES, PerfCounterBlock
from .registers import N_REGISTERS, OuessantRegisters


class OuessantInterface(Component, BusSlave):
    """Register file + address translation + bus master engine.

    Parameters
    ----------
    bus:
        The system bus; the interface is both a slave on it (registers)
        and a master (microcode-driven bursts).
    master_priority:
        Bus priority of data transfers (the CPU defaults to 0; giving
        the OCP 1 mirrors the AMBA2 setup where the processor wins).
    """

    #: register file responds with no wait state
    access_latency = 0

    def __init__(
        self,
        name: str = "ocp.if",
        bus: Optional[SystemBus] = None,
        master_priority: int = 1,
    ) -> None:
        Component.__init__(self, name)
        self.bus = bus
        self.master_priority = master_priority
        self.registers = OuessantRegisters()
        self.irq = IRQLine(f"{name}.irq")
        self.snooped_caches: List[Cache] = []
        self.stats = Stats()
        #: performance-counter block, bound by the controller; reads
        #: past the configuration registers return 0 until then
        self.perf: Optional[PerfCounterBlock] = None

    def next_activity(self):
        # the interface has no clocked behaviour of its own: registers
        # are written by bus transfers, signalling happens inside the
        # controller's tick -- always safe to skip
        return None

    # -- slave side (configuration registers + perf counters) ---------------
    def read_word(self, offset: int) -> int:
        if 0 <= offset < 4 * N_REGISTERS:
            return self.registers.read(offset)
        if self.perf is not None and offset < PERF_WINDOW_BYTES:
            return self.perf.read_word(offset)
        return 0

    def write_word(self, offset: int, value: int) -> None:
        # the perf counters are read-only: writes past the
        # configuration registers are ignored, as in hardware
        if 0 <= offset < 4 * N_REGISTERS:
            self.registers.write(offset, value)

    @property
    def window_bytes(self) -> int:
        """Size of the slave register window (config + perf counters)."""
        return PERF_WINDOW_BYTES

    # -- address translation ------------------------------------------------
    def translate(self, bank: int, word_offset: int, words: int = 1) -> int:
        """Resolve ``(bank, offset)`` to an absolute byte address.

        The transfer must stay inside the 14-bit offset window of the
        bank (the hardware adder width of Figure 3).
        """
        if word_offset < 0 or word_offset + words - 1 > MAX_OFFSET:
            raise ControllerError(
                f"transfer [{word_offset}+{words}] exceeds the "
                f"{MAX_OFFSET + 1}-word bank window"
            )
        base = self.registers.bank_base(bank)
        return base + 4 * word_offset

    # -- master side (burst engine) ---------------------------------------
    def submit_read(
        self,
        bank: int,
        word_offset: int,
        words: int,
        waiter: Optional[Component] = None,
    ) -> BusTransfer:
        """Issue a burst read of ``words`` from a bank.

        ``waiter`` is the component blocked on the transfer's
        completion; the bus pokes it (re-polls its quiescence claim)
        when the transfer finishes.
        """
        if self.bus is None:
            raise ControllerError(f"{self.name} has no bus attached")
        address = self.translate(bank, word_offset, words)
        self.stats.incr("master_reads")
        self.stats.incr("words_read", words)
        return self.bus.submit(
            BusRequest(
                master=self.name,
                kind=AccessKind.READ,
                address=address,
                burst=words,
                priority=self.master_priority,
            ),
            waiter=waiter,
        )

    def submit_write(
        self,
        bank: int,
        word_offset: int,
        data: List[int],
        waiter: Optional[Component] = None,
    ) -> BusTransfer:
        """Issue a burst write of ``data`` into a bank (with snooping)."""
        if self.bus is None:
            raise ControllerError(f"{self.name} has no bus attached")
        address = self.translate(bank, word_offset, len(data))
        for cache in self.snooped_caches:
            cache.snoop_write_burst(address, len(data))
        self.stats.incr("master_writes")
        self.stats.incr("words_written", len(data))
        return self.bus.submit(
            BusRequest(
                master=self.name,
                kind=AccessKind.WRITE,
                address=address,
                burst=len(data),
                data=list(data),
                priority=self.master_priority,
            ),
            waiter=waiter,
        )

    # -- done / interrupt signalling ----------------------------------------
    def signal_done(self) -> None:
        """``eop`` semantics: set D, raise the GPP interrupt if IE."""
        self.registers.set_done()
        if self.registers.interrupt_enabled:
            self.irq.assert_()
        self.trace_event("done", interrupt=self.registers.interrupt_enabled)
        # observers polling D without interrupts (standalone straps,
        # register-poll drivers) sleep on this flag: re-poll them
        self.wake_watchers()

    def signal_irq(self) -> None:
        """Extension ``irq`` instruction: interrupt without ending."""
        if self.registers.interrupt_enabled:
            self.irq.assert_()

    def signal_error(self, code: int) -> None:
        """Controller trap: latch E + code, set D, interrupt if IE.

        D is set alongside E so software waiting for completion (poll
        or IRQ) wakes up and can read the error status, instead of
        hanging on a run that will never finish normally.
        """
        self.registers.set_error(code)
        self.registers.set_done()
        if self.registers.interrupt_enabled:
            self.irq.assert_()
        self.stats.incr("errors")
        self.trace_event(
            "error",
            code=code,
            name=self.registers.error_name,
            interrupt=self.registers.interrupt_enabled,
        )
        self.wake_watchers()

    def attach_snooped_cache(self, cache: Cache) -> None:
        self.snooped_caches.append(cache)

    def reset(self) -> None:
        self.registers.reset()
        self.irq.clear()
        self.stats = Stats()
