"""OCP performance-counter registers.

The paper's evaluation is an attribution argument (Fig. 4: which
cycles go to transfer, which to computation, which to control); this
module gives the OCP the hardware counters that make the same
measurement possible *from software*, without a simulator trace.

Six read-only 32-bit counters sit in the slave register window
directly after the ten configuration registers
(:data:`~repro.core.registers.N_REGISTERS`):

========  ======================  =======================================
offset    name                    meaning
========  ======================  =======================================
``0x28``  ``PERF_BUSY``           cycles the controller FSM was in any
                                  non-idle state since start
``0x2C``  ``PERF_XFER``           cycles in ``xfer_to`` + ``xfer_from``
``0x30``  ``PERF_EXECW``          cycles in ``exec_wait``
``0x34``  ``PERF_STALL``          transfer cycles lost to FIFO stalls
                                  (overlaps ``PERF_XFER``)
``0x38``  ``PERF_FIFO_IN_HW``     input-FIFO occupancy high-water mark,
                                  in atoms
``0x3C``  ``PERF_FIFO_OUT_HW``    output-FIFO high-water mark, in atoms
========  ======================  =======================================

All six are cleared when ``S`` is set (run start), so one completed run
leaves its own attribution behind; reads are side-effect free.  The
window occupies ``4 * N_PERF_REGISTERS`` bytes; ``soclint`` warns
(``OU113``) when an OCP's bus window truncates it.

Implementation note: the counters are *views* over the controller's
cumulative :class:`~repro.sim.tracing.Stats` (snapshot-at-start
baselines), because the profiler contract requires the cumulative
statistics to survive across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .registers import N_REGISTERS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .controller import OuessantController

#: word indices of the counters, relative to the start of the window
PERF_BUSY = 0
PERF_XFER = 1
PERF_EXECW = 2
PERF_STALL = 3
PERF_FIFO_IN_HW = 4
PERF_FIFO_OUT_HW = 5

N_PERF_REGISTERS = 6

#: byte offset of the first counter inside the slave window
PERF_BASE = 4 * N_REGISTERS

#: byte size of the full slave window: config registers + counters
PERF_WINDOW_BYTES = 4 * (N_REGISTERS + N_PERF_REGISTERS)

#: human-readable counter names, by word index
PERF_NAMES = (
    "busy", "xfer", "exec_wait", "fifo_stall",
    "fifo_in_high_water", "fifo_out_high_water",
)

_MASK32 = 0xFFFFFFFF


class PerfCounterBlock:
    """The six hardware counters of one OCP.

    Bound by the controller at construction; the interface routes
    slave reads in ``[PERF_BASE, PERF_WINDOW_BYTES)`` here.
    """

    def __init__(self, controller: "OuessantController") -> None:
        self._controller = controller
        self._baseline: Dict[str, int] = {}

    def clear(self) -> None:
        """Run start: re-baseline every counter at the current totals."""
        stats = self._controller.stats
        self._baseline = {
            key: value
            for key, value in stats.items()
            if key.startswith("cycles.")
        }
        for fifo in self._controller.fifos_in:
            fifo.clear_high_water()
        for fifo in self._controller.fifos_out:
            fifo.clear_high_water()

    def _delta(self, key: str) -> int:
        return self._controller.stats.get(key) - self._baseline.get(key, 0)

    def value(self, index: int) -> int:
        """Current value of counter ``index`` (word index, unmasked)."""
        ctrl = self._controller
        # under vectorized dispatch the controller's per-state cycle
        # counters are reconciled lazily; settle them before sampling
        ctrl.sync_skips()
        if index == PERF_BUSY:
            return sum(
                self._delta(key)
                for key, _ in ctrl.stats.items()
                if key.startswith("cycles.") and key != "cycles.fifo_stall"
            )
        if index == PERF_XFER:
            return self._delta("cycles.xfer_to") + self._delta(
                "cycles.xfer_from"
            )
        if index == PERF_EXECW:
            return self._delta("cycles.exec_wait")
        if index == PERF_STALL:
            return self._delta("cycles.fifo_stall")
        if index == PERF_FIFO_IN_HW:
            return max(
                (f.high_water_atoms for f in ctrl.fifos_in), default=0
            )
        if index == PERF_FIFO_OUT_HW:
            return max(
                (f.high_water_atoms for f in ctrl.fifos_out), default=0
            )
        return 0

    def read_word(self, offset: int) -> int:
        """Slave read at byte ``offset`` within the register window."""
        if offset % 4 or not PERF_BASE <= offset < PERF_WINDOW_BYTES:
            return 0
        return self.value((offset - PERF_BASE) // 4) & _MASK32

    def snapshot(self) -> Dict[str, int]:
        """All counters by name (for reports and tests)."""
        return {
            name: self.value(index) & _MASK32
            for index, name in enumerate(PERF_NAMES)
        }
