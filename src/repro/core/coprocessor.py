"""OCP assembly: interface + controller + FIFO fabric + RAC (Figure 1).

"The resulting global Ouessant architecture is thus modular, and
provides independent interfaces between each part."  This module is
where the parts meet: :class:`OuessantCoprocessor` builds the FIFO
fabric demanded by the RAC's port specification, wires the controller
to the interface, and attaches the whole as one slave window on the
system bus.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..bus.bus import SystemBus
from ..bus.memmap import Region
from ..rac.base import RAC
from ..rac.fifo import FIFO
from ..sim.errors import ConfigurationError, ReconfigurationError
from ..sim.kernel import Component, Simulator
from ..utils import bits
from .controller import OuessantController
from .interface import OuessantInterface


class OuessantCoprocessor:
    """One complete OCP around a user-supplied RAC.

    Parameters
    ----------
    rac:
        The accelerator.  Its :class:`~repro.rac.base.RACPortSpec`
        dictates how many FIFOs are built and their widths.
    bus:
        System bus for both the slave window and master transfers.
    prefetch / ibuf_size:
        Controller microcode-fetch policy (see
        :class:`~repro.core.controller.OuessantController`).
    watchdog_cycles:
        Forwarded to the controller: abort a hung ``exec`` after this
        many cycles (0 disables).
    fifo_factory:
        Callable with the signature of :class:`~repro.rac.fifo.FIFO`
        used to build the fabric; fault harnesses substitute
        :class:`~repro.faults.injectors.FaultyFIFO` here.
    """

    #: slave window size (registers padded to a power of two)
    WINDOW_BYTES = 64

    def __init__(
        self,
        rac: RAC,
        name: str = "ocp",
        bus: Optional[SystemBus] = None,
        prefetch: bool = True,
        ibuf_size: int = 128,
        master_priority: int = 1,
        watchdog_cycles: int = 0,
        fifo_factory: Optional[Callable[..., FIFO]] = None,
    ) -> None:
        self.name = name
        self.bus = bus
        self._fifo_factory = fifo_factory or FIFO
        self.interface = OuessantInterface(
            f"{name}.if", bus=bus, master_priority=master_priority
        )
        self.controller = OuessantController(
            f"{name}.ctrl",
            interface=self.interface,
            prefetch=prefetch,
            ibuf_size=ibuf_size,
            watchdog_cycles=watchdog_cycles,
        )
        self.rac: Optional[RAC] = None
        self.fifos_in: List[FIFO] = []
        self.fifos_out: List[FIFO] = []
        self._sim: Optional[Simulator] = None
        self._fifo_generation = 0
        self._install_rac(rac)

    # -- construction ----------------------------------------------------
    def _build_fifos(self, rac: RAC) -> "tuple[List[FIFO], List[FIFO]]":
        depth = rac.ports.fifo_depth
        generation = self._fifo_generation
        suffix = f".g{generation}" if generation else ""
        fifos_in = [
            self._fifo_factory(
                f"{self.name}.fin{i}{suffix}",
                width_push=32,
                width_pop=width,
                depth=depth,
            )
            for i, width in enumerate(rac.ports.input_widths)
        ]
        fifos_out = [
            self._fifo_factory(
                f"{self.name}.fout{i}{suffix}",
                width_push=width,
                width_pop=32,
                depth=depth,
            )
            for i, width in enumerate(rac.ports.output_widths)
        ]
        return fifos_in, fifos_out

    def _install_rac(self, rac: RAC) -> None:
        fifos_in, fifos_out = self._build_fifos(rac)
        rac.bind(fifos_in, fifos_out)
        self.controller.bind_fabric(fifos_in, fifos_out, rac)
        self.rac = rac
        self.fifos_in = fifos_in
        self.fifos_out = fifos_out

    def components(self) -> List[Component]:
        """Everything that must tick, in a sensible order."""
        parts: List[Component] = [self.interface, self.controller]
        parts.extend(self.fifos_in)
        parts.extend(self.fifos_out)
        if self.rac is not None:
            parts.append(self.rac)
        return parts

    def attach(self, sim: Simulator, bus: SystemBus, base: int) -> Region:
        """Register with a simulator and map the slave window."""
        if base % self.WINDOW_BYTES:
            raise ConfigurationError(
                f"OCP base {base:#x} must be {self.WINDOW_BYTES}-byte aligned"
            )
        self.bus = bus
        self.interface.bus = bus
        region = bus.attach_slave(
            self.name, base, self.WINDOW_BYTES, self.interface
        )
        sim.add_all(self.components())
        self._sim = sim
        return region

    # -- convenience -----------------------------------------------------
    @property
    def irq(self):
        return self.interface.irq

    @property
    def registers(self):
        return self.interface.registers

    @property
    def done(self) -> bool:
        return self.registers.done

    def load_program(self, memory_write, bank0_base: int, words: List[int]) -> None:
        """Write microcode at ``bank0_base`` using ``memory_write(addr, words)``.

        Thin helper used by drivers; kept here so the bank-0 convention
        lives next to the hardware that assumes it.
        """
        memory_write(bank0_base, [w & bits.WORD_MASK for w in words])

    def soft_reset(self) -> None:
        """Recover from a hung or trapped run without reconfiguring.

        Clears S (aborting any in-flight run via the controller's stop
        hook), empties the FIFO fabric and clears the RAC handshake.
        Bank bases and PROG_SIZE are preserved so a driver can retry
        the run immediately.
        """
        self.registers.write(0x00, 0)  # clear S -> controller aborts
        for fifo in self.fifos_in + self.fifos_out:
            fifo.reset()
        if self.rac is not None:
            self.rac.reset()

    # -- dynamic partial reconfiguration hook ------------------------------
    def swap_rac(self, new_rac: RAC) -> RAC:
        """Replace the accelerator (the DPR manager calls this).

        The controller must be idle or halted; the FIFO fabric is
        rebuilt to the new RAC's port specification (fresh, empty FIFOs
        -- exactly what a partial bitstream swap gives you).

        Returns the previous RAC.
        """
        if self.controller.running:
            raise ReconfigurationError(
                "cannot swap the RAC while the controller is running"
            )
        old_rac = self.rac
        if self._sim is not None:
            for fifo in self.fifos_in + self.fifos_out:
                self._sim.remove(fifo)
            if old_rac is not None:
                self._sim.remove(old_rac)
        self._fifo_generation += 1
        self._install_rac(new_rac)
        if self._sim is not None:
            for fifo in self.fifos_in + self.fifos_out:
                self._sim.add(fifo)
            self._sim.add(new_rac)
        return old_rac
