"""Programmatic microcode construction.

:class:`OuProgram` is the Python-level twin of the microcode assembler:
drivers and examples build programs by calling methods instead of
formatting assembly text.  The canonical programs of the paper (the DFT
microcode of Figure 4, and the analogous IDCT program) are provided as
constructors so every benchmark runs exactly the published microcode.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.errors import ConfigurationError
from .assembler import disassemble
from .encoding import encode
from .isa import FIFODirection, MAX_TRANSFER_WORDS, OuInstruction, OuOp


class OuProgram:
    """A microcode program under construction.

    Every mutator returns ``self`` so programs can be written fluently::

        program = (OuProgram()
                   .mvtc(bank=1, offset=0, count=64)
                   .execs()
                   .mvfc(bank=2, offset=0, count=64)
                   .eop())
    """

    def __init__(self) -> None:
        self._instructions: List[OuInstruction] = []

    @classmethod
    def from_instructions(
        cls, instructions: List[OuInstruction]
    ) -> "OuProgram":
        """Wrap already-built instructions (used by the code generator)."""
        program = cls()
        program._instructions = list(instructions)
        return program

    # -- base instruction set ---------------------------------------------
    def mvtc(
        self, bank: int, offset: int, count: int, fifo: int = 0
    ) -> "OuProgram":
        """Burst ``count`` words from ``bank[offset]`` into FIFO ``fifo``."""
        self._instructions.append(
            OuInstruction(OuOp.MVTC, bank=bank, offset=offset,
                          count=count, fifo=fifo)
        )
        return self

    def mvfc(
        self, bank: int, offset: int, count: int, fifo: int = 0
    ) -> "OuProgram":
        """Burst ``count`` words from FIFO ``fifo`` into ``bank[offset]``."""
        self._instructions.append(
            OuInstruction(OuOp.MVFC, bank=bank, offset=offset,
                          count=count, fifo=fifo)
        )
        return self

    def exec_(self) -> "OuProgram":
        """Start the accelerator and wait for its ``end_op``."""
        self._instructions.append(OuInstruction(OuOp.EXEC))
        return self

    def execs(self) -> "OuProgram":
        """Start the accelerator and continue immediately (Figure 4)."""
        self._instructions.append(OuInstruction(OuOp.EXECS))
        return self

    def eop(self) -> "OuProgram":
        """End of program: set D, interrupt the GPP if IE, halt."""
        self._instructions.append(OuInstruction(OuOp.EOP))
        return self

    # -- extension set ----------------------------------------------------
    def nop(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.NOP))
        return self

    def wait(self, cycles: int) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.WAIT, imm=cycles))
        return self

    def waitf(
        self, direction: str, fifo: int, level: int
    ) -> "OuProgram":
        """Wait until a FIFO level condition holds.

        ``direction='in'``: wait until input FIFO ``fifo`` has at least
        ``level`` free push words; ``'out'``: wait until output FIFO
        ``fifo`` holds at least ``level`` words.
        """
        if direction not in ("in", "out"):
            raise ConfigurationError("waitf direction must be 'in' or 'out'")
        self._instructions.append(
            OuInstruction(
                OuOp.WAITF,
                direction=(FIFODirection.INPUT if direction == "in"
                           else FIFODirection.OUTPUT),
                fifo=fifo,
                count=level,
            )
        )
        return self

    def jmp(self, target: int) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.JMP, imm=target))
        return self

    def loop(self, count: int) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.LOOP, imm=count))
        return self

    def endl(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.ENDL))
        return self

    def mvtcx(
        self, bank: int, offset: int, count: int, fifo: int = 0
    ) -> "OuProgram":
        self._instructions.append(
            OuInstruction(OuOp.MVTCX, bank=bank, offset=offset,
                          count=count, fifo=fifo)
        )
        return self

    def mvfcx(
        self, bank: int, offset: int, count: int, fifo: int = 0
    ) -> "OuProgram":
        self._instructions.append(
            OuInstruction(OuOp.MVFCX, bank=bank, offset=offset,
                          count=count, fifo=fifo)
        )
        return self

    def addofr(self, delta: int) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.ADDOFR, imm=delta))
        return self

    def clrofr(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.CLROFR))
        return self

    def irq(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.IRQ))
        return self

    def sync(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.SYNC))
        return self

    def halt(self) -> "OuProgram":
        self._instructions.append(OuInstruction(OuOp.HALT))
        return self

    # -- bulk helpers ----------------------------------------------------
    def stream_to(
        self, bank: int, total_words: int, fifo: int = 0,
        chunk: int = 64, base_offset: int = 0,
    ) -> "OuProgram":
        """Emit the Figure 4 pattern: chunked ``mvtc`` over a block."""
        self._chunked(OuOp.MVTC, bank, total_words, fifo, chunk, base_offset)
        return self

    def stream_from(
        self, bank: int, total_words: int, fifo: int = 0,
        chunk: int = 64, base_offset: int = 0,
    ) -> "OuProgram":
        """Emit the Figure 4 pattern: chunked ``mvfc`` over a block."""
        self._chunked(OuOp.MVFC, bank, total_words, fifo, chunk, base_offset)
        return self

    def _chunked(
        self, op: OuOp, bank: int, total: int, fifo: int,
        chunk: int, base_offset: int,
    ) -> None:
        if total < 1:
            raise ConfigurationError("nothing to transfer")
        if not 1 <= chunk <= MAX_TRANSFER_WORDS:
            raise ConfigurationError(
                f"chunk must be in [1, {MAX_TRANSFER_WORDS}]"
            )
        offset = base_offset
        remaining = total
        while remaining > 0:
            take = min(chunk, remaining)
            self._instructions.append(
                OuInstruction(op, bank=bank, offset=offset,
                              count=take, fifo=fifo)
            )
            offset += take
            remaining -= take

    # -- composition -------------------------------------------------------
    def extend(self, other: "OuProgram") -> "OuProgram":
        """Append another program's instructions (batching composition).

        The other program is copied instruction by instruction; callers
        concatenating *terminated* programs (trailing ``eop``/``halt``)
        should go through :func:`repro.core.codegen.concat_programs`,
        which strips the inner terminators and rejects programs whose
        control flow would break under relocation.
        """
        self._instructions.extend(other.instructions)
        return self

    # -- analysis ----------------------------------------------------------
    def verify(self, rac=None, configured_banks=None, bank_windows=None,
               step_budget: Optional[int] = None, **kwargs):
        """Run the static verifier over this program.

        Convenience front-end to
        :func:`repro.verify.engine.verify_program`; returns its
        :class:`~repro.verify.diagnostics.VerifyReport`.  A ``None``
        ``step_budget`` keeps the engine's default (the reference
        model's step limit).
        """
        from ..verify.engine import verify_program

        if step_budget is not None:
            kwargs["step_budget"] = step_budget
        return verify_program(
            self._instructions, rac=rac,
            configured_banks=configured_banks,
            bank_windows=bank_windows, **kwargs,
        )

    # -- output ------------------------------------------------------------
    @property
    def instructions(self) -> List[OuInstruction]:
        return list(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def words(self) -> List[int]:
        """Encode into 32-bit instruction words."""
        return [encode(instr) for instr in self._instructions]

    def listing(self) -> str:
        """Disassembly listing (Figure 4 style)."""
        return disassemble(self.words())


# ---------------------------------------------------------------------------
# canonical programs
# ---------------------------------------------------------------------------

def figure4_program(
    n_points: int = 256,
    in_bank: int = 1,
    out_bank: int = 2,
    chunk: int = 64,
) -> OuProgram:
    """The paper's Figure 4 microcode, parameterized by DFT size.

    Eight ``mvtc BANK1,k*64,DMA64,FIFO0`` transfers (for 256 points,
    two words per complex sample), ``execs``, eight matching ``mvfc``
    to BANK2, then ``eop`` -- byte for byte the published program when
    called with the defaults.
    """
    total_words = 2 * n_points
    return (
        OuProgram()
        .stream_to(in_bank, total_words, fifo=0, chunk=chunk)
        .execs()
        .stream_from(out_bank, total_words, fifo=0, chunk=chunk)
        .eop()
    )


def idct_program(
    n_blocks: int = 1, in_bank: int = 1, out_bank: int = 2, chunk: int = 64
) -> OuProgram:
    """Microcode processing ``n_blocks`` 8x8 blocks through the IDCT RAC."""
    program = OuProgram()
    for block in range(n_blocks):
        base = 64 * block
        program.stream_to(in_bank, 64, fifo=0, chunk=chunk, base_offset=base)
        program.execs()
        program.stream_from(out_bank, 64, fifo=0, chunk=chunk, base_offset=base)
    return program.eop()


def figure4_looped_program(
    n_points: int = 256,
    in_bank: int = 1,
    out_bank: int = 2,
    chunk: int = 64,
) -> OuProgram:
    """Figure 4 rewritten with the extension ISA's hardware loop.

    Demonstrates the announced instruction-set evolution: the 18-word
    unrolled program collapses to 12 words regardless of DFT size.
    """
    total_words = 2 * n_points
    if total_words % chunk:
        raise ConfigurationError("loop form needs total divisible by chunk")
    n_chunks = total_words // chunk
    return (
        OuProgram()
        .clrofr()
        .loop(n_chunks)
        .mvtcx(in_bank, 0, chunk, fifo=0)
        .addofr(chunk)
        .endl()
        .execs()
        .clrofr()
        .loop(n_chunks)
        .mvfcx(out_bank, 0, chunk, fifo=0)
        .addofr(chunk)
        .endl()
        .eop()
    )
