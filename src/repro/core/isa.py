"""The Ouessant instruction set.

Section III-D: "Operation code is stored on 5 bits, which allows up to
32 different instructions.  Currently, only 4 instructions are
implemented": data transfers (``mvtc``, ``mvfc``) and execution
management (``exec``, ``eop``).  Figure 4 additionally uses ``execs``
(start-without-wait), and the paper announces that "the instruction set
is also being worked on, to provide higher flexibility".

This module implements the base set *and* that announced extension set
(loops, jumps, waits, indexed transfers, explicit interrupt), clearly
separated so the base-paper behaviour can be evaluated alone:

================= ======= ==========================================
base              mvtc     burst memory -> coprocessor FIFO
                  mvfc     burst coprocessor FIFO -> memory
                  exec     start accelerator, wait for end_op
                  execs    start accelerator, continue
                  eop      set D, raise IRQ (if IE), halt
extension         nop      do nothing for a cycle
                  wait     wait a fixed number of cycles
                  waitf    wait on a FIFO level condition
                  jmp      jump to an instruction index
                  loop     begin a hardware loop (count iterations)
                  endl     close the innermost (single-level) loop
                  mvtcx    mvtc with offset += OFR (offset register)
                  mvfcx    mvfc with offset += OFR
                  addofr   OFR += immediate (word offset delta)
                  clrofr   OFR = 0
                  irq      raise the GPP interrupt without halting
                  sync     barrier: all issued transfers completed
                  halt     stop without setting D or interrupting
================= ======= ==========================================

Instruction word layout (bit 31 on the left)::

    transfers   op(5) | bank(3) | offset(14) | count-1(7) | fifo(3)
    wait        op(5) | ------- imm20 in bits [19:0] -------
    waitf       op(5) | dir(1) | fifo(3) | count(7) | unused(16)
    jmp         op(5) | target(14) in bits [13:0]
    loop        op(5) | count(12) in bits [11:0]
    addofr      op(5) | delta(14) in bits [13:0]
    others      op(5) | unused
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: transfers move at most this many words (count-1 stored on 7 bits)
MAX_TRANSFER_WORDS = 128
#: offsets are 14-bit word offsets inside a bank (Figure 3)
OFFSET_BITS = 14
#: 8 bank registers (Figure 3: bank 0 .. bank 7)
N_BANKS = 8
#: FIFO selector field width
N_FIFO_SLOTS = 8

MAX_OFFSET = (1 << OFFSET_BITS) - 1
MAX_WAIT = (1 << 20) - 1
MAX_JUMP = (1 << 14) - 1
MAX_LOOP = (1 << 12) - 1


class OuOp(enum.IntEnum):
    """Ouessant opcodes (5-bit space)."""

    EOP = 0x00
    MVTC = 0x01
    MVFC = 0x02
    EXEC = 0x03
    EXECS = 0x04
    # ---- extension set ----
    NOP = 0x05
    WAIT = 0x06
    WAITF = 0x07
    JMP = 0x08
    LOOP = 0x09
    ENDL = 0x0A
    MVTCX = 0x0B
    MVFCX = 0x0C
    ADDOFR = 0x0D
    CLROFR = 0x0E
    IRQ = 0x0F
    SYNC = 0x10
    HALT = 0x11


#: the four instructions of the published paper (plus execs, used by Fig. 4)
BASE_SET = {OuOp.MVTC, OuOp.MVFC, OuOp.EXEC, OuOp.EXECS, OuOp.EOP}

#: transfer opcodes moving data towards the coprocessor
TO_COPROCESSOR_OPS = {OuOp.MVTC, OuOp.MVTCX}
#: transfer opcodes moving data from the coprocessor
FROM_COPROCESSOR_OPS = {OuOp.MVFC, OuOp.MVFCX}
TRANSFER_OPS = TO_COPROCESSOR_OPS | FROM_COPROCESSOR_OPS
#: opcodes using the offset register
INDEXED_OPS = {OuOp.MVTCX, OuOp.MVFCX}
#: opcodes that redirect the program counter
CONTROL_FLOW_OPS = {OuOp.JMP, OuOp.LOOP, OuOp.ENDL}
#: opcodes that stop the controller
TERMINATOR_OPS = {OuOp.EOP, OuOp.HALT}


class FIFODirection(enum.Enum):
    """Which side of the FIFO fabric a ``waitf`` condition observes."""

    INPUT = 0
    OUTPUT = 1


@dataclass(frozen=True)
class OuInstruction:
    """One decoded Ouessant instruction.

    Fields are interpreted according to :attr:`op`:

    * transfers: ``bank``, ``offset`` (word offset), ``count`` (words),
      ``fifo`` (FIFO selector);
    * ``wait``: ``imm`` = cycles;
    * ``waitf``: ``fifo``, ``count`` (level threshold), ``direction``;
    * ``jmp``: ``imm`` = target instruction index;
    * ``loop``: ``imm`` = iteration count;
    * ``addofr``: ``imm`` = word-offset delta.
    """

    op: OuOp
    bank: int = 0
    offset: int = 0
    count: int = 1
    fifo: int = 0
    imm: int = 0
    direction: FIFODirection = FIFODirection.INPUT

    def is_transfer(self) -> bool:
        return self.op in TRANSFER_OPS

    def to_coprocessor(self) -> bool:
        return self.op in TO_COPROCESSOR_OPS

    def mnemonic(self) -> str:
        return self.op.name.lower()
