"""Functional (timing-free) reference executor for Ouessant microcode.

The cycle-accurate controller in :mod:`repro.core.controller` is the
implementation; this module is its *architectural specification*:
it executes a program purely functionally — word lists in, word lists
out — with no clock, no bus, no FIFO occupancy.  Differential tests
generate random programs and check that the simulated SoC leaves
memory in exactly the state the reference model predicts.

Modelled semantics:

* ``mvtc``/``mvtcx`` append words read from memory to the addressed
  input stream;
* the accelerator is a functional fold: whenever every input stream
  holds one operation's worth of words, they are consumed and the
  outputs appended to the output streams (matching the autostart
  behaviour of :class:`~repro.rac.base.StreamingRAC`);
* ``mvfc``/``mvfcx`` pop words from the addressed output stream into
  memory (blocking semantics: the words must eventually exist —
  the reference model fires pending accelerator operations first);
* ``loop``/``endl``, ``jmp``, ``addofr``/``clrofr`` manipulate control
  state exactly as the controller does;
* ``wait``/``waitf``/``sync``/``nop``/``irq`` have no functional
  effect; ``exec``/``execs`` likewise (execution is data-driven);
* ``eop``/``halt`` stop the program.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..rac.base import StreamingRAC
from ..sim.errors import ControllerError
from .isa import OuInstruction, OuOp


class ReferenceMemory:
    """Word-addressed memory view for the reference executor."""

    def __init__(self, words: Dict[int, int] | None = None) -> None:
        self._words: Dict[int, int] = dict(words or {})

    def read(self, address: int, count: int) -> List[int]:
        return [self._words.get(address + 4 * i, 0) for i in range(count)]

    def write(self, address: int, values: Sequence[int]) -> None:
        for i, value in enumerate(values):
            self._words[address + 4 * i] = value & 0xFFFFFFFF

    def snapshot(self) -> Dict[int, int]:
        return dict(self._words)


class ReferenceRAC:
    """Functional stand-in for a StreamingRAC.

    Parameters mirror the real accelerator: words per operation on each
    port plus the pure compute function.
    """

    def __init__(
        self,
        items_in: Sequence[int],
        items_out: Sequence[int],
        compute_fn: Callable[[List[List[int]]], List[List[int]]],
    ) -> None:
        self.items_in = list(items_in)
        self.items_out = list(items_out)
        self.compute_fn = compute_fn
        self.in_streams: List[List[int]] = [[] for _ in items_in]
        self.out_streams: List[List[int]] = [[] for _ in items_out]
        self.ops_fired = 0

    @classmethod
    def of(cls, rac: StreamingRAC) -> "ReferenceRAC":
        """Build the reference twin of a real streaming RAC."""
        return cls(rac.items_in, rac.items_out, rac.compute_fn)

    def push(self, fifo: int, words: Sequence[int]) -> None:
        self.in_streams[fifo].extend(words)
        self._fire_ready()

    def _fire_ready(self) -> None:
        while all(
            len(stream) >= need
            for stream, need in zip(self.in_streams, self.items_in)
        ):
            collected = []
            for port, need in enumerate(self.items_in):
                collected.append(self.in_streams[port][:need])
                del self.in_streams[port][:need]
            outputs = self.compute_fn(collected)
            for port, words in enumerate(outputs):
                self.out_streams[port].extend(words)
            self.ops_fired += 1

    def pop(self, fifo: int, count: int) -> List[int]:
        stream = self.out_streams[fifo]
        if len(stream) < count:
            raise ControllerError(
                f"reference model: mvfc needs {count} words on output "
                f"FIFO{fifo} but only {len(stream)} will ever arrive"
            )
        words = stream[:count]
        del stream[:count]
        return words


def execute_reference(
    program: Sequence[OuInstruction],
    banks: Dict[int, int],
    memory: ReferenceMemory,
    rac: ReferenceRAC,
    max_steps: int = 100_000,
) -> int:
    """Run microcode functionally; returns executed instruction count.

    ``memory`` is mutated in place (like the real system's RAM).
    """
    pc = 0
    ofr = 0
    loop_count = 0
    loop_body = 0
    loop_active = False
    executed = 0
    while executed < max_steps:
        if pc >= len(program):
            raise ControllerError("reference model: ran past the program")
        instr = program[pc]
        pc += 1
        executed += 1
        op = instr.op
        if op in (OuOp.MVTC, OuOp.MVTCX):
            offset = instr.offset + (ofr if op is OuOp.MVTCX else 0)
            base = banks[instr.bank]
            rac.push(instr.fifo, memory.read(base + 4 * offset, instr.count))
        elif op in (OuOp.MVFC, OuOp.MVFCX):
            offset = instr.offset + (ofr if op is OuOp.MVFCX else 0)
            base = banks[instr.bank]
            memory.write(base + 4 * offset, rac.pop(instr.fifo, instr.count))
        elif op in (OuOp.EXEC, OuOp.EXECS, OuOp.NOP, OuOp.WAIT,
                    OuOp.WAITF, OuOp.SYNC, OuOp.IRQ):
            pass  # no functional effect
        elif op is OuOp.JMP:
            pc = instr.imm
        elif op is OuOp.LOOP:
            if loop_active:
                raise ControllerError("reference model: nested loop")
            loop_active = True
            loop_count = instr.imm
            loop_body = pc
        elif op is OuOp.ENDL:
            if not loop_active:
                raise ControllerError("reference model: endl without loop")
            loop_count -= 1
            if loop_count > 0:
                pc = loop_body
            else:
                loop_active = False
        elif op is OuOp.ADDOFR:
            ofr += instr.imm
        elif op is OuOp.CLROFR:
            ofr = 0
        elif op in (OuOp.EOP, OuOp.HALT):
            return executed
        else:  # pragma: no cover
            raise ControllerError(f"reference model: unhandled {op}")
    raise ControllerError("reference model: step limit exceeded")
