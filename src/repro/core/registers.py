"""The Ouessant configuration register file (Figure 3).

Ten 32-bit registers, mapped at word offsets from the OCP's slave base
address:

======= ============ ==================================================
0x00    CTRL         bit 0 ``S`` (start), bit 1 ``IE`` (interrupt
                     enable), bit 2 ``D`` (done) -- "only 3 bits are
                     used" by the paper; this implementation adds
                     bit 3 ``E`` (error) and bits [7:4] (error code)
                     for the fault-recovery extension (docs/FAULTS.md)
0x04    PROG_SIZE    number of microcode instructions
0x08    BANK0        byte base address of memory bank 0
...     ...
0x24    BANK7        byte base address of memory bank 7
======= ============ ==================================================

By convention of this implementation the microcode itself is fetched
from **bank 0** (the paper stores "the OCP microcode ... in the
memory" and Figure 4 uses banks 1 and 2 for data, leaving bank 0 free
for the program).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.errors import ControllerError
from ..utils import bits
from .isa import N_BANKS

CTRL_S = 1 << 0
CTRL_IE = 1 << 1
CTRL_D = 1 << 2
#: error flag: the controller trapped instead of completing normally
CTRL_E = 1 << 3
#: 4-bit error code field, valid while ``E`` is set
ERR_SHIFT = 4
ERR_MASK = 0xF << ERR_SHIFT

#: error codes reported in CTRL[7:4]
ERR_NONE = 0
ERR_ILLEGAL_OP = 1
ERR_BUS = 2
ERR_WATCHDOG = 3
ERR_FIFO = 4

ERROR_NAMES = {
    ERR_NONE: "none",
    ERR_ILLEGAL_OP: "illegal_opcode",
    ERR_BUS: "bus_error",
    ERR_WATCHDOG: "watchdog",
    ERR_FIFO: "fifo_fault",
}

REG_CTRL = 0x00
REG_PROG_SIZE = 0x04
REG_BANK_BASE = 0x08

#: word offset of the microcode bank (implementation convention)
PROGRAM_BANK = 0

N_REGISTERS = 2 + N_BANKS


class OuessantRegisters:
    """State + access logic of the configuration registers.

    The bus-facing interface delegates its slave reads/writes here;
    the controller reads bank bases and control bits directly.
    """

    def __init__(self) -> None:
        self.ctrl = 0
        self.prog_size = 0
        self.banks: List[int] = [0] * N_BANKS
        self._configured = [False] * N_BANKS
        self.on_start: Optional[Callable[[], None]] = None
        self.on_stop: Optional[Callable[[], None]] = None

    # -- bit helpers -------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self.ctrl & CTRL_S)

    @property
    def interrupt_enabled(self) -> bool:
        return bool(self.ctrl & CTRL_IE)

    @property
    def done(self) -> bool:
        return bool(self.ctrl & CTRL_D)

    @property
    def error(self) -> bool:
        return bool(self.ctrl & CTRL_E)

    @property
    def error_code(self) -> int:
        """4-bit error code; meaningful only while :attr:`error`."""
        return (self.ctrl & ERR_MASK) >> ERR_SHIFT

    @property
    def error_name(self) -> str:
        return ERROR_NAMES.get(self.error_code, f"code{self.error_code}")

    def set_done(self) -> None:
        self.ctrl |= CTRL_D

    def set_error(self, code: int) -> None:
        """Latch E plus the error code (sticky until the next start)."""
        self.ctrl = (self.ctrl & ~ERR_MASK) | CTRL_E | (
            (code & 0xF) << ERR_SHIFT
        )

    def clear_start(self) -> None:
        self.ctrl &= ~CTRL_S

    # -- bank access -----------------------------------------------------
    def bank_base(self, bank: int) -> int:
        """Byte base address of a bank; raises if never configured."""
        if not 0 <= bank < N_BANKS:
            raise ControllerError(f"bank {bank} out of range")
        if not self._configured[bank]:
            raise ControllerError(
                f"bank {bank} used by microcode but never configured"
            )
        return self.banks[bank]

    def set_bank(self, bank: int, base: int) -> None:
        if not 0 <= bank < N_BANKS:
            raise ControllerError(f"bank {bank} out of range")
        if base % 4:
            raise ControllerError(f"bank base {base:#x} must be word aligned")
        self.banks[bank] = base & bits.WORD_MASK
        self._configured[bank] = True

    def is_configured(self, bank: int) -> bool:
        return 0 <= bank < N_BANKS and self._configured[bank]

    # -- register-file access (byte offsets) -------------------------------
    def read(self, offset: int) -> int:
        if offset == REG_CTRL:
            return self.ctrl
        if offset == REG_PROG_SIZE:
            return self.prog_size
        bank = (offset - REG_BANK_BASE) // 4
        if 0 <= bank < N_BANKS and offset % 4 == 0:
            return self.banks[bank]
        return 0

    def write(self, offset: int, value: int) -> None:
        value &= bits.WORD_MASK
        if offset == REG_CTRL:
            was_started = self.started
            # D, E and the error code are read-only from the bus:
            # writing S clears them (start of a new run), IE is taken
            # as written.
            new_ctrl = value & (CTRL_S | CTRL_IE)
            if value & CTRL_S and not was_started:
                self.ctrl = new_ctrl  # D/E/code cleared on start
                if self.on_start is not None:
                    self.on_start()
            else:
                self.ctrl = new_ctrl | (self.ctrl & (CTRL_D | CTRL_E
                                                     | ERR_MASK))
                if was_started and not (value & CTRL_S):
                    if self.on_stop is not None:
                        self.on_stop()
        elif offset == REG_PROG_SIZE:
            self.prog_size = value
        else:
            bank = (offset - REG_BANK_BASE) // 4
            if 0 <= bank < N_BANKS and offset % 4 == 0:
                self.set_bank(bank, value)

    def reset(self) -> None:
        self.ctrl = 0
        self.prog_size = 0
        self.banks = [0] * N_BANKS
        self._configured = [False] * N_BANKS
