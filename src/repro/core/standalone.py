"""Processor-free (standalone) OCP operation.

Paper, Section VI: "Standalone operation is also studied, to provide
control for processor-free designs."  In such a design nothing ever
writes the configuration registers over the bus; instead a small
hardwired sequencer (strap logic / configuration ROM) programs the
register file at power-up and optionally restarts the microcode every
time it completes -- turning the OCP into an autonomous streaming
engine.

:class:`StandaloneSequencer` is that strap logic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.errors import ConfigurationError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from .coprocessor import OuessantCoprocessor
from .registers import CTRL_IE, CTRL_S, REG_CTRL, REG_PROG_SIZE, REG_BANK_BASE


class StandaloneSequencer(Component):
    """Boots an OCP without any processor and optionally re-arms it.

    Parameters
    ----------
    ocp:
        The coprocessor to drive.
    bank_bases:
        ``bank -> byte base address`` configuration (bank 0 must hold
        the microcode, already placed in memory by the system builder).
    prog_size:
        Number of microcode instructions.
    restart:
        When True, the sequencer clears and re-sets ``S`` every time
        the program reaches ``eop``, giving free-running operation.
    max_runs:
        Stop re-arming after this many completed runs (None = forever).
    """

    def __init__(
        self,
        name: str,
        ocp: OuessantCoprocessor,
        bank_bases: Dict[int, int],
        prog_size: int,
        restart: bool = False,
        max_runs: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        if 0 not in bank_bases:
            raise ConfigurationError("standalone boot needs bank 0 (microcode)")
        if prog_size < 1:
            raise ConfigurationError("prog_size must be >= 1")
        self.ocp = ocp
        self.bank_bases = dict(bank_bases)
        self.prog_size = prog_size
        self.restart = restart
        self.max_runs = max_runs
        self.runs_completed = 0
        self.stats = Stats()
        self._booted = False
        self._rearm = False
        # the done-poll below sleeps indefinitely: the interface pokes
        # its watchers whenever D is raised
        ocp.interface.watch(self)

    def _program_registers(self) -> None:
        interface = self.ocp.interface
        for bank, base in self.bank_bases.items():
            interface.write_word(REG_BANK_BASE + 4 * bank, base)
        interface.write_word(REG_PROG_SIZE, self.prog_size)

    def next_activity(self):
        if not self._booted or self._rearm:
            return self.now  # boot / re-arm writes are due this cycle
        if self.ocp.done and self.ocp.registers.started:
            return self.now  # a completed run must be acknowledged
        # armed and waiting on ocp.done, which only a controller tick
        # can raise -- idle until the rest of the system acts
        return None

    def tick(self) -> None:
        if not self._booted:
            self._program_registers()
            self.ocp.interface.write_word(REG_CTRL, CTRL_S)
            self._booted = True
            self.stats.incr("boots")
            self.trace_event("boot", prog_size=self.prog_size)
            return
        if self._rearm:
            # one idle cycle between clearing and re-setting S, like a
            # real strap FSM would insert
            self.ocp.interface.write_word(REG_CTRL, CTRL_S)
            self._rearm = False
            self.stats.incr("restarts")
            return
        if self.ocp.done and self.ocp.registers.started:
            self.runs_completed += 1
            self.trace_event("run_done", runs=self.runs_completed)
            more = self.max_runs is None or self.runs_completed < self.max_runs
            if self.restart and more:
                self.ocp.interface.write_word(REG_CTRL, 0)
                self._rearm = True
            else:
                self.ocp.interface.write_word(REG_CTRL, 0)

    def reset(self) -> None:
        self._booted = False
        self._rearm = False
        self.runs_completed = 0
