"""Firmware image format.

An open-source coprocessor project needs a way to ship microcode:
this module defines the ``OUFW`` image -- a small self-describing
container holding the instruction words plus the bank contract, so a
loader can validate a program against the system before writing the
configuration registers.

Layout (little-endian 32-bit words):

======  =====================================================
word 0  magic ``0x4F554657`` ("OUFW")
word 1  format version (currently 1)
word 2  instruction count N
word 3  bank-usage bitmap (bit b set = microcode references bank b)
word 4  checksum: 32-bit sum of all instruction words
5..     N instruction words
======  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..sim.errors import ConfigurationError
from ..utils import bits
from .encoding import decode
from .isa import OuInstruction, TRANSFER_OPS

MAGIC = 0x4F554657  # "OUFW"
VERSION = 1
HEADER_WORDS = 5


@dataclass(frozen=True)
class FirmwareImage:
    """A validated firmware container."""

    words: List[int]
    bank_bitmap: int

    @property
    def instructions(self) -> List[OuInstruction]:
        return [decode(word) for word in self.words]

    @property
    def banks_referenced(self) -> List[int]:
        return [b for b in range(8) if self.bank_bitmap & (1 << b)]

    def requires_bank(self, bank: int) -> bool:
        return bool(self.bank_bitmap & (1 << bank))


def _checksum(words: Sequence[int]) -> int:
    return sum(words) & bits.WORD_MASK


def _bank_bitmap(words: Sequence[int]) -> int:
    bitmap = 1  # bank 0 always holds the microcode itself
    for word in words:
        instr = decode(word)
        if instr.op in TRANSFER_OPS:
            bitmap |= 1 << instr.bank
    return bitmap


def pack(program_words: Sequence[int]) -> bytes:
    """Serialize instruction words into an ``OUFW`` image."""
    if not program_words:
        raise ConfigurationError("cannot pack an empty program")
    words = [w & bits.WORD_MASK for w in program_words]
    for word in words:
        decode(word)  # must be a valid instruction stream
    header = [
        MAGIC,
        VERSION,
        len(words),
        _bank_bitmap(words),
        _checksum(words),
    ]
    return bits.bytes_from_words(header + words)


def unpack(data: bytes) -> FirmwareImage:
    """Parse and validate an ``OUFW`` image.

    Raises
    ------
    ConfigurationError
        On a bad magic, unsupported version, truncated payload or
        checksum mismatch.
    """
    if len(data) < 4 * HEADER_WORDS:
        raise ConfigurationError("image shorter than the OUFW header")
    all_words = bits.words_from_bytes(data)
    magic, version, count, bitmap, checksum = all_words[:HEADER_WORDS]
    if magic != MAGIC:
        raise ConfigurationError(f"bad magic {magic:#010x} (not OUFW)")
    if version != VERSION:
        raise ConfigurationError(f"unsupported OUFW version {version}")
    words = all_words[HEADER_WORDS : HEADER_WORDS + count]
    if len(words) != count:
        raise ConfigurationError(
            f"truncated image: header promises {count} instructions, "
            f"payload holds {len(words)}"
        )
    if _checksum(words) != checksum:
        raise ConfigurationError("checksum mismatch: corrupted image")
    if _bank_bitmap(words) != bitmap:
        raise ConfigurationError(
            "bank bitmap disagrees with the instruction stream"
        )
    for word in words:
        decode(word)
    return FirmwareImage(words=words, bank_bitmap=bitmap)
