"""Dynamic Partial Reconfiguration of the RAC.

Paper, Section VI: "Current work in progress includes complete Zynq
(AXI4) integration, and Dynamic Partial Reconfiguration."  The RAC is
the natural reconfigurable region (Figure 1 isolates it behind FIFOs),
so swapping accelerators at runtime only requires the controller to be
idle and the partial bitstream to be streamed to the configuration
port.

:class:`DPRManager` models that flow: it charges the ICAP transfer time
for the bitstream, keeps the OCP unusable during reconfiguration, then
rebuilds the FIFO fabric around the new RAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rac.base import RAC
from ..sim.errors import ReconfigurationError
from ..sim.kernel import Simulator
from ..sim.tracing import Stats
from .coprocessor import OuessantCoprocessor

#: Xilinx 7-series ICAP: 32 bits per cycle at configuration clock.  We
#: express everything in system-clock cycles (50 MHz in the paper's
#: setup, slower than the 100 MHz ICAP, hence the conservative 1).
ICAP_WORDS_PER_CYCLE = 1


@dataclass(frozen=True)
class PartialBitstream:
    """A partial bitstream: the RAC it configures plus its size.

    ``size_words`` defaults to a typical small-region 7-series partial
    bitstream (~100 KB => 25k words).
    """

    rac: RAC
    size_words: int = 25_000

    def __post_init__(self) -> None:
        if self.size_words < 1:
            raise ReconfigurationError("bitstream cannot be empty")


class DPRManager:
    """Swap RACs inside a live OCP, charging reconfiguration time.

    Parameters
    ----------
    sim:
        The running simulator (time advances during reconfiguration).
    ocp:
        The coprocessor whose RAC region is reconfigurable.
    """

    def __init__(self, sim: Simulator, ocp: OuessantCoprocessor) -> None:
        self.sim = sim
        self.ocp = ocp
        self.stats = Stats()
        self._shelf: "dict[str, RAC]" = {}

    def reconfigure(self, bitstream: PartialBitstream) -> int:
        """Load a partial bitstream; returns cycles spent reconfiguring.

        Raises
        ------
        ReconfigurationError
            If the controller is running or the OCP is started.
        """
        if self.ocp.controller.running:
            raise ReconfigurationError(
                "controller busy: stop the OCP before reconfiguring"
            )
        if self.ocp.registers.started:
            raise ReconfigurationError(
                "S bit still set: software must release the OCP first"
            )
        cycles = (bitstream.size_words + ICAP_WORDS_PER_CYCLE - 1) // ICAP_WORDS_PER_CYCLE
        self.sim.step(cycles)
        old = self.ocp.swap_rac(bitstream.rac)
        if old is not None:
            self._shelf[old.name] = old
        self.stats.incr("reconfigurations")
        self.stats.incr("reconfiguration_cycles", cycles)
        return cycles

    def shelved(self, name: str) -> Optional[RAC]:
        """A previously swapped-out RAC, if any (for swap-back tests)."""
        return self._shelf.get(name)
