"""Experiment drivers that regenerate the paper's reported numbers.

Each function builds the relevant system(s), runs the measurement the
way the paper describes (Linux, interrupt mode, time markers around the
call), and returns structured rows.  The benchmark suite prints and
asserts on these; EXPERIMENTS.md records them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .baselines.software import (
    SoftwareRun,
    software_dft_direct,
    software_fft,
    software_idct,
)
from .rac.dft import DFTRac, dft_latency
from .rac.idct import IDCT_PIPELINE_LATENCY, IDCTRac
from .sim.errors import SimulationError
from .sw.driver import RunResult
from .sw.library import OuessantLibrary
from .system import SoC
from .utils import fixedpoint as fp


@dataclass
class TableOneRow:
    """One row of Table I: Lat. / HW / SW / Gain (all in cycles)."""

    name: str
    lat: int
    hw: int
    sw: int

    @property
    def gain(self) -> float:
        return self.sw / self.hw if self.hw else float("inf")


def _random_block(seed: int = 7) -> List[List[int]]:
    rng = random.Random(seed)
    return [[rng.randint(-400, 400) for _ in range(8)] for _ in range(8)]


def _random_signal(n: int, seed: int = 11) -> Tuple[List[int], List[int]]:
    rng = random.Random(seed)
    re = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
    im = [fp.float_to_q15(rng.uniform(-0.4, 0.4)) for _ in range(n)]
    return re, im


def measure_idct_hw(
    environment: str = "linux", use_interrupt: bool = True
) -> Tuple[RunResult, bool]:
    """One 8x8 IDCT through an OCP; returns (timing, results-correct)."""
    soc = SoC(racs=[IDCTRac()])
    library = OuessantLibrary(
        soc, environment=environment, use_interrupt=use_interrupt
    )
    block = _random_block()
    result = library.idct(block)
    correct = result == fp.idct2_q15(block)
    assert library.last_result is not None
    return library.last_result, correct


def measure_dft_hw(
    n_points: int = 256,
    environment: str = "linux",
    use_interrupt: bool = True,
) -> Tuple[RunResult, bool]:
    """One DFT through an OCP; returns (timing, results-correct)."""
    soc = SoC(racs=[DFTRac(n_points=n_points)])
    library = OuessantLibrary(
        soc, environment=environment, use_interrupt=use_interrupt
    )
    re, im = _random_signal(n_points)
    out_re, out_im = library.dft(re, im)
    golden = fp.fft_q15(re, im)
    correct = (out_re, out_im) == golden
    assert library.last_result is not None
    return library.last_result, correct


def measure_idct_sw() -> SoftwareRun:
    block = _random_block()
    result, run = software_idct(block)
    if result != fp.idct2_q15(block):
        raise SimulationError("software IDCT produced wrong results")
    return run


def measure_dft_sw(n_points: int = 256, algorithm: str = "direct") -> SoftwareRun:
    re, im = _random_signal(n_points)
    if algorithm == "direct":
        _, run = software_dft_direct(re, im)
    elif algorithm == "fft":
        outputs, run = software_fft(re, im)
        if outputs != fp.fft_q15(re, im):
            raise SimulationError("software FFT produced wrong results")
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return run


def table_one(
    dft_points: int = 256,
    environment: str = "linux",
    sw_dft_algorithm: str = "direct",
) -> List[TableOneRow]:
    """Regenerate Table I (IDCT and DFT rows).

    ``Lat.`` is the accelerator compute latency (no transfers), ``HW``
    the end-to-end accelerated time in the chosen environment, ``SW``
    the measured software kernel time on the ISS.
    """
    idct_hw, idct_ok = measure_idct_hw(environment=environment)
    if not idct_ok:
        raise SimulationError("hardware IDCT results incorrect")
    dft_hw, dft_ok = measure_dft_hw(dft_points, environment=environment)
    if not dft_ok:
        raise SimulationError("hardware DFT results incorrect")
    idct_sw = measure_idct_sw()
    dft_sw = measure_dft_sw(dft_points, algorithm=sw_dft_algorithm)
    return [
        TableOneRow(
            "IDCT", IDCT_PIPELINE_LATENCY, idct_hw.total_cycles, idct_sw.cycles
        ),
        TableOneRow(
            "DFT", dft_latency(dft_points), dft_hw.total_cycles, dft_sw.cycles
        ),
    ]


def render_table_one(rows: List[TableOneRow]) -> str:
    """Print rows the way the paper formats Table I."""
    lines = [f"{'':>6} {'Lat.':>8} {'HW':>10} {'SW':>10} {'Gain':>8}"]
    for row in rows:
        lines.append(
            f"{row.name:>6} {row.lat:>8} {row.hw:>10} {row.sw:>10} "
            f"{row.gain:>8.2f}"
        )
    return "\n".join(lines)


@dataclass
class TransferMeasurement:
    """Cycles-per-word measurement for the in-text transfer analysis."""

    words: int
    cycles: int

    @property
    def cycles_per_word(self) -> float:
        return self.cycles / self.words


def measure_transfer_efficiency(
    total_words: int = 1024, chunk: int = 64
) -> TransferMeasurement:
    """Pure transfer microcode (mvtc+mvfc, passthrough RAC).

    Reproduces the in-text claim: "roughly 1500 cycles needed for data
    transfer, and 1024 32-bits words to transfer ... around 1.5 cycles
    per word".
    """
    from .core.program import OuProgram
    from .rac.scale import PassthroughRac
    from .sw.baremetal import BaremetalRuntime
    from .system import RAM_BASE

    if total_words % 2:
        raise ValueError("total_words counts both directions; must be even")
    half = total_words // 2
    rac = PassthroughRac(block_size=half, fifo_depth=128)
    soc = SoC(racs=[rac])
    runtime = BaremetalRuntime(soc)
    in_addr = RAM_BASE + 0x10_0000
    out_addr = RAM_BASE + 0x20_0000
    prog_addr = RAM_BASE + 0x30_0000
    soc.write_ram(in_addr, list(range(half)))
    program = (
        OuProgram()
        .stream_to(1, half, chunk=chunk)
        .execs()
        .stream_from(2, half, chunk=chunk)
        .eop()
    )
    result = runtime.run(
        program.words(), {0: prog_addr, 1: in_addr, 2: out_addr}
    )
    if soc.read_ram(out_addr, half) != list(range(half)):
        raise SimulationError("loopback transfer corrupted data")
    # both directions moved `half` words each => total_words... the
    # paper counts words in + words out, so report the sum.
    return TransferMeasurement(words=2 * half, cycles=result.total_cycles)
