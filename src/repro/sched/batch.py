"""Batch composition: fuse small jobs into one microcode program.

Each job contributes the canonical Figure-4 shape (stream in, start,
stream out) at a distinct offset inside the batch's shared input and
output arenas; :func:`repro.core.codegen.concat_programs` fuses the
per-job programs into one image that raises a single end-of-program
interrupt for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.codegen import concat_programs
from ..core.isa import MAX_OFFSET, MAX_TRANSFER_WORDS
from ..core.program import OuProgram
from ..sim.errors import ConfigurationError
from .job import Job

#: microcode bank numbers the scheduler configures on every dispatch
PROG_BANK = 0
IN_BANK = 1
OUT_BANK = 2


def job_program(
    job: Job, in_offset: int = 0, out_offset: int = 0, chunk: int = 64,
) -> OuProgram:
    """The standalone (terminated) microcode for one job.

    The sequential reference runner executes exactly this program, so
    batched execution is differentially comparable instruction by
    instruction.
    """
    chunk = min(chunk, MAX_TRANSFER_WORDS)
    if in_offset + job.size - 1 > MAX_OFFSET:
        raise ConfigurationError(
            f"job {job.job_id}: input offset {in_offset}+{job.size} "
            f"exceeds the ISA offset field (max {MAX_OFFSET})"
        )
    if out_offset + job.size - 1 > MAX_OFFSET:
        raise ConfigurationError(
            f"job {job.job_id}: output offset {out_offset}+{job.size} "
            f"exceeds the ISA offset field (max {MAX_OFFSET})"
        )
    return (
        OuProgram()
        .stream_to(IN_BANK, job.size, chunk=chunk, base_offset=in_offset)
        .execs()
        .stream_from(OUT_BANK, job.size, chunk=chunk, base_offset=out_offset)
        .eop()
    )


@dataclass
class Batch:
    """A group of jobs fused into one dispatch."""

    batch_id: int
    jobs: List[Job]
    program: OuProgram
    in_offsets: List[int] = field(default_factory=list)
    out_offsets: List[int] = field(default_factory=list)
    attempts: int = 0

    @property
    def total_words(self) -> int:
        return sum(job.size for job in self.jobs)


def compose_batch(jobs: List[Job], batch_id: int, chunk: int = 64) -> Batch:
    """Fuse ``jobs`` into a single batched program.

    Jobs are laid out back to back in the input and output arenas, in
    submission order; program order equals submission order, so chains
    batched together keep their dependency order.
    """
    if not jobs:
        raise ConfigurationError("cannot compose an empty batch")
    programs: List[OuProgram] = []
    in_offsets: List[int] = []
    out_offsets: List[int] = []
    offset = 0
    for job in jobs:
        in_offsets.append(offset)
        out_offsets.append(offset)
        programs.append(job_program(job, offset, offset, chunk=chunk))
        offset += job.size
    program = concat_programs(
        programs, names=[f"job {job.job_id}" for job in jobs]
    )
    return Batch(batch_id, list(jobs), program, in_offsets, out_offsets)
